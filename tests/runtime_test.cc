// Tests of the parallel runtime layer: ThreadPool scheduling/exception
// semantics and BatchRunner's deterministic, order-preserving mapping.
#include "runtime/batch_runner.h"
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace goalex::runtime {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  int value = 0;
  pool.Submit([&value] { value = 42; });  // Runs before Submit returns.
  EXPECT_EQ(value, 42);
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&hits](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExceptionPropagatesWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t begin, size_t) {
                         if (begin == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing batch: subsequent work runs normally and
  // the stored exception does not leak into the next Wait().
  std::atomic<int> counter{0};
  pool.ParallelFor(100, [&counter](size_t begin, size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SerialPoolPropagatesExceptionFromWait) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(BatchRunnerTest, MapPreservesOrder) {
  for (int threads : {1, 4}) {
    BatchRunner runner(threads);
    std::vector<int> out =
        runner.Map<int>(257, [](size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST(BatchRunnerTest, SerialAndParallelResultsIdentical) {
  auto work = [](size_t i) {
    // Uneven per-item cost so chunks finish out of order.
    size_t acc = i;
    for (size_t k = 0; k < (i % 17) * 100; ++k) acc = acc * 31 + k;
    return acc;
  };
  BatchRunner serial(1);
  BatchRunner parallel(4);
  std::vector<size_t> a = serial.Map<size_t>(500, work);
  std::vector<size_t> b = parallel.Map<size_t>(500, work);
  EXPECT_EQ(a, b);
}

TEST(BatchRunnerTest, StatsReflectRun) {
  BatchRunner runner(2);
  runner.Map<int>(50, [](size_t i) { return static_cast<int>(i); });
  const Stats& stats = runner.last_stats();
  EXPECT_EQ(stats.items, 50u);
  EXPECT_GE(stats.seconds, 0.0);
  EXPECT_EQ(stats.threads, 2);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(StatsTest, AccumulationAddsItemsAndTimeKeepsMaxThreads) {
  Stats total;
  Stats a{100, 2.0, 4};
  Stats b{50, 1.0, 2};
  total += a;
  total += b;
  EXPECT_EQ(total.items, 150u);
  EXPECT_DOUBLE_EQ(total.seconds, 3.0);
  EXPECT_EQ(total.threads, 4);
  EXPECT_DOUBLE_EQ(total.ItemsPerSecond(), 50.0);
}

}  // namespace
}  // namespace goalex::runtime
