// Tests of the task-graph executor: dependency ordering (diamond/fan-in),
// cycle rejection, error propagation with cancellation of dependents, the
// 1k-node stress graph under scheduling jitter, batched worker wakeups, and
// the buffer-lifetime pass (scratch lease planning + pooled allocators).
#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/graph.h"
#include "exec/lifetime.h"
#include "obs/metrics.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "tensor/scratch.h"

namespace goalex::exec {
namespace {

void SpinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(GraphTest, AddRejectsNothingAndBuildsDiamond) {
  Graph graph;
  const NodeId a = graph.Add([] {});
  const NodeId b = graph.Add([] {}, {a});
  const NodeId c = graph.Add([] {}, {a});
  const NodeId d = graph.Add([] {}, {b, c});
  EXPECT_EQ(graph.node_count(), 4u);
  EXPECT_EQ(graph.deps(d), (std::vector<NodeId>{b, c}));
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(GraphTest, AddEdgeRejectsUnknownAndSelfEdges) {
  Graph graph;
  const NodeId a = graph.Add([] {});
  EXPECT_FALSE(graph.AddEdge(a, a).ok());
  EXPECT_FALSE(graph.AddEdge(a, 7).ok());
  EXPECT_FALSE(graph.AddEdge(-1, a).ok());
}

TEST(GraphTest, ValidateRejectsCycles) {
  Graph graph;
  const NodeId a = graph.Add([] {});
  const NodeId b = graph.Add([] {}, {a});
  ASSERT_TRUE(graph.AddEdge(b, a).ok());  // Legal edge, illegal graph.
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(ExecutorTest, EmptyGraphIsANoOp) {
  runtime::ThreadPool pool(2);
  Executor executor(&pool);
  Graph graph;
  EXPECT_TRUE(executor.Run(graph).ok());
  EXPECT_EQ(executor.last_run().executed, 0u);
}

TEST(ExecutorTest, RunRejectsCyclicGraphWithoutExecutingAnything) {
  runtime::ThreadPool pool(2);
  Executor executor(&pool);
  Graph graph;
  std::atomic<int> ran{0};
  const NodeId a = graph.Add([&ran] { ran.fetch_add(1); });
  const NodeId b = graph.Add([&ran] { ran.fetch_add(1); }, {a});
  ASSERT_TRUE(graph.AddEdge(b, a).ok());
  const Status status = executor.Run(graph);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ran.load(), 0);
}

// Runs a diamond and asserts every dependency finished before its
// dependent started, at both serial and parallel worker counts.
TEST(ExecutorTest, DiamondRespectsDependencyOrder) {
  for (int threads : {1, 4}) {
    runtime::ThreadPool pool(threads);
    Executor executor(&pool);
    Graph graph;
    std::atomic<uint32_t> done_mask{0};
    auto node = [&done_mask](uint32_t bit, uint32_t required) {
      return [&done_mask, bit, required] {
        EXPECT_EQ(done_mask.load() & required, required);
        done_mask.fetch_or(bit);
      };
    };
    const NodeId a = graph.Add(node(1u, 0u));
    const NodeId b = graph.Add(node(2u, 1u), {a});
    const NodeId c = graph.Add(node(4u, 1u), {a});
    graph.Add(node(8u, 1u | 2u | 4u), {b, c});
    ASSERT_TRUE(executor.Run(graph).ok());
    EXPECT_EQ(done_mask.load(), 15u);
    EXPECT_EQ(executor.last_run().executed, 4u);
    EXPECT_EQ(executor.last_run().cancelled, 0u);
  }
}

// A fan-in reduction node must observe every producer's slot, and walking
// the slots in ascending order makes the reduced value deterministic.
TEST(ExecutorTest, FanInReductionSeesAllInputsInFixedOrder) {
  for (int threads : {1, 8}) {
    runtime::ThreadPool pool(threads);
    Executor executor(&pool);
    Graph graph;
    constexpr int kProducers = 64;
    std::vector<double> slots(kProducers, 0.0);
    std::vector<NodeId> producers;
    for (int i = 0; i < kProducers; ++i) {
      producers.push_back(graph.Add([&slots, i] {
        slots[static_cast<size_t>(i)] = static_cast<double>(i) * 0.5;
      }));
    }
    double reduced = 0.0;
    graph.Add(
        [&slots, &reduced] {
          for (double v : slots) reduced += v;  // Ascending-slot order.
        },
        producers);
    ASSERT_TRUE(executor.Run(graph).ok());
    double expected = 0.0;
    for (int i = 0; i < kProducers; ++i) expected += i * 0.5;
    EXPECT_EQ(reduced, expected);
  }
}

TEST(ExecutorTest, SerialExecutionOrderIsDeterministic) {
  std::vector<int> first_order;
  for (int rep = 0; rep < 3; ++rep) {
    runtime::ThreadPool pool(1);
    Executor executor(&pool);
    Graph graph;
    std::vector<int> order;
    const NodeId a = graph.Add([&order] { order.push_back(0); });
    const NodeId b = graph.Add([&order] { order.push_back(1); });
    graph.Add([&order] { order.push_back(2); }, {a});
    graph.Add([&order] { order.push_back(3); }, {b});
    graph.Add([&order] { order.push_back(4); }, {a, b});
    ASSERT_TRUE(executor.Run(graph).ok());
    if (rep == 0) {
      first_order = order;
    } else {
      EXPECT_EQ(order, first_order);
    }
  }
}

// First error cancels every transitive dependent, independent chains still
// run, and Run rethrows the error after the graph settles.
TEST(ExecutorTest, ErrorCancelsDependentsButNotIndependentNodes) {
  for (int threads : {1, 4}) {
    runtime::ThreadPool pool(threads);
    Executor executor(&pool);
    Graph graph;
    std::atomic<int> downstream_ran{0};
    std::atomic<int> independent_ran{0};
    const NodeId boom =
        graph.Add([] { throw std::runtime_error("node failed"); });
    const NodeId child =
        graph.Add([&downstream_ran] { downstream_ran.fetch_add(1); }, {boom});
    graph.Add([&downstream_ran] { downstream_ran.fetch_add(1); }, {child});
    graph.Add([&independent_ran] { independent_ran.fetch_add(1); });
    graph.Add([&independent_ran] { independent_ran.fetch_add(1); });
    EXPECT_THROW(executor.Run(graph), std::runtime_error);
    EXPECT_EQ(downstream_ran.load(), 0);
    EXPECT_EQ(independent_ran.load(), 2);
    EXPECT_EQ(executor.last_run().cancelled, 2u);
    // The executor is reusable after a failed run.
    Graph clean;
    std::atomic<int> ran{0};
    clean.Add([&ran] { ran.fetch_add(1); });
    EXPECT_TRUE(executor.Run(clean).ok());
    EXPECT_EQ(ran.load(), 1);
  }
}

// 1k-node layered DAG under scheduling jitter: every node's value is a
// deterministic function of its dependencies' values, so any ordering
// violation or lost node corrupts the checksum.
TEST(ExecutorStressTest, ThousandNodeGraphIsExactUnderJitter) {
  constexpr int kNodes = 1000;
  constexpr int kLayerWidth = 50;
  uint64_t expected_checksum = 0;
  for (int rep = 0; rep < 3; ++rep) {
    runtime::ThreadPool pool(8);
    Executor executor(&pool);
    Graph graph;
    std::vector<uint64_t> value(kNodes, 0);
    std::vector<std::atomic<bool>> finished(kNodes);
    for (auto& f : finished) f.store(false);
    for (int i = 0; i < kNodes; ++i) {
      std::vector<NodeId> deps;
      // Depend on up to three nodes of the previous layer (deterministic
      // pseudo-random picks, so every rep builds the same graph).
      if (i >= kLayerWidth) {
        const int layer_base = (i / kLayerWidth - 1) * kLayerWidth;
        for (int k = 0; k < 3; ++k) {
          const int pick =
              layer_base + static_cast<int>((1469598103934665603ull *
                                             static_cast<uint64_t>(i * 3 + k)) %
                                            kLayerWidth);
          deps.push_back(static_cast<NodeId>(pick));
        }
      }
      graph.Add(
          [&value, &finished, deps, i] {
            // Scheduling jitter: stagger node durations so steals and
            // wakeup waves happen at different interleavings each run.
            if (i % 7 == 0) SpinFor(std::chrono::microseconds(i % 97));
            uint64_t v = static_cast<uint64_t>(i) + 1;
            for (NodeId dep : deps) {
              EXPECT_TRUE(finished[static_cast<size_t>(dep)].load());
              v += 31 * value[static_cast<size_t>(dep)];
            }
            value[static_cast<size_t>(i)] = v;
            finished[static_cast<size_t>(i)].store(true);
          },
          deps);
    }
    ASSERT_TRUE(executor.Run(graph).ok());
    EXPECT_EQ(executor.last_run().executed,
              static_cast<size_t>(kNodes));
    uint64_t checksum = 0;
    for (uint64_t v : value) checksum = checksum * 1099511628211ull + v;
    if (rep == 0) {
      expected_checksum = checksum;
    } else {
      EXPECT_EQ(checksum, expected_checksum);
    }
  }
}

// One root releasing a wide wave into its own shard forces the other
// (otherwise idle) workers to steal.
TEST(ExecutorTest, WorkStealingMovesWaveWorkAcrossShards) {
  runtime::ThreadPool pool(2);
  Executor executor(&pool);
  Graph graph;
  const NodeId root = graph.Add([] {});
  for (int i = 0; i < 8; ++i) {
    graph.Add([] { SpinFor(std::chrono::microseconds(2000)); }, {root});
  }
  ASSERT_TRUE(executor.Run(graph).ok());
  EXPECT_GE(executor.last_run().steals, 1u);
}

TEST(ExecutorTest, CriticalPathCoversTheLongestChain) {
  runtime::ThreadPool pool(4);
  Executor executor(&pool);
  Graph graph;
  // Chain of three 2 ms nodes plus a wide layer of fast nodes: the
  // critical path must be at least the chain's duration, and busy time at
  // least the critical path.
  NodeId prev = kInvalidNode;
  for (int i = 0; i < 3; ++i) {
    prev = graph.Add(
        [] { SpinFor(std::chrono::microseconds(2000)); },
        prev == kInvalidNode ? std::vector<NodeId>{}
                             : std::vector<NodeId>{prev});
  }
  for (int i = 0; i < 4; ++i) graph.Add([] {});
  ASSERT_TRUE(executor.Run(graph).ok());
  const RunStats& stats = executor.last_run();
  EXPECT_GE(stats.critical_path_seconds, 0.006 * 0.9);
  EXPECT_GE(stats.busy_seconds, stats.critical_path_seconds);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

// Satellite regression: overlapping pipeline stages must not double-count
// busy time. Two parallel chains of spin nodes on two workers overlap
// almost perfectly; summing per-node durations over ONE shared wall clock
// keeps utilization <= ~1, where the pre-graph staged paths (each stage
// timing its own wall) would have reported ~2x.
TEST(ExecutorTest, PipelinedUtilizationDoesNotDoubleCountOverlap) {
  runtime::ThreadPool pool(2);
  Executor executor(&pool);
  Graph graph;
  for (int chain = 0; chain < 2; ++chain) {
    NodeId prev = kInvalidNode;
    for (int stage = 0; stage < 4; ++stage) {
      prev = graph.Add(
          [] { SpinFor(std::chrono::microseconds(1500)); },
          prev == kInvalidNode ? std::vector<NodeId>{}
                               : std::vector<NodeId>{prev});
    }
  }
  ASSERT_TRUE(executor.Run(graph).ok());

  runtime::Stats stats;
  stats.items = 8;
  stats.threads = pool.thread_count();
  stats.seconds = executor.last_run().wall_seconds;
  stats.busy_seconds = executor.last_run().busy_seconds;
  EXPECT_GT(stats.Utilization(), 0.05);
  EXPECT_LE(stats.Utilization(), 1.05);
  // Busy time can never exceed wall * workers (the double-count signature).
  EXPECT_LE(stats.busy_seconds, stats.seconds * 2 * 1.05);
}

TEST(ThreadPoolBatchTest, SubmitBatchRunsEverythingAndDrainsQueueGauge) {
  const bool metrics = obs::Active();
  if (metrics) obs::MetricsRegistry::Default().Reset();
  {
    runtime::ThreadPool pool(3);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&ran] { ran.fetch_add(1); });
    }
    pool.SubmitBatch(std::move(tasks));
    pool.Wait();
    EXPECT_EQ(ran.load(), 16);
    if (metrics) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      // Queue-depth gauge still ends drained with batched wakeups, and
      // every task is accounted exactly once.
      EXPECT_EQ(registry.GetGauge("runtime.pool.queue_depth")->Value(), 0.0);
      EXPECT_EQ(registry.GetCounter("runtime.pool.tasks")->Value(), 16u);
    }
  }
  if (metrics) obs::MetricsRegistry::Default().Reset();
}

TEST(ThreadPoolBatchTest, SubmitBatchOnSerialPoolRunsInlineInOrder) {
  runtime::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  pool.SubmitBatch(std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(LifetimePlanTest, MapGraphIsBoundedByWorkersAndScratchNodes) {
  Graph graph;
  for (int i = 0; i < 16; ++i) {
    graph.Add([] {}, {}, NodeOptions{/*uses_scratch=*/true});
  }
  EXPECT_EQ(PlanScratchLifetimes(graph, 4).lease_count, 4);
  EXPECT_EQ(PlanScratchLifetimes(graph, 32).lease_count, 16);
  EXPECT_EQ(PlanScratchLifetimes(graph, 4).scratch_nodes, 16u);
}

TEST(LifetimePlanTest, ChainOfScratchNodesNeedsOneLease) {
  Graph graph;
  NodeId prev = kInvalidNode;
  for (int i = 0; i < 8; ++i) {
    prev = graph.Add([] {},
                     prev == kInvalidNode ? std::vector<NodeId>{}
                                          : std::vector<NodeId>{prev},
                     NodeOptions{/*uses_scratch=*/true});
  }
  const LifetimePlan plan = PlanScratchLifetimes(graph, 8);
  EXPECT_EQ(plan.longest_scratch_chain, 8u);
  EXPECT_EQ(plan.lease_count, 1);
}

TEST(LifetimePlanTest, MixedGraphUsesAntichainBound) {
  // Diamond of scratch nodes: S = 4, longest chain L = 3 (a -> b -> d), so
  // at most S - L + 1 = 2 can ever overlap, whatever the worker count.
  Graph graph;
  const NodeId a = graph.Add([] {}, {}, NodeOptions{true});
  const NodeId b = graph.Add([] {}, {a}, NodeOptions{true});
  const NodeId c = graph.Add([] {}, {a}, NodeOptions{true});
  graph.Add([] {}, {b, c}, NodeOptions{true});
  EXPECT_EQ(PlanScratchLifetimes(graph, 8).lease_count, 2);
}

TEST(LifetimePlanTest, NonScratchNodesDoNotConsumeLeases) {
  Graph graph;
  for (int i = 0; i < 32; ++i) graph.Add([] {});
  graph.Add([] {}, {}, NodeOptions{true});
  const LifetimePlan plan = PlanScratchLifetimes(graph, 8);
  EXPECT_EQ(plan.scratch_nodes, 1u);
  EXPECT_EQ(plan.lease_count, 1);
}

TEST(ScratchPoolTest, LeasesAreRecycledNotReallocated) {
  ScratchPool scratch;
  scratch.EnsureCapacity(2);
  EXPECT_EQ(scratch.capacity(), 2);
  scratch.EnsureCapacity(1);  // Monotone: never shrinks.
  EXPECT_EQ(scratch.capacity(), 2);

  tensor::ScratchAllocator* first = scratch.Acquire();
  ASSERT_NE(first, nullptr);
  scratch.Release(first);
  tensor::ScratchAllocator* second = scratch.Acquire();
  EXPECT_EQ(second, first);  // LIFO free list reuses the warm allocator.
  scratch.Release(second);
  EXPECT_EQ(scratch.resident_allocators(), 1);
}

// Scratch-tagged nodes run inside a leased ScratchScope: storage recycles
// across node executions and reused blocks come back zero-filled, so which
// lease a node gets can never change results.
TEST(ScratchPoolTest, ExecutorLeasesRecycleZeroFilledStorage) {
  runtime::ThreadPool pool(2);
  ScratchPool scratch;
  Executor executor(&pool, &scratch);
  for (int round = 0; round < 3; ++round) {
    Graph graph;
    for (int i = 0; i < 4; ++i) {
      graph.Add(
          [] {
            std::shared_ptr<std::vector<float>> block =
                tensor::AllocateTensorStorage(256);
            for (float v : *block) EXPECT_EQ(v, 0.0f);
            (*block)[0] = 123.0f;  // Dirty it for the next tenant.
          },
          {}, NodeOptions{/*uses_scratch=*/true});
    }
    ASSERT_TRUE(executor.Run(graph).ok());
  }
  EXPECT_GT(scratch.reuse_count(), 0u);
  EXPECT_LE(scratch.resident_allocators(), 2);
  EXPECT_GT(scratch.peak_bytes(), 0u);
}

}  // namespace
}  // namespace goalex::exec
