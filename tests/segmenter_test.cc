#include "segment/segmenter.h"

#include <gtest/gtest.h>

namespace goalex::segment {
namespace {

std::vector<std::string> Texts(std::string_view objective) {
  std::vector<std::string> out;
  for (const Segment& s : ObjectiveSegmenter().Split(objective)) {
    out.push_back(s.text);
  }
  return out;
}

TEST(SegmenterTest, SingleTargetIsOneSegment) {
  EXPECT_EQ(Texts("Reduce energy consumption by 20% by 2025."),
            (std::vector<std::string>{
                "Reduce energy consumption by 20% by 2025."}));
}

TEST(SegmenterTest, AndGerundSplits) {
  EXPECT_EQ(Texts("Reduce waste by 20% and expanding recycling programs "
                  "by 50%."),
            (std::vector<std::string>{
                "Reduce waste by 20%",
                "expanding recycling programs by 50%."}));
}

TEST(SegmenterTest, AndToVerbSplits) {
  EXPECT_EQ(Texts("Cut emissions by 30% and to restore natural habitats."),
            (std::vector<std::string>{
                "Cut emissions by 30%",
                "to restore natural habitats."}));
}

TEST(SegmenterTest, SemicolonSplits) {
  EXPECT_EQ(Texts("Achieve net-zero by 2040; eliminate landfill waste."),
            (std::vector<std::string>{
                "Achieve net-zero by 2040",
                "eliminate landfill waste."}));
}

TEST(SegmenterTest, AsWellAsSplits) {
  EXPECT_EQ(
      Texts("Double renewable capacity as well as cutting water use."),
      (std::vector<std::string>{"Double renewable capacity",
                                "cutting water use."}));
}

TEST(SegmenterTest, NounCoordinationDoesNotSplit) {
  // "water and waste" is a coordinated noun phrase, not a second target.
  EXPECT_EQ(Texts("Set new energy, water and waste targets by 2030."),
            (std::vector<std::string>{
                "Set new energy, water and waste targets by 2030."}));
}

TEST(SegmenterTest, ShortIngWordsDoNotTriggerSplit) {
  // "king" is 4 letters: not treated as a gerund.
  EXPECT_EQ(Texts("Support the community and king county programs."),
            (std::vector<std::string>{
                "Support the community and king county programs."}));
}

TEST(SegmenterTest, ThreeTargets) {
  std::vector<std::string> out =
      Texts("Reduce emissions by 20% and doubling solar capacity; "
            "eliminate single-use plastics.");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "Reduce emissions by 20%");
  EXPECT_EQ(out[1], "doubling solar capacity");
  EXPECT_EQ(out[2], "eliminate single-use plastics.");
}

TEST(SegmenterTest, OffsetsSliceOriginal) {
  std::string objective =
      "Reduce waste by 20% and expanding recycling by 50%.";
  for (const Segment& s : ObjectiveSegmenter().Split(objective)) {
    EXPECT_EQ(objective.substr(s.begin, s.end - s.begin), s.text);
  }
}

TEST(SegmenterTest, EmptyInput) {
  std::vector<Segment> segments = ObjectiveSegmenter().Split("");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].text, "");
}

TEST(SegmenterTest, IsMultiTarget) {
  ObjectiveSegmenter segmenter;
  EXPECT_FALSE(segmenter.IsMultiTarget("Reduce waste by 20%."));
  EXPECT_TRUE(segmenter.IsMultiTarget(
      "Reduce waste by 20% and expanding recycling."));
}

}  // namespace
}  // namespace goalex::segment
