// Tests of the evaluation-harness path that the Table 4 bench exercises:
// weak-labeled CRF training end-to-end on generated corpora, and LLM
// baseline evaluation plumbing. These mirror bench/harness.cc so that
// regressions show up in ctest rather than only in bench output.
#include <gtest/gtest.h>

#include "crf/crf.h"
#include "crf/features.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "labels/iob.h"
#include "llm/llm_extractor.h"
#include "text/normalizer.h"
#include "text/word_tokenizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex {
namespace {

std::vector<data::Objective> SmallCorpus(uint64_t seed, size_t count) {
  data::SustainabilityGoalsConfig config;
  config.seed = seed;
  config.objective_count = count;
  return data::GenerateSustainabilityGoals(config);
}

// CRF trained on weak labels must clearly beat an untrained CRF on the
// same held-out data (field-level F1).
TEST(WeakLabeledCrfTest, TrainingHelpsOnHeldOutData) {
  std::vector<data::Objective> corpus = SmallCorpus(1, 400);
  std::vector<data::Objective> train(corpus.begin(), corpus.begin() + 320);
  std::vector<data::Objective> test(corpus.begin() + 320, corpus.end());

  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  weaksup::WeakLabeler labeler(&catalog);
  text::WordTokenizer tokenizer;

  std::vector<crf::CrfInstance> instances;
  for (const data::Objective& o : train) {
    weaksup::WeakLabeling labeling = labeler.Label(o);
    if (labeling.tokens.empty()) continue;
    std::vector<std::string> words;
    for (const text::Token& t : labeling.tokens) words.push_back(t.text);
    instances.push_back(
        crf::CrfInstance{crf::ExtractFeatures(words), labeling.label_ids});
  }

  auto evaluate = [&](const crf::LinearChainCrf& model) {
    eval::FieldEvaluator evaluator(data::SustainabilityGoalKinds());
    for (const data::Objective& o : test) {
      std::vector<text::Token> tokens = tokenizer.Tokenize(o.text);
      data::DetailRecord record;
      if (!tokens.empty()) {
        std::vector<std::string> words;
        for (const text::Token& t : tokens) words.push_back(t.text);
        std::vector<labels::LabelId> predicted =
            model.Predict(crf::ExtractFeatures(words));
        for (const labels::Span& span : catalog.DecodeSpans(predicted)) {
          const std::string& kind =
              catalog.kinds()[static_cast<size_t>(span.kind)];
          if (record.fields.count(kind) > 0) continue;
          record.fields[kind] =
              o.text.substr(tokens[span.begin].begin,
                            tokens[span.end - 1].end -
                                tokens[span.begin].begin);
        }
      }
      evaluator.Add(o, record);
    }
    return evaluator.Overall().f1;
  };

  crf::LinearChainCrf untrained(catalog.label_count());
  double before = evaluate(untrained);

  crf::LinearChainCrf trained(catalog.label_count());
  crf::CrfOptions options;
  options.epochs = 8;
  trained.Train(instances, options);
  double after = evaluate(trained);

  EXPECT_LT(before, 0.2);
  EXPECT_GT(after, 0.6);
}

// The LLM baselines evaluated on a real generated split: few-shot must
// not be worse than zero-shot, and both must produce non-degenerate F1.
TEST(PromptingBaselinePathTest, FewShotAtLeastMatchesZeroShot) {
  std::vector<data::Objective> corpus = SmallCorpus(2, 250);
  std::vector<data::Objective> train(corpus.begin(), corpus.begin() + 200);
  std::vector<data::Objective> test(corpus.begin() + 200, corpus.end());

  auto evaluate = [&](bool few_shot) {
    llm::PromptingBaseline baseline(data::SustainabilityGoalKinds(),
                                    few_shot, 9);
    if (few_shot) {
      std::vector<data::Objective> examples(train.begin(),
                                            train.begin() + 3);
      baseline.SetExamples(examples);
    }
    eval::FieldEvaluator evaluator(data::SustainabilityGoalKinds());
    evaluator.AddAll(test, baseline.ExtractAll(test));
    return evaluator.Overall().f1;
  };

  double zero = evaluate(false);
  double few = evaluate(true);
  EXPECT_GT(zero, 0.3);
  EXPECT_GT(few, 0.5);
  EXPECT_GE(few + 0.02, zero);  // Few-shot >= zero-shot (small tolerance).
}

// Weak labeling, CRF features, and the catalog agree on sequence lengths
// for every generated objective (the invariant the harness relies on).
TEST(HarnessInvariantTest, FeatureAndLabelLengthsAgree) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  weaksup::WeakLabeler labeler(&catalog);
  for (const data::Objective& o : SmallCorpus(3, 100)) {
    weaksup::WeakLabeling labeling = labeler.Label(o);
    std::vector<std::string> words;
    for (const text::Token& t : labeling.tokens) words.push_back(t.text);
    EXPECT_EQ(crf::ExtractFeatures(words).size(),
              labeling.label_ids.size());
  }
}

}  // namespace
}  // namespace goalex
