// Cross-module integration tests: the full development -> production ->
// database -> typed-query path, exercised end to end, plus failure
// injection at module boundaries.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/database.h"
#include "core/extractor.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/report.h"
#include "goalspotter/detector.h"
#include "goalspotter/pipeline.h"
#include "values/value_normalizer.h"

namespace goalex {
namespace {

core::ExtractorConfig FastConfig() {
  core::ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  config.epochs = 6;
  config.bpe_merges = 1500;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SustainabilityGoalsConfig corpus_config;
    corpus_config.objective_count = 500;
    corpus_ = new std::vector<data::Objective>(
        data::GenerateSustainabilityGoals(corpus_config));

    extractor_ = new core::DetailExtractor(FastConfig());
    ASSERT_TRUE(extractor_->Train(*corpus_).ok());

    std::vector<goalspotter::LabeledBlock> blocks;
    for (const data::Objective& o : *corpus_) blocks.push_back({o.text, true});
    Rng noise_rng(3);
    for (size_t i = 0; i < corpus_->size(); ++i) {
      blocks.push_back({data::GenerateNoiseSentence(noise_rng), false});
    }
    detector_ = new goalspotter::ObjectiveDetector();
    detector_->Train(blocks, goalspotter::DetectorOptions());
  }

  static void TearDownTestSuite() {
    delete extractor_;
    delete detector_;
    delete corpus_;
    extractor_ = nullptr;
    detector_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<data::Objective>* corpus_;
  static core::DetailExtractor* extractor_;
  static goalspotter::ObjectiveDetector* detector_;
};

std::vector<data::Objective>* EndToEndTest::corpus_ = nullptr;
core::DetailExtractor* EndToEndTest::extractor_ = nullptr;
goalspotter::ObjectiveDetector* EndToEndTest::detector_ = nullptr;

TEST_F(EndToEndTest, ReportToDatabaseToTypedQuery) {
  data::Report report = data::GenerateSingleReport("E2ECo", 40, 10, 55);
  goalspotter::GoalSpotter pipeline(detector_, extractor_);
  core::ObjectiveDatabase database;
  goalspotter::PipelineStats stats =
      pipeline.ProcessReport(report, &database);
  ASSERT_GT(stats.detected_objectives, 5);

  // Typed layer: every stored Deadline normalizes to a plausible year.
  int typed_deadlines = 0;
  for (const core::DbRow& row : database.WithField("Deadline")) {
    values::TypedDetails typed = values::NormalizeRecord(row.record);
    ASSERT_TRUE(typed.deadline_year.has_value())
        << row.record.FieldOrEmpty("Deadline");
    EXPECT_GE(*typed.deadline_year, 2000);
    EXPECT_LE(*typed.deadline_year, 2100);
    ++typed_deadlines;
  }
  EXPECT_GT(typed_deadlines, 0);
}

TEST_F(EndToEndTest, TsvPersistencePreservesExtractionResults) {
  // Save the corpus, reload it, and verify extraction agrees on the
  // round-tripped objectives.
  std::string path =
      (std::filesystem::temp_directory_path() / "goalex_e2e.tsv").string();
  std::vector<data::Objective> sample(corpus_->begin(),
                                      corpus_->begin() + 10);
  ASSERT_TRUE(data::SaveObjectives(sample, path).ok());
  auto reloaded = data::LoadObjectives(path);
  ASSERT_TRUE(reloaded.ok());
  for (size_t i = 0; i < sample.size(); ++i) {
    EXPECT_EQ(extractor_->Extract(sample[i]).fields,
              extractor_->Extract((*reloaded)[i]).fields);
  }
  std::filesystem::remove(path);
}

TEST_F(EndToEndTest, SegmentationConfigChangesOnlyMultiTargetBehaviour) {
  // A single-target objective extracts identically with and without
  // segmentation enabled (loaded from the same weights).
  std::string dir =
      (std::filesystem::temp_directory_path() / "goalex_e2e_model").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(extractor_->Save(dir).ok());

  core::ExtractorConfig segment_config = FastConfig();
  segment_config.segment_multi_target = true;
  core::DetailExtractor segmented(segment_config);
  ASSERT_TRUE(segmented.Load(dir).ok());

  data::Objective single;
  single.text = "Reduce energy consumption by 20% by 2025.";
  EXPECT_EQ(extractor_->Extract(single).fields,
            segmented.Extract(single).fields);
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEndTest, ConfigTextRoundTrip) {
  core::ExtractorConfig config = FastConfig();
  config.preset = core::ModelPreset::kDistilBert;
  config.segment_multi_target = true;
  config.weak_labeler.exact_match = false;
  auto restored = core::ExtractorConfig::FromText(config.ToText());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->kinds, config.kinds);
  EXPECT_EQ(restored->preset, config.preset);
  EXPECT_EQ(restored->epochs, config.epochs);
  EXPECT_EQ(restored->segment_multi_target, true);
  EXPECT_EQ(restored->weak_labeler.exact_match, false);
  EXPECT_EQ(restored->bpe_merges, config.bpe_merges);
}

TEST_F(EndToEndTest, ConfigTextRejectsGarbage) {
  EXPECT_FALSE(core::ExtractorConfig::FromText("not a config").ok());
  EXPECT_FALSE(core::ExtractorConfig::FromText("epochs=10\n").ok());
  EXPECT_FALSE(
      core::ExtractorConfig::FromText("kinds=A\npreset=gpt9\n").ok());
}

// Failure injection: a corrupted model file must fail to load cleanly
// (Status error, no crash) and leave the extractor unusable but intact.
TEST_F(EndToEndTest, CorruptedModelFileFailsToLoad) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "goalex_e2e_corrupt")
          .string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(extractor_->Save(dir).ok());

  // Truncate the weights file.
  std::string model_path = dir + "/model.bin";
  auto size = std::filesystem::file_size(model_path);
  std::filesystem::resize_file(model_path, size / 2);

  core::DetailExtractor victim(FastConfig());
  Status status = victim.Load(dir);
  EXPECT_FALSE(status.ok());
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEndTest, CorruptedTokenizerFailsToLoad) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "goalex_e2e_corrupt2")
          .string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(extractor_->Save(dir).ok());
  {
    std::ofstream out(dir + "/tokenizer.txt", std::ios::trunc);
    out << "garbage\n";
  }
  core::DetailExtractor victim(FastConfig());
  EXPECT_FALSE(victim.Load(dir).ok());
  std::filesystem::remove_all(dir);
}

// NetZeroFacts end-to-end: the same extractor class serves the other
// schema without modification.
TEST(NetZeroFactsEndToEnd, TrainsAndExtracts) {
  data::NetZeroFactsConfig corpus_config;
  corpus_config.sentence_count = 300;
  std::vector<data::Objective> corpus =
      data::GenerateNetZeroFacts(corpus_config);
  core::ExtractorConfig config;
  config.kinds = data::NetZeroFactsKinds();
  config.epochs = 6;
  config.bpe_merges = 1500;
  core::DetailExtractor extractor(config);
  ASSERT_TRUE(extractor.Train(corpus).ok());

  data::Objective o;
  o.text = "Reduce absolute Scope 1 emissions by 45% by 2035 compared "
           "to 2019.";
  data::DetailRecord record = extractor.Extract(o);
  // At minimum the target year should be found on this prototypical goal.
  EXPECT_EQ(record.FieldOrEmpty("TargetYear"), "2035");
}

}  // namespace
}  // namespace goalex
