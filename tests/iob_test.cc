#include "labels/iob.h"

#include <gtest/gtest.h>

namespace goalex::labels {
namespace {

LabelCatalog Catalog() {
  return LabelCatalog({"Action", "Amount", "Qualifier", "Baseline",
                       "Deadline"});
}

TEST(LabelCatalogTest, Counts) {
  LabelCatalog c = Catalog();
  EXPECT_EQ(c.kind_count(), 5);
  EXPECT_EQ(c.label_count(), 11);
}

TEST(LabelCatalogTest, IdLayout) {
  LabelCatalog c = Catalog();
  EXPECT_EQ(c.BeginId(0), 1);
  EXPECT_EQ(c.InsideId(0), 2);
  EXPECT_EQ(c.BeginId(4), 9);
  EXPECT_EQ(c.InsideId(4), 10);
}

TEST(LabelCatalogTest, IsBeginInside) {
  LabelCatalog c = Catalog();
  EXPECT_FALSE(c.IsBegin(LabelCatalog::kOutsideId));
  EXPECT_FALSE(c.IsInside(LabelCatalog::kOutsideId));
  for (int32_t k = 0; k < c.kind_count(); ++k) {
    EXPECT_TRUE(c.IsBegin(c.BeginId(k)));
    EXPECT_FALSE(c.IsInside(c.BeginId(k)));
    EXPECT_TRUE(c.IsInside(c.InsideId(k)));
    EXPECT_FALSE(c.IsBegin(c.InsideId(k)));
    EXPECT_EQ(c.KindOf(c.BeginId(k)), k);
    EXPECT_EQ(c.KindOf(c.InsideId(k)), k);
  }
}

TEST(LabelCatalogTest, Names) {
  LabelCatalog c = Catalog();
  EXPECT_EQ(c.LabelName(0), "O");
  EXPECT_EQ(c.LabelName(c.BeginId(1)), "B-Amount");
  EXPECT_EQ(c.LabelName(c.InsideId(4)), "I-Deadline");
}

TEST(LabelCatalogTest, ParseRoundTrip) {
  LabelCatalog c = Catalog();
  for (LabelId id = 0; id < c.label_count(); ++id) {
    auto parsed = c.ParseLabel(c.LabelName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
}

TEST(LabelCatalogTest, ParseRejectsBadInput) {
  LabelCatalog c = Catalog();
  EXPECT_FALSE(c.ParseLabel("B-Unknown").ok());
  EXPECT_FALSE(c.ParseLabel("X-Action").ok());
  EXPECT_FALSE(c.ParseLabel("").ok());
  EXPECT_FALSE(c.ParseLabel("B").ok());
}

TEST(LabelCatalogTest, KindIndexLookups) {
  LabelCatalog c = Catalog();
  auto idx = c.KindIndex("Qualifier");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2);
  EXPECT_FALSE(c.KindIndex("qualifier").ok());  // Case-sensitive.
}

TEST(SpanCodecTest, EncodeBasic) {
  LabelCatalog c = Catalog();
  std::vector<LabelId> ids = c.EncodeSpans(6, {{0, 1, 3}, {4, 4, 5}});
  EXPECT_EQ(ids, (std::vector<LabelId>{0, c.BeginId(0), c.InsideId(0), 0,
                                       c.BeginId(4), 0}));
}

TEST(SpanCodecTest, DecodeBasic) {
  LabelCatalog c = Catalog();
  std::vector<LabelId> ids = {0, c.BeginId(0), c.InsideId(0), 0,
                              c.BeginId(4), 0};
  std::vector<Span> spans = c.DecodeSpans(ids);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 1, 3}));
  EXPECT_EQ(spans[1], (Span{4, 4, 5}));
}

TEST(SpanCodecTest, RoundTripManySpans) {
  LabelCatalog c = Catalog();
  std::vector<Span> spans = {{0, 0, 1}, {1, 2, 5}, {2, 5, 6}, {3, 8, 9}};
  std::vector<LabelId> ids = c.EncodeSpans(10, spans);
  EXPECT_EQ(c.DecodeSpans(ids), spans);
}

TEST(SpanCodecTest, AdjacentSameKindSpansStayDistinct) {
  LabelCatalog c = Catalog();
  // B-Action I-Action B-Action: two spans, not one.
  std::vector<LabelId> ids = {c.BeginId(0), c.InsideId(0), c.BeginId(0)};
  std::vector<Span> spans = c.DecodeSpans(ids);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 0, 2}));
  EXPECT_EQ(spans[1], (Span{0, 2, 3}));
}

TEST(SpanCodecTest, OrphanInsideRepaired) {
  LabelCatalog c = Catalog();
  // O I-Amount I-Amount O decodes to one Amount span.
  std::vector<LabelId> ids = {0, c.InsideId(1), c.InsideId(1), 0};
  std::vector<Span> spans = c.DecodeSpans(ids);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{1, 1, 3}));
}

TEST(SpanCodecTest, KindChangeInsideRunSplits) {
  LabelCatalog c = Catalog();
  // B-Action I-Amount: kind change means a new (repaired) span.
  std::vector<LabelId> ids = {c.BeginId(0), c.InsideId(1)};
  std::vector<Span> spans = c.DecodeSpans(ids);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 0, 1}));
  EXPECT_EQ(spans[1], (Span{1, 1, 2}));
}

TEST(SpanCodecTest, EmptySequence) {
  LabelCatalog c = Catalog();
  EXPECT_TRUE(c.DecodeSpans({}).empty());
  EXPECT_TRUE(c.EncodeSpans(0, {}).empty());
}

TEST(SpanCodecTest, ZeroLengthSpanIgnored) {
  LabelCatalog c = Catalog();
  std::vector<LabelId> ids = c.EncodeSpans(3, {{0, 1, 1}});
  EXPECT_EQ(ids, (std::vector<LabelId>{0, 0, 0}));
}

TEST(SpanCodecTest, LaterSpanOverwritesEarlier) {
  LabelCatalog c = Catalog();
  std::vector<LabelId> ids = c.EncodeSpans(4, {{0, 0, 3}, {1, 1, 3}});
  EXPECT_EQ(ids[0], c.BeginId(0));
  EXPECT_EQ(ids[1], c.BeginId(1));
  EXPECT_EQ(ids[2], c.InsideId(1));
}

// Property-style sweep: encode/decode round-trips for every kind.
class PerKindRoundTrip : public ::testing::TestWithParam<int32_t> {};

TEST_P(PerKindRoundTrip, SingleSpanRoundTrips) {
  LabelCatalog c = Catalog();
  int32_t kind = GetParam();
  std::vector<Span> spans = {{kind, 2, 5}};
  EXPECT_EQ(c.DecodeSpans(c.EncodeSpans(8, spans)), spans);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PerKindRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace goalex::labels
