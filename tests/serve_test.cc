// Tests of the extraction service: the lock-light request queue, the
// SLO-aware admission controller, the continuous-batching scheduler
// (priority ordering, both close triggers, shedding, clean shutdown with
// in-flight requests), the synthetic traffic generator, and end-to-end
// parity between the served path and direct extraction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/extractor.h"
#include "data/generator.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"
#include "serve/service.h"
#include "serve/workload.h"

namespace goalex::serve {
namespace {

data::Objective MakeObjective(const std::string& id) {
  data::Objective objective;
  objective.id = id;
  objective.text = "reduce CO2 emissions by 30% by 2030";
  return objective;
}

core::ServeConfig FastConfig() {
  core::ServeConfig config;
  config.max_batch_size = 4;
  config.batch_deadline_ms = 2.0;
  config.max_queue_depth = 256;
  return config;
}

/// Records the order and batching of everything the scheduler dispatches,
/// echoing each objective id back through its record.
struct HandlerLog {
  std::mutex mu;
  std::vector<std::string> order;
  std::vector<size_t> batch_sizes;

  std::vector<std::string> Order() {
    std::lock_guard<std::mutex> lock(mu);
    return order;
  }
  std::vector<size_t> BatchSizes() {
    std::lock_guard<std::mutex> lock(mu);
    return batch_sizes;
  }
};

/// Lets a test hold the scheduler thread inside its first handler call
/// while more requests are queued behind it.
struct FirstCallGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> calls{0};
  std::atomic<bool> entered{false};

  void BlockIfFirst() {
    if (calls.fetch_add(1) != 0) return;
    entered.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void AwaitEntered() {
    while (!entered.load()) std::this_thread::yield();
  }
};

Scheduler::BatchHandler EchoHandler(HandlerLog* log,
                                    FirstCallGate* gate = nullptr) {
  return [log, gate](const std::vector<const data::Objective*>& batch) {
    if (gate != nullptr) gate->BlockIfFirst();
    if (log != nullptr) {
      std::lock_guard<std::mutex> lock(log->mu);
      log->batch_sizes.push_back(batch.size());
      for (const data::Objective* objective : batch) {
        log->order.push_back(objective->id);
      }
    }
    std::vector<data::DetailRecord> records;
    records.reserve(batch.size());
    for (const data::Objective* objective : batch) {
      data::DetailRecord record;
      record.objective_id = objective->id;
      record.objective_text = objective->text;
      records.push_back(std::move(record));
    }
    return records;
  };
}

// ---------------------------------------------------------------------------
// RequestQueue

Request* NewRequest(const std::string& id, Priority priority) {
  Request* request = new Request;
  request->objective = MakeObjective(id);
  request->priority = priority;
  request->enqueue_time = std::chrono::steady_clock::now();
  return request;
}

TEST(RequestQueueTest, PopsInteractiveBeforeBulkFifoWithinClass) {
  RequestQueue queue;
  queue.Push(NewRequest("b0", Priority::kBulk));
  queue.Push(NewRequest("i0", Priority::kInteractive));
  queue.Push(NewRequest("b1", Priority::kBulk));
  queue.Push(NewRequest("i1", Priority::kInteractive));
  EXPECT_EQ(queue.depth(), 4u);

  EXPECT_EQ(queue.Drain(), 4u);
  EXPECT_EQ(queue.ready_size(), 4u);

  std::vector<std::string> order;
  for (Request* request = queue.Pop(); request != nullptr;
       request = queue.Pop()) {
    order.push_back(request->objective.id);
    request->promise.set_value(FailedPreconditionError("test drop"));
    delete request;
  }
  EXPECT_EQ(order, (std::vector<std::string>{"i0", "i1", "b0", "b1"}));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueueTest, ConcurrentPushersAllArriveInArrivalOrderPerThread) {
  RequestQueue queue;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&queue, t] {
      for (int i = 0; i < kPerThread; ++i) {
        queue.Push(NewRequest("p" + std::to_string(t) + "-" +
                                  std::to_string(i),
                              Priority::kInteractive));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  size_t drained = 0;
  while (drained < kThreads * kPerThread) drained += queue.Drain();
  EXPECT_EQ(drained, static_cast<size_t>(kThreads * kPerThread));

  // FIFO per producer: each thread's indices must come out increasing.
  int last_index[kThreads] = {-1, -1, -1, -1};
  for (Request* request = queue.Pop(); request != nullptr;
       request = queue.Pop()) {
    const std::string& id = request->objective.id;
    int thread_id = id[1] - '0';
    int index = std::stoi(id.substr(3));
    EXPECT_GT(index, last_index[thread_id]) << id;
    last_index[thread_id] = index;
    request->promise.set_value(FailedPreconditionError("test drop"));
    delete request;
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(last_index[t], kPerThread - 1);
  }
}

TEST(RequestQueueTest, DestructorReclaimsUndrainedRequests) {
  RequestQueue queue;
  queue.Push(NewRequest("a", Priority::kInteractive));
  queue.Push(NewRequest("b", Priority::kBulk));
  queue.Drain();
  queue.Push(NewRequest("c", Priority::kInteractive));
  // Destructor must free both the ready FIFO and the undrained stack
  // (ASAN would flag a leak here).
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionControllerTest, ShedsAtDepthBoundAndHoldsBulkToHalf) {
  core::ServeConfig config;
  config.max_queue_depth = 8;
  AdmissionController admission(config);

  EXPECT_TRUE(admission.Admit(0, Priority::kInteractive).ok());
  EXPECT_TRUE(admission.Admit(7, Priority::kInteractive).ok());
  EXPECT_EQ(admission.Admit(8, Priority::kInteractive).code(),
            StatusCode::kResourceExhausted);

  EXPECT_TRUE(admission.Admit(3, Priority::kBulk).ok());
  EXPECT_EQ(admission.Admit(4, Priority::kBulk).code(),
            StatusCode::kResourceExhausted);
}

TEST(AdmissionControllerTest, ShedsWhenEstimatedDelayExceedsSloBudget) {
  core::ServeConfig config;
  config.max_queue_depth = 1024;
  config.slo_p99_ms = 50.0;
  config.batch_deadline_ms = 5.0;  // Delay budget: 45 ms.
  AdmissionController admission(config);

  // No service-time estimate yet: the delay bound is inactive.
  EXPECT_TRUE(admission.Admit(100, Priority::kInteractive).ok());

  admission.ObserveBatch(/*batch_seconds=*/0.08, /*batch_size=*/8);
  EXPECT_DOUBLE_EQ(admission.EstimatedServiceSeconds(), 0.01);

  // 4 waiters * 10 ms = 40 ms < 45 ms budget -> admit.
  EXPECT_TRUE(admission.Admit(4, Priority::kInteractive).ok());
  // 5 waiters * 10 ms = 50 ms > 45 ms budget -> shed.
  EXPECT_EQ(admission.Admit(5, Priority::kInteractive).code(),
            StatusCode::kResourceExhausted);
  // Bulk is held to half the budget: 3 * 10 ms > 22.5 ms -> shed.
  EXPECT_EQ(admission.Admit(3, Priority::kBulk).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(admission.Admit(2, Priority::kBulk).ok());
}

TEST(AdmissionControllerTest, EmaConvergesTowardRecentServiceTime) {
  core::ServeConfig config;
  config.service_time_ema_alpha = 0.5;
  AdmissionController admission(config);
  admission.ObserveBatch(0.010, 1);  // Seeds at 10 ms.
  admission.ObserveBatch(0.020, 1);  // 0.5*20 + 0.5*10 = 15 ms.
  EXPECT_DOUBLE_EQ(admission.EstimatedServiceSeconds(), 0.015);
}

// ---------------------------------------------------------------------------
// ServeConfig

TEST(ServeConfigTest, ValidatesBounds) {
  core::ServeConfig config;
  EXPECT_TRUE(config.Validate().ok());

  core::ServeConfig bad = config;
  bad.max_batch_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.batch_deadline_ms = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.max_queue_depth = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.slo_p99_ms = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.service_time_ema_alpha = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ServeConfigTest, EffectiveQueueDelayDerivesFromSlo) {
  core::ServeConfig config;
  config.slo_p99_ms = 50.0;
  config.batch_deadline_ms = 5.0;
  config.max_queue_delay_ms = 0.0;
  EXPECT_DOUBLE_EQ(config.EffectiveQueueDelaySeconds(), 0.045);

  config.max_queue_delay_ms = 20.0;  // Explicit bound wins.
  EXPECT_DOUBLE_EQ(config.EffectiveQueueDelaySeconds(), 0.020);

  config.max_queue_delay_ms = 0.0;
  config.batch_deadline_ms = 80.0;  // Budget can never go negative.
  EXPECT_DOUBLE_EQ(config.EffectiveQueueDelaySeconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Scheduler

TEST(SchedulerTest, CompletesAllSubmittedRequests) {
  HandlerLog log;
  Scheduler scheduler(FastConfig(), EchoHandler(&log));

  std::vector<ResultFuture> futures;
  for (int i = 0; i < 10; ++i) {
    StatusOr<ResultFuture> submitted =
        scheduler.Submit(MakeObjective("r" + std::to_string(i)));
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(std::move(submitted).value());
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<Completion> completion = futures[i].get();
    ASSERT_TRUE(completion.ok()) << completion.status();
    EXPECT_EQ(completion->record.objective_id, "r" + std::to_string(i));
    EXPECT_GE(completion->latency_seconds, 0.0);
  }
  scheduler.Stop();

  ServeStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.admitted, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.batches, 3u);  // 10 requests, max batch 4.
}

TEST(SchedulerTest, MaxSizeTriggerClosesFullBatch) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 4;
  config.batch_deadline_ms = 2000.0;  // Deadline never fires in this test.
  HandlerLog log;
  Scheduler scheduler(config, EchoHandler(&log));

  std::vector<ResultFuture> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        scheduler.Submit(MakeObjective("m" + std::to_string(i))).value());
  }
  for (ResultFuture& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  ServeStats stats = scheduler.stats();
  EXPECT_GE(stats.closed_max_size, 1u);
  EXPECT_EQ(stats.closed_deadline, 0u);
}

TEST(SchedulerTest, DeadlineTriggerFlushesPartialBatch) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 8;
  config.batch_deadline_ms = 40.0;
  HandlerLog log;
  Scheduler scheduler(config, EchoHandler(&log));

  std::vector<ResultFuture> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        scheduler.Submit(MakeObjective("d" + std::to_string(i))).value());
  }
  for (ResultFuture& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  ServeStats stats = scheduler.stats();
  EXPECT_GE(stats.closed_deadline, 1u);
  EXPECT_EQ(stats.closed_max_size, 0u);  // Never saw 8 waiters.
  // Every request waited at least one batch-formation window, so measured
  // latency must reflect the deadline timer.
  std::vector<size_t> sizes = log.BatchSizes();
  ASSERT_FALSE(sizes.empty());
  EXPECT_LT(sizes.front(), 8u);
}

TEST(SchedulerTest, InteractiveRequestsScheduleBeforeEarlierBulk) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 1;  // One request per batch: total order.
  HandlerLog log;
  FirstCallGate gate;
  Scheduler scheduler(config, EchoHandler(&log, &gate));

  ResultFuture first =
      scheduler.Submit(MakeObjective("first"), Priority::kInteractive)
          .value();
  gate.AwaitEntered();  // Scheduler thread now held inside the handler.

  // Bulk arrives before interactive; dequeue must invert that.
  std::vector<ResultFuture> futures;
  futures.push_back(
      scheduler.Submit(MakeObjective("b0"), Priority::kBulk).value());
  futures.push_back(
      scheduler.Submit(MakeObjective("b1"), Priority::kBulk).value());
  futures.push_back(
      scheduler.Submit(MakeObjective("i0"), Priority::kInteractive).value());
  futures.push_back(
      scheduler.Submit(MakeObjective("i1"), Priority::kInteractive).value());

  gate.Open();
  EXPECT_TRUE(first.get().ok());
  for (ResultFuture& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ(log.Order(), (std::vector<std::string>{"first", "i0", "i1",
                                                   "b0", "b1"}));
}

TEST(SchedulerTest, ShedsWithResourceExhaustedWhenQueueIsFull) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 1;
  config.max_queue_depth = 2;
  HandlerLog log;
  FirstCallGate gate;
  Scheduler scheduler(config, EchoHandler(&log, &gate));

  ResultFuture in_flight = scheduler.Submit(MakeObjective("f")).value();
  gate.AwaitEntered();  // Queue is now empty but the service is busy.

  // Bulk sees half the depth bound (1): one admitted waiter sheds it.
  ResultFuture queued = scheduler.Submit(MakeObjective("q0")).value();
  StatusOr<ResultFuture> bulk =
      scheduler.Submit(MakeObjective("bulk"), Priority::kBulk);
  ASSERT_FALSE(bulk.ok());
  EXPECT_EQ(bulk.status().code(), StatusCode::kResourceExhausted);

  // Interactive fills to the bound, then sheds.
  ResultFuture queued2 = scheduler.Submit(MakeObjective("q1")).value();
  StatusOr<ResultFuture> shed = scheduler.Submit(MakeObjective("q2"));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  gate.Open();
  EXPECT_TRUE(in_flight.get().ok());
  EXPECT_TRUE(queued.get().ok());
  EXPECT_TRUE(queued2.get().ok());

  ServeStats stats = scheduler.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.admitted, 3u);
}

TEST(SchedulerTest, StopDrainsInFlightAndQueuedRequests) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 2;
  config.batch_deadline_ms = 1000.0;  // Partial flush must be the drain.
  HandlerLog log;
  FirstCallGate gate;
  Scheduler scheduler(config, EchoHandler(&log, &gate));

  std::vector<ResultFuture> futures;
  futures.push_back(scheduler.Submit(MakeObjective("s0")).value());
  futures.push_back(scheduler.Submit(MakeObjective("s1")).value());
  gate.AwaitEntered();  // First batch of two held in the handler.
  for (int i = 2; i < 7; ++i) {
    futures.push_back(
        scheduler.Submit(MakeObjective("s" + std::to_string(i))).value());
  }

  std::thread stopper([&scheduler] { scheduler.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.Open();
  stopper.join();

  // Every admitted request was completed before Stop() returned.
  for (ResultFuture& future : futures) {
    StatusOr<Completion> completion = future.get();
    EXPECT_TRUE(completion.ok()) << completion.status();
  }
  ServeStats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 7u);
  EXPECT_EQ(stats.completed, 7u);
  EXPECT_GE(stats.closed_drain, 1u);  // 5 queued = 2 + 2 + 1 partial.

  // The gate is closed for good.
  StatusOr<ResultFuture> late = scheduler.Submit(MakeObjective("late"));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(SchedulerTest, StopRacingSubmitNeverAbandonsAdmittedFutures) {
  // Regression: the scheduler loop used to read stop_ only after its
  // queue drain, so a Submit pushing in the window between the two could
  // be left in the queue when the loop exited — destroying the request
  // with its promise unfulfilled (future.get() then throws
  // broken_promise). Hammer the Stop/Submit race; every admitted future
  // must resolve.
  for (int round = 0; round < 50; ++round) {
    core::ServeConfig config = FastConfig();
    config.batch_deadline_ms = 0.1;
    Scheduler scheduler(config, EchoHandler(nullptr));

    std::vector<ResultFuture> admitted;
    std::thread producer([&scheduler, &admitted] {
      for (int i = 0;; ++i) {
        StatusOr<ResultFuture> submitted =
            scheduler.Submit(MakeObjective("r" + std::to_string(i)));
        if (!submitted.ok()) {
          if (submitted.status().code() ==
              StatusCode::kResourceExhausted) {
            continue;  // Shed under load; keep hammering.
          }
          EXPECT_EQ(submitted.status().code(),
                    StatusCode::kFailedPrecondition)
              << submitted.status();
          return;
        }
        admitted.push_back(std::move(submitted).value());
      }
    });
    // Stop while the producer is mid-stream, at a varying offset so the
    // race window is sampled at different queue states.
    std::this_thread::sleep_for(
        std::chrono::microseconds(50 * (round % 5)));
    scheduler.Stop();
    producer.join();

    for (ResultFuture& future : admitted) {
      StatusOr<Completion> completion = future.get();  // Must not throw.
      EXPECT_TRUE(completion.ok()) << completion.status();
    }
    EXPECT_EQ(scheduler.stats().completed, admitted.size());
  }
}

TEST(SchedulerTest, StopIsIdempotentAndDestructorIsClean) {
  Scheduler scheduler(FastConfig(), EchoHandler(nullptr));
  EXPECT_TRUE(scheduler.Submit(MakeObjective("x")).value().get().ok());
  scheduler.Stop();
  scheduler.Stop();
  // Destructor calls Stop() again.
}

TEST(SchedulerTest, HandlerExceptionFailsTheBatchNotTheService) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 1;
  std::atomic<int> calls{0};
  Scheduler scheduler(
      config, [&calls](const std::vector<const data::Objective*>& batch)
                  -> std::vector<data::DetailRecord> {
        if (calls.fetch_add(1) == 0) throw std::runtime_error("boom");
        std::vector<data::DetailRecord> records(batch.size());
        return records;
      });

  StatusOr<Completion> failed =
      scheduler.Submit(MakeObjective("a")).value().get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);

  // The scheduler thread survived and serves the next request.
  EXPECT_TRUE(scheduler.Submit(MakeObjective("b")).value().get().ok());
  ServeStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(SchedulerTest, FailedBatchesDoNotFeedTheServiceTimeEma) {
  // A fast-failing handler must not drag the service-time estimate toward
  // zero — that would disable delay-based shedding exactly while the
  // service is erroring. With no successful batch the estimate stays
  // unset; a later success seeds it.
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 1;
  std::atomic<int> calls{0};
  Scheduler scheduler(
      config, [&calls](const std::vector<const data::Objective*>& batch)
                  -> std::vector<data::DetailRecord> {
        if (calls.fetch_add(1) < 3) throw std::runtime_error("outage");
        // Measurable service time so the EMA seed is strictly positive.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::vector<data::DetailRecord>(batch.size());
      });

  for (int i = 0; i < 3; ++i) {
    StatusOr<Completion> failed =
        scheduler.Submit(MakeObjective("f" + std::to_string(i)))
            .value()
            .get();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(scheduler.admission().EstimatedServiceSeconds(), 0.0);
  }

  EXPECT_TRUE(scheduler.Submit(MakeObjective("ok")).value().get().ok());
  EXPECT_GT(scheduler.admission().EstimatedServiceSeconds(), 0.0);
}

TEST(SchedulerTest, ConcurrentProducersAreRaceFree) {
  core::ServeConfig config = FastConfig();
  config.max_batch_size = 8;
  config.batch_deadline_ms = 1.0;
  Scheduler scheduler(config, EchoHandler(nullptr));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Priority priority =
            (i % 3 == 0) ? Priority::kBulk : Priority::kInteractive;
        StatusOr<ResultFuture> submitted = scheduler.Submit(
            MakeObjective("t" + std::to_string(t) + "-" +
                          std::to_string(i)),
            priority);
        if (!submitted.ok()) {
          shed_count.fetch_add(1);
          continue;
        }
        if (submitted.value().get().ok()) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  scheduler.Stop();

  ServeStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(ok_count.load()));
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(shed_count.load()));
  EXPECT_EQ(stats.completed, stats.admitted);
}

// ---------------------------------------------------------------------------
// Workload

TEST(WorkloadTest, ExpandTemplateReplacesKnownNamesOnly) {
  Rng rng(7);
  std::map<std::string, std::vector<std::string>> pools{{"a", {"x"}}};
  EXPECT_EQ(ExpandTemplate("{a}-{b}-{a}", pools, rng), "x-{b}-x");
  EXPECT_EQ(ExpandTemplate("tail {unclosed", pools, rng),
            "tail {unclosed");
  EXPECT_EQ(ExpandTemplate("plain", pools, rng), "plain");
}

TEST(WorkloadTest, GenerateTraceIsDeterministicAndOrdered) {
  TrafficConfig config;
  config.rate_qps = 300.0;
  config.duration_s = 1.0;
  config.seed = 11;
  std::vector<TimedRequest> a = GenerateTrace(config);
  std::vector<TimedRequest> b = GenerateTrace(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 100u);

  double previous = -1.0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objective.text, b[i].objective.text);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_GT(a[i].arrival_s, previous);
    EXPECT_FALSE(a[i].objective.text.empty());
    previous = a[i].arrival_s;
  }
}

TEST(WorkloadTest, BurstEpisodesRaiseArrivalDensity) {
  TrafficConfig config;
  config.rate_qps = 200.0;
  config.duration_s = 4.0;
  config.seed = 5;
  config.burst_period_s = 1.0;
  config.burst_duration_s = 0.25;
  config.burst_multiplier = 8.0;
  std::vector<TimedRequest> trace = GenerateTrace(config);

  size_t in_burst = 0;
  for (const TimedRequest& request : trace) {
    double phase = std::fmod(request.arrival_s, config.burst_period_s);
    if (phase < config.burst_duration_s) ++in_burst;
  }
  size_t outside = trace.size() - in_burst;
  // Burst windows cover 1/4 of the time at 8x rate: they should hold well
  // over twice the arrivals of the remaining 3/4.
  double burst_rate = static_cast<double>(in_burst) / 1.0;
  double base_rate = static_cast<double>(outside) / 3.0;
  EXPECT_GT(burst_rate, 2.0 * base_rate);
}

TEST(WorkloadTest, SizeMixFollowsConfiguredWeights) {
  TrafficConfig config;
  config.rate_qps = 500.0;
  config.duration_s = 2.0;
  config.short_weight = 1.0;
  config.medium_weight = 0.0;
  config.long_weight = 0.0;
  for (const TimedRequest& request : GenerateTrace(config)) {
    EXPECT_EQ(request.size_class, SizeClass::kShort);
  }

  config.short_weight = 0.0;
  config.long_weight = 1.0;
  std::vector<TimedRequest> long_trace = GenerateTrace(config);
  for (const TimedRequest& request : long_trace) {
    EXPECT_EQ(request.size_class, SizeClass::kLong);
    // Long texts carry boilerplate around the objective clause.
    EXPECT_GT(request.objective.text.size(), 80u);
  }
}

TEST(WorkloadTest, LatencyPercentileUsesSortedRanks) {
  ReplayResult result;
  result.latencies_s = {0.001, 0.002, 0.003, 0.004, 0.100};
  EXPECT_DOUBLE_EQ(result.LatencyPercentile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(result.LatencyPercentile(0.5), 0.003);
  EXPECT_DOUBLE_EQ(result.LatencyPercentile(0.99), 0.100);
  EXPECT_DOUBLE_EQ(result.LatencyPercentile(1.0), 0.100);
  EXPECT_DOUBLE_EQ(ReplayResult().LatencyPercentile(0.5), 0.0);
}

TEST(WorkloadTest, ReplayTraceDrivesSchedulerOpenLoop) {
  core::ServeConfig config = FastConfig();
  Scheduler scheduler(config, EchoHandler(nullptr));

  TrafficConfig traffic;
  traffic.rate_qps = 400.0;
  traffic.duration_s = 0.25;
  std::vector<TimedRequest> trace = GenerateTrace(traffic);
  ReplayResult result = ReplayTrace(scheduler, trace);
  scheduler.Stop();

  EXPECT_EQ(result.submitted, trace.size());
  EXPECT_EQ(result.admitted + result.shed, result.submitted);
  EXPECT_EQ(result.latencies_s.size(), result.admitted - result.failed);
  EXPECT_EQ(result.interactive_latencies_s.size() +
                result.bulk_latencies_s.size(),
            result.latencies_s.size());
  EXPECT_GT(result.completed_qps, 0.0);
  EXPECT_GE(result.LatencyPercentile(0.99),
            result.LatencyPercentile(0.5));
}

// ---------------------------------------------------------------------------
// End-to-end: ExtractionService vs direct extraction

TEST(ExtractionServiceTest, ServedRecordsMatchDirectExtraction) {
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 300;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(corpus_config);

  core::ExtractorConfig extractor_config;
  extractor_config.kinds = data::SustainabilityGoalKinds();
  extractor_config.bpe_merges = 1200;
  extractor_config.epochs = 4;
  core::DetailExtractor extractor(extractor_config);
  ASSERT_TRUE(extractor.Train(corpus).ok());

  core::ServeConfig serve_config;
  serve_config.max_batch_size = 4;
  serve_config.batch_deadline_ms = 5.0;
  serve_config.num_threads = 2;
  ExtractionService service(&extractor, serve_config);

  std::vector<ResultFuture> futures;
  for (size_t i = 0; i < 12; ++i) {
    Priority priority =
        (i % 2 == 0) ? Priority::kInteractive : Priority::kBulk;
    StatusOr<ResultFuture> submitted =
        service.Submit(corpus[i], priority);
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(std::move(submitted).value());
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<Completion> completion = futures[i].get();
    ASSERT_TRUE(completion.ok()) << completion.status();
    data::DetailRecord direct = extractor.Extract(corpus[i]);
    EXPECT_EQ(completion->record.objective_id, direct.objective_id);
    EXPECT_EQ(completion->record.fields, direct.fields) << corpus[i].text;
  }
  service.Stop();
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
}  // namespace goalex::serve
