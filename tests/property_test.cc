// Property-based tests: invariants checked over randomized inputs drawn
// from the corpus generators, swept across seeds with parameterized gtest.
#include <gtest/gtest.h>

#include "bpe/bpe_tokenizer.h"
#include "common/rng.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "labels/iob.h"
#include "segment/segmenter.h"
#include "text/normalizer.h"
#include "text/word_tokenizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

std::vector<data::Objective> RandomObjectives(uint64_t seed, size_t count) {
  data::SustainabilityGoalsConfig config;
  config.seed = seed;
  config.objective_count = count;
  return data::GenerateSustainabilityGoals(config);
}

// Invariant: every weak-labeled span, read back out of the text via token
// offsets, reproduces the annotation value (up to whitespace), for every
// matched annotation.
TEST_P(SeededProperty, WeakLabelSpansReconstructAnnotationValues) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  weaksup::WeakLabeler labeler(&catalog);
  for (const data::Objective& objective :
       RandomObjectives(GetParam(), 60)) {
    weaksup::WeakLabeling labeling = labeler.Label(objective);
    std::vector<labels::Span> spans =
        catalog.DecodeSpans(labeling.label_ids);
    for (const labels::Span& span : spans) {
      const std::string& kind =
          catalog.kinds()[static_cast<size_t>(span.kind)];
      auto annotated = objective.AnnotationValue(kind);
      ASSERT_TRUE(annotated.has_value())
          << "span of kind " << kind << " without annotation in: "
          << objective.text;
      size_t begin = labeling.tokens[span.begin].begin;
      size_t end = labeling.tokens[span.end - 1].end;
      std::string reconstructed = objective.text.substr(begin, end - begin);
      EXPECT_EQ(eval::NormalizeFieldValue(reconstructed),
                eval::NormalizeFieldValue(*annotated))
          << objective.text;
    }
  }
}

// Invariant: matched + unmatched == non-empty annotations with schema
// kinds, per objective.
TEST_P(SeededProperty, WeakLabelAccounting) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  weaksup::WeakLabeler labeler(&catalog);
  for (const data::Objective& objective :
       RandomObjectives(GetParam() + 100, 60)) {
    weaksup::WeakLabeling labeling = labeler.Label(objective);
    size_t matched_spans = catalog.DecodeSpans(labeling.label_ids).size();
    size_t non_empty = 0;
    for (const data::Annotation& a : objective.annotations) {
      if (!a.value.empty()) ++non_empty;
    }
    // Spans can differ from matched annotations when values overlap in the
    // text (later annotations overwrite, possibly splitting a span), but
    // the count is bounded by twice the annotation count.
    EXPECT_LE(matched_spans + labeling.unmatched_kinds.size(),
              2 * non_empty);
    EXPECT_LE(labeling.unmatched_kinds.size(), non_empty);
  }
}

// Invariant: IOB decode(encode(spans)) is the identity for non-adjacent
// same-kind spans produced by DecodeSpans itself (idempotence).
TEST_P(SeededProperty, IobDecodeEncodeIdempotent) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    size_t length = 1 + rng.NextIndex(30);
    std::vector<labels::LabelId> ids(length);
    for (labels::LabelId& id : ids) {
      id = static_cast<labels::LabelId>(
          rng.NextIndex(static_cast<size_t>(catalog.label_count())));
    }
    std::vector<labels::Span> first = catalog.DecodeSpans(ids);
    std::vector<labels::LabelId> reencoded =
        catalog.EncodeSpans(length, first);
    EXPECT_EQ(catalog.DecodeSpans(reencoded), first);
  }
}

// Invariant: BPE subwords concatenate exactly to their source word, and
// every non-<unk> id round-trips through the vocabulary.
TEST_P(SeededProperty, BpeConcatenationAndVocabRoundTrip) {
  std::vector<std::string> corpus;
  for (const data::Objective& o : RandomObjectives(GetParam(), 80)) {
    corpus.push_back(o.text);
  }
  bpe::BpeModel model = bpe::BpeModel::Train(corpus, 800);
  text::WordTokenizer tokenizer;
  for (size_t i = 0; i < 10 && i < corpus.size(); ++i) {
    std::vector<std::string> words =
        tokenizer.TokenizeToStrings(corpus[i]);
    std::vector<bpe::Subword> subwords = model.EncodeWords(words);
    std::string current;
    size_t word_index = 0;
    for (const bpe::Subword& sw : subwords) {
      if (sw.is_word_start && !current.empty()) {
        EXPECT_EQ(current, words[word_index]);
        ++word_index;
        current.clear();
      }
      current += sw.text;
      if (sw.id != bpe::Vocab::kUnkId) {
        EXPECT_EQ(model.vocab().GetToken(sw.id), sw.text);
      }
    }
    if (!current.empty()) EXPECT_EQ(current, words[word_index]);
  }
}

// Invariant: normalization is idempotent.
TEST_P(SeededProperty, NormalizeIdempotent) {
  for (const data::Objective& o : RandomObjectives(GetParam() + 7, 40)) {
    std::string once = text::Normalize(o.text);
    EXPECT_EQ(text::Normalize(once), once);
  }
}

// Invariant: word-token offsets tile the text (non-overlapping, ordered,
// each slice reproduces its token).
TEST_P(SeededProperty, WordTokenOffsetsAreConsistent) {
  text::WordTokenizer tokenizer;
  for (const data::Objective& o : RandomObjectives(GetParam() + 13, 40)) {
    size_t previous_end = 0;
    for (const text::Token& t : tokenizer.Tokenize(o.text)) {
      EXPECT_GE(t.begin, previous_end);
      EXPECT_LT(t.begin, t.end);
      EXPECT_EQ(o.text.substr(t.begin, t.end - t.begin), t.text);
      previous_end = t.end;
    }
  }
}

// Invariant: segmentation covers orderly, non-overlapping slices of the
// objective, and single-target objectives come back unchanged.
TEST_P(SeededProperty, SegmenterSlicesAreOrderedAndExact) {
  segment::ObjectiveSegmenter segmenter;
  for (const data::Objective& o : RandomObjectives(GetParam() + 19, 40)) {
    size_t previous_end = 0;
    for (const segment::Segment& s : segmenter.Split(o.text)) {
      EXPECT_GE(s.begin, previous_end);
      EXPECT_LE(s.end, o.text.size());
      EXPECT_EQ(o.text.substr(s.begin, s.end - s.begin), s.text);
      previous_end = s.end;
    }
  }
}

// Invariant: the evaluator's counts satisfy tp + fn == number of annotated
// fields when predictions are exactly the gold annotations.
TEST_P(SeededProperty, PerfectPredictionsScorePerfectRecall) {
  std::vector<data::Objective> objectives =
      RandomObjectives(GetParam() + 23, 50);
  eval::FieldEvaluator evaluator(data::SustainabilityGoalKinds());
  for (const data::Objective& o : objectives) {
    data::DetailRecord record;
    for (const data::Annotation& a : o.annotations) {
      if (!a.value.empty()) record.fields[a.kind] = a.value;
    }
    evaluator.Add(o, record);
  }
  eval::Prf prf = evaluator.Overall();
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
  EXPECT_EQ(evaluator.Total().fp, 0);
  EXPECT_EQ(evaluator.Total().fn, 0);
}

}  // namespace
}  // namespace goalex
