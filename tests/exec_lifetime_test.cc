// Buffer-lifetime pass comparison: on a fixed training plus
// batched-inference workload, the graph plan (ScratchPool leases released
// at each node's completion, capacity bounded by the lifetime pass) must
// hold no more peak scratch bytes than the pre-refactor eager plan (one
// allocator pinned per slot for the run's whole lifetime).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/graph.h"
#include "exec/lifetime.h"
#include "nn/trainer.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace goalex::exec {
namespace {

tensor::Var ScalarParam(float value) {
  return tensor::Leaf(tensor::Tensor::FromValues({1}, {value}),
                      /*requires_grad=*/true);
}

struct ToySetup {
  tensor::Var master;
  std::vector<tensor::Var> replicas;
  std::unique_ptr<nn::DataParallelTrainer> trainer;
};

ToySetup MakeToy(nn::ParallelTrainerOptions options) {
  ToySetup toy;
  toy.master = ScalarParam(0.0f);
  std::vector<std::vector<tensor::Var>> replica_params;
  for (int32_t s = 0;
       s < nn::DataParallelTrainer::SlotCount(options.batch_size); ++s) {
    toy.replicas.push_back(ScalarParam(0.0f));
    replica_params.push_back({toy.replicas.back()});
  }
  toy.trainer = std::make_unique<nn::DataParallelTrainer>(
      std::vector<tensor::Var>{toy.master}, std::move(replica_params),
      options);
  return toy;
}

// The fixed training workload: 32 examples, batch 16 (16 slots), two
// epochs, two worker threads. Returns {peak scratch bytes, final weight}.
struct TrainOutcome {
  size_t peak_bytes = 0;
  float final_weight = 0.0f;
  uint64_t reuse_count = 0;
};

TrainOutcome TrainWorkload(bool eager_scratch) {
  nn::ParallelTrainerOptions options;
  options.batch_size = 16;
  options.num_threads = 2;
  options.eager_scratch = eager_scratch;
  ToySetup toy = MakeToy(options);
  std::vector<size_t> order(32);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int32_t epoch = 1; epoch <= 2; ++epoch) {
    toy.trainer->RunEpoch(order, epoch, [&](size_t slot, size_t example,
                                            Rng&) {
      // A few chained ops so each example builds several scratch tensors.
      tensor::Var x = tensor::Scale(toy.replicas[slot],
                                    0.5f + static_cast<float>(example % 4));
      return tensor::Scale(x, 2.0f);
    });
  }
  TrainOutcome outcome;
  outcome.peak_bytes = toy.trainer->scratch_peak_bytes();
  outcome.final_weight = toy.master->value().at(0);
  outcome.reuse_count = toy.trainer->scratch_reuse_count();
  return outcome;
}

TEST(LifetimePassTest, TrainingGraphPlanPeaksAtOrBelowEagerPlan) {
  const TrainOutcome eager = TrainWorkload(/*eager_scratch=*/true);
  const TrainOutcome graph = TrainWorkload(/*eager_scratch=*/false);

  // Identical math on both plans (zero-filled recycled scratch), and the
  // leased plan touches at most min(workers, slots) = 2 allocators where
  // the eager plan pins all 16.
  EXPECT_EQ(graph.final_weight, eager.final_weight);
  ASSERT_GT(eager.peak_bytes, 0u);
  ASSERT_GT(graph.peak_bytes, 0u);
  EXPECT_LE(graph.peak_bytes, eager.peak_bytes);
  // Leases still recycle storage across examples and batches.
  EXPECT_GT(graph.reuse_count, 0u);
}

// The batched-inference half of the workload: 16 per-item "inference"
// nodes, each allocating the same per-item scratch, on two workers. The
// graph plan leases min(workers, items) allocators; the eager plan pins
// one per item for the whole batch (the pre-refactor ExtractAll shape).
TEST(LifetimePassTest, BatchedInferenceGraphPlanPeaksAtOrBelowEagerPlan) {
  constexpr int kItems = 16;
  constexpr size_t kFloatsPerItem = 4096;

  auto run_item = [] {
    std::shared_ptr<std::vector<float>> block =
        tensor::AllocateTensorStorage(kFloatsPerItem);
    (*block)[0] = 1.0f;
  };

  // Eager plan: a pinned allocator per item, all resident until the batch
  // ends.
  size_t eager_peak = 0;
  {
    std::vector<std::unique_ptr<tensor::ScratchAllocator>> pinned;
    for (int i = 0; i < kItems; ++i) {
      pinned.push_back(std::make_unique<tensor::ScratchAllocator>());
    }
    runtime::ThreadPool pool(2);
    Executor executor(&pool);
    Graph graph;
    for (int i = 0; i < kItems; ++i) {
      tensor::ScratchAllocator* allocator = pinned[static_cast<size_t>(i)].get();
      graph.Add([allocator, &run_item] {
        tensor::ScratchScope scope(allocator);
        run_item();
      });
    }
    ASSERT_TRUE(executor.Run(graph).ok());
    for (const auto& allocator : pinned) eager_peak += allocator->peak_bytes();
  }

  // Graph plan: scratch-tagged nodes leasing from the executor's pool,
  // each lease released at its node's completion.
  size_t graph_peak = 0;
  {
    runtime::ThreadPool pool(2);
    ScratchPool scratch;
    Executor executor(&pool, &scratch);
    Graph graph;
    for (int i = 0; i < kItems; ++i) {
      graph.Add([&run_item] { run_item(); }, {},
                NodeOptions{/*uses_scratch=*/true});
    }
    ASSERT_TRUE(executor.Run(graph).ok());
    graph_peak = scratch.peak_bytes();
    // The lifetime pass capped the resident set at the worker count.
    EXPECT_LE(scratch.resident_allocators(), 2);
  }

  ASSERT_GT(eager_peak, 0u);
  ASSERT_GT(graph_peak, 0u);
  EXPECT_LE(graph_peak, eager_peak);
  // The bound is not just "no worse": 2 leases vs 16 pinned allocators.
  EXPECT_LE(graph_peak * 4, eager_peak);
}

}  // namespace
}  // namespace goalex::exec
