// Tests of packed-batch inference (src/infer/packed.h, DESIGN.md §14).
// Three layers of guarantees are pinned here:
//  - PackByLength is a deterministic, lossless partition: every non-empty
//    sequence lands in exactly one chunk, capacity and truncation bounds
//    hold, and equal inputs always produce equal chunks.
//  - The packed float path is *bit-identical* per sequence to the
//    per-example engine — full logits, not just argmax — across sequence
//    lengths, including the degenerate shapes (batch of one, single-token
//    sequences, all-equal lengths, max_seq_len, truncation).
//  - The int8 path is tolerance-pinned: logits stay close to float and the
//    argmax labels agree on almost every token (the end-to-end F1 budget
//    is gated separately by bench_micro_infer --smoke).
// Plus extractor-level parity: ExtractAll on the packed path must produce
// byte-identical records to serial per-objective Extract() calls.
#include "infer/packed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/extractor.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "infer/engine.h"
#include "nn/transformer.h"
#include "tensor/view.h"

namespace goalex {
namespace {

using infer::PackByLength;
using infer::PackedChunk;
using infer::PackedEngine;
using infer::PackedEngineOptions;

std::vector<int32_t> RandomIds(size_t len, int32_t vocab, Rng& rng) {
  std::vector<int32_t> ids(len);
  for (size_t i = 0; i < len; ++i) ids[i] = rng.NextInt(0, vocab - 1);
  return ids;
}

std::vector<std::vector<int32_t>> RandomBatch(
    const std::vector<size_t>& lengths, int32_t vocab, Rng& rng) {
  std::vector<std::vector<int32_t>> batch;
  batch.reserve(lengths.size());
  for (size_t len : lengths) batch.push_back(RandomIds(len, vocab, rng));
  return batch;
}

std::vector<const std::vector<int32_t>*> Ptrs(
    const std::vector<std::vector<int32_t>>& batch) {
  std::vector<const std::vector<int32_t>*> ptrs;
  ptrs.reserve(batch.size());
  for (const std::vector<int32_t>& seq : batch) ptrs.push_back(&seq);
  return ptrs;
}

/// Small architecture exercising multi-head attention and stacked layers.
nn::TransformerConfig SmallArch() {
  nn::TransformerConfig config;
  config.vocab_size = 120;
  config.max_seq_len = 24;
  config.d_model = 16;
  config.heads = 4;
  config.layers = 2;
  config.ffn_dim = 32;
  return config;
}

// ---------------------------------------------------------------------------
// PackByLength

TEST(PackByLengthTest, EmptyBatchYieldsNoChunks) {
  std::vector<const std::vector<int32_t>*> none;
  EXPECT_TRUE(PackByLength(none, 16, 64).empty());
}

TEST(PackByLengthTest, EmptySequencesAreSkipped) {
  std::vector<std::vector<int32_t>> batch = {{}, {1, 2, 3}, {}, {4}};
  std::vector<PackedChunk> chunks = PackByLength(Ptrs(batch), 16, 64);
  ASSERT_EQ(chunks.size(), 1u);
  // Only the two non-empty sequences are packed; the empty ones simply get
  // no labels, like the per-example path.
  EXPECT_EQ(chunks[0].size(), 2);
  EXPECT_EQ(chunks[0].tokens(), 4);
  std::vector<size_t> members = chunks[0].sequence;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<size_t>{1, 3}));

  std::vector<std::vector<int32_t>> all_empty = {{}, {}};
  EXPECT_TRUE(PackByLength(Ptrs(all_empty), 16, 64).empty());
}

TEST(PackByLengthTest, BatchOfOne) {
  std::vector<std::vector<int32_t>> batch = {{7, 8, 9}};
  std::vector<PackedChunk> chunks = PackByLength(Ptrs(batch), 16, 64);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size(), 1);
  EXPECT_EQ(chunks[0].sequence[0], 0u);
  EXPECT_EQ(chunks[0].ids, batch[0]);
  EXPECT_EQ(chunks[0].offsets, (std::vector<int64_t>{0, 3}));
}

TEST(PackByLengthTest, EverySequenceOnceAndCapacityHolds) {
  Rng rng(11);
  std::vector<size_t> lengths;
  for (int i = 0; i < 200; ++i) {
    lengths.push_back(static_cast<size_t>(rng.NextInt(1, 40)));
  }
  std::vector<std::vector<int32_t>> batch = RandomBatch(lengths, 100, rng);
  const int64_t max_seq_len = 32;
  const int64_t chunk_tokens = 96;
  std::vector<PackedChunk> chunks =
      PackByLength(Ptrs(batch), max_seq_len, chunk_tokens);

  std::vector<int> seen(batch.size(), 0);
  for (const PackedChunk& chunk : chunks) {
    ASSERT_EQ(chunk.offsets.size(), static_cast<size_t>(chunk.size()) + 1);
    EXPECT_EQ(chunk.offsets.front(), 0);
    EXPECT_EQ(chunk.offsets.back(), chunk.tokens());
    EXPECT_LE(chunk.tokens(), chunk_tokens);
    for (int64_t s = 0; s < chunk.size(); ++s) {
      const size_t caller = chunk.sequence[static_cast<size_t>(s)];
      ASSERT_LT(caller, batch.size());
      ++seen[caller];
      const int64_t t = chunk.offsets[s + 1] - chunk.offsets[s];
      const int64_t want = std::min<int64_t>(
          static_cast<int64_t>(batch[caller].size()), max_seq_len);
      EXPECT_EQ(t, want);
      for (int64_t p = 0; p < t; ++p) {
        EXPECT_EQ(chunk.ids[static_cast<size_t>(chunk.offsets[s] + p)],
                  batch[caller][static_cast<size_t>(p)]);
      }
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(PackByLengthTest, OversizeSequenceGetsItsOwnChunk) {
  Rng rng(5);
  std::vector<std::vector<int32_t>> batch =
      RandomBatch({size_t{20}, size_t{3}, size_t{3}}, 50, rng);
  // chunk_tokens is smaller than the first sequence: it must still be
  // admitted, alone, rather than rejected.
  std::vector<PackedChunk> chunks = PackByLength(Ptrs(batch), 32, 8);
  bool found_oversize = false;
  for (const PackedChunk& chunk : chunks) {
    if (chunk.size() == 1 && chunk.sequence[0] == 0) {
      EXPECT_EQ(chunk.tokens(), 20);
      found_oversize = true;
    } else {
      EXPECT_LE(chunk.tokens(), 8);
    }
  }
  EXPECT_TRUE(found_oversize);
}

TEST(PackByLengthTest, EqualLengthsPreserveSubmissionOrder) {
  Rng rng(7);
  std::vector<std::vector<int32_t>> batch =
      RandomBatch(std::vector<size_t>(10, 4), 50, rng);
  std::vector<PackedChunk> chunks = PackByLength(Ptrs(batch), 16, 1024);
  ASSERT_EQ(chunks.size(), 1u);
  // Stable sort on equal lengths: submission order survives.
  for (size_t s = 0; s < 10; ++s) EXPECT_EQ(chunks[0].sequence[s], s);
}

TEST(PackByLengthTest, DeterministicAcrossCalls) {
  Rng rng(23);
  std::vector<size_t> lengths;
  for (int i = 0; i < 64; ++i) {
    lengths.push_back(static_cast<size_t>(rng.NextInt(1, 30)));
  }
  std::vector<std::vector<int32_t>> batch = RandomBatch(lengths, 80, rng);
  std::vector<PackedChunk> a = PackByLength(Ptrs(batch), 24, 100);
  std::vector<PackedChunk> b = PackByLength(Ptrs(batch), 24, 100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].ids, b[c].ids);
    EXPECT_EQ(a[c].offsets, b[c].offsets);
    EXPECT_EQ(a[c].sequence, b[c].sequence);
  }
}

// ---------------------------------------------------------------------------
// Packed float path: bit-identical to the per-example engine.

/// Asserts PredictBatch matches per-example PredictTokens and the packed
/// logits match per-example Execute float-for-float (==, not NEAR).
void ExpectPackedBitIdentical(const nn::TokenClassifier& model,
                              const std::vector<std::vector<int32_t>>& batch,
                              int64_t chunk_tokens) {
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);
  PackedEngineOptions options;
  options.chunk_tokens = chunk_tokens;
  PackedEngine packed(model, options);
  const int64_t max_seq_len = packed.max_seq_len();

  // Labels.
  std::vector<std::vector<int32_t>> labels = packed.PredictBatch(Ptrs(batch));
  ASSERT_EQ(labels.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].empty()) {
      EXPECT_TRUE(labels[i].empty());
      continue;
    }
    EXPECT_EQ(labels[i], engine.PredictTokens(batch[i])) << "sequence " << i;
  }

  // Full logits, chunk by chunk.
  std::unique_ptr<infer::ExecutionContext> ctx = engine.NewContext();
  std::vector<PackedChunk> chunks =
      PackByLength(Ptrs(batch), max_seq_len, chunk_tokens);
  for (const PackedChunk& chunk : chunks) {
    PackedEngine::ChunkLogits logits = packed.ForwardChunk(chunk);
    ASSERT_EQ(logits.cols, packed.logit_cols());
    for (int64_t s = 0; s < chunk.size(); ++s) {
      const size_t caller = chunk.sequence[static_cast<size_t>(s)];
      std::vector<int32_t> truncated(
          batch[caller].begin(),
          batch[caller].begin() +
              std::min<int64_t>(
                  static_cast<int64_t>(batch[caller].size()), max_seq_len));
      tensor::TensorView ref = engine.Execute(truncated, *ctx);
      const int64_t t = chunk.offsets[s + 1] - chunk.offsets[s];
      ASSERT_EQ(ref.rows(), t);
      for (int64_t p = 0; p < t; ++p) {
        const float* got =
            logits.data + (chunk.offsets[s] + p) * logits.cols;
        for (int64_t j = 0; j < packed.num_labels(); ++j) {
          ASSERT_EQ(got[j], ref.at(p, j))
              << "sequence " << caller << " token " << p << " label " << j;
        }
        // Padded columns are exactly zero by construction.
        for (int64_t j = packed.num_labels(); j < logits.cols; ++j) {
          ASSERT_EQ(got[j], 0.0f);
        }
      }
    }
  }
}

TEST(PackedEngineTest, FloatBitIdenticalAcrossSeedsAndLengths) {
  nn::TransformerConfig config = SmallArch();
  for (uint64_t seed : {1u, 17u}) {
    Rng init(seed);
    nn::TokenClassifier model(config, /*num_labels=*/11, init);
    Rng data_rng(seed + 1);
    // A spread of lengths including max_seq_len and one past it
    // (truncation parity with Engine::Execute).
    std::vector<size_t> lengths = {1, 2, 3, 5, 7, 24, 9, 1, 16, 24, 30, 12};
    std::vector<std::vector<int32_t>> batch =
        RandomBatch(lengths, config.vocab_size, data_rng);
    ExpectPackedBitIdentical(model, batch, /*chunk_tokens=*/48);
  }
}

TEST(PackedEngineTest, DegenerateBatchShapes) {
  nn::TransformerConfig config = SmallArch();
  Rng init(3);
  nn::TokenClassifier model(config, /*num_labels=*/7, init);
  Rng data_rng(4);

  // Empty batch.
  PackedEngine packed(model, PackedEngineOptions{});
  std::vector<const std::vector<int32_t>*> none;
  EXPECT_TRUE(packed.PredictBatch(none).empty());

  // Batch of one.
  ExpectPackedBitIdentical(
      model, RandomBatch({size_t{9}}, config.vocab_size, data_rng), 64);
  // All single-token sequences.
  ExpectPackedBitIdentical(
      model, RandomBatch(std::vector<size_t>(17, 1), config.vocab_size,
                         data_rng),
      16);
  // All-equal lengths.
  ExpectPackedBitIdentical(
      model, RandomBatch(std::vector<size_t>(12, 8), config.vocab_size,
                         data_rng),
      32);
  // Everything at max_seq_len.
  ExpectPackedBitIdentical(
      model,
      RandomBatch(std::vector<size_t>(
                      5, static_cast<size_t>(config.max_seq_len)),
                  config.vocab_size, data_rng),
      48);
  // Batch with empty sequences interleaved.
  std::vector<std::vector<int32_t>> with_empty =
      RandomBatch({size_t{4}, size_t{0}, size_t{6}, size_t{0}},
                  config.vocab_size, data_rng);
  ExpectPackedBitIdentical(model, with_empty, 64);
}

// ---------------------------------------------------------------------------
// int8 path: tolerance-pinned against float.

TEST(PackedEngineTest, Int8LogitsCloseAndLabelsMostlyAgree) {
  nn::TransformerConfig config = SmallArch();
  Rng init(42);
  nn::TokenClassifier model(config, /*num_labels=*/11, init);
  PackedEngine packed_float(model, PackedEngineOptions{});
  PackedEngineOptions int8_options;
  int8_options.quantize_int8 = true;
  PackedEngine packed_int8(model, int8_options);

  Rng data_rng(43);
  std::vector<size_t> lengths;
  for (int i = 0; i < 64; ++i) {
    lengths.push_back(static_cast<size_t>(data_rng.NextInt(1, 24)));
  }
  std::vector<std::vector<int32_t>> batch =
      RandomBatch(lengths, config.vocab_size, data_rng);
  std::vector<PackedChunk> chunks =
      PackByLength(Ptrs(batch), packed_float.max_seq_len(),
                   packed_float.chunk_tokens());

  float max_diff = 0.0f;
  float max_abs_logit = 0.0f;
  int64_t tokens = 0;
  int64_t agree = 0;
  for (const PackedChunk& chunk : chunks) {
    PackedEngine::ChunkLogits f = packed_float.ForwardChunk(chunk);
    PackedEngine::ChunkLogits q = packed_int8.ForwardChunk(chunk);
    ASSERT_EQ(f.cols, q.cols);
    for (int64_t p = 0; p < chunk.tokens(); ++p) {
      const float* frow = f.data + p * f.cols;
      const float* qrow = q.data + p * q.cols;
      int64_t fbest = 0;
      int64_t qbest = 0;
      for (int64_t j = 0; j < packed_float.num_labels(); ++j) {
        max_diff = std::max(max_diff, std::fabs(frow[j] - qrow[j]));
        max_abs_logit = std::max(max_abs_logit, std::fabs(frow[j]));
        if (frow[j] > frow[fbest]) fbest = j;
        if (qrow[j] > qrow[qbest]) qbest = j;
      }
      ++tokens;
      if (fbest == qbest) ++agree;
    }
  }
  ASSERT_GT(tokens, 0);
  // Per-output-channel int8 with int32 accumulation keeps the logit error
  // a small fraction of the logit scale; the end-to-end F1 budget (0.5
  // points) is gated by bench_micro_infer --smoke on a trained model.
  EXPECT_LT(max_diff, 0.05f * (1.0f + max_abs_logit));
  EXPECT_GE(static_cast<double>(agree), 0.95 * static_cast<double>(tokens));
}

// ---------------------------------------------------------------------------
// Extractor-level parity: the packed ExtractAll path emits byte-identical
// records to serial per-objective Extract() calls (which run the
// per-example engine), for every thread count.

TEST(PackedExtractorTest, PackedExtractAllMatchesSerialExtract) {
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 240;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(corpus_config);
  data::Split split = data::TrainTestSplit(corpus, 0.25, 3);

  core::ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  config.bpe_merges = 1200;
  config.epochs = 3;
  ASSERT_TRUE(config.packed_inference);  // Default-on.
  core::DetailExtractor extractor(config);
  ASSERT_TRUE(extractor.Train(split.train).ok());

  std::vector<data::DetailRecord> expected;
  expected.reserve(split.test.size());
  for (const data::Objective& o : split.test) {
    expected.push_back(extractor.Extract(o));
  }

  for (int32_t threads : {1, 4}) {
    runtime::Stats stats;
    std::vector<data::DetailRecord> got =
        extractor.ExtractAll(split.test, threads, &stats);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].objective_id, expected[i].objective_id);
      EXPECT_EQ(got[i].objective_text, expected[i].objective_text);
      EXPECT_EQ(got[i].fields, expected[i].fields) << "objective " << i;
    }
    EXPECT_EQ(stats.items, split.test.size());
    EXPECT_GT(stats.seconds, 0.0);
  }

  // ExtractBatch with a null pool is the same computation.
  std::vector<const data::Objective*> ptrs;
  for (const data::Objective& o : split.test) ptrs.push_back(&o);
  std::vector<data::DetailRecord> batch =
      extractor.ExtractBatch(ptrs, /*pool=*/nullptr);
  ASSERT_EQ(batch.size(), expected.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].fields, expected[i].fields);
  }
}

}  // namespace
}  // namespace goalex
