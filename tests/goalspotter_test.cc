// Tests of the GoalSpotter detection substrate and the full deployed
// pipeline (detection -> extraction -> structured database).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/database.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "data/report.h"
#include "goalspotter/detector.h"
#include "goalspotter/pipeline.h"

namespace goalex::goalspotter {
namespace {

std::vector<LabeledBlock> DetectorTrainingSet(size_t objectives,
                                              size_t noise, uint64_t seed) {
  data::SustainabilityGoalsConfig config;
  config.objective_count = objectives;
  config.seed = seed;
  std::vector<LabeledBlock> blocks;
  for (const data::Objective& o :
       data::GenerateSustainabilityGoals(config)) {
    blocks.push_back(LabeledBlock{o.text, true});
  }
  Rng rng(seed + 1);
  for (size_t i = 0; i < noise; ++i) {
    blocks.push_back(LabeledBlock{data::GenerateNoiseSentence(rng), false});
  }
  return blocks;
}

TEST(DetectorTest, SeparatesObjectivesFromNoise) {
  ObjectiveDetector detector;
  detector.Train(DetectorTrainingSet(250, 250, 5), DetectorOptions());

  // Held-out objectives and noise.
  data::SustainabilityGoalsConfig config;
  config.objective_count = 50;
  config.seed = 999;
  int correct = 0, total = 0;
  for (const data::Objective& o :
       data::GenerateSustainabilityGoals(config)) {
    correct += detector.IsObjective(o.text) ? 1 : 0;
    ++total;
  }
  Rng rng(1234);
  for (int i = 0; i < 50; ++i) {
    correct += detector.IsObjective(data::GenerateNoiseSentence(rng)) ? 0 : 1;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(TransformerDetectorTest, EngineAndAutogradPredictionsIdentical) {
  // Two detectors with identical training (same seeds, same data), one
  // predicting via the compiled inference engine and one via the autograd
  // evaluation path: every prediction must match exactly.
  std::vector<LabeledBlock> blocks = DetectorTrainingSet(40, 40, 11);
  TransformerDetectorOptions options;
  options.epochs = 2;

  options.use_inference_engine = true;
  TransformerObjectiveDetector engine_detector(options);
  engine_detector.Train(blocks);

  options.use_inference_engine = false;
  TransformerObjectiveDetector tape_detector(options);
  tape_detector.Train(blocks);

  data::SustainabilityGoalsConfig config;
  config.objective_count = 20;
  config.seed = 77;
  for (const data::Objective& o :
       data::GenerateSustainabilityGoals(config)) {
    EXPECT_EQ(engine_detector.PredictClass(o.text),
              tape_detector.PredictClass(o.text))
        << "engine/autograd divergence on: " << o.text;
  }
  Rng rng(78);
  for (int i = 0; i < 20; ++i) {
    std::string noise = data::GenerateNoiseSentence(rng);
    EXPECT_EQ(engine_detector.PredictClass(noise),
              tape_detector.PredictClass(noise));
  }
}

TEST(TransformerDetectorTest, LearnsToSeparateObjectivesFromNoise) {
  TransformerObjectiveDetector detector;
  detector.Train(DetectorTrainingSet(120, 120, 12));
  ASSERT_TRUE(detector.trained());

  data::SustainabilityGoalsConfig config;
  config.objective_count = 30;
  config.seed = 555;
  int correct = 0, total = 0;
  for (const data::Objective& o :
       data::GenerateSustainabilityGoals(config)) {
    correct += detector.IsObjective(o.text) ? 1 : 0;
    ++total;
  }
  Rng rng(556);
  for (int i = 0; i < 30; ++i) {
    correct += detector.IsObjective(data::GenerateNoiseSentence(rng)) ? 0 : 1;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(DetectorTest, ScoreIsProbability) {
  ObjectiveDetector detector;
  detector.Train(DetectorTrainingSet(50, 50, 6), DetectorOptions());
  double score = detector.Score("Reduce emissions by 20% by 2030.");
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(DetectorTest, UntrainedScoresHalf) {
  ObjectiveDetector detector;
  EXPECT_NEAR(detector.Score("anything"), 0.5, 1e-6);
}

TEST(DetectorTest, ThresholdControlsDecision) {
  ObjectiveDetector detector;
  detector.Train(DetectorTrainingSet(100, 100, 7), DetectorOptions());
  std::string objective = "Reduce waste to landfill by 50% by 2030.";
  EXPECT_TRUE(detector.IsObjective(objective, 0.1));
  EXPECT_FALSE(detector.IsObjective(objective, 1.01));
}

TEST(DetectorTest, DeterministicTraining) {
  ObjectiveDetector a, b;
  std::vector<LabeledBlock> blocks = DetectorTrainingSet(80, 80, 8);
  a.Train(blocks, DetectorOptions());
  b.Train(blocks, DetectorOptions());
  EXPECT_EQ(a.Score("Reduce emissions by 10%."),
            b.Score("Reduce emissions by 10%."));
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Train a small extractor once (slow) and a detector (fast).
    data::SustainabilityGoalsConfig config;
    config.objective_count = 300;
    std::vector<data::Objective> corpus =
        data::GenerateSustainabilityGoals(config);
    core::ExtractorConfig extractor_config;
    extractor_config.kinds = data::SustainabilityGoalKinds();
    extractor_config.epochs = 5;
    extractor_config.bpe_merges = 1200;
    extractor_config.d_model = 48;
    extractor_config.ffn_dim = 96;
    extractor_ = new core::DetailExtractor(extractor_config);
    ASSERT_TRUE(extractor_->Train(corpus).ok());

    detector_ = new ObjectiveDetector();
    detector_->Train(DetectorTrainingSet(300, 300, 9), DetectorOptions());
  }

  static void TearDownTestSuite() {
    delete extractor_;
    extractor_ = nullptr;
    delete detector_;
    detector_ = nullptr;
  }

  static core::DetailExtractor* extractor_;
  static ObjectiveDetector* detector_;
};

core::DetailExtractor* PipelineTest::extractor_ = nullptr;
ObjectiveDetector* PipelineTest::detector_ = nullptr;

TEST_F(PipelineTest, ProcessesSingleReport) {
  data::Report report = data::GenerateSingleReport("DemoCo", 30, 8, 77);
  GoalSpotter pipeline(detector_, extractor_);
  core::ObjectiveDatabase db;
  PipelineStats stats = pipeline.ProcessReport(report, &db);

  EXPECT_EQ(stats.documents, 1);
  EXPECT_EQ(stats.pages, 30);
  EXPECT_GT(stats.blocks, 30);
  // Detection should find most of the 8 embedded objectives with few false
  // positives.
  EXPECT_GE(stats.detected_objectives, 5);
  EXPECT_LE(stats.detected_objectives, 12);
  EXPECT_EQ(db.size(), static_cast<size_t>(stats.detected_objectives));
  for (const core::DbRow& row : db.SnapshotRows()) {
    EXPECT_EQ(row.company, "DemoCo");
    EXPECT_GE(row.page, 1);
  }
}

TEST_F(PipelineTest, ProcessesFleetAndAggregates) {
  data::CompanyProfile profile{"C10", 4, 60, 12};
  std::vector<data::Report> reports =
      data::GenerateCompanyReports(profile, 31);
  GoalSpotter pipeline(detector_, extractor_);
  core::ObjectiveDatabase db;
  PipelineStats stats = pipeline.ProcessReports(reports, &db);
  EXPECT_EQ(stats.documents, 4);
  EXPECT_EQ(stats.pages, 60);
  EXPECT_GT(stats.detected_objectives, 6);
  EXPECT_EQ(db.CountPerCompany()["C10"], stats.detected_objectives);
}

TEST_F(PipelineTest, ParallelIngestMatchesSerial) {
  data::CompanyProfile profile{"C11", 6, 90, 18};
  std::vector<data::Report> reports =
      data::GenerateCompanyReports(profile, 47);
  GoalSpotter pipeline(detector_, extractor_);

  core::ObjectiveDatabase serial_db;
  PipelineStats serial = pipeline.ProcessReports(reports, &serial_db);

  core::ObjectiveDatabase parallel_db;
  PipelineStats parallel =
      pipeline.ProcessReportsParallel(reports, &parallel_db, 4);

  EXPECT_EQ(parallel.documents, serial.documents);
  EXPECT_EQ(parallel.pages, serial.pages);
  EXPECT_EQ(parallel.blocks, serial.blocks);
  EXPECT_EQ(parallel.detected_objectives, serial.detected_objectives);
  EXPECT_EQ(parallel_db.size(), serial_db.size());
  EXPECT_EQ(parallel_db.CountPerCompany(), serial_db.CountPerCompany());

  // Row ids differ by interleaving, but the stored rows are the same set:
  // compare the objective texts as multisets.
  auto texts = [](const core::ObjectiveDatabase& db) {
    std::multiset<std::string> out;
    for (const core::DbRow& row : db.SnapshotRows()) {
      out.insert(row.record.objective_text);
    }
    return out;
  };
  EXPECT_EQ(texts(parallel_db), texts(serial_db));
}

TEST_F(PipelineTest, ExtractedRowsCarryFields) {
  data::Report report = data::GenerateSingleReport("FieldsCo", 20, 10, 99);
  GoalSpotter pipeline(detector_, extractor_);
  core::ObjectiveDatabase db;
  pipeline.ProcessReport(report, &db);
  ASSERT_GT(db.size(), 0u);
  // At least half of the extracted rows should carry an Action field.
  size_t with_action = db.WithField("Action").size();
  EXPECT_GT(with_action * 2, db.size());
}

TEST_F(PipelineTest, HighThresholdDetectsFewer) {
  data::Report report = data::GenerateSingleReport("ThreshCo", 20, 10, 13);
  GoalSpotter loose(detector_, extractor_);
  loose.set_threshold(0.2);
  GoalSpotter strict(detector_, extractor_);
  strict.set_threshold(0.95);
  core::ObjectiveDatabase db_loose, db_strict;
  PipelineStats loose_stats = loose.ProcessReport(report, &db_loose);
  PipelineStats strict_stats = strict.ProcessReport(report, &db_strict);
  EXPECT_GE(loose_stats.detected_objectives,
            strict_stats.detected_objectives);
}

}  // namespace
}  // namespace goalex::goalspotter
