#include "text/sentence_splitter.h"

#include <gtest/gtest.h>

namespace goalex::text {
namespace {

std::vector<std::string> Split(std::string_view s) {
  return SentenceSplitter().Split(s);
}

TEST(SentenceSplitterTest, TwoSimpleSentences) {
  EXPECT_EQ(Split("We reduce waste. We save water."),
            (std::vector<std::string>{"We reduce waste.",
                                      "We save water."}));
}

TEST(SentenceSplitterTest, SingleSentenceNoTerminator) {
  EXPECT_EQ(Split("Reduce energy consumption by 20%"),
            (std::vector<std::string>{"Reduce energy consumption by 20%"}));
}

TEST(SentenceSplitterTest, DecimalNumbersDoNotSplit) {
  EXPECT_EQ(Split("Voluntary turnover rate in 2021: 8.1% was reported."),
            (std::vector<std::string>{
                "Voluntary turnover rate in 2021: 8.1% was reported."}));
}

TEST(SentenceSplitterTest, AbbreviationsDoNotSplit) {
  std::vector<std::string> out =
      Split("Targets cover scopes, e.g. Scope 1. New goals follow.");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "Targets cover scopes, e.g. Scope 1.");
  EXPECT_EQ(out[1], "New goals follow.");
}

TEST(SentenceSplitterTest, QuestionAndExclamation) {
  EXPECT_EQ(Split("Can we do it? Yes! We will."),
            (std::vector<std::string>{"Can we do it?", "Yes!", "We will."}));
}

TEST(SentenceSplitterTest, LowercaseContinuationDoesNotSplit) {
  // "approx." followed by lowercase must not split.
  EXPECT_EQ(Split("Contributions at approx. 7% of income."),
            (std::vector<std::string>{
                "Contributions at approx. 7% of income."}));
}

TEST(SentenceSplitterTest, EmptyInput) { EXPECT_TRUE(Split("").empty()); }

TEST(SentenceSplitterTest, WhitespaceOnly) {
  EXPECT_TRUE(Split("  \n ").empty());
}

TEST(SentenceSplitterTest, TrailingWhitespaceTrimmed) {
  EXPECT_EQ(Split("  We act.  "), (std::vector<std::string>{"We act."}));
}

TEST(SentenceSplitterTest, DigitStartsNewSentence) {
  EXPECT_EQ(Split("We set targets. 250 students joined."),
            (std::vector<std::string>{"We set targets.",
                                      "250 students joined."}));
}

TEST(SentenceSplitterTest, ClosingQuoteStaysWithSentence) {
  std::vector<std::string> out =
      Split("They said \"net-zero by 2040.\" We agree.");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "They said \"net-zero by 2040.\"");
  EXPECT_EQ(out[1], "We agree.");
}

}  // namespace
}  // namespace goalex::text
