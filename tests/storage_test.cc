#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "storage/crc32.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/manifest.h"
#include "storage/row.h"
#include "storage/segment.h"
#include "storage/wal.h"

namespace goalex::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("goalex_storage_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    env_ = Env::Default();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
  Env* env_ = nullptr;
};

Row MakeRow(int64_t id, const std::string& company, const std::string& text,
            std::map<std::string, std::string> fields) {
  Row row;
  row.row_id = id;
  row.company = company;
  row.document = company + "-report.pdf";
  row.page = static_cast<int>(id % 40);
  row.record.objective_id = "obj-" + std::to_string(id);
  row.record.objective_text = text;
  row.record.fields = std::move(fields);
  return row;
}

// --- CRC-32 ----------------------------------------------------------------

TEST_F(StorageTest, Crc32MatchesKnownVectors) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST_F(StorageTest, Crc32SeedChainsAcrossChunks) {
  std::string data =
      "the quick brown fox jumps over the lazy dog, several times, with "
      "enough bytes to exercise the sliced bulk loop and the tails";
  uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{63},
                       data.size()}) {
    uint32_t part = Crc32(data.data(), split);
    uint32_t chained = Crc32(data.data() + split, data.size() - split, part);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

// --- Env -------------------------------------------------------------------

TEST_F(StorageTest, EnvWritesReadsAndMapsFiles) {
  std::string path = Path("file.bin");
  {
    auto file = env_->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok()) << file.status().message();
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto text = env_->ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello world");
  auto size = env_->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
  EXPECT_TRUE(env_->FileExists(path));

  // Append mode continues after the existing tail.
  {
    auto file = env_->NewWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("!").ok());
  }
  auto mapped = env_->MmapReadOnly(path);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ((*mapped)->size(), 12u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>((*mapped)->data()), 12),
            "hello world!");

  ASSERT_TRUE(env_->Truncate(path, 5).ok());
  text = env_->ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello");

  std::string renamed = Path("renamed.bin");
  ASSERT_TRUE(env_->Rename(path, renamed).ok());
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_TRUE(env_->FileExists(renamed));
  ASSERT_TRUE(env_->RemoveFile(renamed).ok());
  EXPECT_FALSE(env_->FileExists(renamed));
}

TEST_F(StorageTest, EnvMissingFilesAreNotFound) {
  std::string path = Path("absent");
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_EQ(env_->ReadFileToString(path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env_->MmapReadOnly(path).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(env_->FileSize(path).status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, EnvMapsEmptyFileAsEmpty) {
  std::string path = Path("empty");
  {
    auto file = env_->NewWritableFile(path, true);
    ASSERT_TRUE(file.ok());
  }
  auto mapped = env_->MmapReadOnly(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ((*mapped)->size(), 0u);
}

// --- Row codec -------------------------------------------------------------

TEST_F(StorageTest, RowCodecRoundTrips) {
  Row row = MakeRow(42, "Acme, \"Inc\"", "Reduce emissions 50% by 2030\n",
                    {{"Amount", "50%"}, {"Deadline", "2030"}, {"Empty", ""}});
  std::string encoded;
  EncodeRow(row, &encoded);
  Row decoded;
  ASSERT_TRUE(DecodeRowExact(encoded, &decoded));
  EXPECT_EQ(decoded.row_id, row.row_id);
  EXPECT_EQ(decoded.company, row.company);
  EXPECT_EQ(decoded.document, row.document);
  EXPECT_EQ(decoded.page, row.page);
  EXPECT_EQ(decoded.record.objective_id, row.record.objective_id);
  EXPECT_EQ(decoded.record.objective_text, row.record.objective_text);
  EXPECT_EQ(decoded.record.fields, row.record.fields);

  // Deterministic: re-encoding the decoded row yields identical bytes.
  std::string reencoded;
  EncodeRow(decoded, &reencoded);
  EXPECT_EQ(reencoded, encoded);
}

TEST_F(StorageTest, RowCodecRejectsTruncationAndTrailingGarbage) {
  Row row = MakeRow(7, "Acme", "net zero by 2050", {{"Deadline", "2050"}});
  std::string encoded;
  EncodeRow(row, &encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Row out;
    EXPECT_FALSE(DecodeRowExact(encoded.substr(0, cut), &out))
        << "decoded from a " << cut << "-byte prefix";
  }
  Row out;
  EXPECT_FALSE(DecodeRowExact(encoded + "x", &out));
}

// --- WAL -------------------------------------------------------------------

TEST_F(StorageTest, WalAppendAndReplayRoundTrips) {
  std::string path = Path("wal.log");
  std::vector<std::string> payloads = {"first", "second record",
                                       std::string(1000, 'x')};
  {
    auto wal = WalWriter::Open(env_, path, /*fsync_interval=*/1);
    ASSERT_TRUE(wal.ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE((*wal)->Append(payload).ok());
    }
    EXPECT_EQ((*wal)->appended_records(), payloads.size());
  }
  auto replayed = ReplayWal(env_, path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->payloads, payloads);
  EXPECT_FALSE(replayed->truncated_tail);
  auto size = env_->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(replayed->valid_bytes, *size);
}

TEST_F(StorageTest, WalReplayOfMissingFileIsEmpty) {
  auto replayed = ReplayWal(env_, Path("no-such.log"));
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->payloads.empty());
  EXPECT_EQ(replayed->valid_bytes, 0u);
  EXPECT_FALSE(replayed->truncated_tail);
}

TEST_F(StorageTest, WalReplayTruncatesTornTailAtEveryCut) {
  std::string path = Path("wal.log");
  std::vector<std::string> payloads = {"aaaa", "bbbbbbbb", "cc"};
  std::vector<uint64_t> boundaries = {0};  // Valid prefixes in bytes.
  {
    auto wal = WalWriter::Open(env_, path, 1);
    ASSERT_TRUE(wal.ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE((*wal)->Append(payload).ok());
      boundaries.push_back(boundaries.back() + 8 + payload.size());
    }
  }
  auto full = env_->ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), boundaries.back());

  for (uint64_t cut = 0; cut <= full->size(); ++cut) {
    std::string torn_path = Path("torn.log");
    {
      auto file = env_->NewWritableFile(torn_path, true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(full->substr(0, cut)).ok());
    }
    auto replayed = ReplayWal(env_, torn_path);
    ASSERT_TRUE(replayed.ok());
    // The valid prefix is the last record boundary at or before the cut.
    size_t records = 0;
    while (records + 1 < boundaries.size() && boundaries[records + 1] <= cut) {
      ++records;
    }
    EXPECT_EQ(replayed->payloads.size(), records) << "cut at " << cut;
    EXPECT_EQ(replayed->valid_bytes, boundaries[records]) << "cut at " << cut;
    EXPECT_EQ(replayed->truncated_tail, cut != boundaries[records])
        << "cut at " << cut;
  }
}

TEST_F(StorageTest, WalReplayStopsAtZeroFilledTail) {
  // The classic torn-page shape: a record followed by preallocated zeros.
  std::string path = Path("wal.log");
  {
    auto wal = WalWriter::Open(env_, path, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("payload").ok());
  }
  uint64_t valid = 8 + 7;
  {
    auto file = env_->NewWritableFile(path, false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(512, '\0')).ok());
  }
  auto replayed = ReplayWal(env_, path);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->payloads.size(), 1u);
  EXPECT_EQ(replayed->payloads[0], "payload");
  EXPECT_EQ(replayed->valid_bytes, valid);
  EXPECT_TRUE(replayed->truncated_tail);
}

TEST_F(StorageTest, WalReplayStopsAtCorruptRecord) {
  std::string path = Path("wal.log");
  {
    auto wal = WalWriter::Open(env_, path, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("good record").ok());
    ASSERT_TRUE((*wal)->Append("second record").ok());
  }
  auto bytes = env_->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[8 + 11 + 8 + 2] ^= 0x40;  // A payload byte of record two.
  {
    auto file = env_->NewWritableFile(path, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(corrupted).ok());
  }
  auto replayed = ReplayWal(env_, path);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->payloads.size(), 1u);
  EXPECT_EQ(replayed->payloads[0], "good record");
  EXPECT_EQ(replayed->valid_bytes, 8u + 11u);
  EXPECT_TRUE(replayed->truncated_tail);
}

// --- Fault-injection env ---------------------------------------------------

TEST_F(StorageTest, FaultEnvTearsWritesAtTheBudgetByte) {
  FaultInjectionEnv fault(env_);
  std::string path = Path("fault.bin");
  fault.SetWriteBudget(5);
  auto file = fault.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  EXPECT_TRUE(fault.killed());

  // Exactly 5 bytes made it to "disk"; reads still work post-kill.
  auto text = fault.ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "01234");

  // Every further mutation fails.
  EXPECT_FALSE((*file)->Append("more").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(fault.NewWritableFile(Path("other"), true).ok());
  EXPECT_FALSE(fault.Truncate(path, 0).ok());
  EXPECT_FALSE(fault.Rename(path, Path("moved")).ok());
  EXPECT_FALSE(fault.RemoveFile(path).ok());
  EXPECT_FALSE(fault.CreateDirs(Path("sub")).ok());
  text = fault.ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "01234");

  // Reviving the env resumes normal service.
  fault.SetWriteBudget(-1);
  EXPECT_FALSE(fault.killed());
  auto revived = fault.NewWritableFile(path, true);
  ASSERT_TRUE(revived.ok());
  ASSERT_TRUE((*revived)->Append("fresh").ok());
}

TEST_F(StorageTest, FaultEnvCountsEveryByteWritten) {
  FaultInjectionEnv fault(env_);
  auto file = fault.NewWritableFile(Path("counted"), true);
  ASSERT_TRUE(file.ok());
  uint64_t before = fault.TotalBytesWritten();
  ASSERT_TRUE((*file)->Append("abcde").ok());
  ASSERT_TRUE((*file)->Append("fg").ok());
  EXPECT_EQ(fault.TotalBytesWritten() - before, 7u);
}

// --- Text index helpers ----------------------------------------------------

TEST_F(StorageTest, TextIndexTermsLowercaseAndDropPunctuation) {
  std::vector<std::string> terms =
      TextIndexTerms("Reduce CO2-Emissions by 50% (by 2030)!");
  EXPECT_EQ(terms, (std::vector<std::string>{"reduce", "co2", "emissions",
                                             "by", "50", "by", "2030"}));
  EXPECT_TRUE(TextIndexTerms("... !!! ---").empty());
  EXPECT_TRUE(TextIndexTerms("").empty());
}

TEST_F(StorageTest, ContainsPhraseChecksContiguity) {
  std::string text = "Achieve net zero emissions across scope 1 and 2";
  EXPECT_TRUE(ContainsPhrase(text, {"net", "zero"}));
  EXPECT_TRUE(ContainsPhrase(text, {"NET", "ZERO", "EMISSIONS"}) ||
              ContainsPhrase(text, {"net", "zero", "emissions"}));
  EXPECT_FALSE(ContainsPhrase(text, {"zero", "net"}));
  EXPECT_FALSE(ContainsPhrase(text, {"net", "emissions"}));
  EXPECT_TRUE(ContainsPhrase(text, {}));  // Empty phrase matches anything.
}

// --- Sealed segments -------------------------------------------------------

std::vector<Row> SegmentRows() {
  std::vector<Row> rows;
  rows.push_back(MakeRow(10, "Acme", "Reduce emissions 50% by 2030",
                         {{"Amount", "50%"}, {"Deadline", "2030"}}));
  rows.push_back(MakeRow(11, "Beta Corp", "Plant one million trees",
                         {{"Amount", "one million"}, {"Deadline", ""}}));
  rows.push_back(MakeRow(13, "Acme", "Net zero operations by 2040",
                         {{"Deadline", "2040"}}));
  rows.push_back(MakeRow(17, "Gamma", "Improve diversity reporting", {}));
  rows.push_back(MakeRow(21, "Acme", "Switch to renewable energy by 2030",
                         {{"Deadline", "2030"}, {"Scope", "scope 2"}}));
  return rows;
}

TEST_F(StorageTest, SegmentBuildsAndReopensWithAllIndexes) {
  std::vector<Row> rows = SegmentRows();
  SegmentBuilder builder;
  for (const Row& row : rows) builder.Add(row);
  EXPECT_EQ(builder.num_rows(), rows.size());
  std::string path = Path("seg.gxseg");
  ASSERT_TRUE(builder.WriteTo(env_, path).ok());

  auto opened = SealedSegment::Open(env_, path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const SealedSegment& segment = **opened;
  ASSERT_EQ(segment.num_rows(), rows.size());
  EXPECT_EQ(segment.min_row_id(), 10);
  EXPECT_EQ(segment.max_row_id(), 21);

  // Row column and payload round trip.
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(segment.RowIdAt(i), rows[i].row_id);
    Row out;
    ASSERT_TRUE(segment.ReadRow(i, &out));
    EXPECT_EQ(out.row_id, rows[i].row_id);
    EXPECT_EQ(out.company, rows[i].company);
    EXPECT_EQ(out.record.objective_text, rows[i].record.objective_text);
    EXPECT_EQ(out.record.fields, rows[i].record.fields);
    auto found = segment.FindRowId(rows[i].row_id);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, i);
  }
  EXPECT_FALSE(segment.FindRowId(12).has_value());
  EXPECT_FALSE(segment.FindRowId(9).has_value());
  EXPECT_FALSE(segment.FindRowId(22).has_value());

  // Company postings.
  PostingsView acme = segment.Postings(SegmentIndex::kCompany, "Acme");
  ASSERT_EQ(acme.size(), 3u);
  EXPECT_EQ(acme.At(0), 0u);
  EXPECT_EQ(acme.At(1), 2u);
  EXPECT_EQ(acme.At(2), 4u);
  EXPECT_TRUE(segment.Postings(SegmentIndex::kCompany, "Nobody").empty());

  // Field-kind postings skip empty values.
  PostingsView deadlines = segment.Postings(SegmentIndex::kFieldKind,
                                            "Deadline");
  ASSERT_EQ(deadlines.size(), 3u);
  EXPECT_EQ(deadlines.At(0), 0u);
  EXPECT_EQ(deadlines.At(1), 2u);
  EXPECT_EQ(deadlines.At(2), 4u);

  // Exact-value postings.
  PostingsView y2030 = segment.Postings(SegmentIndex::kFieldValue,
                                        FieldValueKey("Deadline", "2030"));
  ASSERT_EQ(y2030.size(), 2u);
  EXPECT_EQ(y2030.At(0), 0u);
  EXPECT_EQ(y2030.At(1), 4u);

  // Deadline-year range walk.
  std::vector<uint32_t> in_range;
  segment.ForEachYearInRange(2030, 2035, [&](const PostingsView& postings) {
    for (size_t i = 0; i < postings.size(); ++i) {
      in_range.push_back(postings.At(i));
    }
  });
  EXPECT_EQ(in_range, (std::vector<uint32_t>{0, 4}));

  // Inverted text index covers objective text and field values.
  PostingsView zero = segment.Postings(SegmentIndex::kText, "zero");
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero.At(0), 2u);
  PostingsView million = segment.Postings(SegmentIndex::kText, "million");
  ASSERT_EQ(million.size(), 1u);
  EXPECT_EQ(million.At(0), 1u);
  PostingsView by = segment.Postings(SegmentIndex::kText, "by");
  EXPECT_EQ(by.size(), 3u);

  // Keys enumerate in sorted order.
  std::vector<std::string> companies;
  segment.ForEachKey(SegmentIndex::kCompany, [&](std::string_view key) {
    companies.push_back(std::string(key));
  });
  EXPECT_EQ(companies,
            (std::vector<std::string>{"Acme", "Beta Corp", "Gamma"}));

  // Stats.
  ASSERT_EQ(segment.company_rows().count("Acme"), 1u);
  EXPECT_EQ(segment.company_rows().at("Acme"), 3);
  EXPECT_EQ(segment.company_kind_rows().at(FieldValueKey("Acme", "Deadline")),
            3);
}

TEST_F(StorageTest, SegmentOpenRejectsEveryCorruption) {
  std::vector<Row> rows = SegmentRows();
  SegmentBuilder builder;
  for (const Row& row : rows) builder.Add(row);
  std::string image = builder.Serialize();
  std::string path = Path("seg.gxseg");

  auto write_and_open = [&](const std::string& bytes) {
    auto file = env_->NewWritableFile(path, true);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(bytes).ok());
    EXPECT_TRUE((*file)->Close().ok());
    return SealedSegment::Open(env_, path);
  };

  // The pristine image opens.
  ASSERT_TRUE(write_and_open(image).ok());

  // A single flipped bit anywhere is DataLoss, never UB: sample offsets
  // across the whole image including the header, body, and 20-byte tail.
  size_t step = std::max<size_t>(1, image.size() / 97);
  for (size_t offset = 0; offset < image.size(); offset += step) {
    std::string mutated = image;
    mutated[offset] ^= 0x01;
    auto opened = write_and_open(mutated);
    EXPECT_FALSE(opened.ok()) << "bit flip at " << offset;
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss)
        << "bit flip at " << offset;
  }
  for (size_t tail = image.size() - 20; tail < image.size(); ++tail) {
    std::string mutated = image;
    mutated[tail] ^= 0x80;
    EXPECT_EQ(write_and_open(mutated).status().code(), StatusCode::kDataLoss)
        << "tail flip at " << tail;
  }

  // Truncation at every sampled length is DataLoss.
  for (size_t cut = 0; cut < image.size(); cut += step) {
    auto opened = write_and_open(image.substr(0, cut));
    EXPECT_FALSE(opened.ok()) << "truncated to " << cut;
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss)
        << "truncated to " << cut;
  }

  // Trailing garbage breaks the end magic.
  EXPECT_EQ(write_and_open(image + "extra").status().code(),
            StatusCode::kDataLoss);
  // Garbage of plausible size is rejected too.
  EXPECT_EQ(write_and_open(std::string(4096, 'Z')).status().code(),
            StatusCode::kDataLoss);
}

// --- Manifest --------------------------------------------------------------

TEST_F(StorageTest, ManifestRoundTripsAndDetectsCorruption) {
  Manifest manifest;
  manifest.num_shards = 4;
  manifest.next_segment = 7;
  manifest.segments.push_back({0, "seg-0-0.gxseg", 100, 0, 201});
  manifest.segments.push_back({3, "seg-3-5.gxseg", 10, 202, 240});
  ASSERT_TRUE(WriteManifest(env_, dir_, manifest).ok());

  auto read = ReadManifest(env_, dir_);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->num_shards, 4);
  EXPECT_EQ(read->next_segment, 7u);
  ASSERT_EQ(read->segments.size(), 2u);
  EXPECT_EQ(read->segments[1].file, "seg-3-5.gxseg");
  EXPECT_EQ(read->segments[1].shard, 3);
  EXPECT_EQ(read->segments[1].rows, 10u);
  EXPECT_EQ(read->segments[1].min_row_id, 202);
  EXPECT_EQ(read->segments[1].max_row_id, 240);

  // No temp file is left behind by the commit.
  EXPECT_FALSE(env_->FileExists(dir_ + "/MANIFEST.tmp"));

  std::string serialized = manifest.Serialize();
  for (size_t offset = 0; offset < serialized.size(); ++offset) {
    std::string mutated = serialized;
    mutated[offset] ^= 0x04;
    auto parsed = ParseManifest(mutated);
    // A flip may keep the file parseable only if it never lands — CRC
    // covers every byte before the checksum line, and the checksum line
    // itself must match what it states.
    EXPECT_FALSE(parsed.ok()) << "flip at " << offset;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "flip at " << offset;
  }
  for (size_t cut = 0; cut < serialized.size(); ++cut) {
    EXPECT_EQ(ParseManifest(serialized.substr(0, cut)).status().code(),
              StatusCode::kDataLoss)
        << "cut at " << cut;
  }
  EXPECT_EQ(ReadManifest(env_, Path("nowhere")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StorageTest, ManifestRejectsMalformedContent) {
  auto reject = [&](const std::string& body) {
    std::string with_crc = body + "crc ";
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08x", Crc32(body.data(), body.size()));
    with_crc += hex;
    with_crc += '\n';
    auto parsed = ParseManifest(with_crc);
    EXPECT_FALSE(parsed.ok()) << body;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << body;
  };
  reject("not-a-manifest\nshards 4\n");
  reject("goalexdb-manifest-v2\n");                      // Missing shards.
  reject("goalexdb-manifest-v2\nshards 0\n");            // Out of range.
  reject("goalexdb-manifest-v2\nshards 4\nwhat 1\n");    // Unknown line.
  reject("goalexdb-manifest-v2\nshards 2\nsegment 2 f.gxseg 1 0 0\n");
  reject("goalexdb-manifest-v2\nshards 2\nsegment 0 a/b.gxseg 1 0 0\n");
  reject("goalexdb-manifest-v2\nshards 2\nsegment 0 f.gxseg x 0 0\n");
}

}  // namespace
}  // namespace goalex::storage
