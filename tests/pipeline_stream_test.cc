#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "data/stream.h"
#include "pipeline/feed.h"
#include "pipeline/stream_pipeline.h"
#include "values/value_normalizer.h"

namespace goalex::pipeline {
namespace {

core::DbOptions StreamDbOptions() {
  core::DbOptions options;
  options.background_seal = false;
  options.track_upserts = true;
  return options;
}

data::ReportStreamConfig SmallStreamConfig() {
  data::ReportStreamConfig config;
  config.initial_companies = 4;
  config.years = 3;
  config.initial_targets_per_company = 4;
  config.seed = 77;
  return config;
}

std::vector<std::string> ExportKinds() {
  return {"Action", "Amount", "Qualifier", "Deadline",
          core::kVersionField, kStatusField, kSdgField};
}

TEST(ReportStreamTest, DeterministicAndTruthConsistent) {
  data::StreamTruth truth_a;
  data::StreamTruth truth_b;
  std::vector<data::TimedDocument> a =
      data::GenerateReportStream(SmallStreamConfig(), &truth_a);
  std::vector<data::TimedDocument> b =
      data::GenerateReportStream(SmallStreamConfig(), &truth_b);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(EncodeFeed(a), EncodeFeed(b));

  EXPECT_EQ(truth_a.total_documents, static_cast<int>(a.size()));
  EXPECT_GT(truth_a.unique_targets(), 0u);
  EXPECT_GT(truth_a.restatements, 0) << "config should produce restatements";
  EXPECT_GT(truth_a.abandonments, 0) << "config should produce withdrawals";
  // Sequences are the global arrival order.
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, static_cast<int64_t>(i));
    if (i > 0) EXPECT_GT(a[i].timestamp_ms, a[i - 1].timestamp_ms);
  }
  // Version math: every publication of a target is one version.
  int published = 0;
  for (const data::StreamTargetTruth& target : truth_a.targets) {
    published += target.versions;
  }
  EXPECT_EQ(published,
            static_cast<int>(truth_a.unique_targets()) +
                truth_a.restatements + truth_a.abandonments);
}

TEST(FeedCodecTest, RoundTripsTrickyContent) {
  data::TimedDocument document;
  document.sequence = 7;
  document.timestamp_ms = 1234567;
  document.report.company = "Tab\tCo \\ Newline\nInc";
  document.report.document = "report\r2020.pdf";
  data::ReportBlock block;
  block.page = 3;
  block.is_objective = true;
  block.text = "Reduce\temissions\nby 10%\\ by 2030.";
  document.report.blocks.push_back(block);

  std::string encoded = EncodeFeed({document});
  StatusOr<std::vector<data::TimedDocument>> parsed = ParseFeed(encoded);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].sequence, 7);
  EXPECT_EQ((*parsed)[0].timestamp_ms, 1234567);
  EXPECT_EQ((*parsed)[0].report.company, document.report.company);
  EXPECT_EQ((*parsed)[0].report.document, document.report.document);
  ASSERT_EQ((*parsed)[0].report.blocks.size(), 1u);
  EXPECT_EQ((*parsed)[0].report.blocks[0].text, block.text);
  EXPECT_EQ((*parsed)[0].report.blocks[0].page, 3);
  EXPECT_TRUE((*parsed)[0].report.blocks[0].is_objective);
  EXPECT_EQ((*parsed)[0].report.page_count, 3);
}

TEST(FeedCodecTest, RejectsMalformedFeeds) {
  EXPECT_FALSE(ParseFeed("nonsense").ok());
  EXPECT_FALSE(ParseFeed("goalexfeed v2\n").ok());
  EXPECT_FALSE(ParseFeed("goalexfeed v1\nblock\t1\t1\torphan").ok());
  EXPECT_FALSE(ParseFeed("goalexfeed v1\ndoc\tx\t0\tA\tB").ok());
  EXPECT_FALSE(
      ParseFeed("goalexfeed v1\ndoc\t0\t0\tA\tB\nblock\t1\t2\ttext").ok());
  EXPECT_FALSE(ParseFeed("goalexfeed v1\nwhat\t1").ok());
  EXPECT_TRUE(ParseFeed("goalexfeed v1\n").ok());
}

TEST(FeedCodecTest, FileRoundTripAndDirectoryFeedPolling) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goalex_feed_dir").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  data::ReportStreamConfig config = SmallStreamConfig();
  std::vector<data::TimedDocument> documents =
      data::GenerateReportStream(config);
  ASSERT_GE(documents.size(), 4u);

  // Split the stream across two drop files plus one non-feed file.
  std::vector<data::TimedDocument> first(documents.begin(),
                                         documents.begin() + 2);
  std::vector<data::TimedDocument> rest(documents.begin() + 2,
                                        documents.end());
  ASSERT_TRUE(WriteFeedFile(dir + "/0001.goalexfeed", first).ok());
  {
    std::ofstream ignored(dir + "/notes.txt");
    ignored << "not a feed";
  }

  DirectoryFeed feed(dir);
  StatusOr<std::vector<data::TimedDocument>> poll1 = feed.Poll();
  ASSERT_TRUE(poll1.ok()) << poll1.status().message();
  EXPECT_EQ(poll1->size(), 2u);
  EXPECT_EQ(feed.processed_files(), 1u);

  // Nothing new: empty poll.
  StatusOr<std::vector<data::TimedDocument>> poll2 = feed.Poll();
  ASSERT_TRUE(poll2.ok());
  EXPECT_TRUE(poll2->empty());

  ASSERT_TRUE(WriteFeedFile(dir + "/0002.goalexfeed", rest).ok());
  StatusOr<std::vector<data::TimedDocument>> poll3 = feed.Poll();
  ASSERT_TRUE(poll3.ok());
  EXPECT_EQ(poll3->size(), rest.size());
  EXPECT_EQ(poll3->front().sequence, rest.front().sequence);

  // The replayed file content is byte-identical to the original encoding.
  EXPECT_EQ(EncodeFeed(*poll1) + EncodeFeed(*poll3).substr(14),
            EncodeFeed(documents));
  fs::remove_all(dir);
}

// The tentpole acceptance test: ingest a multi-year stream, assert
// versioned dedup against generation-time ground truth, replay the whole
// feed a second time and require byte-identical dashboards, and require
// serial and parallel ingest to agree byte-for-byte.
TEST(StreamPipelineTest, GoldenReplayAndSerialParallelIdentity) {
  data::StreamTruth truth;
  std::vector<data::TimedDocument> documents =
      data::GenerateReportStream(SmallStreamConfig(), &truth);

  auto ingest = [&documents](bool parallel, StreamStats* stats_out) {
    auto db = std::make_unique<core::ObjectiveDatabase>(4, StreamDbOptions());
    StreamPipelineOptions options;
    options.parallel = parallel;
    options.workers = parallel ? 4 : 0;
    StreamPipeline pipeline(db.get(), HeuristicStages(), options);
    StreamStats stats = pipeline.Process(documents);
    if (stats_out != nullptr) *stats_out = stats;
    return db;
  };

  StreamStats serial_stats;
  std::unique_ptr<core::ObjectiveDatabase> serial =
      ingest(false, &serial_stats);

  // One row per unique (company, action, qualifier) target.
  EXPECT_EQ(serial->live_size(), truth.unique_targets());
  EXPECT_EQ(serial_stats.documents,
            static_cast<int64_t>(documents.size()));
  EXPECT_EQ(serial_stats.inserted,
            static_cast<int64_t>(truth.unique_targets()));
  EXPECT_EQ(serial_stats.updated, truth.restatements + truth.abandonments);
  EXPECT_EQ(serial_stats.abandoned, truth.abandonments);
  EXPECT_EQ(serial_stats.unchanged, 0);

  // No duplicate upsert keys among live rows, and versions match truth.
  std::map<std::pair<std::string, std::string>, int> live_versions;
  for (const core::DbRow& row : serial->SnapshotRows()) {
    auto key = std::make_pair(
        row.company, core::ObjectiveUpsertKey(row.company, row.record));
    EXPECT_EQ(live_versions.count(key), 0u)
        << "duplicate live row for " << row.company << ": "
        << row.record.objective_text;
    live_versions[key] = core::RecordVersion(row.record);
  }
  int restated_rows = 0;
  int abandoned_rows = 0;
  for (const core::DbRow& row : serial->SnapshotRows()) {
    if (core::RecordVersion(row.record) > 1) ++restated_rows;
    if (row.record.FieldOrEmpty(kStatusField) == "abandoned") {
      ++abandoned_rows;
    }
  }
  EXPECT_GT(restated_rows, 0);
  EXPECT_EQ(abandoned_rows, truth.abandonments);

  // Versions agree with ground truth for every target.
  std::map<std::pair<std::string, std::string>, const data::StreamTargetTruth*>
      truth_by_key;
  for (const data::StreamTargetTruth& target : truth.targets) {
    data::DetailRecord key_record;
    key_record.fields["Action"] = target.action;
    key_record.fields["Qualifier"] = target.qualifier;
    truth_by_key[{target.company,
                  core::ObjectiveUpsertKey(target.company, key_record)}] =
        &target;
  }
  for (const core::DbRow& row : serial->SnapshotRows()) {
    auto key = std::make_pair(
        row.company, core::ObjectiveUpsertKey(row.company, row.record));
    auto it = truth_by_key.find(key);
    ASSERT_NE(it, truth_by_key.end())
        << row.company << ": " << row.record.objective_text;
    EXPECT_EQ(core::RecordVersion(row.record), it->second->versions)
        << row.company << ": " << row.record.objective_text;
    EXPECT_EQ(row.record.FieldOrEmpty(kStatusField) == "abandoned",
              it->second->abandoned);
  }

  const std::string csv_before = serial->ExportCsv(ExportKinds());

  // Replaying the identical feed must change nothing: every upsert is a
  // no-op and the dashboard export is byte-identical.
  {
    StreamPipelineOptions options;
    options.parallel = false;
    StreamPipeline replayer(serial.get(), HeuristicStages(), options);
    StreamStats replay = replayer.Process(documents);
    EXPECT_EQ(replay.inserted, 0);
    EXPECT_EQ(replay.updated, 0);
    EXPECT_EQ(replay.unchanged,
              serial_stats.inserted + serial_stats.updated);
    EXPECT_EQ(serial->live_size(), truth.unique_targets());
    EXPECT_EQ(serial->ExportCsv(ExportKinds()), csv_before);
  }

  // Parallel ingest commits in feed order, so ids, versions, and the CSV
  // export are byte-identical to serial ingest.
  StreamStats parallel_stats;
  std::unique_ptr<core::ObjectiveDatabase> parallel =
      ingest(true, &parallel_stats);
  EXPECT_EQ(parallel->ExportCsv(ExportKinds()), csv_before);
  EXPECT_EQ(parallel_stats.inserted, serial_stats.inserted);
  EXPECT_EQ(parallel_stats.updated, serial_stats.updated);
  EXPECT_EQ(parallel_stats.objectives, serial_stats.objectives);
}

TEST(StreamPipelineTest, SdgLabelsAndDriftCounters) {
  data::StreamTruth truth;
  std::vector<data::TimedDocument> documents =
      data::GenerateReportStream(SmallStreamConfig(), &truth);
  core::ObjectiveDatabase db(4, StreamDbOptions());
  StreamPipelineOptions options;
  options.parallel = false;
  StreamPipeline pipeline(&db, HeuristicStages(), options);
  StreamStats stats = pipeline.Process(documents);

  // The stream's qualifiers are aligned with the SDG lexicon: most rows
  // must carry a label, and labels must agree with direct classification.
  sdg::SdgClassifier classifier;
  size_t labeled = 0;
  for (const core::DbRow& row : db.SnapshotRows()) {
    const std::string label = row.record.FieldOrEmpty(kSdgField);
    if (!label.empty()) ++labeled;
    EXPECT_EQ(label,
              sdg::LabelString(classifier.Classify(row.record.objective_text)))
        << row.record.objective_text;
  }
  EXPECT_GT(labeled, db.SnapshotRows().size() / 2);

  // Drift rates are well-formed and low on in-domain text.
  EXPECT_GE(stats.unmatched_rate(), 0.0);
  EXPECT_LT(stats.unmatched_rate(), 0.5);
  EXPECT_GE(stats.unknown_kind_rate(), 0.0);
  EXPECT_LE(stats.unknown_kind_rate(), 1.0);
  EXPECT_EQ(stats.objectives, stats.inserted + stats.updated +
                                  stats.unchanged);
}

TEST(StreamPipelineTest, DetectionStageFiltersNoise) {
  // Without feed labels, the heuristic detector must still find the
  // objective blocks (they all carry an action verb or an amount) and
  // drop boilerplate noise.
  data::StreamTruth truth;
  data::ReportStreamConfig config = SmallStreamConfig();
  config.years = 1;
  std::vector<data::TimedDocument> documents =
      data::GenerateReportStream(config, &truth);

  core::ObjectiveDatabase with_labels(2, StreamDbOptions());
  core::ObjectiveDatabase detected(2, StreamDbOptions());
  StreamPipelineOptions trusted;
  trusted.parallel = false;
  StreamPipeline a(&with_labels, HeuristicStages(), trusted);
  StreamStats trusted_stats = a.Process(documents);

  StreamPipelineOptions detecting;
  detecting.parallel = false;
  detecting.trust_feed_labels = false;
  StreamPipeline b(&detected, HeuristicStages(), detecting);
  StreamStats detected_stats = b.Process(documents);

  EXPECT_GT(detected_stats.objectives, 0);
  EXPECT_LE(detected_stats.objectives, trusted_stats.blocks);
  // Detection keeps at least 80% of true objectives on in-domain text.
  EXPECT_GE(detected_stats.objectives * 10, trusted_stats.objectives * 8);
}

TEST(StreamPipelineTest, StreamSurvivesDatabaseReopen) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goalex_pipeline_reopen").string();
  fs::remove_all(dir);

  data::StreamTruth truth;
  std::vector<data::TimedDocument> documents =
      data::GenerateReportStream(SmallStreamConfig(), &truth);
  const size_t half = documents.size() / 2;
  std::vector<data::TimedDocument> first(documents.begin(),
                                         documents.begin() + half);
  std::vector<data::TimedDocument> second(documents.begin() + half,
                                          documents.end());
  std::string csv;
  {
    core::ObjectiveDatabase db(4, StreamDbOptions());
    ASSERT_TRUE(db.Open(dir).ok());
    StreamPipelineOptions options;
    options.parallel = false;
    StreamPipeline pipeline(&db, HeuristicStages(), options);
    pipeline.Process(first);
    ASSERT_TRUE(db.Flush().ok());
  }
  {
    core::ObjectiveDatabase db(4, StreamDbOptions());
    ASSERT_TRUE(db.Open(dir).ok());
    StreamPipelineOptions options;
    options.parallel = false;
    StreamPipeline pipeline(&db, HeuristicStages(), options);
    pipeline.Process(second);
    EXPECT_EQ(db.live_size(), truth.unique_targets());
    csv = db.ExportCsv(ExportKinds());
  }

  // Single-shot ingest of the same stream produces the same live rows
  // (row ids differ across the seal boundary, so compare sorted rows
  // minus ids via CSV of a freshly loaded compacted copy).
  core::ObjectiveDatabase oneshot(4, StreamDbOptions());
  StreamPipelineOptions options;
  options.parallel = false;
  StreamPipeline pipeline(&oneshot, HeuristicStages(), options);
  pipeline.Process(documents);
  EXPECT_EQ(oneshot.live_size(), truth.unique_targets());
  std::multiset<std::string> split_rows;
  std::multiset<std::string> oneshot_rows;
  for (const core::DbRow& row : oneshot.SnapshotRows()) {
    oneshot_rows.insert(row.company + "|" + row.record.objective_text +
                        "|" + row.record.FieldOrEmpty(core::kVersionField));
  }
  {
    core::ObjectiveDatabase reopened(4, StreamDbOptions());
    ASSERT_TRUE(reopened.Load(dir).ok());
    for (const core::DbRow& row : reopened.SnapshotRows()) {
      split_rows.insert(row.company + "|" + row.record.objective_text +
                        "|" + row.record.FieldOrEmpty(core::kVersionField));
    }
  }
  EXPECT_EQ(split_rows, oneshot_rows);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace goalex::pipeline
