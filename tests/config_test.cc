#include "core/config.h"

#include <gtest/gtest.h>

#include "data/schema.h"

namespace goalex::core {
namespace {

ExtractorConfig BaseConfig() {
  ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  return config;
}

TEST(ConfigTest, TextRoundTrip) {
  ExtractorConfig config = BaseConfig();
  config.preset = ModelPreset::kDistilBert;
  config.epochs = 7;
  config.learning_rate = 3e-4f;
  config.batch_size = 8;
  config.dropout = 0.25f;
  config.seed = 12345;
  config.bpe_merges = 900;
  config.num_threads = 3;
  config.enable_metrics = false;
  config.segment_multi_target = true;

  StatusOr<ExtractorConfig> parsed = ExtractorConfig::FromText(config.ToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kinds, config.kinds);
  EXPECT_EQ(parsed->preset, ModelPreset::kDistilBert);
  EXPECT_EQ(parsed->epochs, 7);
  EXPECT_FLOAT_EQ(parsed->learning_rate, 3e-4f);
  EXPECT_EQ(parsed->batch_size, 8);
  EXPECT_FLOAT_EQ(parsed->dropout, 0.25f);
  EXPECT_EQ(parsed->seed, 12345u);
  EXPECT_EQ(parsed->bpe_merges, 900u);
  EXPECT_EQ(parsed->num_threads, 3);
  EXPECT_FALSE(parsed->enable_metrics);
  EXPECT_TRUE(parsed->segment_multi_target);
}

TEST(ConfigTest, RejectsNonNumericValue) {
  // The seed-era atoi path silently turned this into epochs=0 — a model
  // that trains for zero epochs.
  StatusOr<ExtractorConfig> parsed =
      ExtractorConfig::FromText("kinds=Action\nepochs=abc\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("epochs"), std::string::npos);
}

TEST(ConfigTest, RejectsTrailingGarbage) {
  StatusOr<ExtractorConfig> parsed =
      ExtractorConfig::FromText("kinds=Action\nbatch_size=16x\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, RejectsEmptyNumericValue) {
  StatusOr<ExtractorConfig> parsed =
      ExtractorConfig::FromText("kinds=Action\nd_model=\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, RejectsOutOfRangeValue) {
  StatusOr<ExtractorConfig> parsed = ExtractorConfig::FromText(
      "kinds=Action\nepochs=99999999999999999999\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, ParsesFloatValues) {
  StatusOr<ExtractorConfig> parsed = ExtractorConfig::FromText(
      "kinds=Action\nlearning_rate=5e-05\ndropout=0.1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_FLOAT_EQ(parsed->learning_rate, 5e-5f);
  EXPECT_FLOAT_EQ(parsed->dropout, 0.1f);
}

TEST(ConfigTest, RejectsMalformedFloat) {
  StatusOr<ExtractorConfig> parsed =
      ExtractorConfig::FromText("kinds=Action\ndropout=0.1.2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, RejectsBadBool) {
  StatusOr<ExtractorConfig> parsed =
      ExtractorConfig::FromText("kinds=Action\nnormalize_text=yes\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, RejectsUnknownKeyAndMissingKinds) {
  EXPECT_FALSE(ExtractorConfig::FromText("kinds=Action\nbogus=1\n").ok());
  EXPECT_FALSE(ExtractorConfig::FromText("epochs=3\n").ok());
}

TEST(ConfigTest, NegativeNumThreadsAllowed) {
  // num_threads <= 0 means "auto"; the parser must not reject the sign.
  StatusOr<ExtractorConfig> parsed =
      ExtractorConfig::FromText("kinds=Action\nnum_threads=0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_threads, 0);
}

}  // namespace
}  // namespace goalex::core
