#include <gtest/gtest.h>

#include "data/schema.h"
#include "llm/heuristics.h"
#include "llm/llm_extractor.h"
#include "llm/prompt.h"
#include "llm/sim_llm.h"

namespace goalex::llm {
namespace {

TEST(PromptTest, ZeroShotContainsSchemaAndObjective) {
  std::string prompt = BuildZeroShotPrompt(
      data::SustainabilityGoalKinds(), "Reduce waste by 20% by 2030.");
  EXPECT_NE(prompt.find("Action, Amount, Qualifier, Baseline, Deadline"),
            std::string::npos);
  EXPECT_NE(prompt.find("Objective: Reduce waste by 20% by 2030."),
            std::string::npos);
  EXPECT_NE(prompt.find("Answer: "), std::string::npos);
}

TEST(PromptTest, FewShotContainsExamples) {
  PromptExample example;
  example.objective_text = "Achieve net-zero by 2040.";
  example.annotations = {{"Amount", "net-zero"}, {"Deadline", "2040"}};
  std::string prompt =
      BuildFewShotPrompt(data::SustainabilityGoalKinds(), {example},
                         "Reduce waste by 20%.");
  EXPECT_NE(prompt.find("Achieve net-zero by 2040."), std::string::npos);
  EXPECT_NE(prompt.find("\"Amount\": \"net-zero\""), std::string::npos);
  // Target objective comes last.
  EXPECT_GT(prompt.rfind("Reduce waste by 20%."),
            prompt.find("Achieve net-zero by 2040."));
}

TEST(PromptTest, RenderAnswerEmitsAllKinds) {
  std::string answer = RenderAnswer(
      {"Action", "Amount"}, {{"Action", "Reduce"}});
  EXPECT_EQ(answer, "{\"Action\": \"Reduce\", \"Amount\": \"\"}");
}

TEST(PromptTest, TokenCount) {
  EXPECT_EQ(CountPromptTokens("a b  c"), 3u);
  EXPECT_EQ(CountPromptTokens(""), 0u);
}

TEST(RoleTest, SustainabilityGoalsSchema) {
  EXPECT_EQ(RoleForKind("Action"), FieldRole::kAction);
  EXPECT_EQ(RoleForKind("Amount"), FieldRole::kAmount);
  EXPECT_EQ(RoleForKind("Qualifier"), FieldRole::kQualifier);
  EXPECT_EQ(RoleForKind("Baseline"), FieldRole::kBaselineYear);
  EXPECT_EQ(RoleForKind("Deadline"), FieldRole::kDeadlineYear);
}

TEST(RoleTest, NetZeroFactsSchema) {
  EXPECT_EQ(RoleForKind("TargetValue"), FieldRole::kAmount);
  EXPECT_EQ(RoleForKind("ReferenceYear"), FieldRole::kBaselineYear);
  EXPECT_EQ(RoleForKind("TargetYear"), FieldRole::kDeadlineYear);
  EXPECT_EQ(RoleForKind("SomethingElse"), FieldRole::kUnknown);
}

TEST(HeuristicsTest, ExtractsBasicFields) {
  auto fields = HeuristicExtract(
      "Reduce energy consumption by 20% by 2025 (baseline 2017).",
      data::SustainabilityGoalKinds(), HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Action"], "Reduce");
  EXPECT_EQ(fields["Amount"], "20%");
  EXPECT_EQ(fields["Qualifier"], "energy consumption");
  EXPECT_EQ(fields["Deadline"], "2025");
  EXPECT_EQ(fields["Baseline"], "2017");
}

TEST(HeuristicsTest, AmountSurvivesLooseSeparators) {
  // Regression: the amount regexes required exactly one (percent) or
  // exactly one whitespace (unit) separator, so rewrapped or glued text
  // lost its Amount entirely.
  auto fields = HeuristicExtract(
      "Reduce water usage by 40  percent by 2030.",
      data::SustainabilityGoalKinds(), HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Amount"], "40  percent");

  fields = HeuristicExtract("Cut waste by 40million tonnes by 2035.",
                            data::SustainabilityGoalKinds(),
                            HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Amount"], "40million");

  fields = HeuristicExtract("Achieve a 30%reduction in emissions by 2028.",
                            data::SustainabilityGoalKinds(),
                            HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Amount"], "30%");
}

TEST(HeuristicsTest, AmountCaptureTrimsTrailingPunctuation) {
  // Regression: (\d[\d,\.]*) happily ends in ','/'.' ("1,500. tonnes"),
  // and the dangling punctuation then broke number parsing downstream.
  auto fields = HeuristicExtract(
      "Divert 1,500. tonnes of waste from landfill by 2027.",
      data::SustainabilityGoalKinds(), HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Amount"], "1,500 tonnes");

  // A clean capture keeps the raw surface slice byte-for-byte.
  fields = HeuristicExtract("Divert 1,500 tonnes of waste by 2027.",
                            data::SustainabilityGoalKinds(),
                            HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Amount"], "1,500 tonnes");
}

TEST(HeuristicsTest, NetZero) {
  auto fields = HeuristicExtract(
      "We commit to net-zero carbon by 2040.",
      data::SustainabilityGoalKinds(), HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Amount"], "net-zero");
  EXPECT_EQ(fields["Deadline"], "2040");
}

TEST(HeuristicsTest, GerundRecognitionIsWorldKnowledge) {
  auto fields = HeuristicExtract(
      "We are committed to empowering smallholder farmers.",
      data::SustainabilityGoalKinds(), HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Action"], "empowering");
}

TEST(HeuristicsTest, GenericLexiconMissesWillConvention) {
  // Without examples the engine does not know that the dataset annotates
  // the "will" auxiliary as part of the Action value.
  auto fields = HeuristicExtract("We will reduce waste by 5%.",
                                 data::SustainabilityGoalKinds(),
                                 HeuristicLexicon::Generic());
  EXPECT_EQ(fields["Action"], "reduce");
}

TEST(HeuristicsTest, LearnedGerundConventionFinds) {
  HeuristicLexicon lexicon = HeuristicLexicon::Generic();
  lexicon.LearnFromExample(
      "We are committed to expanding recycling programs.",
      {{"Action", "expanding"}});
  EXPECT_TRUE(lexicon.gerund_convention);
  auto fields = HeuristicExtract(
      "We are committed to reducing waste by 10%.",
      data::SustainabilityGoalKinds(), lexicon);
  EXPECT_EQ(fields["Action"], "reducing");
}

TEST(HeuristicsTest, LearnedWillPrefix) {
  HeuristicLexicon lexicon = HeuristicLexicon::Generic();
  lexicon.LearnFromExample("We will cut emissions.",
                           {{"Action", "will cut"}});
  EXPECT_TRUE(lexicon.will_prefix_convention);
  auto fields =
      HeuristicExtract("We will reduce waste by 5%.",
                       data::SustainabilityGoalKinds(), lexicon);
  EXPECT_EQ(fields["Action"], "will reduce");
}

TEST(HeuristicsTest, BaselineVersusDeadlineYears) {
  auto fields = HeuristicExtract(
      "Cut CO2 emissions by 30% by 2035 compared to 2015.",
      data::NetZeroFactsKinds(), HeuristicLexicon::Generic());
  EXPECT_EQ(fields["TargetYear"], "2035");
  EXPECT_EQ(fields["ReferenceYear"], "2015");
  EXPECT_EQ(fields["TargetValue"], "30%");
}

TEST(SimLlmTest, DeterministicCompletion) {
  SimulatedLlm llm(LlmProfile::FewShot(), 5);
  std::string prompt = BuildZeroShotPrompt(
      data::SustainabilityGoalKinds(), "Reduce waste by 20% by 2030.");
  LlmResponse a = llm.Complete(prompt);
  LlmResponse b = llm.Complete(prompt);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_GT(a.simulated_seconds, 0.0);
}

TEST(SimLlmTest, ProfilesDiffer) {
  LlmProfile zero = LlmProfile::ZeroShot();
  LlmProfile few = LlmProfile::FewShot();
  EXPECT_GT(zero.hallucination_rate, few.hallucination_rate);
  EXPECT_FALSE(zero.example_adaptation);
  EXPECT_TRUE(few.example_adaptation);
}

TEST(ParseAnswerTest, ParsesWellFormed) {
  data::Objective o;
  o.id = "x";
  o.text = "Reduce waste.";
  data::DetailRecord record = ParseLlmAnswer(
      "{\"Action\": \"Reduce\", \"Amount\": \"\"}",
      {"Action", "Amount"}, o);
  EXPECT_EQ(record.FieldOrEmpty("Action"), "Reduce");
  EXPECT_EQ(record.FieldOrEmpty("Amount"), "");
}

TEST(ParseAnswerTest, ToleratesGarbage) {
  data::Objective o;
  data::DetailRecord record =
      ParseLlmAnswer("the model refused", {"Action"}, o);
  EXPECT_TRUE(record.fields.empty());
}

TEST(ParseAnswerTest, TruncatedJsonDropsUnterminatedField) {
  data::Objective o;
  data::DetailRecord record = ParseLlmAnswer(
      "{\"Action\": \"Redu", {"Action"}, o);
  EXPECT_TRUE(record.fields.empty());
}

TEST(BaselineTest, ZeroShotExtractsEndToEnd) {
  PromptingBaseline baseline(data::SustainabilityGoalKinds(),
                             /*few_shot=*/false, 1);
  data::Objective o;
  o.id = "o1";
  o.text = "Reduce energy consumption by 20% by 2025.";
  data::DetailRecord record = baseline.Extract(o);
  EXPECT_EQ(record.objective_id, "o1");
  EXPECT_GT(baseline.simulated_seconds(), 0.0);
}

TEST(BaselineTest, FewShotUsesExamples) {
  PromptingBaseline baseline(data::SustainabilityGoalKinds(),
                             /*few_shot=*/true, 1);
  data::Objective example;
  example.text = "We are committed to expanding solar capacity.";
  example.annotations = {{"Action", "expanding"}};
  baseline.SetExamples({example});

  // The gerund convention learned from the example enables extraction for
  // verbs whose base form the generic lexicon knows ("reduce").
  data::Objective target;
  target.id = "t";
  target.text = "We are committed to reducing fresh water use.";
  data::DetailRecord record = baseline.Extract(target);
  EXPECT_EQ(record.FieldOrEmpty("Action"), "reducing");
}

TEST(BaselineTest, TimerAccumulatesAndResets) {
  PromptingBaseline baseline(data::SustainabilityGoalKinds(),
                             /*few_shot=*/false, 1);
  data::Objective o;
  o.text = "Reduce waste by 10%.";
  baseline.Extract(o);
  double after_one = baseline.simulated_seconds();
  baseline.Extract(o);
  EXPECT_GT(baseline.simulated_seconds(), after_one);
  baseline.ResetTimer();
  EXPECT_EQ(baseline.simulated_seconds(), 0.0);
}

}  // namespace
}  // namespace goalex::llm
