// Bit-reproducibility of the data-parallel training runtime: training the
// same corpus with 1, 2, and 8 worker threads must produce byte-identical
// model weights, identical per-epoch losses, and identical extractions.
// Runs under TSAN in CI, so it also exercises the trainer's synchronization.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/extractor.h"
#include "data/generator.h"
#include "data/schema.h"
#include "goalspotter/detector.h"

namespace goalex {
namespace {

core::ExtractorConfig SmallConfig(int32_t num_threads) {
  core::ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  config.bpe_merges = 800;
  config.epochs = 3;
  config.num_threads = num_threads;
  return config;
}

std::vector<data::Objective> SmallCorpus() {
  data::SustainabilityGoalsConfig corpus_config;
  // 210 objectives with batch_size 16 guarantees a final partial batch
  // every epoch, so the tail-averaging path is always on the tested route.
  corpus_config.objective_count = 210;
  return data::GenerateSustainabilityGoals(corpus_config);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct TrainOutcome {
  std::string model_bytes;
  std::vector<double> epoch_losses;
  std::vector<std::string> extractions;
};

TrainOutcome TrainOnce(int32_t num_threads,
                       const std::vector<data::Objective>& corpus,
                       const std::vector<data::Objective>& probes) {
  core::DetailExtractor extractor(SmallConfig(num_threads));
  TrainOutcome outcome;
  Status status =
      extractor.Train(corpus, [&](const core::EpochStats& stats) {
        outcome.epoch_losses.push_back(stats.mean_train_loss);
      });
  EXPECT_TRUE(status.ok()) << status.message();

  std::string dir = (std::filesystem::temp_directory_path() /
                     ("goalex_determinism_" + std::to_string(num_threads)))
                        .string();
  std::filesystem::create_directories(dir);
  EXPECT_TRUE(extractor.Save(dir).ok());
  outcome.model_bytes = ReadFileBytes(dir + "/model.bin");
  EXPECT_FALSE(outcome.model_bytes.empty());
  std::filesystem::remove_all(dir);

  for (const data::DetailRecord& record : extractor.ExtractAll(probes)) {
    std::ostringstream row;
    for (const auto& [kind, value] : record.fields) {
      row << kind << "=" << value << ";";
    }
    outcome.extractions.push_back(row.str());
  }
  return outcome;
}

TEST(TrainDeterminismTest, WeightsLossesAndExtractionsMatchAcrossThreads) {
  std::vector<data::Objective> corpus = SmallCorpus();
  std::vector<data::Objective> probes(corpus.begin(), corpus.begin() + 25);

  ASSERT_NE(corpus.size() % 16, 0u)
      << "corpus must exercise a partial tail batch";

  TrainOutcome serial = TrainOnce(1, corpus, probes);
  ASSERT_EQ(serial.epoch_losses.size(), 3u);

  for (int32_t threads : {2, 8}) {
    TrainOutcome parallel = TrainOnce(threads, corpus, probes);
    // Bit-identical weights: the strongest possible statement — every
    // gradient reduction and optimizer step landed on the same floats.
    EXPECT_EQ(serial.model_bytes, parallel.model_bytes)
        << "weights diverged at num_threads=" << threads;
    EXPECT_EQ(serial.epoch_losses, parallel.epoch_losses)
        << "losses diverged at num_threads=" << threads;
    EXPECT_EQ(serial.extractions, parallel.extractions)
        << "extractions diverged at num_threads=" << threads;
  }
}

TEST(TrainDeterminismTest, DetectorTrainingMatchesAcrossThreadCounts) {
  // Mini-batched transformer detector: same weights-level check is not
  // exposed, so compare the full decision surface over the training blocks.
  std::vector<goalspotter::LabeledBlock> blocks;
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 30;
  for (const data::Objective& o :
       data::GenerateSustainabilityGoals(corpus_config)) {
    blocks.push_back(goalspotter::LabeledBlock{o.text, true});
  }
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    blocks.push_back(
        goalspotter::LabeledBlock{data::GenerateNoiseSentence(rng), false});
  }

  goalspotter::TransformerDetectorOptions options;
  options.epochs = 2;
  options.batch_size = 4;

  std::vector<std::vector<int32_t>> predictions;
  for (int32_t threads : {1, 4}) {
    options.num_threads = threads;
    goalspotter::TransformerObjectiveDetector detector(options);
    detector.Train(blocks);
    std::vector<int32_t> classes;
    for (const goalspotter::LabeledBlock& block : blocks) {
      classes.push_back(detector.PredictClass(block.text));
    }
    predictions.push_back(std::move(classes));
  }
  EXPECT_EQ(predictions[0], predictions[1]);
}

}  // namespace
}  // namespace goalex
