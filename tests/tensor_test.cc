#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/variable.h"

namespace goalex::tensor {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(t.at(i, j), 0.0f);
  }
}

TEST(TensorTest, FromValuesAndAccess) {
  Tensor t = Tensor::FromValues({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::FromValues({2}, {1, 2});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.data()[0] = 99.0f;
  EXPECT_EQ(shallow.at(0), 99.0f);
  EXPECT_EQ(deep.at(0), 1.0f);
}

TEST(TensorTest, ReshapedSharesStorage) {
  Tensor a = Tensor::FromValues({2, 2}, {1, 2, 3, 4});
  Tensor flat = a.Reshaped({4});
  EXPECT_EQ(flat.at(3), 4.0f);
  flat.data()[3] = 7.0f;
  EXPECT_EQ(a.at(1, 1), 7.0f);
}

TEST(TensorTest, SumAndFill) {
  Tensor t = Tensor::Full({3, 2}, 2.0f);
  EXPECT_DOUBLE_EQ(t.Sum(), 12.0);
  t.Fill(-1.0f);
  EXPECT_DOUBLE_EQ(t.Sum(), -6.0);
}

TEST(TensorTest, RandomNormalDeterministicWithSeed) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::RandomNormal({4, 4}, 1.0f, r1);
  Tensor b = Tensor::RandomNormal({4, 4}, 1.0f, r2);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(TensorTest, HasNonFinite) {
  Tensor t = Tensor::Zeros({2});
  EXPECT_FALSE(t.HasNonFinite());
  t.data()[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.HasNonFinite());
}

TEST(KernelsTest, GemmMatchesManual) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
  float a[] = {1, 2, 3, 4};
  float b[] = {5, 6, 7, 8};
  float c[4];
  Gemm(a, b, c, 2, 2, 2, false);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(KernelsTest, GemmAccumulates) {
  float a[] = {1, 0, 0, 1};
  float b[] = {1, 2, 3, 4};
  float c[] = {10, 10, 10, 10};
  Gemm(a, b, c, 2, 2, 2, true);
  EXPECT_FLOAT_EQ(c[0], 11);
  EXPECT_FLOAT_EQ(c[3], 14);
}

TEST(KernelsTest, GemmTransBMatchesGemm) {
  // A[2,3] * B[2,3]^T == A * B' where B' = transpose(B).
  float a[] = {1, 2, 3, 4, 5, 6};
  float b[] = {7, 8, 9, 10, 11, 12};
  float bt[] = {7, 10, 8, 11, 9, 12};
  float c1[4], c2[4];
  GemmTransB(a, b, c1, 2, 3, 2, false);
  Gemm(a, bt, c2, 2, 3, 2, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c1[i], c2[i]);
}

TEST(KernelsTest, GemmTransAMatchesGemm) {
  float a[] = {1, 2, 3, 4, 5, 6};   // [3,2] -> A^T is [2,3]
  float at[] = {1, 3, 5, 2, 4, 6};  // [2,3]
  float b[] = {1, 0, 0, 1, 1, 1};   // [3,2]
  float c1[4], c2[4];
  GemmTransA(a, b, c1, 3, 2, 2, false);
  Gemm(at, b, c2, 2, 3, 2, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c1[i], c2[i]);
}

TEST(KernelsTest, SoftmaxRowSumsToOne) {
  float x[] = {1.0f, 2.0f, 3.0f, 4.0f};
  float p[4];
  SoftmaxRow(x, p, 4);
  float sum = 0;
  for (float v : p) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(p[3], p[0]);
}

TEST(KernelsTest, SoftmaxRowHandlesMask) {
  float x[] = {1.0f, kSoftmaxMask, 2.0f};
  float p[3];
  SoftmaxRow(x, p, 3);
  EXPECT_EQ(p[1], 0.0f);
  EXPECT_NEAR(p[0] + p[2], 1.0f, 1e-6f);
}

TEST(KernelsTest, SoftmaxRowAllMaskedIsUniform) {
  float x[] = {kSoftmaxMask, kSoftmaxMask};
  float p[2];
  SoftmaxRow(x, p, 2);
  EXPECT_NEAR(p[0], 0.5f, 1e-6f);
  EXPECT_NEAR(p[1], 0.5f, 1e-6f);
}

TEST(KernelsTest, LogSumExpStable) {
  float x[] = {1000.0f, 1000.0f};
  EXPECT_NEAR(LogSumExp(x, 2), 1000.0 + std::log(2.0), 1e-3);
}

TEST(VariableTest, LeafHoldsValue) {
  Var v = Leaf(Tensor::FromValues({2}, {1, 2}), false);
  EXPECT_EQ(v->value().at(0), 1.0f);
  EXPECT_FALSE(v->requires_grad());
}

TEST(VariableTest, BackwardThroughAddChain) {
  Var a = Leaf(Tensor::FromValues({1}, {2}), true);
  Var b = Leaf(Tensor::FromValues({1}, {3}), true);
  Var c = Add(a, b);
  Var d = Add(c, c);  // d = 2(a+b); dd/da = 2.
  Backward(d);
  EXPECT_FLOAT_EQ(a->grad().at(0), 2.0f);
  EXPECT_FLOAT_EQ(b->grad().at(0), 2.0f);
}

TEST(VariableTest, NoGradWhenNotRequired) {
  Var a = Leaf(Tensor::FromValues({1}, {2}), false);
  Var b = Leaf(Tensor::FromValues({1}, {3}), false);
  Var c = Add(a, b);
  EXPECT_FALSE(c->requires_grad());
}

TEST(VariableTest, GradAccumulatesAcrossBackwards) {
  Var a = Leaf(Tensor::FromValues({1}, {2}), true);
  Var b = Scale(a, 3.0f);
  Backward(b);
  EXPECT_FLOAT_EQ(a->grad().at(0), 3.0f);
  Var c = Scale(a, 3.0f);
  Backward(c);
  EXPECT_FLOAT_EQ(a->grad().at(0), 6.0f);
  a->ZeroGrad();
  EXPECT_FLOAT_EQ(a->grad().at(0), 0.0f);
}

TEST(OpsTest, ArgmaxRows) {
  Var x = Leaf(Tensor::FromValues({2, 3}, {1, 5, 2, 9, 0, 3}), false);
  EXPECT_EQ(ArgmaxRows(x), (std::vector<int32_t>{1, 0}));
}

TEST(OpsTest, CrossEntropyPerfectPrediction) {
  // Huge logit on the target class -> loss near zero.
  Var logits = Leaf(Tensor::FromValues({1, 3}, {100, 0, 0}), false);
  Var loss = CrossEntropy(logits, {0});
  EXPECT_NEAR(loss->value().at(0), 0.0f, 1e-4f);
}

TEST(OpsTest, CrossEntropyUniformLogits) {
  Var logits = Leaf(Tensor::FromValues({1, 4}, {0, 0, 0, 0}), false);
  Var loss = CrossEntropy(logits, {2});
  EXPECT_NEAR(loss->value().at(0), std::log(4.0f), 1e-5f);
}

TEST(OpsTest, CrossEntropyIgnoresNegativeTargets) {
  Var logits = Leaf(Tensor::FromValues({2, 2}, {0, 0, 100, 0}), true);
  Var loss = CrossEntropy(logits, {-1, 0});
  // Only row 1 counts; its prediction is perfect.
  EXPECT_NEAR(loss->value().at(0), 0.0f, 1e-4f);
  Backward(loss);
  // Ignored row contributes zero gradient.
  EXPECT_FLOAT_EQ(logits->grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(logits->grad().at(0, 1), 0.0f);
}

TEST(OpsTest, CrossEntropyAllIgnoredIsZeroLoss) {
  Var logits = Leaf(Tensor::FromValues({1, 2}, {1, 2}), true);
  Var loss = CrossEntropy(logits, {-1});
  EXPECT_FLOAT_EQ(loss->value().at(0), 0.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(logits->grad().at(0, 0), 0.0f);
}

TEST(OpsTest, EmbeddingGatherPicksRows) {
  Var table = Leaf(Tensor::FromValues({3, 2}, {1, 2, 3, 4, 5, 6}), false);
  Var out = EmbeddingGather(table, {2, 0});
  EXPECT_FLOAT_EQ(out->value().at(0, 0), 5);
  EXPECT_FLOAT_EQ(out->value().at(0, 1), 6);
  EXPECT_FLOAT_EQ(out->value().at(1, 0), 1);
}

TEST(OpsTest, EmbeddingGatherGradScatters) {
  Var table = Leaf(Tensor::Zeros({3, 2}), true);
  Var out = EmbeddingGather(table, {1, 1});  // Row 1 used twice.
  Var pooled = MeanRows(out);                // [1,2]
  Var s = SelectRow(pooled, 0);              // still [1,2]
  // Reduce to scalar via CrossEntropy-free path: use Scale+Add trick.
  // Simpler: sum via MatMul with ones vector.
  Var ones = Leaf(Tensor::FromValues({2, 1}, {1, 1}), false);
  Var scalar = MatMul(s, ones);  // [1,1]
  Backward(scalar);
  // d(scalar)/d(table[1][j]) = 2 uses * 0.5 mean = 1.
  EXPECT_FLOAT_EQ(table->grad().at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(table->grad().at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(table->grad().at(0, 0), 0.0f);
}

TEST(OpsTest, DropoutZeroRateIsIdentity) {
  // Dropout is a training-only op (the eval forward paths have no Dropout
  // call sites at all); rate 0 must still be an exact pass-through that
  // consumes no randomness.
  Rng rng(1);
  Var x = Leaf(Tensor::FromValues({2, 2}, {1, 2, 3, 4}), false);
  Var y = Dropout(x, 0.0f, rng);
  EXPECT_EQ(y.get(), x.get());
}

TEST(OpsTest, DropoutZeroesAndScales) {
  Rng rng(2);
  Var x = Leaf(Tensor::Full({100, 10}, 1.0f), false);
  Var y = Dropout(x, 0.5f, rng);
  int zeros = 0, scaled = 0;
  for (int64_t i = 0; i < y->value().numel(); ++i) {
    float v = y->value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0f, 1e-6f);
      ++scaled;
    }
  }
  EXPECT_GT(zeros, 300);
  EXPECT_GT(scaled, 300);
}

TEST(OpsTest, AttentionOutputShape) {
  Rng rng(3);
  Var q = Leaf(Tensor::RandomNormal({5, 8}, 1.0f, rng), false);
  Var k = Leaf(Tensor::RandomNormal({5, 8}, 1.0f, rng), false);
  Var v = Leaf(Tensor::RandomNormal({5, 8}, 1.0f, rng), false);
  Var out = AttentionCore(q, k, v, 2);
  EXPECT_EQ(out->value().dim(0), 5);
  EXPECT_EQ(out->value().dim(1), 8);
}

TEST(OpsTest, AttentionUniformKeysAveragesValues) {
  // If all keys are identical, attention weights are uniform, so the output
  // is the mean of values.
  Var q = Leaf(Tensor::FromValues({2, 2}, {1, 0, 0, 1}), false);
  Var k = Leaf(Tensor::FromValues({2, 2}, {1, 1, 1, 1}), false);
  Var v = Leaf(Tensor::FromValues({2, 2}, {2, 4, 6, 8}), false);
  Var out = AttentionCore(q, k, v, 1);
  EXPECT_NEAR(out->value().at(0, 0), 4.0f, 1e-5f);
  EXPECT_NEAR(out->value().at(0, 1), 6.0f, 1e-5f);
  EXPECT_NEAR(out->value().at(1, 0), 4.0f, 1e-5f);
}

TEST(OpsTest, LayerNormOutputIsNormalized) {
  Rng rng(4);
  Var x = Leaf(Tensor::RandomNormal({3, 16}, 5.0f, rng), false);
  Var gamma = Leaf(Tensor::Full({16}, 1.0f), false);
  Var beta = Leaf(Tensor::Zeros({16}), false);
  Var y = LayerNorm(x, gamma, beta);
  for (int64_t i = 0; i < 3; ++i) {
    double mean = 0, var = 0;
    for (int64_t j = 0; j < 16; ++j) mean += y->value().at(i, j);
    mean /= 16;
    for (int64_t j = 0; j < 16; ++j) {
      double d = y->value().at(i, j) - mean;
      var += d * d;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(OpsTest, GeluKnownValues) {
  Var x = Leaf(Tensor::FromValues({3}, {-10.0f, 0.0f, 10.0f}), false);
  Var y = Gelu(x);
  EXPECT_NEAR(y->value().at(0), 0.0f, 1e-3f);
  EXPECT_NEAR(y->value().at(1), 0.0f, 1e-6f);
  EXPECT_NEAR(y->value().at(2), 10.0f, 1e-3f);
}

}  // namespace
}  // namespace goalex::tensor
