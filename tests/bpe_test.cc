#include "bpe/bpe_tokenizer.h"

#include <gtest/gtest.h>

#include "bpe/vocab.h"

namespace goalex::bpe {
namespace {

std::vector<std::string> CorpusSmall() {
  return {
      "reduce emissions by 2030",
      "reduce energy consumption",
      "reduce waste and emissions",
      "net zero emissions by 2040",
      "energy consumption reduction targets",
  };
}

TEST(VocabTest, SpecialTokensHaveFixedIds) {
  Vocab v;
  EXPECT_EQ(v.GetId("<pad>"), Vocab::kPadId);
  EXPECT_EQ(v.GetId("<unk>"), Vocab::kUnkId);
  EXPECT_EQ(v.GetId("<s>"), Vocab::kBosId);
  EXPECT_EQ(v.GetId("</s>"), Vocab::kEosId);
  EXPECT_EQ(v.size(), 4u);
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab v;
  TokenId a = v.AddToken("re");
  TokenId b = v.AddToken("re");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 5u);
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.GetId("xyzzy"), Vocab::kUnkId);
  EXPECT_FALSE(v.Contains("xyzzy"));
}

TEST(VocabTest, RoundTrip) {
  Vocab v;
  TokenId id = v.AddToken("emission");
  EXPECT_EQ(v.GetToken(id), "emission");
}

TEST(BpeTrainTest, LearnsMerges) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 50);
  EXPECT_GT(model.merges().size(), 0u);
  EXPECT_LE(model.merges().size(), 50u);
  // Frequent word "reduce" should be representable in few pieces.
  std::vector<Subword> pieces = model.Encode("reduce");
  EXPECT_LE(pieces.size(), 3u);
}

TEST(BpeTrainTest, ZeroMergesGivesCharacters) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 0);
  std::vector<Subword> pieces = model.Encode("net");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].text, "n");
  EXPECT_EQ(pieces[1].text, "e");
  EXPECT_EQ(pieces[2].text, "t");
}

TEST(BpeEncodeTest, WordIndexAndWordStart) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 30);
  std::vector<Subword> pieces = model.Encode("reduce emissions");
  ASSERT_FALSE(pieces.empty());
  EXPECT_TRUE(pieces[0].is_word_start);
  EXPECT_EQ(pieces[0].word_index, 0u);
  // Exactly two word_start subwords (one per word).
  int starts = 0;
  for (const Subword& p : pieces) starts += p.is_word_start ? 1 : 0;
  EXPECT_EQ(starts, 2);
  // word_index is non-decreasing and ends at 1.
  EXPECT_EQ(pieces.back().word_index, 1u);
}

TEST(BpeEncodeTest, SubwordsConcatenateToWord) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 20);
  std::vector<Subword> pieces = model.Encode("consumption");
  std::string joined;
  for (const Subword& p : pieces) joined += p.text;
  EXPECT_EQ(joined, "consumption");
}

TEST(BpeEncodeTest, UnseenCharactersMapToUnk) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 10);
  std::vector<Subword> pieces = model.Encode("\xE2\x82\xAC");  // euro sign
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].id, Vocab::kUnkId);
}

TEST(BpeEncodeTest, LowercaseModeFoldsCase) {
  BpeModel cased = BpeModel::Train(CorpusSmall(), 30, /*lowercase=*/false);
  BpeModel uncased = BpeModel::Train(CorpusSmall(), 30, /*lowercase=*/true);
  std::vector<Subword> cased_pieces = cased.Encode("REDUCE");
  std::vector<Subword> uncased_pieces = uncased.Encode("REDUCE");
  // Uncased model sees "reduce", a trained word, so it uses fewer pieces
  // (or at least never maps to <unk>).
  for (const Subword& p : uncased_pieces) {
    EXPECT_NE(p.id, Vocab::kUnkId);
  }
  EXPECT_LE(uncased_pieces.size(), cased_pieces.size());
}

TEST(BpeEncodeTest, DeterministicAcrossCalls) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 40);
  std::vector<Subword> a = model.Encode("energy consumption targets");
  std::vector<Subword> b = model.Encode("energy consumption targets");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].text, b[i].text);
  }
}

TEST(BpeEncodeTest, TrainingIsDeterministic) {
  BpeModel a = BpeModel::Train(CorpusSmall(), 40);
  BpeModel b = BpeModel::Train(CorpusSmall(), 40);
  ASSERT_EQ(a.merges().size(), b.merges().size());
  for (size_t i = 0; i < a.merges().size(); ++i) {
    EXPECT_EQ(a.merges()[i], b.merges()[i]);
  }
}

TEST(BpeSerializeTest, RoundTripPreservesEncoding) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 40, /*lowercase=*/true);
  std::string blob = model.Serialize();
  auto restored = BpeModel::Deserialize(blob);
  ASSERT_TRUE(restored.ok());
  std::vector<Subword> a = model.Encode("Reduce energy by 2030");
  std::vector<Subword> b = restored->Encode("Reduce energy by 2030");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
  }
  EXPECT_EQ(restored->vocab().size(), model.vocab().size());
}

TEST(BpeSerializeTest, RejectsGarbage) {
  EXPECT_FALSE(BpeModel::Deserialize("not a model").ok());
  EXPECT_FALSE(BpeModel::Deserialize("").ok());
}

TEST(BpeDecodeTest, SkipsSpecials) {
  BpeModel model = BpeModel::Train(CorpusSmall(), 40);
  std::vector<Subword> pieces = model.Encode("reduce");
  std::vector<TokenId> ids = {Vocab::kBosId};
  for (const Subword& p : pieces) ids.push_back(p.id);
  ids.push_back(Vocab::kEosId);
  std::string decoded = model.Decode(ids);
  EXPECT_EQ(decoded.find("<s>"), std::string::npos);
}

}  // namespace
}  // namespace goalex::bpe
