// Finite-difference gradient checks for every differentiable op. These are
// the load-bearing tests for the training stack: if these pass, the
// transformer's backward pass is trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/variable.h"

namespace goalex::tensor {
namespace {

// Reduces an arbitrary Var to a scalar with fixed pseudo-random weights so
// every output element influences the loss.
Var WeightedSum(const Var& x) {
  Rng rng(999);
  int64_t numel = x->value().numel();
  Tensor w({numel, 1});
  for (int64_t i = 0; i < numel; ++i) {
    w.data()[i] = static_cast<float>(rng.NextUniform(0.5, 1.5));
  }
  Var weights = Leaf(std::move(w), false);
  Var flat = Leaf(Tensor(), false);  // placeholder, replaced below
  // Reshape via a view: build a [1, numel] Var sharing x's graph by MatMul
  // trick: first make x 2-D [numel,1]^T... Simplest: wrap with a custom op.
  Tensor value = x->value().Reshaped({1, numel}).Clone();
  Var reshaped = MakeOp(std::move(value), {x}, [numel](Node& node) {
    Var input = node.inputs()[0];
    if (!input->requires_grad()) return;
    const float* g = node.grad().data();
    float* gi = input->grad().data();
    for (int64_t i = 0; i < numel; ++i) gi[i] += g[i];
  });
  (void)flat;
  return MatMul(reshaped, weights);  // [1,1]
}

// Checks analytic vs numeric gradients of `loss_fn` w.r.t. `param`.
void CheckGradient(Tensor param_init,
                   const std::function<Var(const Var&)>& loss_fn,
                   float tol = 2e-2f) {
  Var param = Leaf(param_init.Clone(), true);
  Var loss = loss_fn(param);
  ASSERT_EQ(loss->value().numel(), 1);
  Backward(loss);
  Tensor analytic = param->grad().Clone();

  const float h = 1e-3f;
  for (int64_t i = 0; i < param_init.numel(); ++i) {
    Tensor plus = param_init.Clone();
    plus.data()[i] += h;
    Tensor minus = param_init.Clone();
    minus.data()[i] -= h;
    Var vp = Leaf(std::move(plus), false);
    Var vm = Leaf(std::move(minus), false);
    float fp = loss_fn(vp)->value().data()[0];
    float fm = loss_fn(vm)->value().data()[0];
    float numeric = (fp - fm) / (2 * h);
    float a = analytic.data()[i];
    float denom = std::max({1.0f, std::fabs(a), std::fabs(numeric)});
    EXPECT_NEAR(a / denom, numeric / denom, tol)
        << "element " << i << " analytic=" << a << " numeric=" << numeric;
  }
}

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed,
                    float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::RandomNormal(std::move(shape), scale, rng);
}

TEST(GradCheckTest, Add) {
  Tensor other = RandomTensor({3, 4}, 11);
  CheckGradient(RandomTensor({3, 4}, 1), [&](const Var& p) {
    return WeightedSum(Add(p, Leaf(other.Clone(), false)));
  });
}

TEST(GradCheckTest, AddBiasInput) {
  Tensor bias = RandomTensor({4}, 12);
  CheckGradient(RandomTensor({3, 4}, 2), [&](const Var& p) {
    return WeightedSum(AddBias(p, Leaf(bias.Clone(), false)));
  });
}

TEST(GradCheckTest, AddBiasBias) {
  Tensor x = RandomTensor({3, 4}, 13);
  CheckGradient(RandomTensor({4}, 3), [&](const Var& p) {
    return WeightedSum(AddBias(Leaf(x.Clone(), false), p));
  });
}

TEST(GradCheckTest, Mul) {
  Tensor other = RandomTensor({2, 3}, 14);
  CheckGradient(RandomTensor({2, 3}, 4), [&](const Var& p) {
    return WeightedSum(Mul(p, Leaf(other.Clone(), false)));
  });
}

TEST(GradCheckTest, Scale) {
  CheckGradient(RandomTensor({2, 5}, 5), [&](const Var& p) {
    return WeightedSum(Scale(p, -2.5f));
  });
}

TEST(GradCheckTest, MatMulLeft) {
  Tensor b = RandomTensor({4, 3}, 15);
  CheckGradient(RandomTensor({2, 4}, 6), [&](const Var& p) {
    return WeightedSum(MatMul(p, Leaf(b.Clone(), false)));
  });
}

TEST(GradCheckTest, MatMulRight) {
  Tensor a = RandomTensor({2, 4}, 16);
  CheckGradient(RandomTensor({4, 3}, 7), [&](const Var& p) {
    return WeightedSum(MatMul(Leaf(a.Clone(), false), p));
  });
}

TEST(GradCheckTest, Gelu) {
  CheckGradient(RandomTensor({3, 3}, 8), [&](const Var& p) {
    return WeightedSum(Gelu(p));
  });
}

TEST(GradCheckTest, Tanh) {
  CheckGradient(RandomTensor({3, 3}, 9), [&](const Var& p) {
    return WeightedSum(TanhOp(p));
  });
}

TEST(GradCheckTest, LayerNormInput) {
  Tensor gamma = RandomTensor({6}, 17, 0.5f);
  Tensor beta = RandomTensor({6}, 18, 0.5f);
  CheckGradient(RandomTensor({4, 6}, 10), [&](const Var& p) {
    return WeightedSum(LayerNorm(p, Leaf(gamma.Clone(), false),
                                 Leaf(beta.Clone(), false)));
  });
}

TEST(GradCheckTest, LayerNormGamma) {
  Tensor x = RandomTensor({4, 6}, 19);
  Tensor beta = RandomTensor({6}, 20, 0.5f);
  CheckGradient(RandomTensor({6}, 21, 0.5f), [&](const Var& p) {
    return WeightedSum(
        LayerNorm(Leaf(x.Clone(), false), p, Leaf(beta.Clone(), false)));
  });
}

TEST(GradCheckTest, LayerNormBeta) {
  Tensor x = RandomTensor({4, 6}, 22);
  Tensor gamma = RandomTensor({6}, 23, 0.5f);
  CheckGradient(RandomTensor({6}, 24, 0.5f), [&](const Var& p) {
    return WeightedSum(
        LayerNorm(Leaf(x.Clone(), false), Leaf(gamma.Clone(), false), p));
  });
}

TEST(GradCheckTest, EmbeddingGather) {
  std::vector<int32_t> ids = {0, 2, 1, 2};
  CheckGradient(RandomTensor({3, 4}, 25), [&](const Var& p) {
    return WeightedSum(EmbeddingGather(p, ids));
  });
}

TEST(GradCheckTest, AttentionQuery) {
  Tensor k = RandomTensor({4, 8}, 26, 0.5f);
  Tensor v = RandomTensor({4, 8}, 27, 0.5f);
  CheckGradient(RandomTensor({4, 8}, 28, 0.5f), [&](const Var& p) {
    return WeightedSum(AttentionCore(p, Leaf(k.Clone(), false),
                                     Leaf(v.Clone(), false), 2));
  });
}

TEST(GradCheckTest, AttentionKey) {
  Tensor q = RandomTensor({4, 8}, 29, 0.5f);
  Tensor v = RandomTensor({4, 8}, 30, 0.5f);
  CheckGradient(RandomTensor({4, 8}, 31, 0.5f), [&](const Var& p) {
    return WeightedSum(AttentionCore(Leaf(q.Clone(), false), p,
                                     Leaf(v.Clone(), false), 2));
  });
}

TEST(GradCheckTest, AttentionValue) {
  Tensor q = RandomTensor({4, 8}, 32, 0.5f);
  Tensor k = RandomTensor({4, 8}, 33, 0.5f);
  CheckGradient(RandomTensor({4, 8}, 34, 0.5f), [&](const Var& p) {
    return WeightedSum(AttentionCore(Leaf(q.Clone(), false),
                                     Leaf(k.Clone(), false), p, 2));
  });
}

TEST(GradCheckTest, AttentionSingleHead) {
  Tensor k = RandomTensor({3, 4}, 35, 0.5f);
  Tensor v = RandomTensor({3, 4}, 36, 0.5f);
  CheckGradient(RandomTensor({3, 4}, 37, 0.5f), [&](const Var& p) {
    return WeightedSum(AttentionCore(p, Leaf(k.Clone(), false),
                                     Leaf(v.Clone(), false), 1));
  });
}

TEST(GradCheckTest, CrossEntropy) {
  std::vector<int32_t> targets = {1, 0, 2, -1};
  CheckGradient(RandomTensor({4, 3}, 38), [&](const Var& p) {
    return CrossEntropy(p, targets);
  });
}

TEST(GradCheckTest, SelectRow) {
  CheckGradient(RandomTensor({3, 4}, 39), [&](const Var& p) {
    return WeightedSum(SelectRow(p, 1));
  });
}

TEST(GradCheckTest, MeanRows) {
  CheckGradient(RandomTensor({5, 3}, 40), [&](const Var& p) {
    return WeightedSum(MeanRows(p));
  });
}

TEST(GradCheckTest, ComposedMiniNetwork) {
  // x -> Linear -> Gelu -> LayerNorm -> CE: checks interplay of ops.
  Tensor w = RandomTensor({4, 3}, 41, 0.5f);
  Tensor gamma = Tensor::Full({3}, 1.0f);
  Tensor beta = Tensor::Zeros({3});
  std::vector<int32_t> targets = {0, 2};
  CheckGradient(RandomTensor({2, 4}, 42, 0.5f), [&](const Var& p) {
    Var h = MatMul(p, Leaf(w.Clone(), false));
    h = Gelu(h);
    h = LayerNorm(h, Leaf(gamma.Clone(), false), Leaf(beta.Clone(), false));
    return CrossEntropy(h, targets);
  });
}

}  // namespace
}  // namespace goalex::tensor
