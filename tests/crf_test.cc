#include "crf/crf.h"

#include <gtest/gtest.h>

#include "crf/features.h"
#include "labels/iob.h"
#include "text/word_tokenizer.h"

namespace goalex::crf {
namespace {

TEST(FeaturesTest, WordShape) {
  EXPECT_EQ(WordShape("Reduce"), "Xxxxxx");
  EXPECT_EQ(WordShape("2040"), "dddd");
  EXPECT_EQ(WordShape("CO2"), "XXd");
  EXPECT_EQ(WordShape("net-zero"), "xxx-xxxx");
}

TEST(FeaturesTest, ShortShape) {
  EXPECT_EQ(ShortShape("Reduce"), "Xx");
  EXPECT_EQ(ShortShape("2040"), "d");
  EXPECT_EQ(ShortShape("net-zero"), "x-x");
}

TEST(FeaturesTest, IsYearToken) {
  EXPECT_TRUE(IsYearToken("2040"));
  EXPECT_TRUE(IsYearToken("1995"));
  EXPECT_FALSE(IsYearToken("2500"));
  EXPECT_FALSE(IsYearToken("204"));
  EXPECT_FALSE(IsYearToken("20a0"));
  EXPECT_FALSE(IsYearToken("20400"));
}

TEST(FeaturesTest, ExtractFeaturesPerPosition) {
  std::vector<std::vector<uint32_t>> features =
      ExtractFeatures({"Reduce", "waste", "by", "2030"});
  ASSERT_EQ(features.size(), 4u);
  for (const auto& f : features) {
    EXPECT_GT(f.size(), 5u);
    for (uint32_t id : f) EXPECT_LT(id, kFeatureBuckets);
  }
}

TEST(FeaturesTest, Deterministic) {
  auto a = ExtractFeatures({"Reduce", "waste"});
  auto b = ExtractFeatures({"Reduce", "waste"});
  EXPECT_EQ(a, b);
}

TEST(FeaturesTest, ContextSensitivity) {
  // Same word in different contexts gets different bigram features.
  auto a = ExtractFeatures({"Reduce", "waste"});
  auto b = ExtractFeatures({"Increase", "waste"});
  EXPECT_NE(a[1], b[1]);
}

// A toy dataset the CRF must master: label years after "by" as Deadline,
// action verbs as Action.
std::vector<CrfInstance> ToyDataset(const labels::LabelCatalog& catalog) {
  text::WordTokenizer tokenizer;
  auto make = [&](const std::string& text,
                  const std::vector<std::string>& label_names) {
    CrfInstance instance;
    std::vector<std::string> tokens = tokenizer.TokenizeToStrings(text);
    instance.features = ExtractFeatures(tokens);
    for (const std::string& name : label_names) {
      instance.labels.push_back(*catalog.ParseLabel(name));
    }
    EXPECT_EQ(instance.features.size(), instance.labels.size());
    return instance;
  };
  return {
      make("Reduce waste by 2030 .",
           {"B-Action", "O", "O", "B-Deadline", "O"}),
      make("Achieve zero waste by 2040 .",
           {"B-Action", "O", "O", "O", "B-Deadline", "O"}),
      make("Reduce emissions by 2035 .",
           {"B-Action", "O", "O", "B-Deadline", "O"}),
      make("Increase recycling by 2028 .",
           {"B-Action", "O", "O", "B-Deadline", "O"}),
      make("We report progress every year .",
           {"O", "O", "O", "O", "O", "O"}),
      make("Achieve full compliance by 2031 .",
           {"B-Action", "O", "O", "O", "B-Deadline", "O"}),
  };
}

TEST(CrfTest, LearnsToyTask) {
  labels::LabelCatalog catalog({"Action", "Deadline"});
  LinearChainCrf crf(catalog.label_count());
  std::vector<CrfInstance> dataset = ToyDataset(catalog);
  CrfOptions options;
  options.epochs = 20;
  crf.Train(dataset, options);

  // Held-out sentence with the same structure.
  text::WordTokenizer tokenizer;
  std::vector<std::string> tokens =
      tokenizer.TokenizeToStrings("Reduce packaging by 2033 .");
  std::vector<labels::LabelId> pred = crf.Predict(ExtractFeatures(tokens));
  ASSERT_EQ(pred.size(), 5u);
  EXPECT_EQ(catalog.LabelName(pred[0]), "B-Action");
  EXPECT_EQ(catalog.LabelName(pred[3]), "B-Deadline");
  EXPECT_EQ(catalog.LabelName(pred[1]), "O");
}

TEST(CrfTest, LogLikelihoodImprovesWithTraining) {
  labels::LabelCatalog catalog({"Action", "Deadline"});
  std::vector<CrfInstance> dataset = ToyDataset(catalog);

  LinearChainCrf untrained(catalog.label_count());
  double before = 0.0;
  for (const CrfInstance& instance : dataset) {
    before += untrained.LogLikelihood(instance);
  }

  LinearChainCrf trained(catalog.label_count());
  CrfOptions options;
  options.epochs = 10;
  trained.Train(dataset, options);
  double after = 0.0;
  for (const CrfInstance& instance : dataset) {
    after += trained.LogLikelihood(instance);
  }
  EXPECT_GT(after, before);
}

TEST(CrfTest, LogLikelihoodIsNonPositiveProbability) {
  labels::LabelCatalog catalog({"Action"});
  LinearChainCrf crf(catalog.label_count());
  CrfInstance instance;
  instance.features = ExtractFeatures({"Reduce", "waste"});
  instance.labels = {*catalog.ParseLabel("B-Action"),
                     *catalog.ParseLabel("O")};
  EXPECT_LE(crf.LogLikelihood(instance), 1e-9);
}

TEST(CrfTest, PredictEmptyInput) {
  LinearChainCrf crf(5);
  EXPECT_TRUE(crf.Predict({}).empty());
}

TEST(CrfTest, UntrainedPredictsValidLabels) {
  labels::LabelCatalog catalog({"Action", "Deadline"});
  LinearChainCrf crf(catalog.label_count());
  std::vector<labels::LabelId> pred =
      crf.Predict(ExtractFeatures({"Reduce", "waste"}));
  ASSERT_EQ(pred.size(), 2u);
  for (labels::LabelId id : pred) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, catalog.label_count());
  }
}

TEST(CrfTest, TrainingIsDeterministic) {
  labels::LabelCatalog catalog({"Action", "Deadline"});
  std::vector<CrfInstance> dataset = ToyDataset(catalog);
  CrfOptions options;
  options.epochs = 5;

  LinearChainCrf a(catalog.label_count());
  a.Train(dataset, options);
  LinearChainCrf b(catalog.label_count());
  b.Train(dataset, options);

  auto features = ExtractFeatures({"Reduce", "waste", "by", "2030"});
  EXPECT_EQ(a.Predict(features), b.Predict(features));
}

}  // namespace
}  // namespace goalex::crf
