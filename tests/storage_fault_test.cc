// Crash-recovery and corruption harness of the storage engine:
//
//  - a kill-at-every-write-offset sweep: the database runs a fixed workload
//    through a FaultInjectionEnv whose write budget simulates a crash at one
//    exact byte of the storage write stream; recovery from the surviving
//    files must yield a row-id prefix of the workload whose ExportCsv is
//    byte-identical to a never-crashed store of the same prefix — for every
//    single budget in [0, total bytes written];
//  - a seeded corruption fuzzer: random bit flips, truncations, zero fills,
//    and garbage appends over every file of a valid database directory must
//    recover a valid subset of rows or fail with a clean DataLoss — never
//    crash, hang, or read out of bounds (the CI ASAN job runs this).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "storage/env.h"
#include "storage/fault_env.h"

namespace goalex::core {
namespace {

const std::vector<std::string> kKinds = {"Amount", "Deadline"};

/// The deterministic workload every crash test replays: compact rows so the
/// byte-exact kill sweep stays fast.
struct WorkloadOp {
  std::string company;
  data::DetailRecord record;
};

std::vector<WorkloadOp> WorkloadOps(size_t count) {
  const std::vector<std::string> companies = {"Acme", "Beta", "Gamma"};
  const std::vector<std::string> verbs = {"cut", "reuse", "plant", "audit"};
  std::vector<WorkloadOp> ops;
  for (size_t i = 0; i < count; ++i) {
    WorkloadOp op;
    op.company = companies[i % companies.size()];
    op.record.objective_id = "o" + std::to_string(i);
    op.record.objective_text =
        verbs[i % verbs.size()] + " co2 " + std::to_string(i * 5) + " pct";
    op.record.fields["Amount"] = std::to_string(i * 5) + "%";
    if (i % 2 == 0) {
      op.record.fields["Deadline"] = std::to_string(2030 + (i % 7));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

DbOptions TestOptions(storage::Env* env) {
  DbOptions options;
  options.env = env;
  options.background_seal = false;  // Seals happen at exact workload points.
  options.seal_threshold = 0;
  options.wal_fsync_interval = 1;
  return options;
}

/// Runs the workload against `dir` through `env`, ignoring failures (the
/// env may "crash" at any byte): Open, insert the first `flush_after` ops,
/// Flush (seals them into a segment), insert the rest.
void RunWorkload(storage::Env* env, const std::string& dir,
                 const std::vector<WorkloadOp>& ops, size_t flush_after,
                 int num_shards) {
  ObjectiveDatabase db(num_shards, TestOptions(env));
  if (!db.Open(dir).ok()) return;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i == flush_after) (void)db.Flush();
    db.Insert(ops[i].record, ops[i].company);
  }
}

std::string TestDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("goalex_fault_test_" + name))
      .string();
}

TEST(StorageFaultTest, KillAtEveryWriteOffsetRecoversAnExactPrefix) {
  std::vector<WorkloadOp> ops = WorkloadOps(8);
  const size_t kFlushAfter = 5;
  std::string dir = TestDir("kill_sweep");

  // Reference pass: total bytes the complete workload writes, and the
  // expected ExportCsv for every possible surviving prefix.
  std::filesystem::remove_all(dir);
  storage::FaultInjectionEnv reference_env(storage::Env::Default());
  RunWorkload(&reference_env, dir, ops, kFlushAfter, /*num_shards=*/1);
  uint64_t total_bytes = reference_env.TotalBytesWritten();
  ASSERT_GT(total_bytes, 0u);
  ASSERT_LT(total_bytes, 60000u) << "workload grew; sweep would crawl";

  std::vector<std::string> reference_csv;  // [k] = CSV of rows 0..k-1.
  {
    ObjectiveDatabase reference(1);
    reference_csv.push_back(reference.ExportCsv(kKinds));
    for (const WorkloadOp& op : ops) {
      reference.Insert(op.record, op.company);
      reference_csv.push_back(reference.ExportCsv(kKinds));
    }
  }

  size_t previous_prefix = 0;
  bool saw_zero = false;
  bool saw_all = false;
  for (uint64_t budget = 0; budget <= total_bytes; ++budget) {
    std::filesystem::remove_all(dir);
    storage::FaultInjectionEnv fault(storage::Env::Default());
    fault.SetWriteBudget(static_cast<int64_t>(budget));
    RunWorkload(&fault, dir, ops, kFlushAfter, 1);

    // Recover from whatever survived, read-write (repairs torn WAL tails).
    ObjectiveDatabase recovered(1, TestOptions(storage::Env::Default()));
    ASSERT_TRUE(recovered.Open(dir).ok()) << "budget " << budget;
    std::vector<DbRow> rows = recovered.SnapshotRows();

    // The surviving rows are exactly ids 0..k-1 — never a gap, never a
    // torn row, never reordering.
    size_t prefix = rows.size();
    ASSERT_LE(prefix, ops.size()) << "budget " << budget;
    for (size_t i = 0; i < prefix; ++i) {
      ASSERT_EQ(rows[i].row_id, static_cast<int64_t>(i))
          << "budget " << budget;
    }
    EXPECT_EQ(recovered.ExportCsv(kKinds), reference_csv[prefix])
        << "budget " << budget;

    // Durability is monotone in the crash point.
    EXPECT_GE(prefix, previous_prefix) << "budget " << budget;
    previous_prefix = prefix;
    if (prefix == 0) saw_zero = true;
    if (prefix == ops.size()) saw_all = true;

    // The recovered store accepts new rows, continuing the id sequence.
    int64_t next = recovered.Insert(ops[0].record, ops[0].company);
    EXPECT_EQ(next, static_cast<int64_t>(prefix)) << "budget " << budget;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_all);
  std::filesystem::remove_all(dir);
}

TEST(StorageFaultTest, KillSweepKeepsEveryShardPrefixConsistent) {
  std::vector<WorkloadOp> ops = WorkloadOps(9);
  const size_t kFlushAfter = 6;
  const int kShards = 4;
  std::string dir = TestDir("kill_sweep_shards");

  std::filesystem::remove_all(dir);
  storage::FaultInjectionEnv reference_env(storage::Env::Default());
  RunWorkload(&reference_env, dir, ops, kFlushAfter, kShards);
  uint64_t total_bytes = reference_env.TotalBytesWritten();
  ASSERT_GT(total_bytes, 0u);

  // Reference rows, with the ids serial insertion assigns.
  std::vector<DbRow> reference;
  {
    ObjectiveDatabase db(kShards);
    for (const WorkloadOp& op : ops) db.Insert(op.record, op.company);
    reference = db.SnapshotRows();
  }
  ASSERT_EQ(reference.size(), ops.size());

  // Sample every 3rd byte to bound the sweep; the single-shard test is the
  // byte-exact one.
  for (uint64_t budget = 0; budget <= total_bytes; budget += 3) {
    std::filesystem::remove_all(dir);
    storage::FaultInjectionEnv fault(storage::Env::Default());
    fault.SetWriteBudget(static_cast<int64_t>(budget));
    RunWorkload(&fault, dir, ops, kFlushAfter, kShards);

    ObjectiveDatabase recovered(kShards, TestOptions(storage::Env::Default()));
    ASSERT_TRUE(recovered.Open(dir).ok()) << "budget " << budget;
    std::vector<DbRow> rows = recovered.SnapshotRows();

    // Every recovered row matches the reference row of the same id, and
    // the recovered id set is prefix-closed per company shard: a surviving
    // row implies every earlier row of its company survived too (each
    // shard's WAL and segments are strictly ordered).
    std::set<int64_t> ids;
    for (const DbRow& row : rows) {
      ASSERT_GE(row.row_id, 0);
      ASSERT_LT(row.row_id, static_cast<int64_t>(reference.size()));
      const DbRow& expected = reference[static_cast<size_t>(row.row_id)];
      EXPECT_EQ(row.company, expected.company) << "budget " << budget;
      EXPECT_EQ(row.record.objective_text, expected.record.objective_text);
      EXPECT_EQ(row.record.fields, expected.record.fields);
      ids.insert(row.row_id);
    }
    for (const DbRow& row : rows) {
      for (const DbRow& earlier : reference) {
        if (earlier.company == row.company && earlier.row_id < row.row_id) {
          EXPECT_TRUE(ids.count(earlier.row_id))
              << "budget " << budget << ": row " << row.row_id
              << " survived but earlier same-shard row " << earlier.row_id
              << " did not";
        }
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(StorageFaultTest, CorruptionFuzzerRecoversSubsetOrFailsCleanly) {
  std::string dir = TestDir("fuzz");
  std::filesystem::remove_all(dir);

  // Build a valid attached store: one sealed segment per shard plus live
  // WAL rows.
  std::vector<WorkloadOp> ops = WorkloadOps(40);
  RunWorkload(storage::Env::Default(), dir, ops, /*flush_after=*/30,
              /*num_shards=*/2);

  // Pristine reference.
  std::map<int64_t, DbRow> reference;
  {
    ObjectiveDatabase db(2);
    ASSERT_TRUE(db.Load(dir).ok());
    for (DbRow& row : db.SnapshotRows()) {
      int64_t id = row.row_id;
      reference.emplace(id, std::move(row));
    }
  }
  ASSERT_EQ(reference.size(), ops.size());

  // Snapshot every file so each iteration starts pristine.
  std::map<std::string, std::string> pristine;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    auto content = storage::Env::Default()->ReadFileToString(
        entry.path().string());
    ASSERT_TRUE(content.ok());
    pristine[entry.path().filename().string()] = std::move(*content);
  }
  ASSERT_GE(pristine.size(), 4u);  // MANIFEST, 2 segments, WALs.

  std::mt19937_64 rng(20260808);
  std::vector<std::string> names;
  for (const auto& [name, bytes] : pristine) names.push_back(name);

  int ok_count = 0, dataloss_count = 0;
  for (int iteration = 0; iteration < 300; ++iteration) {
    // Restore, then mutate one file.
    for (const auto& [name, bytes] : pristine) {
      auto file = storage::Env::Default()->NewWritableFile(dir + "/" + name,
                                                           /*truncate=*/true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(bytes).ok());
    }
    const std::string& victim = names[rng() % names.size()];
    std::string mutated = pristine.at(victim);
    switch (rng() % 4) {
      case 0:  // Bit flip.
        if (!mutated.empty()) {
          mutated[rng() % mutated.size()] ^= uint8_t{1} << (rng() % 8);
        }
        break;
      case 1:  // Truncate.
        mutated.resize(mutated.empty() ? 0 : rng() % mutated.size());
        break;
      case 2: {  // Zero-fill a range.
        if (!mutated.empty()) {
          size_t begin = rng() % mutated.size();
          size_t len = 1 + rng() % 64;
          for (size_t i = begin; i < mutated.size() && i < begin + len; ++i) {
            mutated[i] = '\0';
          }
        }
        break;
      }
      default: {  // Append garbage.
        size_t len = 1 + rng() % 256;
        for (size_t i = 0; i < len; ++i) {
          mutated.push_back(static_cast<char>(rng() & 0xFF));
        }
        break;
      }
    }
    {
      auto file = storage::Env::Default()->NewWritableFile(dir + "/" + victim,
                                                           true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(mutated).ok());
    }

    // Loading the damaged store must either succeed with a valid subset of
    // the reference rows or fail with DataLoss — never crash (ASAN is
    // watching) and never serve fabricated data.
    ObjectiveDatabase db(2);
    Status loaded = db.Load(dir);
    if (loaded.ok()) {
      ++ok_count;
      for (const DbRow& row : db.SnapshotRows()) {
        auto it = reference.find(row.row_id);
        ASSERT_NE(it, reference.end())
            << "iteration " << iteration << " fabricated row " << row.row_id;
        EXPECT_EQ(row.company, it->second.company);
        EXPECT_EQ(row.record.objective_text,
                  it->second.record.objective_text);
        EXPECT_EQ(row.record.fields, it->second.record.fields);
      }
      // Queries over a damaged-but-recovered store stay well-formed.
      (void)db.QueryText("co2", TextFilter{});
      (void)db.CountPerCompany();
    } else {
      ++dataloss_count;
      EXPECT_TRUE(loaded.code() == StatusCode::kDataLoss ||
                  loaded.code() == StatusCode::kNotFound)
          << "iteration " << iteration << ": " << loaded.message();
    }
  }
  // The fuzzer must actually exercise both outcomes.
  EXPECT_GT(ok_count, 10);
  EXPECT_GT(dataloss_count, 10);
  std::filesystem::remove_all(dir);
}

TEST(StorageFaultTest, TornWalTailIsRepairedAndAppendsContinue) {
  std::string dir = TestDir("torn_tail");
  std::filesystem::remove_all(dir);
  std::vector<WorkloadOp> ops = WorkloadOps(6);

  // Crash 3 bytes short of the full workload: the last WAL record is torn.
  storage::FaultInjectionEnv probe(storage::Env::Default());
  RunWorkload(&probe, dir, ops, /*flush_after=*/ops.size(), 1);
  uint64_t total = probe.TotalBytesWritten();
  std::filesystem::remove_all(dir);
  storage::FaultInjectionEnv fault(storage::Env::Default());
  fault.SetWriteBudget(static_cast<int64_t>(total - 3));
  RunWorkload(&fault, dir, ops, ops.size(), 1);
  ASSERT_TRUE(fault.killed());

  // Recovery truncates the torn record and the store keeps working.
  ObjectiveDatabase recovered(1, TestOptions(storage::Env::Default()));
  ASSERT_TRUE(recovered.Open(dir).ok());
  size_t prefix = recovered.size();
  EXPECT_EQ(prefix, ops.size() - 1);
  recovered.Insert(ops.back().record, ops.back().company);

  // A second recovery sees the repaired log plus the new row.
  ObjectiveDatabase again(1, TestOptions(storage::Env::Default()));
  ASSERT_TRUE(again.Open(dir).ok());
  EXPECT_EQ(again.size(), ops.size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace goalex::core
