// Bit-exactness tests for the graph-free inference engine (src/infer): the
// compiled-plan path must produce float-identical logits — not just close,
// not just same argmax — to the autograd evaluation path, across model
// families, random seeds, sequence lengths, and thread counts, and the
// whole extractor must emit identical DetailRecords with the engine on and
// off. Parity holds by construction (both paths run the same forward
// kernels from tensor/forward.h in the same order); these tests pin it down
// end to end so a future kernel "optimization" that reorders float math
// shows up as an exact diff.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/extractor.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "infer/engine.h"
#include "nn/transformer.h"
#include "tensor/view.h"

namespace goalex {
namespace {

std::string TestDataPath(const std::string& name) {
  return std::string(GOALEX_TESTDATA_DIR) + "/" + name;
}

/// A spread of architectures covering the preset axes: depth, width, head
/// count, FFN ratio, position-encoding flavor, and max_seq_len.
std::vector<nn::TransformerConfig> ParityConfigs() {
  std::vector<nn::TransformerConfig> configs;
  nn::TransformerConfig base;
  base.vocab_size = 120;
  base.max_seq_len = 16;
  base.d_model = 16;
  base.heads = 4;
  base.layers = 2;
  base.ffn_dim = 32;
  configs.push_back(base);

  nn::TransformerConfig bert_like = base;
  bert_like.sinusoidal_positions = true;
  bert_like.layers = 1;
  configs.push_back(bert_like);

  nn::TransformerConfig wide = base;
  wide.d_model = 32;
  wide.heads = 2;
  wide.ffn_dim = 96;
  wide.max_seq_len = 24;
  configs.push_back(wide);

  nn::TransformerConfig deep = base;
  deep.layers = 3;
  deep.max_seq_len = 8;
  configs.push_back(deep);
  return configs;
}

std::vector<int32_t> RandomIds(size_t len, int32_t vocab, Rng& rng) {
  std::vector<int32_t> ids(len);
  for (size_t i = 0; i < len; ++i) {
    ids[i] = rng.NextInt(0, vocab - 1);
  }
  return ids;
}

/// EXPECT float-identity (==, not NEAR) between engine logits and the
/// autograd logits for one input.
void ExpectLogitsIdentical(const infer::Engine& engine,
                           const nn::TokenClassifier& model,
                           const std::vector<int32_t>& ids) {
  tensor::TensorView engine_logits = engine.Logits(ids);
  tensor::Var tape_logits = model.ForwardLogits(ids);
  ASSERT_EQ(engine_logits.rows(), tape_logits->value().dim(0));
  ASSERT_EQ(engine_logits.cols(), tape_logits->value().dim(1));
  const float* expected = tape_logits->value().data();
  for (int64_t i = 0; i < engine_logits.numel(); ++i) {
    ASSERT_EQ(engine_logits.data()[i], expected[i])
        << "logit " << i << " diverges for T=" << ids.size();
  }
  EXPECT_EQ(engine.PredictTokens(ids), model.Predict(ids));
}

TEST(InferParityTest, TokenClassifierBitIdenticalAcrossConfigsAndSeeds) {
  for (const nn::TransformerConfig& config : ParityConfigs()) {
    for (uint64_t seed : {1u, 17u, 4242u}) {
      Rng init(seed);
      nn::TokenClassifier model(config, /*num_labels=*/5, init);
      infer::Engine engine = infer::Engine::ForTokenClassifier(model);
      Rng data_rng(seed + 1);
      for (size_t len : {size_t{1}, size_t{2}, size_t{7},
                         static_cast<size_t>(config.max_seq_len)}) {
        ExpectLogitsIdentical(engine, model,
                              RandomIds(len, config.vocab_size, data_rng));
      }
    }
  }
}

TEST(InferParityTest, SequenceClassifierBitIdenticalAcrossConfigsAndSeeds) {
  for (const nn::TransformerConfig& config : ParityConfigs()) {
    for (uint64_t seed : {3u, 99u}) {
      Rng init(seed);
      nn::SequenceClassifier model(config, /*num_classes=*/3, init);
      infer::Engine engine = infer::Engine::ForSequenceClassifier(model);
      Rng data_rng(seed + 1);
      for (size_t len : {size_t{1}, size_t{5},
                         static_cast<size_t>(config.max_seq_len)}) {
        std::vector<int32_t> ids =
            RandomIds(len, config.vocab_size, data_rng);
        tensor::TensorView engine_logits = engine.Logits(ids);
        tensor::Var tape_logits = model.ForwardLogits(ids);
        ASSERT_EQ(engine_logits.rows(), 1);
        ASSERT_EQ(engine_logits.cols(), 3);
        for (int64_t i = 0; i < 3; ++i) {
          ASSERT_EQ(engine_logits.data()[i], tape_logits->value().data()[i]);
        }
        EXPECT_EQ(engine.PredictClass(ids), model.Predict(ids));
      }
    }
  }
}

TEST(InferParityTest, TruncatesLongInputIdentically) {
  nn::TransformerConfig config = ParityConfigs()[0];
  Rng init(7);
  nn::TokenClassifier model(config, 4, init);
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);
  Rng data_rng(8);
  // 3x over max_seq_len: both paths must truncate to the same prefix.
  std::vector<int32_t> ids =
      RandomIds(static_cast<size_t>(config.max_seq_len) * 3,
                config.vocab_size, data_rng);
  tensor::TensorView logits = engine.Logits(ids);
  EXPECT_EQ(logits.rows(), config.max_seq_len);
  ExpectLogitsIdentical(engine, model, ids);
}

TEST(InferParityTest, EmptyInputYieldsEmptyOutput) {
  // The autograd path CHECK-fails on empty input; the engine returns empty
  // gracefully (production texts can tokenize to nothing).
  nn::TransformerConfig config = ParityConfigs()[0];
  Rng init(9);
  nn::TokenClassifier model(config, 4, init);
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);
  EXPECT_TRUE(engine.PredictTokens({}).empty());
  EXPECT_TRUE(engine.Logits({}).empty());
}

TEST(InferParityTest, ConcurrentExecutionIsBitIdentical) {
  // One shared engine, many threads, per-thread contexts: every thread must
  // see exactly the serial answer for its own inputs.
  nn::TransformerConfig config = ParityConfigs()[2];
  Rng init(21);
  nn::TokenClassifier model(config, 6, init);
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);

  std::vector<std::vector<int32_t>> inputs;
  std::vector<std::vector<int32_t>> expected;
  Rng data_rng(22);
  for (int i = 0; i < 64; ++i) {
    inputs.push_back(RandomIds(1 + static_cast<size_t>(i) % 20,
                               config.vocab_size, data_rng));
    expected.push_back(model.Predict(inputs.back()));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < inputs.size(); i += 8) {
        if (engine.PredictTokens(inputs[i]) != expected[i]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(InferParityTest, WeightsStayBorrowedNotCopied) {
  // The plan borrows parameter storage: an in-place weight update (what
  // Adam and LoadParameters do) must change engine output without
  // recompiling.
  nn::TransformerConfig config = ParityConfigs()[0];
  Rng init(31);
  nn::TokenClassifier model(config, 4, init);
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);
  std::vector<int32_t> ids = {5, 9, 13};
  ExpectLogitsIdentical(engine, model, ids);

  float* head_bias = model.head().bias()->mutable_value().data();
  head_bias[0] += 10.0f;  // Mutate in place, as the optimizer does.
  EXPECT_EQ(engine.Logits(ids).at(0, 0),
            model.ForwardLogits(ids)->value().at(0, 0));
  ExpectLogitsIdentical(engine, model, ids);
}

TEST(InferParityTest, GoldenCorpusExtractionIdenticalEngineOnAndOff) {
  // End to end: the same extractor config trained on the same corpus with
  // the same seed must emit byte-identical DetailRecords whether Predict
  // runs on the compiled engine or the autograd tape.
  auto objectives =
      data::LoadObjectives(TestDataPath("golden_objectives.tsv"));
  ASSERT_TRUE(objectives.ok()) << objectives.status().ToString();

  core::ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  config.bpe_merges = 300;
  config.epochs = 2;

  config.use_inference_engine = true;
  core::DetailExtractor engine_extractor(config);
  ASSERT_TRUE(engine_extractor.Train(*objectives).ok());

  config.use_inference_engine = false;
  core::DetailExtractor tape_extractor(config);
  ASSERT_TRUE(tape_extractor.Train(*objectives).ok());

  std::vector<data::DetailRecord> with_engine =
      engine_extractor.ExtractAll(*objectives);
  std::vector<data::DetailRecord> without_engine =
      tape_extractor.ExtractAll(*objectives);
  ASSERT_EQ(with_engine.size(), without_engine.size());
  for (size_t i = 0; i < with_engine.size(); ++i) {
    EXPECT_EQ(with_engine[i].objective_id, without_engine[i].objective_id);
    EXPECT_EQ(with_engine[i].fields, without_engine[i].fields)
        << "record " << i << " (" << with_engine[i].objective_id
        << ") diverges between engine and autograd extraction";
  }
}

}  // namespace
}  // namespace goalex
