#include "common/status.h"

#include <gtest/gtest.h>

namespace goalex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, OkWithMessageNormalizes) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ResourceExhaustedRendersName) {
  EXPECT_EQ(ResourceExhaustedError("queue full").ToString(),
            "RESOURCE_EXHAUSTED: queue full");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailsInner() { return OutOfRangeError("inner"); }

Status UsesReturnIfError() {
  GOALEX_RETURN_IF_ERROR(FailsInner());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace goalex
