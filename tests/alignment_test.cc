#include "weaksup/alignment.h"

#include <gtest/gtest.h>

#include "bpe/bpe_tokenizer.h"
#include "labels/iob.h"

namespace goalex::weaksup {
namespace {

labels::LabelCatalog Catalog() {
  return labels::LabelCatalog({"Action", "Amount"});
}

// Builds a fake subword sequence: each entry of `pieces_per_word` gives how
// many subwords that word splits into.
std::vector<bpe::Subword> FakeSubwords(
    const std::vector<int>& pieces_per_word) {
  std::vector<bpe::Subword> out;
  for (size_t w = 0; w < pieces_per_word.size(); ++w) {
    for (int p = 0; p < pieces_per_word[w]; ++p) {
      bpe::Subword sw;
      sw.word_index = w;
      sw.is_word_start = (p == 0);
      sw.id = static_cast<int32_t>(out.size() + 4);
      out.push_back(sw);
    }
  }
  return out;
}

TEST(ProjectLabelsTest, SingleSubwordPerWordIsIdentity) {
  labels::LabelCatalog c = Catalog();
  std::vector<labels::LabelId> word_labels = {0, c.BeginId(0), 0};
  std::vector<bpe::Subword> subwords = FakeSubwords({1, 1, 1});
  EXPECT_EQ(ProjectLabelsToSubwords(word_labels, subwords, c), word_labels);
}

TEST(ProjectLabelsTest, BeginWordSplitsToBeginInside) {
  labels::LabelCatalog c = Catalog();
  std::vector<labels::LabelId> word_labels = {c.BeginId(0)};
  std::vector<bpe::Subword> subwords = FakeSubwords({3});
  std::vector<labels::LabelId> out =
      ProjectLabelsToSubwords(word_labels, subwords, c);
  EXPECT_EQ(out, (std::vector<labels::LabelId>{c.BeginId(0), c.InsideId(0),
                                               c.InsideId(0)}));
}

TEST(ProjectLabelsTest, InsideWordStaysInside) {
  labels::LabelCatalog c = Catalog();
  std::vector<labels::LabelId> word_labels = {c.BeginId(1), c.InsideId(1)};
  std::vector<bpe::Subword> subwords = FakeSubwords({1, 2});
  std::vector<labels::LabelId> out =
      ProjectLabelsToSubwords(word_labels, subwords, c);
  EXPECT_EQ(out, (std::vector<labels::LabelId>{c.BeginId(1), c.InsideId(1),
                                               c.InsideId(1)}));
}

TEST(ProjectLabelsTest, OutsideWordsStayOutside) {
  labels::LabelCatalog c = Catalog();
  std::vector<labels::LabelId> word_labels = {0, 0};
  std::vector<bpe::Subword> subwords = FakeSubwords({2, 3});
  std::vector<labels::LabelId> out =
      ProjectLabelsToSubwords(word_labels, subwords, c);
  for (labels::LabelId id : out) {
    EXPECT_EQ(id, labels::LabelCatalog::kOutsideId);
  }
}

TEST(CollapseTest, TakesFirstSubwordLabel) {
  labels::LabelCatalog c = Catalog();
  std::vector<bpe::Subword> subwords = FakeSubwords({2, 1});
  std::vector<labels::LabelId> subword_labels = {c.BeginId(0), c.InsideId(0),
                                                 c.BeginId(1)};
  std::vector<labels::LabelId> out =
      CollapseSubwordLabels(subword_labels, subwords, 2);
  EXPECT_EQ(out, (std::vector<labels::LabelId>{c.BeginId(0), c.BeginId(1)}));
}

TEST(CollapseTest, MissingWordsDefaultToOutside) {
  labels::LabelCatalog c = Catalog();
  // Subwords only cover word 0; word 1 was truncated away.
  std::vector<bpe::Subword> subwords = FakeSubwords({1});
  std::vector<labels::LabelId> subword_labels = {c.BeginId(0)};
  std::vector<labels::LabelId> out =
      CollapseSubwordLabels(subword_labels, subwords, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], c.BeginId(0));
  EXPECT_EQ(out[1], labels::LabelCatalog::kOutsideId);
}

TEST(RoundTripTest, ProjectThenCollapseRecoversWordLabels) {
  labels::LabelCatalog c = Catalog();
  std::vector<labels::LabelId> word_labels = {
      0, c.BeginId(0), c.InsideId(0), 0, c.BeginId(1)};
  std::vector<bpe::Subword> subwords = FakeSubwords({2, 3, 1, 1, 4});
  std::vector<labels::LabelId> projected =
      ProjectLabelsToSubwords(word_labels, subwords, c);
  std::vector<labels::LabelId> collapsed =
      CollapseSubwordLabels(projected, subwords, word_labels.size());
  EXPECT_EQ(collapsed, word_labels);
}

TEST(RoundTripTest, RealBpeRoundTrip) {
  labels::LabelCatalog c = Catalog();
  std::vector<std::string> corpus = {"reduce emissions by 2030",
                                     "reduce energy consumption"};
  bpe::BpeModel model = bpe::BpeModel::Train(corpus, 10);
  std::vector<std::string> words = {"reduce", "energy", "consumption"};
  std::vector<bpe::Subword> subwords = model.EncodeWords(words);
  std::vector<labels::LabelId> word_labels = {c.BeginId(0), c.BeginId(1),
                                              c.InsideId(1)};
  std::vector<labels::LabelId> projected =
      ProjectLabelsToSubwords(word_labels, subwords, c);
  ASSERT_EQ(projected.size(), subwords.size());
  EXPECT_EQ(CollapseSubwordLabels(projected, subwords, words.size()),
            word_labels);
}

}  // namespace
}  // namespace goalex::weaksup
