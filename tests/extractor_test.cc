// End-to-end tests of the core DetailExtractor (Figure 2's development and
// production phases). Training is slow relative to unit tests, so the
// trained extractor is shared across tests via a fixture.
#include "core/extractor.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/database.h"
#include "data/generator.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace goalex::core {
namespace {

ExtractorConfig SmallConfig() {
  ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  config.bpe_merges = 1600;
  return config;
}

class TrainedExtractorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SustainabilityGoalsConfig corpus_config;
    corpus_config.objective_count = 600;
    std::vector<data::Objective> corpus =
        data::GenerateSustainabilityGoals(corpus_config);
    split_ = new data::Split(data::TrainTestSplit(corpus, 0.2, 3));
    extractor_ = new DetailExtractor(SmallConfig());
    ASSERT_TRUE(extractor_->Train(split_->train).ok());
  }

  static void TearDownTestSuite() {
    delete extractor_;
    extractor_ = nullptr;
    delete split_;
    split_ = nullptr;
  }

  static DetailExtractor* extractor_;
  static data::Split* split_;
};

DetailExtractor* TrainedExtractorTest::extractor_ = nullptr;
data::Split* TrainedExtractorTest::split_ = nullptr;

TEST_F(TrainedExtractorTest, TrainingCoverageStatsPopulated) {
  const weaksup::WeakLabelStats& stats = extractor_->last_train_stats();
  EXPECT_EQ(stats.objective_count, split_->train.size());
  EXPECT_GT(stats.MatchRate(), 0.85);
  EXPECT_GT(stats.labeled_token_count, 0u);
}

TEST_F(TrainedExtractorTest, ExtractsFromCleanObjective) {
  data::Objective o;
  o.id = "clean";
  o.text = "Reduce energy consumption by 20% by 2025.";
  data::DetailRecord record = extractor_->Extract(o);
  EXPECT_EQ(record.objective_id, "clean");
  // The model should find the action and the amount on this prototypical
  // sentence (the amount's trailing "%" may be dropped by the scaled-down
  // model, so only the numeric core is asserted).
  EXPECT_EQ(record.FieldOrEmpty("Action"), "Reduce");
  EXPECT_EQ(record.FieldOrEmpty("Amount").rfind("20", 0), 0u);
}

TEST_F(TrainedExtractorTest, BeatsChanceOnHeldOutData) {
  std::vector<data::DetailRecord> predictions =
      extractor_->ExtractAll(split_->test);
  eval::FieldEvaluator evaluator(data::SustainabilityGoalKinds());
  evaluator.AddAll(split_->test, predictions);
  EXPECT_GT(evaluator.Overall().f1, 0.6);
}

TEST_F(TrainedExtractorTest, ExtractionIsDeterministic) {
  data::Objective o;
  o.text = "Achieve net-zero carbon by 2040.";
  data::DetailRecord a = extractor_->Extract(o);
  data::DetailRecord b = extractor_->Extract(o);
  EXPECT_EQ(a.fields, b.fields);
}

TEST_F(TrainedExtractorTest, ParallelExtractAllByteIdenticalToSerial) {
  runtime::Stats serial_stats;
  runtime::Stats parallel_stats;
  std::vector<data::DetailRecord> serial =
      extractor_->ExtractAll(split_->test, /*num_threads=*/1, &serial_stats);
  std::vector<data::DetailRecord> parallel =
      extractor_->ExtractAll(split_->test, /*num_threads=*/4,
                             &parallel_stats);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].objective_id, parallel[i].objective_id) << i;
    EXPECT_EQ(serial[i].objective_text, parallel[i].objective_text) << i;
    EXPECT_EQ(serial[i].fields, parallel[i].fields) << i;
  }
  EXPECT_EQ(serial_stats.items, split_->test.size());
  EXPECT_EQ(serial_stats.threads, 1);
  EXPECT_EQ(parallel_stats.threads, 4);
}

TEST_F(TrainedExtractorTest, EmptyTextYieldsEmptyRecord) {
  data::Objective o;
  o.id = "empty";
  o.text = "";
  data::DetailRecord record = extractor_->Extract(o);
  EXPECT_TRUE(record.fields.empty());
}

TEST_F(TrainedExtractorTest, PredictWordLabelsAlignsWithTokens) {
  std::string text = "Reduce waste by 30% by 2030.";
  std::vector<labels::LabelId> word_labels =
      extractor_->PredictWordLabels(text);
  // "Reduce waste by 30 % by 2030 ." -> 8 word tokens.
  EXPECT_EQ(word_labels.size(), 8u);
  for (labels::LabelId id : word_labels) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, extractor_->catalog().label_count());
  }
}

TEST_F(TrainedExtractorTest, SaveLoadRoundTrip) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "goalex_extractor_test")
          .string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(extractor_->Save(dir).ok());

  DetailExtractor restored(SmallConfig());
  ASSERT_TRUE(restored.Load(dir).ok());
  data::Objective o;
  o.text = "Reduce energy consumption by 20% by 2025.";
  EXPECT_EQ(extractor_->Extract(o).fields, restored.Extract(o).fields);
  std::filesystem::remove_all(dir);
}

TEST_F(TrainedExtractorTest, NormalizationMakesMessyInputExtractable) {
  data::Objective messy;
  // Zero-width space, curly apostrophe, repeated whitespace.
  messy.text = "Reduce   energy\xE2\x80\x8B consumption by 20% by 2025.";
  data::DetailRecord record = extractor_->Extract(messy);
  EXPECT_EQ(record.FieldOrEmpty("Action"), "Reduce");
}

TEST(DetailExtractorTest, TrainOnEmptyCorpusFails) {
  DetailExtractor extractor(SmallConfig());
  EXPECT_FALSE(extractor.Train({}).ok());
}

TEST(DetailExtractorTest, LoadFromMissingDirectoryFails) {
  DetailExtractor extractor(SmallConfig());
  EXPECT_FALSE(extractor.Load("/nonexistent/dir").ok());
}

TEST(DetailExtractorTest, EpochCallbackFires) {
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 60;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(corpus_config);
  ExtractorConfig config = SmallConfig();
  config.epochs = 3;
  DetailExtractor extractor(config);
  std::vector<int32_t> epochs;
  std::vector<double> losses;
  ASSERT_TRUE(extractor
                  .Train(corpus,
                         [&](const EpochStats& stats) {
                           epochs.push_back(stats.epoch);
                           losses.push_back(stats.mean_train_loss);
                         })
                  .ok());
  EXPECT_EQ(epochs, (std::vector<int32_t>{1, 2, 3}));
  // Loss decreases over training.
  EXPECT_LT(losses.back(), losses.front());
}

TEST(ConfigTest, PresetProperties) {
  ExtractorConfig config;
  config.kinds = {"Action"};
  config.preset = ModelPreset::kRoberta;
  EXPECT_FALSE(config.LowercaseTokenizer());
  EXPECT_EQ(config.BuildTransformerConfig(100).layers, 2);
  EXPECT_FALSE(config.BuildTransformerConfig(100).sinusoidal_positions);

  config.preset = ModelPreset::kDistilRoberta;
  EXPECT_EQ(config.BuildTransformerConfig(100).layers, 1);

  config.preset = ModelPreset::kBert;
  EXPECT_TRUE(config.LowercaseTokenizer());
  EXPECT_TRUE(config.BuildTransformerConfig(100).sinusoidal_positions);

  config.preset = ModelPreset::kDistilBert;
  EXPECT_EQ(config.BuildTransformerConfig(100).layers, 1);
}

TEST(ConfigTest, EffectiveLearningRate) {
  ExtractorConfig config;
  config.learning_rate = 5e-5f;
  config.learning_rate_scale = 20.0f;
  EXPECT_NEAR(config.EffectiveLearningRate(), 1e-3f, 1e-9f);
}

TEST(ConfigTest, PresetNames) {
  EXPECT_STREQ(ModelPresetName(ModelPreset::kRoberta), "roberta");
  EXPECT_STREQ(ModelPresetName(ModelPreset::kDistilBert), "distilbert");
}

}  // namespace
}  // namespace goalex::core
