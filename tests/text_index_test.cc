// QueryText correctness: the inverted-index path (growing term maps plus
// sealed-segment posting lists) is checked against a brute-force scan that
// re-derives term sets, phrase containment, and filter predicates per row
// from first principles, over generated corpora and handmade edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/database.h"
#include "data/generator.h"
#include "data/schema.h"
#include "storage/row.h"
#include "storage/segment.h"

namespace goalex::core {
namespace {

const std::vector<std::string> kCompanies = {
    "Acme Corp", "Borealis",  "Cypress",  "Dynamo",  "Everline", "Fjord",
    "Gecko",     "Helix",     "Ionia",    "Juniper", "Krait",    "Lumen",
};

/// A query together with the term/phrase decomposition the brute-force
/// side uses. The terms here are the *effective* AND set: phrase terms are
/// part of it (a row must contain each phrase word before contiguity is
/// even checked), matching the documented QueryText semantics.
struct QueryCase {
  std::string query;
  std::vector<std::string> terms;
  std::vector<std::vector<std::string>> phrases;
  TextFilter filter;
};

/// Every text QueryText matches against: the objective text plus each
/// non-empty field value.
std::vector<std::string_view> RowTexts(const DbRow& row) {
  std::vector<std::string_view> texts;
  texts.push_back(row.record.objective_text);
  for (const auto& [kind, value] : row.record.fields) {
    if (!value.empty()) texts.push_back(value);
  }
  return texts;
}

std::unordered_set<std::string> RowTermSet(const DbRow& row) {
  std::unordered_set<std::string> terms;
  for (std::string_view text : RowTexts(row)) {
    for (std::string& term : storage::TextIndexTerms(text)) {
      terms.insert(std::move(term));
    }
  }
  return terms;
}

bool MatchesFilter(const DbRow& row, const TextFilter& filter) {
  if (!filter.company.empty() && row.company != filter.company) return false;
  if (!filter.with_field.empty() &&
      row.record.FieldOrEmpty(filter.with_field).empty()) {
    return false;
  }
  if (filter.min_deadline_year || filter.max_deadline_year) {
    std::optional<int> year = storage::DeadlineYearOfRecord(row.record);
    if (!year) return false;
    if (filter.min_deadline_year && *year < *filter.min_deadline_year) {
      return false;
    }
    if (filter.max_deadline_year && *year > *filter.max_deadline_year) {
      return false;
    }
  }
  return true;
}

bool MatchesCase(const DbRow& row, const QueryCase& query_case,
                 const std::unordered_set<std::string>& row_terms) {
  if (!MatchesFilter(row, query_case.filter)) return false;
  // A query with no effective terms selects nothing unless the filter is
  // active.
  if (query_case.terms.empty() && query_case.phrases.empty()) {
    return !query_case.filter.company.empty() ||
           !query_case.filter.with_field.empty() ||
           query_case.filter.min_deadline_year.has_value() ||
           query_case.filter.max_deadline_year.has_value();
  }
  for (const std::string& term : query_case.terms) {
    if (!row_terms.count(term)) return false;
  }
  for (const std::vector<std::string>& phrase : query_case.phrases) {
    bool contiguous = false;
    for (std::string_view text : RowTexts(row)) {
      if (storage::ContainsPhrase(text, phrase)) {
        contiguous = true;
        break;
      }
    }
    if (!contiguous) return false;
  }
  return true;
}

std::vector<int64_t> BruteForce(const std::vector<DbRow>& rows,
                                const QueryCase& query_case) {
  std::vector<int64_t> ids;
  for (const DbRow& row : rows) {
    if (MatchesCase(row, query_case, RowTermSet(row))) {
      ids.push_back(row.row_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int64_t> Ids(const std::vector<DbRow>& rows) {
  std::vector<int64_t> ids;
  for (const DbRow& row : rows) ids.push_back(row.row_id);
  return ids;
}

/// Inserts the generated corpus, assigning companies round-robin (the
/// generator leaves Objective::company empty).
void FillFromCorpus(ObjectiveDatabase* db, size_t count, uint64_t seed) {
  data::SustainabilityGoalsConfig config;
  config.objective_count = count;
  config.seed = seed;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(config);
  for (size_t i = 0; i < corpus.size(); ++i) {
    data::DetailRecord record;
    record.objective_id = corpus[i].id;
    record.objective_text = corpus[i].text;
    for (const data::Annotation& annotation : corpus[i].annotations) {
      record.fields[annotation.kind] = annotation.value;
    }
    db->Insert(record, kCompanies[i % kCompanies.size()],
               "report-" + std::to_string(i % 7), static_cast<int>(i % 40));
  }
}

std::vector<QueryCase> CorpusQueries() {
  std::vector<QueryCase> cases;
  cases.push_back({"emissions", {"emissions"}, {}, {}});
  cases.push_back({"reduce 2030", {"reduce", "2030"}, {}, {}});
  cases.push_back({"CO2", {"co2"}, {}, {}});
  cases.push_back({"50", {"50"}, {}, {}});
  cases.push_back({"zz-no-such-term", {"zz-no-such-term"}, {}, {}});
  cases.push_back(
      {"\"net zero\"", {"net", "zero"}, {{"net", "zero"}}, {}});
  cases.push_back({"reduce \"supply chain\"",
                   {"reduce", "supply", "chain"},
                   {{"supply", "chain"}},
                   {}});
  {
    QueryCase with_company;
    with_company.query = "emissions";
    with_company.terms = {"emissions"};
    with_company.filter.company = "Borealis";
    cases.push_back(with_company);
  }
  {
    QueryCase with_field;
    with_field.query = "by";
    with_field.terms = {"by"};
    with_field.filter.with_field = "Deadline";
    cases.push_back(with_field);
  }
  {
    QueryCase with_years;
    with_years.query = "reduce";
    with_years.terms = {"reduce"};
    with_years.filter.min_deadline_year = 2028;
    with_years.filter.max_deadline_year = 2035;
    cases.push_back(with_years);
  }
  {
    QueryCase everything;
    everything.query = "\"per cent\" emissions";
    everything.terms = {"per", "cent", "emissions"};
    everything.phrases = {{"per", "cent"}};
    everything.filter.with_field = "Amount";
    everything.filter.max_deadline_year = 2040;
    cases.push_back(everything);
  }
  {
    QueryCase filter_only;
    filter_only.query = "";
    filter_only.filter.company = "Acme Corp";
    filter_only.filter.with_field = "Amount";
    cases.push_back(filter_only);
  }
  return cases;
}

void ExpectParity(const ObjectiveDatabase& db,
                  const std::vector<DbRow>& rows,
                  const std::vector<QueryCase>& cases,
                  const std::string& label) {
  for (const QueryCase& query_case : cases) {
    std::vector<int64_t> expected = BruteForce(rows, query_case);
    std::vector<int64_t> actual =
        Ids(db.QueryText(query_case.query, query_case.filter));
    EXPECT_EQ(actual, expected)
        << label << ": query \"" << query_case.query << "\"";
  }
}

TEST(TextIndexTest, GrowingStoreMatchesBruteForceOnGeneratedCorpus) {
  ObjectiveDatabase db(4);
  FillFromCorpus(&db, 3000, /*seed=*/7);
  std::vector<DbRow> rows = db.SnapshotRows();
  ASSERT_EQ(rows.size(), 3000u);
  ExpectParity(db, rows, CorpusQueries(), "growing");
}

TEST(TextIndexTest, SealedAndMixedStoresMatchGrowingExactly) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_text_index_test")
                        .string();
  std::filesystem::remove_all(dir);

  // Growing-only store.
  ObjectiveDatabase growing(4);
  FillFromCorpus(&growing, 2000, /*seed=*/11);
  std::vector<DbRow> rows = growing.SnapshotRows();

  // All-sealed store: Save + mmap Load.
  ASSERT_TRUE(growing.Save(dir).ok());
  ObjectiveDatabase sealed(4);
  ASSERT_TRUE(sealed.Load(dir).ok());
  ASSERT_GT(sealed.SealedSegmentCount(), 0u);
  ASSERT_EQ(sealed.size(), rows.size());

  // Mixed store: an attached database with sealed segments below live
  // growing rows (insert, Flush, insert more).
  std::string mixed_dir = dir + "_mixed";
  std::filesystem::remove_all(mixed_dir);
  DbOptions options;
  options.background_seal = false;
  ObjectiveDatabase mixed(4, options);
  ASSERT_TRUE(mixed.Open(mixed_dir).ok());
  {
    data::SustainabilityGoalsConfig config;
    config.objective_count = 2000;
    config.seed = 11;
    std::vector<data::Objective> corpus =
        data::GenerateSustainabilityGoals(config);
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (i == corpus.size() * 2 / 3) {
        ASSERT_TRUE(mixed.Flush().ok());
      }
      data::DetailRecord record;
      record.objective_id = corpus[i].id;
      record.objective_text = corpus[i].text;
      for (const data::Annotation& annotation : corpus[i].annotations) {
        record.fields[annotation.kind] = annotation.value;
      }
      mixed.Insert(record, kCompanies[i % kCompanies.size()],
                   "report-" + std::to_string(i % 7),
                   static_cast<int>(i % 40));
    }
  }
  ASSERT_GT(mixed.SealedSegmentCount(), 0u);
  ASSERT_EQ(mixed.size(), rows.size());

  std::vector<QueryCase> cases = CorpusQueries();
  ExpectParity(growing, rows, cases, "growing");
  ExpectParity(sealed, rows, cases, "sealed");
  ExpectParity(mixed, rows, cases, "mixed");

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(mixed_dir);
}

TEST(TextIndexTest, EdgeTermsPhrasesAndFilters) {
  ObjectiveDatabase db(2);
  auto insert = [&](const std::string& text, const std::string& company,
                    std::map<std::string, std::string> fields =
                        std::map<std::string, std::string>{}) {
    data::DetailRecord record;
    record.objective_id = "e";
    record.objective_text = text;
    record.fields = std::move(fields);
    return db.Insert(record, company);
  };
  int64_t r0 = insert("Cut CO2 emissions by 50% by 2030.", "Acme",
                      {{"Amount", "50%"}, {"Deadline", "2030"}});
  int64_t r1 = insert("Emissions will be cut in half.", "Beta");
  int64_t r2 = insert("Réduire les émissions de moitié.", "Acme");
  int64_t r3 = insert("Source renewable energy.", "Beta",
                      {{"Qualifier", "supply chain only"}});
  int64_t r4 = insert("cut costs, then cut emissions", "Gamma");

  auto ids = [&](const std::string& query, TextFilter filter = {}) {
    return Ids(db.QueryText(query, filter));
  };
  using IdList = std::vector<int64_t>;

  // Case-insensitive matching over objective text.
  EXPECT_EQ(ids("EMISSIONS"), (IdList{r0, r1, r4}));
  EXPECT_EQ(ids("emissions"), (IdList{r0, r1, r4}));
  // Terms found only in a field value still match.
  EXPECT_EQ(ids("chain"), (IdList{r3}));
  // Non-ASCII terms round-trip through the index.
  EXPECT_EQ(ids("émissions"), (IdList{r2}));
  // AND semantics across terms; duplicates collapse.
  EXPECT_EQ(ids("cut emissions"), (IdList{r0, r1, r4}));
  EXPECT_EQ(ids("cut cut emissions"), (IdList{r0, r1, r4}));
  EXPECT_EQ(ids("cut renewable"), IdList{});
  // Punctuation-only and empty queries select nothing without a filter.
  EXPECT_EQ(ids(""), IdList{});
  EXPECT_EQ(ids("?!... ,,"), IdList{});
  // ...but with a filter they mean "everything the filter selects".
  {
    TextFilter acme;
    acme.company = "Acme";
    EXPECT_EQ(ids("", acme), (IdList{r0, r2}));
    EXPECT_EQ(ids("emissions", acme), (IdList{r0}));
  }
  // Phrases require contiguity; the same words scattered do not match.
  EXPECT_EQ(ids("\"cut emissions\""), (IdList{r4}));
  EXPECT_EQ(ids("\"emissions by 50\""), (IdList{r0}));
  EXPECT_EQ(ids("\"supply chain\""), (IdList{r3}));
  EXPECT_EQ(ids("\"emissions cut\""), IdList{});
  // A single-word phrase behaves like a plain term.
  EXPECT_EQ(ids("\"emissions\""), (IdList{r0, r1, r4}));
  // An unterminated quote runs to the end of the query.
  EXPECT_EQ(ids("\"cut emissions"), (IdList{r4}));
  // Field filters and deadline windows compose with terms.
  {
    TextFilter deadline;
    deadline.with_field = "Deadline";
    EXPECT_EQ(ids("emissions", deadline), (IdList{r0}));
  }
  {
    TextFilter window;
    window.min_deadline_year = 2029;
    window.max_deadline_year = 2031;
    EXPECT_EQ(ids("emissions", window), (IdList{r0}));
    window.max_deadline_year = 2029;
    EXPECT_EQ(ids("emissions", window), IdList{});
  }
}

TEST(TextIndexTest, LargeCorpusParity) {
  // Acceptance-scale check: QueryText must be multiset-equal to the brute
  // force on a 100k+ row store. Term-only queries keep the brute force to
  // one term-set pass per row.
  ObjectiveDatabase db(8);
  FillFromCorpus(&db, 100'000, /*seed=*/3);
  std::vector<DbRow> rows = db.SnapshotRows();
  ASSERT_EQ(rows.size(), 100'000u);

  std::vector<QueryCase> cases;
  cases.push_back({"emissions", {"emissions"}, {}, {}});
  cases.push_back({"reduce 2030", {"reduce", "2030"}, {}, {}});
  {
    QueryCase filtered;
    filtered.query = "by";
    filtered.terms = {"by"};
    filtered.filter.company = kCompanies[2];
    filtered.filter.with_field = "Deadline";
    cases.push_back(filtered);
  }

  // One brute-force pass computes each row's term set once for all cases.
  std::vector<std::vector<int64_t>> expected(cases.size());
  for (const DbRow& row : rows) {
    std::unordered_set<std::string> terms = RowTermSet(row);
    for (size_t c = 0; c < cases.size(); ++c) {
      if (MatchesCase(row, cases[c], terms)) {
        expected[c].push_back(row.row_id);
      }
    }
  }
  for (size_t c = 0; c < cases.size(); ++c) {
    std::sort(expected[c].begin(), expected[c].end());
    std::vector<int64_t> actual =
        Ids(db.QueryText(cases[c].query, cases[c].filter));
    EXPECT_EQ(actual, expected[c])
        << "query \"" << cases[c].query << "\"";
    if (c == 0) {
      EXPECT_GT(actual.size(), 0u) << "degenerate corpus: nothing matched";
    }
  }
}

}  // namespace
}  // namespace goalex::core
