#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/table.h"
#include "eval/timer.h"

namespace goalex::eval {
namespace {

TEST(PrfTest, PerfectCounts) {
  Prf prf = ComputePrf({10, 0, 0});
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
}

TEST(PrfTest, ZeroCountsAreDefined) {
  Prf prf = ComputePrf({0, 0, 0});
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f1, 0.0);
}

TEST(PrfTest, KnownValues) {
  // TP=6, FP=2, FN=4 -> P=0.75, R=0.6, F1=2*.75*.6/1.35.
  Prf prf = ComputePrf({6, 2, 4});
  EXPECT_NEAR(prf.precision, 0.75, 1e-9);
  EXPECT_NEAR(prf.recall, 0.6, 1e-9);
  EXPECT_NEAR(prf.f1, 2 * 0.75 * 0.6 / 1.35, 1e-9);
}

TEST(NormalizeFieldValueTest, CollapsesWhitespace) {
  EXPECT_EQ(NormalizeFieldValue("  net   zero "), "net zero");
  EXPECT_EQ(NormalizeFieldValue(""), "");
}

data::Objective MakeGold(
    const std::vector<data::Annotation>& annotations) {
  data::Objective o;
  o.text = "irrelevant";
  o.annotations = annotations;
  return o;
}

data::DetailRecord MakePred(
    const std::map<std::string, std::string>& fields) {
  data::DetailRecord r;
  r.fields = fields;
  return r;
}

TEST(FieldEvaluatorTest, ExactMatchIsTp) {
  FieldEvaluator evaluator({"Action"});
  evaluator.Add(MakeGold({{"Action", "Reduce"}}),
                MakePred({{"Action", "Reduce"}}));
  Counts c = evaluator.Total();
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 0);
  EXPECT_EQ(c.fn, 0);
}

TEST(FieldEvaluatorTest, MissIsFn) {
  FieldEvaluator evaluator({"Action"});
  evaluator.Add(MakeGold({{"Action", "Reduce"}}), MakePred({}));
  Counts c = evaluator.Total();
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tp, 0);
}

TEST(FieldEvaluatorTest, SpuriousIsFp) {
  FieldEvaluator evaluator({"Action"});
  evaluator.Add(MakeGold({}), MakePred({{"Action", "Reduce"}}));
  Counts c = evaluator.Total();
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 0);
}

TEST(FieldEvaluatorTest, WrongValueIsFpAndFn) {
  FieldEvaluator evaluator({"Action"});
  evaluator.Add(MakeGold({{"Action", "Reduce"}}),
                MakePred({{"Action", "Increase"}}));
  Counts c = evaluator.Total();
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tp, 0);
}

TEST(FieldEvaluatorTest, BothEmptyIgnored) {
  FieldEvaluator evaluator({"Action"});
  evaluator.Add(MakeGold({}), MakePred({}));
  Counts c = evaluator.Total();
  EXPECT_EQ(c.tp + c.fp + c.fn, 0);
}

TEST(FieldEvaluatorTest, WhitespaceInsensitiveComparison) {
  FieldEvaluator evaluator({"Qualifier"});
  evaluator.Add(MakeGold({{"Qualifier", "energy  consumption"}}),
                MakePred({{"Qualifier", "energy consumption"}}));
  EXPECT_EQ(evaluator.Total().tp, 1);
}

TEST(FieldEvaluatorTest, PerKindSeparation) {
  FieldEvaluator evaluator({"Action", "Deadline"});
  evaluator.Add(
      MakeGold({{"Action", "Reduce"}, {"Deadline", "2030"}}),
      MakePred({{"Action", "Reduce"}, {"Deadline", "2040"}}));
  EXPECT_EQ(evaluator.ForKind("Action").f1, 1.0);
  EXPECT_EQ(evaluator.ForKind("Deadline").f1, 0.0);
  EXPECT_EQ(evaluator.ForKind("NoSuchKind").f1, 0.0);
}

TEST(FieldEvaluatorTest, OnlySchemaKindsCount) {
  FieldEvaluator evaluator({"Action"});
  // A gold annotation outside the schema is invisible to the evaluator.
  evaluator.Add(MakeGold({{"Deadline", "2030"}}), MakePred({}));
  EXPECT_EQ(evaluator.Total().fn, 0);
}

TEST(FieldEvaluatorTest, AddAllAggregates) {
  FieldEvaluator evaluator({"Action"});
  std::vector<data::Objective> gold = {MakeGold({{"Action", "Cut"}}),
                                       MakeGold({{"Action", "Grow"}})};
  std::vector<data::DetailRecord> pred = {MakePred({{"Action", "Cut"}}),
                                          MakePred({})};
  evaluator.AddAll(gold, pred);
  Counts c = evaluator.Total();
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
}

TEST(SpanMatchTest, ExactSpansMatch) {
  std::vector<labels::Span> gold = {{0, 1, 3}, {1, 5, 6}};
  std::vector<labels::Span> pred = {{0, 1, 3}, {1, 5, 6}};
  Counts c = CountSpanMatches(gold, pred);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 0);
  EXPECT_EQ(c.fn, 0);
}

TEST(SpanMatchTest, BoundaryMismatchIsWrong) {
  std::vector<labels::Span> gold = {{0, 1, 3}};
  std::vector<labels::Span> pred = {{0, 1, 4}};
  Counts c = CountSpanMatches(gold, pred);
  EXPECT_EQ(c.tp, 0);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
}

TEST(SpanMatchTest, DuplicatePredictionsCountOnce) {
  std::vector<labels::Span> gold = {{0, 1, 3}};
  std::vector<labels::Span> pred = {{0, 1, 3}, {0, 1, 3}};
  Counts c = CountSpanMatches(gold, pred);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
}

TEST(TextTableTest, RendersAlignedTable) {
  TextTable table({"Approach", "F1"});
  table.AddRow({"CRF", "0.61"});
  table.AddRow({"GoalSpotter", "0.85"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| Approach    |"), std::string::npos);
  EXPECT_NE(out.find("| GoalSpotter | 0.85 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, TruncatesLongCells) {
  TextTable table({"Text"});
  table.AddRow({"a very long cell that should be truncated"});
  std::string out = table.Render(12);
  EXPECT_NE(out.find("a very le..."), std::string::npos - 1);
  EXPECT_NE(out.find("..."), std::string::npos);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  double first = timer.Seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(timer.Minutes(), 0.0);
  timer.Reset();
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_LT(timer.Seconds(), 10.0);
}

}  // namespace
}  // namespace goalex::eval
