#include "common/string_util.h"

#include <gtest/gtest.h>

namespace goalex {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, KeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, NoDelimiter) {
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitWhitespaceTest, DropsEmpty) {
  EXPECT_EQ(StrSplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(StrSplitWhitespace("   ").empty());
  EXPECT_TRUE(StrSplitWhitespace("").empty());
}

TEST(StrJoinTest, Joins) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"x"}, ","), "x");
}

TEST(StripTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(" \t\n "), "");
}

TEST(AsciiToLowerTest, LowercasesAsciiOnly) {
  EXPECT_EQ(AsciiToLower("AbC123"), "abc123");
  // Multi-byte UTF-8 is passed through.
  EXPECT_EQ(AsciiToLower("CO\xE2\x82\x82"), "co\xE2\x82\x82");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(IsAsciiDigitsTest, Behaviour) {
  EXPECT_TRUE(IsAsciiDigits("2040"));
  EXPECT_FALSE(IsAsciiDigits("20.40"));
  EXPECT_FALSE(IsAsciiDigits(""));
  EXPECT_FALSE(IsAsciiDigits("20x"));
}

TEST(StrReplaceAllTest, ReplacesAllOccurrences) {
  EXPECT_EQ(StrReplaceAll("aXbXc", "X", "__"), "a__b__c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(StrReplaceAll("abc", "", "x"), "abc");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(0.856, 2), "0.86");
  EXPECT_EQ(FormatDouble(3.0, 1), "3.0");
  EXPECT_EQ(FormatDouble(-1.25, 2), "-1.25");
}

}  // namespace
}  // namespace goalex
