// Tests of the observability layer: metric primitive semantics, histogram
// bucket invariants, registry snapshot consistency, exporter formats, and a
// multi-threaded stress test that must pass under GOALEX_ENABLE_TSAN.
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/scope.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace goalex::obs {
namespace {

// --------------------------------------------------------------------------
// Counter.
// --------------------------------------------------------------------------

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

// Property: a counter is monotone non-decreasing under any increment
// sequence (it only ever moves by +n).
TEST(CounterTest, MonotoneUnderRandomIncrements) {
  Counter counter;
  std::mt19937 rng(7);
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    counter.Increment(rng() % 5);
    uint64_t now = counter.Value();
    ASSERT_GE(now, last);
    last = now;
  }
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-4.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.5);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

// --------------------------------------------------------------------------
// Histogram bucket invariants.
// --------------------------------------------------------------------------

TEST(HistogramTest, ObservationsLandInLeBuckets) {
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.Observe(0.5);   // <= 1.0
  histogram.Observe(1.0);   // Exactly on a bound: belongs to that bucket.
  histogram.Observe(1.5);   // <= 2.0
  histogram.Observe(5.0);   // <= 5.0
  histogram.Observe(100.0); // +Inf bucket.

  HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 5.0 + 100.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram({1.0});
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
}

// Property: for any observation sequence, bucket counts sum to the total
// count, each observation lands in exactly one bucket, and min <= mean <=
// max.
TEST(HistogramTest, BucketInvariantsUnderRandomObservations) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram histogram(DefaultLatencyBounds());
    std::uniform_real_distribution<double> sample(0.0, 50.0);
    size_t n = 1 + rng() % 500;
    for (size_t i = 0; i < n; ++i) histogram.Observe(sample(rng));

    HistogramSnapshot snap = histogram.Snapshot();
    uint64_t bucket_total = 0;
    for (uint64_t b : snap.buckets) bucket_total += b;
    ASSERT_EQ(bucket_total, snap.count);
    ASSERT_EQ(snap.count, n);
    ASSERT_LE(snap.min, snap.Mean());
    ASSERT_LE(snap.Mean(), snap.max);
  }
}

// Property: quantiles are monotone in q and clamped to the bound ladder.
TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram histogram(DefaultLatencyBounds());
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> sample(1e-6, 10.0);
  for (int i = 0; i < 2000; ++i) histogram.Observe(sample(rng));
  HistogramSnapshot snap = histogram.Snapshot();
  double last = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    double value = snap.Quantile(q);
    ASSERT_GE(value, last) << "q=" << q;
    ASSERT_LE(value, snap.bounds.back());
    last = value;
  }
}

TEST(HistogramTest, QuantileMatchesUniformDistributionRoughly) {
  Histogram histogram({0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  // 1000 evenly spaced observations in (0, 1].
  for (int i = 1; i <= 1000; ++i) histogram.Observe(i / 1000.0);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_NEAR(snap.Quantile(0.5), 0.5, 0.1);
  EXPECT_NEAR(snap.Quantile(0.9), 0.9, 0.1);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(HistogramDeathTest, RejectsNonIncreasingBounds) {
  EXPECT_DEATH(Histogram({1.0, 1.0}), "strictly increasing");
}
#endif

// --------------------------------------------------------------------------
// Registry.
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
  EXPECT_EQ(registry.GetGauge("x"), registry.GetGauge("x"));
  EXPECT_EQ(registry.GetLatencyHistogram("x"),
            registry.GetLatencyHistogram("x"));
}

TEST(MetricsRegistryTest, SnapshotReflectsAllMetricTypes) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(1.5);
  registry.GetHistogram("h", {1.0})->Observe(0.5);

  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "c");
  EXPECT_EQ(snap.counters[0].value, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].snapshot.count, 1u);
  EXPECT_FALSE(snap.Empty());
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h", {1.0});
  counter->Increment(10);
  histogram->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
  // The handle is still registered and usable.
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 1u);
}

TEST(MetricsRegistryTest, RuntimeToggleRoundTrips) {
  EXPECT_TRUE(Enabled());  // Default.
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(Active());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(Active(), kMetricsCompiled);
}

// --------------------------------------------------------------------------
// Scopes.
// --------------------------------------------------------------------------

TEST(ScopedTimerTest, RecordsOnceAndDisarms) {
  Histogram histogram(DefaultLatencyBounds());
  {
    ScopedTimer timer(&histogram);
    EXPECT_TRUE(timer.armed());
    EXPECT_GE(timer.Stop(), 0.0);
    EXPECT_FALSE(timer.armed());
    EXPECT_DOUBLE_EQ(timer.Stop(), 0.0);  // Second stop is a no-op.
  }
  EXPECT_EQ(histogram.Count(), 1u);  // Destructor did not double-record.
}

TEST(ScopedTimerTest, NullHistogramIsDisarmed) {
  ScopedTimer timer(nullptr);
  EXPECT_FALSE(timer.armed());
  EXPECT_DOUBLE_EQ(timer.Stop(), 0.0);
}

TEST(SpanTest, RecordsSecondsAndCalls) {
  MetricsRegistry registry;
  { Span span(&registry, "stage.demo"); }
  { Span span(&registry, "stage.demo"); }
  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "stage.demo.calls");
  EXPECT_EQ(snap.counters[0].value, 2u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "stage.demo.seconds");
  EXPECT_EQ(snap.histograms[0].snapshot.count, 2u);
}

TEST(SpanTest, DisabledSpanRecordsNothing) {
  MetricsRegistry registry;
  SetEnabled(false);
  { Span span(&registry, "stage.quiet"); }
  SetEnabled(true);
  { Span null_span(nullptr, "stage.quiet"); }
  EXPECT_TRUE(registry.Snapshot().Empty());
}

// --------------------------------------------------------------------------
// Exporters.
// --------------------------------------------------------------------------

RegistrySnapshot ExportFixture() {
  static MetricsRegistry* const registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("extract.count")->Increment(7);
    r->GetGauge("queue.depth")->Set(3);
    Histogram* h = r->GetHistogram("latency.seconds", {0.1, 1.0});
    h->Observe(0.05);
    h->Observe(0.5);
    h->Observe(2.0);
    return r;
  }();
  return registry->Snapshot();
}

TEST(ExportTest, JsonContainsAllSections) {
  std::string json = ToJson(ExportFixture());
  EXPECT_NE(json.find("\"counters\":{\"extract.count\":7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"latency.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+Inf\",\"count\":1}"), std::string::npos);
  // Balanced braces — cheap structural sanity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ExportTest, PrometheusUsesCumulativeBucketsAndLegalNames) {
  std::string prom = ToPrometheus(ExportFixture());
  EXPECT_NE(prom.find("# TYPE goalex_extract_count counter"),
            std::string::npos);
  EXPECT_NE(prom.find("goalex_extract_count 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE goalex_queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE goalex_latency_seconds histogram"),
            std::string::npos);
  // Cumulative: 1 obs <= 0.1, 2 <= 1.0, 3 <= +Inf.
  EXPECT_NE(prom.find("goalex_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("goalex_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("goalex_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("goalex_latency_seconds_count 3"), std::string::npos);
  // No dots may survive name mangling.
  for (const std::string& line : {std::string("goalex_latency.seconds")}) {
    EXPECT_EQ(prom.find(line), std::string::npos);
  }
}

TEST(ExportTest, SummaryMentionsEveryMetric) {
  std::string summary = ToSummary(ExportFixture());
  EXPECT_NE(summary.find("extract.count = 7"), std::string::npos);
  EXPECT_NE(summary.find("queue.depth = 3"), std::string::npos);
  EXPECT_NE(summary.find("latency.seconds: count=3"), std::string::npos);
  EXPECT_NE(summary.find("p95="), std::string::npos);
}

TEST(ExportTest, EmptySnapshotExportsCleanly) {
  RegistrySnapshot empty;
  EXPECT_EQ(ToJson(empty),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(ToPrometheus(empty), "");
  EXPECT_EQ(ToSummary(empty), "");
}

// --------------------------------------------------------------------------
// Multi-threaded stress (exact totals; race-free under TSAN).
// --------------------------------------------------------------------------

TEST(ObsStressTest, ConcurrentCounterIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the handle itself: registration under
      // contention must still yield one shared counter.
      Counter* counter = registry.GetCounter("stress.counter");
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("stress.counter")->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(ObsStressTest, ConcurrentHistogramObservationsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kObservations = 20000;
  Histogram histogram(DefaultLatencyBounds());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      std::uniform_real_distribution<double> sample(0.0, 10.0);
      for (int i = 0; i < kObservations; ++i) histogram.Observe(sample(rng));
    });
  }
  for (std::thread& thread : threads) thread.join();

  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kObservations);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_GE(snap.min, 0.0);
  EXPECT_LE(snap.max, 10.0);
}

TEST(ObsStressTest, ConcurrentGaugeAddsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  Gauge gauge;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Half the threads add, half subtract; the CAS loop must lose nothing.
    double delta = t % 2 == 0 ? 1.0 : -1.0;
    threads.emplace_back([&gauge, delta] {
      for (int i = 0; i < kAdds; ++i) gauge.Add(delta);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(ObsStressTest, SnapshotDuringConcurrentWritesIsCoherent) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      Counter* counter = registry.GetCounter("c" + std::to_string(t));
      Histogram* histogram = registry.GetLatencyHistogram("h");
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        histogram->Observe(0.001);
      }
    });
  }
  // Snapshots while writers hammer the registry: none may crash, and every
  // read must be internally sane (bucket sum never exceeds a later count
  // read... we assert only non-decreasing totals per counter).
  uint64_t last_total = 0;
  for (int i = 0; i < 50; ++i) {
    RegistrySnapshot snap = registry.Snapshot();
    uint64_t total = 0;
    for (const CounterSample& c : snap.counters) total += c.value;
    ASSERT_GE(total, last_total);
    last_total = total;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

}  // namespace
}  // namespace goalex::obs
