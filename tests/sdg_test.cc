#include "sdg/sdg.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "data/generator.h"

namespace goalex::sdg {
namespace {

TEST(SdgTest, GoalNamesCoverAllSeventeen) {
  std::set<std::string> names;
  for (int goal = 1; goal <= kNumGoals; ++goal) {
    EXPECT_NE(GoalName(goal), "Unknown") << goal;
    names.insert(GoalName(goal));
  }
  EXPECT_EQ(names.size(), 17u);
  EXPECT_EQ(GoalName(0), "Unknown");
  EXPECT_EQ(GoalName(18), "Unknown");
  EXPECT_EQ(GoalName(13), "Climate Action");
}

TEST(SdgTest, BuiltinLexiconHasEveryGoalInEverySystem) {
  for (const LexiconSystem& system : BuiltinLexicon()) {
    ASSERT_EQ(system.terms.size(), static_cast<size_t>(kNumGoals))
        << system.name;
    for (int goal = 1; goal <= kNumGoals; ++goal) {
      EXPECT_FALSE(system.terms[static_cast<size_t>(goal) - 1].empty())
          << system.name << " goal " << goal;
    }
  }
}

TEST(SdgTest, ClassifiesObviousObjectives) {
  SdgClassifier classifier;
  auto top_goal = [&classifier](const std::string& text) {
    std::vector<SdgScore> scores = classifier.Classify(text);
    return scores.empty() ? 0 : scores[0].goal;
  };
  EXPECT_EQ(top_goal("Reduce greenhouse gas emissions by 30% by 2030"), 13);
  EXPECT_EQ(top_goal("Cut fresh water withdrawal at all plants"), 6);
  EXPECT_EQ(top_goal("Source 100% renewable electricity by 2025"), 7);
  EXPECT_EQ(top_goal("Eliminate single-use plastics from packaging"), 12);
  EXPECT_EQ(top_goal("Increase women in leadership positions to 40%"), 5);
  EXPECT_EQ(top_goal("Fund reforestation projects protecting biodiversity"),
            15);
  EXPECT_EQ(top_goal("Quarterly financial results were strong"), 0);
}

TEST(SdgTest, CaseAndTokenBoundaryBehaviour) {
  SdgClassifier classifier;
  // Matching is case-insensitive ...
  EXPECT_FALSE(classifier.Classify("RENEWABLE ELECTRICITY targets").empty());
  // ... and token-exact: "watered" must not match the "water" keyword.
  EXPECT_TRUE(classifier.Classify("the lawn was watered daily").empty());
  // Hyphenated lexicon phrases match hyphenated text ("net-zero"
  // tokenizes identically on both sides).
  std::vector<SdgScore> scores =
      classifier.Classify("Achieve net-zero operations by 2040");
  ASSERT_FALSE(scores.empty());
  EXPECT_EQ(scores[0].goal, 13);
}

TEST(SdgTest, PhrasesOutweighKeywordsAndSystemsCount) {
  SdgClassifier classifier;
  // "emissions" alone: one keyword hit, one system.
  std::vector<SdgScore> keyword_only = classifier.Classify("lower emissions");
  ASSERT_EQ(keyword_only.size(), 1u);
  EXPECT_EQ(keyword_only[0].goal, 13);
  EXPECT_EQ(keyword_only[0].systems, 1);
  // "greenhouse gas emissions": keyword + phrase, two systems, higher
  // score.
  std::vector<SdgScore> both =
      classifier.Classify("lower greenhouse gas emissions");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].systems, 2);
  EXPECT_GT(both[0].score, keyword_only[0].score);
}

TEST(SdgTest, MinSystemsFiltersSingleSystemHits) {
  SdgClassifierOptions options;
  options.min_systems = 2;
  SdgClassifier classifier(options);
  EXPECT_TRUE(classifier.Classify("lower emissions").empty());
  EXPECT_FALSE(
      classifier.Classify("lower greenhouse gas emissions").empty());
}

TEST(SdgTest, MaxGoalsTruncatesByScore) {
  SdgClassifierOptions options;
  options.max_goals = 1;
  SdgClassifier classifier(options);
  std::vector<SdgScore> scores = classifier.Classify(
      "Reduce water usage and greenhouse gas emissions across plants");
  ASSERT_EQ(scores.size(), 1u);
  // Both goals hit; the classifier must keep the better-scoring one.
  SdgClassifierOptions unlimited;
  unlimited.max_goals = 0;
  SdgClassifier full(unlimited);
  std::vector<SdgScore> all = full.Classify(
      "Reduce water usage and greenhouse gas emissions across plants");
  ASSERT_GE(all.size(), 2u);
  EXPECT_EQ(scores[0].goal, all[0].goal);
}

TEST(SdgTest, LabelStringFormatting) {
  EXPECT_EQ(LabelString({}), "");
  SdgScore a;
  a.goal = 13;
  SdgScore b;
  b.goal = 7;
  EXPECT_EQ(LabelString({a, b}), "SDG13 SDG7");
}

// The acceptance gate: the compiled first-token-indexed path agrees with
// the brute-force full-lexicon scan on an entire generated corpus.
TEST(SdgTest, CompiledPathMatchesBruteForceOnGeneratedCorpus) {
  data::SustainabilityGoalsConfig config;
  config.objective_count = 400;
  config.seed = 20260808;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(config);
  ASSERT_EQ(corpus.size(), 400u);

  SdgClassifierOptions options;
  options.max_goals = 0;  // Compare the full ranking, not a truncation.
  SdgClassifier classifier(options);
  size_t labeled = 0;
  for (const data::Objective& objective : corpus) {
    std::vector<SdgScore> fast = classifier.Classify(objective.text);
    std::vector<SdgScore> slow =
        classifier.ClassifyBruteForce(objective.text);
    ASSERT_EQ(fast, slow) << objective.text;
    if (!fast.empty()) ++labeled;
  }
  // The lexicon is aligned with the generator's qualifier inventory, so
  // the bulk of generated objectives must land at least one goal.
  EXPECT_GT(labeled, corpus.size() / 2);
}

TEST(SdgTest, SummarizeRanksGoalsAndObjectives) {
  SdgClassifier classifier;
  std::vector<std::string> objectives = {
      "Reduce greenhouse gas emissions by 30%",    // SDG13 (strong)
      "Cut carbon emissions from operations",      // SDG13
      "Lower water usage at all plants",           // SDG6
      "Quarterly revenue grew nicely",             // no goal
  };
  SdgSummary summary = Summarize(classifier, objectives, /*top_k=*/1);
  ASSERT_GE(summary.goals.size(), 2u);
  EXPECT_EQ(summary.goals[0].goal, 13);
  EXPECT_EQ(summary.goals[0].objective_count, 2);
  ASSERT_EQ(summary.goals[0].top_objectives.size(), 1u);
  // The phrase-backed objective scores higher than the keyword-only one.
  EXPECT_EQ(summary.goals[0].top_objectives[0],
            "Reduce greenhouse gas emissions by 30%");
  bool found_water = false;
  for (const SdgSummary::PerGoal& goal : summary.goals) {
    if (goal.goal == 6) {
      found_water = true;
      EXPECT_EQ(goal.objective_count, 1);
    }
  }
  EXPECT_TRUE(found_water);
}

}  // namespace
}  // namespace goalex::sdg
