#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace goalex {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequencyRoughlyMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    rng.Shuffle(shuffled);
    changed = (shuffled != v);
  }
  EXPECT_TRUE(changed);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // Child stream should not replay the parent stream.
  Rng b(31);
  b.NextUint64();  // Advance past the fork draw.
  EXPECT_NE(child.NextUint64(), b.NextUint64());
}

TEST(RngTest, ChooseReturnsElement) {
  Rng rng(37);
  std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int c = rng.Choose(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.NextUniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

}  // namespace
}  // namespace goalex
