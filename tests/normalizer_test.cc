#include "text/normalizer.h"

#include <gtest/gtest.h>

namespace goalex::text {
namespace {

TEST(NormalizerTest, CollapsesWhitespace) {
  EXPECT_EQ(Normalize("  reduce\t\nemissions   now "),
            "reduce emissions now");
}

TEST(NormalizerTest, RemovesControlCharacters) {
  EXPECT_EQ(Normalize("net\x02zero"), "netzero");
  EXPECT_EQ(Normalize("a\x7F""b"), "ab");
}

TEST(NormalizerTest, RemovesZeroWidthCharacters) {
  // ZWSP between "net" and "zero".
  EXPECT_EQ(Normalize("net\xE2\x80\x8Bzero"), "netzero");
  // BOM at start.
  EXPECT_EQ(Normalize("\xEF\xBB\xBFhello"), "hello");
}

TEST(NormalizerTest, FoldsCurlyQuotes) {
  EXPECT_EQ(Normalize("\xE2\x80\x9Cnet-zero\xE2\x80\x9D"), "\"net-zero\"");
  EXPECT_EQ(Normalize("company\xE2\x80\x99s"), "company's");
}

TEST(NormalizerTest, FoldsDashes) {
  EXPECT_EQ(Normalize("2017\xE2\x80\x93"
                      "2025"),
            "2017-2025");
  EXPECT_EQ(Normalize("goal \xE2\x80\x94 reached"), "goal - reached");
}

TEST(NormalizerTest, FoldsNonBreakingSpace) {
  EXPECT_EQ(Normalize("20\xC2\xA0%"), "20 %");
}

TEST(NormalizerTest, RemovesBullets) {
  EXPECT_EQ(Normalize("\xE2\x80\xA2 Reduce waste"), "Reduce waste");
}

TEST(NormalizerTest, PassesThroughOtherUtf8) {
  // Emission subscript (CO₂) should survive.
  EXPECT_EQ(Normalize("CO\xE2\x82\x82 emissions"),
            "CO\xE2\x82\x82 emissions");
}

TEST(NormalizerTest, LowercaseOption) {
  NormalizerOptions opts;
  opts.lowercase = true;
  EXPECT_EQ(Normalize("Reduce CO2", opts), "reduce co2");
}

TEST(NormalizerTest, OptionsCanDisableFolding) {
  NormalizerOptions opts;
  opts.fold_unicode_punctuation = false;
  EXPECT_EQ(Normalize("a\xE2\x80\x93z", opts), "a\xE2\x80\x93z");
}

TEST(NormalizerTest, EmptyInput) { EXPECT_EQ(Normalize(""), ""); }

TEST(NormalizerTest, WhitespaceOnlyInput) {
  EXPECT_EQ(Normalize(" \n\t "), "");
}

TEST(NormalizerTest, InvalidUtf8TreatedAsBytes) {
  // Lone continuation byte passes through without crashing.
  std::string s = "a";
  s += static_cast<char>(0xBF);
  s += "b";
  std::string out = Normalize(s);
  EXPECT_EQ(out.size(), 3u);
}

TEST(NormalizerTest, EllipsisFold) {
  EXPECT_EQ(Normalize("wait\xE2\x80\xA6 done"), "wait... done");
}

}  // namespace
}  // namespace goalex::text
