// Golden-file regression test for the deterministic end-to-end extraction
// path: fixture objectives are normalized, weak-labeled (Algorithm 1), the
// IOB label sequence is decoded into spans, and span surface values are
// read back out of the text — exactly the production decode path, minus the
// (float-dependent) transformer. The resulting DetailRecords are compared
// field-by-field against checked-in expectations, once for exact matching
// and once for the fuzzy extension, so any behavior change in the
// tokenizer, the weak labeler, or the IOB decoder shows up as a precise
// field diff.
//
// To regenerate after an INTENDED behavior change:
//   GOALEX_REGEN_GOLDEN=1 ./build/tests/golden_test
// then review the diff of tests/testdata/golden_expected_*.tsv.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "labels/iob.h"
#include "text/normalizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex {
namespace {

std::string TestDataPath(const std::string& name) {
  return std::string(GOALEX_TESTDATA_DIR) + "/" + name;
}

std::vector<data::Objective> LoadFixture() {
  auto objectives =
      data::LoadObjectives(TestDataPath("golden_objectives.tsv"));
  EXPECT_TRUE(objectives.ok()) << objectives.status().ToString();
  return *objectives;
}

/// The production decode path of DetailExtractor::ExtractSingle, driven by
/// weak labels instead of model predictions: normalize, tokenize +
/// weak-label, decode IOB spans, read surface values (first span per kind
/// wins).
std::vector<data::DetailRecord> RunGoldenPipeline(
    const std::vector<data::Objective>& objectives, bool exact_match) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  weaksup::WeakLabelerOptions options;
  options.exact_match = exact_match;
  weaksup::WeakLabeler labeler(&catalog, options);

  std::vector<data::DetailRecord> records;
  records.reserve(objectives.size());
  for (const data::Objective& objective : objectives) {
    data::Objective normalized = objective;
    normalized.text = text::Normalize(objective.text);
    for (data::Annotation& a : normalized.annotations) {
      a.value = text::Normalize(a.value);
    }

    weaksup::WeakLabeling labeling = labeler.Label(normalized);
    data::DetailRecord record;
    record.objective_id = objective.id;
    record.objective_text = normalized.text;
    std::vector<labels::Span> spans = catalog.DecodeSpans(labeling.label_ids);
    for (const labels::Span& span : spans) {
      const std::string& kind =
          catalog.kinds()[static_cast<size_t>(span.kind)];
      if (record.fields.count(kind) > 0) continue;  // First span wins.
      size_t begin = labeling.tokens[span.begin].begin;
      size_t end = labeling.tokens[span.end - 1].end;
      record.fields[kind] = normalized.text.substr(begin, end - begin);
    }
    records.push_back(std::move(record));
  }
  return records;
}

/// One line per extracted field ("id<TAB>kind<TAB>value"), or
/// "id<TAB><none>" for a record with no extracted fields, in input order
/// (fields sorted by kind via std::map).
std::string Serialize(const std::vector<data::DetailRecord>& records) {
  std::ostringstream out;
  for (const data::DetailRecord& record : records) {
    if (record.fields.empty()) {
      out << record.objective_id << "\t<none>\n";
      continue;
    }
    for (const auto& [kind, value] : record.fields) {
      out << record.objective_id << "\t" << kind << "\t" << value << "\n";
    }
  }
  return out.str();
}

/// id -> kind -> value; "<none>" markers become empty field maps.
void ParseExpected(
    const std::string& content,
    std::map<std::string, std::map<std::string, std::string>>* expected) {
  for (const std::string& line : StrSplit(content, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> cells = StrSplit(line, '\t');
    if (cells.size() == 2 && cells[1] == "<none>") {
      (*expected)[cells[0]];
      continue;
    }
    ASSERT_EQ(cells.size(), 3u) << "bad golden line: " << line;
    (*expected)[cells[0]][cells[1]] = cells[2];
  }
}

void CheckAgainstGolden(const std::string& golden_file, bool exact_match) {
  std::vector<data::Objective> objectives = LoadFixture();
  ASSERT_EQ(objectives.size(), 14u);
  std::vector<data::DetailRecord> records =
      RunGoldenPipeline(objectives, exact_match);

  if (std::getenv("GOALEX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(TestDataPath(golden_file), std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << Serialize(records);
    GTEST_SKIP() << "regenerated " << golden_file;
  }

  std::ifstream in(TestDataPath(golden_file));
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_file
                         << " — run with GOALEX_REGEN_GOLDEN=1 once";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::map<std::string, std::map<std::string, std::string>> expected;
  ASSERT_NO_FATAL_FAILURE(ParseExpected(buffer.str(), &expected));

  // Field-by-field comparison with precise failure messages.
  ASSERT_EQ(records.size(), expected.size());
  for (const data::DetailRecord& record : records) {
    auto it = expected.find(record.objective_id);
    ASSERT_NE(it, expected.end())
        << "objective " << record.objective_id << " missing from golden";
    const std::map<std::string, std::string>& want = it->second;
    for (const auto& [kind, value] : want) {
      auto got = record.fields.find(kind);
      EXPECT_NE(got, record.fields.end())
          << record.objective_id << ": expected field '" << kind
          << "' was not extracted";
      if (got != record.fields.end()) {
        EXPECT_EQ(got->second, value)
            << record.objective_id << ": field '" << kind << "' differs";
      }
    }
    for (const auto& [kind, value] : record.fields) {
      EXPECT_GT(want.count(kind), 0u)
          << record.objective_id << ": unexpected extra field '" << kind
          << "' = '" << value << "'";
    }
  }
}

TEST(GoldenExtractionTest, ExactMatchingMatchesGolden) {
  CheckAgainstGolden("golden_expected_exact.tsv", /*exact_match=*/true);
}

TEST(GoldenExtractionTest, FuzzyMatchingMatchesGolden) {
  CheckAgainstGolden("golden_expected_fuzzy.tsv", /*exact_match=*/false);
}

// Meta-assertions that pin the fixture's interesting semantics in both
// modes, independent of the golden files: case and punctuation differences
// only match under the fuzzy extension, and out-of-schema kinds never
// produce a field.
TEST(GoldenExtractionTest, FixtureCoversMatchingModeDifferences) {
  std::vector<data::Objective> objectives = LoadFixture();
  std::vector<data::DetailRecord> exact =
      RunGoldenPipeline(objectives, /*exact_match=*/true);
  std::vector<data::DetailRecord> fuzzy =
      RunGoldenPipeline(objectives, /*exact_match=*/false);

  auto find = [](const std::vector<data::DetailRecord>& records,
                 const std::string& id) -> const data::DetailRecord& {
    for (const data::DetailRecord& record : records) {
      if (record.objective_id == id) return record;
    }
    ADD_FAILURE() << "no record " << id;
    static const data::DetailRecord kEmpty;
    return kEmpty;
  };

  // g03: "Net Zero" (annotation) vs "net zero" (text) — fuzzy only.
  EXPECT_EQ(find(exact, "g03").FieldOrEmpty("Qualifier"), "");
  EXPECT_EQ(find(fuzzy, "g03").FieldOrEmpty("Qualifier"), "net zero");

  // g06: annotated Amount 75 % never appears in the text — no mode
  // invents it.
  EXPECT_EQ(find(exact, "g06").FieldOrEmpty("Amount"), "");
  EXPECT_EQ(find(fuzzy, "g06").FieldOrEmpty("Amount"), "");

  // g05: "Scope" is not part of the schema — never extracted.
  EXPECT_EQ(find(exact, "g05").fields.count("Scope"), 0u);
  EXPECT_EQ(find(fuzzy, "g05").fields.count("Scope"), 0u);

  // g11: a punctuation-only Amount value ("--") matches in neither mode
  // (the fuzzy zero-length-window rejection).
  EXPECT_EQ(find(exact, "g11").FieldOrEmpty("Amount"), "");
  EXPECT_EQ(find(fuzzy, "g11").FieldOrEmpty("Amount"), "");
}

}  // namespace
}  // namespace goalex
