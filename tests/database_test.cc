#include "core/database.h"

#include <gtest/gtest.h>

namespace goalex::core {
namespace {

data::DetailRecord MakeRecord(const std::string& text,
                              std::map<std::string, std::string> fields) {
  data::DetailRecord record;
  record.objective_text = text;
  record.fields = std::move(fields);
  return record;
}

TEST(DatabaseTest, InsertAssignsSequentialIds) {
  ObjectiveDatabase db;
  EXPECT_EQ(db.Insert(MakeRecord("a", {}), "C1"), 0);
  EXPECT_EQ(db.Insert(MakeRecord("b", {}), "C2"), 1);
  EXPECT_EQ(db.size(), 2u);
}

TEST(DatabaseTest, ByCompany) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  db.Insert(MakeRecord("b", {}), "C2");
  db.Insert(MakeRecord("c", {}), "C1");
  std::vector<const DbRow*> rows = db.ByCompany("C1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->record.objective_text, "a");
  EXPECT_EQ(rows[1]->record.objective_text, "c");
  EXPECT_TRUE(db.ByCompany("C9").empty());
}

TEST(DatabaseTest, WithFieldFiltersEmpty) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Deadline", "2030"}}), "C1");
  db.Insert(MakeRecord("b", {}), "C1");
  db.Insert(MakeRecord("c", {{"Deadline", ""}}), "C1");
  std::vector<const DbRow*> rows = db.WithField("Deadline");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->record.objective_text, "a");
}

TEST(DatabaseTest, WhereFieldEquals) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Deadline", "2030"}}), "C1");
  db.Insert(MakeRecord("b", {{"Deadline", "2040"}}), "C1");
  std::vector<const DbRow*> rows = db.WhereFieldEquals("Deadline", "2040");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->record.objective_text, "b");
}

TEST(DatabaseTest, CountPerCompany) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  db.Insert(MakeRecord("b", {}), "C1");
  db.Insert(MakeRecord("c", {}), "C2");
  std::map<std::string, int64_t> counts = db.CountPerCompany();
  EXPECT_EQ(counts["C1"], 2);
  EXPECT_EQ(counts["C2"], 1);
}

TEST(DatabaseTest, FieldCoverageByCompany) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Amount", "20%"}}), "C1");
  db.Insert(MakeRecord("b", {}), "C1");
  db.Insert(MakeRecord("c", {{"Amount", "5%"}}), "C2");
  std::map<std::string, double> coverage = db.FieldCoverageByCompany("Amount");
  EXPECT_NEAR(coverage["C1"], 0.5, 1e-9);
  EXPECT_NEAR(coverage["C2"], 1.0, 1e-9);
}

TEST(DatabaseTest, ExportCsvEscapes) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("goal with, comma",
                       {{"Qualifier", "say \"hi\""}}),
            "C1", "doc.pdf", 3);
  std::string csv = db.ExportCsv({"Qualifier"});
  EXPECT_NE(csv.find("\"goal with, comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("row_id,company,document,page,objective,Qualifier"),
            std::string::npos);
}

TEST(DatabaseTest, ExportCsvRowCount) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  db.Insert(MakeRecord("b", {}), "C2");
  std::string csv = db.ExportCsv({});
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

}  // namespace
}  // namespace goalex::core
