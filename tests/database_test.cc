#include "core/database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace goalex::core {
namespace {

data::DetailRecord MakeRecord(const std::string& text,
                              std::map<std::string, std::string> fields) {
  data::DetailRecord record;
  record.objective_text = text;
  record.fields = std::move(fields);
  return record;
}

/// Minimal RFC 4180 CSV reader used by the round-trip tests: splits into
/// records honoring quoted fields with doubled quotes and embedded
/// separators / CR / LF.
std::vector<std::vector<std::string>> ParseCsv(const std::string& csv) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < csv.size()) {
    char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      field.clear();
      records.push_back(std::move(fields));
      fields.clear();
    } else {
      field.push_back(c);
    }
    ++i;
  }
  if (!field.empty() || !fields.empty()) {
    fields.push_back(std::move(field));
    records.push_back(std::move(fields));
  }
  return records;
}

TEST(DatabaseTest, InsertAssignsSequentialIds) {
  ObjectiveDatabase db;
  EXPECT_EQ(db.Insert(MakeRecord("a", {}), "C1"), 0);
  EXPECT_EQ(db.Insert(MakeRecord("b", {}), "C2"), 1);
  EXPECT_EQ(db.size(), 2u);
}

TEST(DatabaseTest, ByCompany) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  db.Insert(MakeRecord("b", {}), "C2");
  db.Insert(MakeRecord("c", {}), "C1");
  std::vector<DbRow> rows = db.ByCompany("C1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].record.objective_text, "a");
  EXPECT_EQ(rows[1].record.objective_text, "c");
  EXPECT_TRUE(db.ByCompany("C9").empty());
}

TEST(DatabaseTest, WithFieldFiltersEmpty) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Deadline", "2030"}}), "C1");
  db.Insert(MakeRecord("b", {}), "C1");
  db.Insert(MakeRecord("c", {{"Deadline", ""}}), "C1");
  std::vector<DbRow> rows = db.WithField("Deadline");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].record.objective_text, "a");
}

TEST(DatabaseTest, WhereFieldEquals) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Deadline", "2030"}}), "C1");
  db.Insert(MakeRecord("b", {{"Deadline", "2040"}}), "C1");
  db.Insert(MakeRecord("c", {{"Deadline", "2040"}}), "C2");
  std::vector<DbRow> rows = db.WhereFieldEquals("Deadline", "2040");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].record.objective_text, "b");
  EXPECT_EQ(rows[1].record.objective_text, "c");
  EXPECT_TRUE(db.WhereFieldEquals("Deadline", "1999").empty());
  EXPECT_TRUE(db.WhereFieldEquals("NoSuchKind", "2040").empty());
}

TEST(DatabaseTest, GetByRowId) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  int64_t id = db.Insert(MakeRecord("b", {}), "C2", "doc.pdf", 7);
  std::optional<DbRow> row = db.Get(id);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->record.objective_text, "b");
  EXPECT_EQ(row->document, "doc.pdf");
  EXPECT_EQ(row->page, 7);
  EXPECT_FALSE(db.Get(999).has_value());
}

TEST(DatabaseTest, DeadlineYearIndex) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Deadline", "2030"}}), "C1");
  db.Insert(MakeRecord("b", {{"Deadline", "by the end of 2025"}}), "C2");
  db.Insert(MakeRecord("c", {{"Deadline", "soon"}}), "C3");
  db.Insert(MakeRecord("d", {{"TargetYear", "2040"}}), "C4");
  db.Insert(MakeRecord("e", {}), "C5");

  std::vector<DbRow> y2030 = db.ByDeadlineYear(2030);
  ASSERT_EQ(y2030.size(), 1u);
  EXPECT_EQ(y2030[0].record.objective_text, "a");

  std::vector<DbRow> due = db.DeadlineYearBetween(2025, 2035);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].record.objective_text, "a");
  EXPECT_EQ(due[1].record.objective_text, "b");

  EXPECT_EQ(db.DeadlineYearBetween(1900, 2100).size(), 3u);
  EXPECT_TRUE(db.ByDeadlineYear(1999).empty());
}

TEST(DatabaseTest, CountPerCompany) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  db.Insert(MakeRecord("b", {}), "C1");
  db.Insert(MakeRecord("c", {}), "C2");
  std::map<std::string, int64_t> counts = db.CountPerCompany();
  EXPECT_EQ(counts["C1"], 2);
  EXPECT_EQ(counts["C2"], 1);
}

TEST(DatabaseTest, Companies) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "Zeta");
  db.Insert(MakeRecord("b", {}), "Alpha");
  db.Insert(MakeRecord("c", {}), "Alpha");
  EXPECT_EQ(db.Companies(), (std::vector<std::string>{"Alpha", "Zeta"}));
}

TEST(DatabaseTest, FieldCoverageByCompany) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {{"Amount", "20%"}}), "C1");
  db.Insert(MakeRecord("b", {}), "C1");
  db.Insert(MakeRecord("c", {{"Amount", "5%"}}), "C2");
  std::map<std::string, double> coverage = db.FieldCoverageByCompany("Amount");
  EXPECT_NEAR(coverage["C1"], 0.5, 1e-9);
  EXPECT_NEAR(coverage["C2"], 1.0, 1e-9);
}

TEST(DatabaseTest, FieldCoverageGolden) {
  // Coverage across many companies and shards, against hand-computed
  // fractions (empty values never count as coverage).
  ObjectiveDatabase db(4);
  for (int company = 0; company < 8; ++company) {
    std::string name = "Co" + std::to_string(company);
    for (int row = 0; row < 4; ++row) {
      std::map<std::string, std::string> fields;
      if (row < company % 5) fields["Deadline"] = "2030";
      if (row == 0) fields["Qualifier"] = "";  // Empty: not covered.
      db.Insert(MakeRecord("obj", fields), name);
    }
  }
  std::map<std::string, double> deadline = db.FieldCoverageByCompany("Deadline");
  for (int company = 0; company < 8; ++company) {
    std::string name = "Co" + std::to_string(company);
    EXPECT_NEAR(deadline[name], (company % 5) / 4.0, 1e-9) << name;
  }
  std::map<std::string, double> qualifier =
      db.FieldCoverageByCompany("Qualifier");
  for (const auto& [name, fraction] : qualifier) {
    EXPECT_DOUBLE_EQ(fraction, 0.0) << name;
  }
}

TEST(DatabaseTest, RowsPerShardSumsToSize) {
  ObjectiveDatabase db(4);
  for (int i = 0; i < 100; ++i) {
    db.Insert(MakeRecord("obj", {}), "Company" + std::to_string(i % 13));
  }
  std::vector<size_t> per_shard = db.RowsPerShard();
  EXPECT_EQ(per_shard.size(), 4u);
  size_t total = 0;
  for (size_t n : per_shard) total += n;
  EXPECT_EQ(total, 100u);
}

// Regression for the seed-era dangling-pointer bug: query results used to be
// const DbRow* into a std::vector that reallocated on the next Insert. Now
// results are copies (and rows live in per-shard deques), so results read
// back identically after the store has grown far past any reallocation
// boundary.
TEST(DatabaseTest, QueryResultsSurviveGrowth) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("first", {{"Deadline", "2030"}}), "C1");
  db.Insert(MakeRecord("second", {{"Deadline", "2040"}}), "C1");

  std::vector<DbRow> by_company = db.ByCompany("C1");
  std::vector<DbRow> with_field = db.WithField("Deadline");
  ASSERT_EQ(by_company.size(), 2u);
  ASSERT_EQ(with_field.size(), 2u);

  // Grow the store by several thousand rows — far past every capacity
  // doubling a vector-backed store would have performed.
  for (int i = 0; i < 5000; ++i) {
    db.Insert(MakeRecord("filler" + std::to_string(i), {}),
              "C" + std::to_string(i % 7));
  }

  EXPECT_EQ(by_company[0].record.objective_text, "first");
  EXPECT_EQ(by_company[1].record.objective_text, "second");
  EXPECT_EQ(with_field[0].record.FieldOrEmpty("Deadline"), "2030");
  EXPECT_EQ(with_field[1].record.FieldOrEmpty("Deadline"), "2040");

  // Row-id handles stay resolvable too.
  std::optional<DbRow> reread = db.Get(by_company[0].row_id);
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(reread->record.objective_text, "first");
}

TEST(DatabaseTest, ExportCsvEscapes) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("goal with, comma",
                       {{"Qualifier", "say \"hi\""}}),
            "C1", "doc.pdf", 3);
  std::string csv = db.ExportCsv({"Qualifier"});
  EXPECT_NE(csv.find("\"goal with, comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("row_id,company,document,page,objective,Qualifier"),
            std::string::npos);
}

// Regression: a bare carriage return used to pass through unquoted and
// split the CSV row in most readers.
TEST(DatabaseTest, ExportCsvQuotesCarriageReturn) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("line1\rline2", {}), "C1");
  std::string csv = db.ExportCsv({});
  EXPECT_NE(csv.find("\"line1\rline2\""), std::string::npos);
  // Exactly header + 1 row when parsed (the CR is inside quotes).
  EXPECT_EQ(ParseCsv(csv).size(), 2u);
}

TEST(DatabaseTest, ExportCsvRoundTripsTrickyContent) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("embedded\r\nnewline, and \"quotes\"",
                       {{"Qualifier", "a\rb"}, {"Action", "x,y"}}),
            "Comma, Inc.", "doc\r.pdf", 1);
  db.Insert(MakeRecord("plain", {{"Action", "reduce"}}), "C2");
  std::string csv = db.ExportCsv({"Action", "Qualifier"});

  std::vector<std::vector<std::string>> records = ParseCsv(csv);
  ASSERT_EQ(records.size(), 3u);  // Header + 2 rows.
  EXPECT_EQ(records[0],
            (std::vector<std::string>{"row_id", "company", "document", "page",
                                      "objective", "Action", "Qualifier"}));
  EXPECT_EQ(records[1],
            (std::vector<std::string>{"0", "Comma, Inc.", "doc\r.pdf", "1",
                                      "embedded\r\nnewline, and \"quotes\"",
                                      "x,y", "a\rb"}));
  EXPECT_EQ(records[2], (std::vector<std::string>{"1", "C2", "", "0", "plain",
                                                  "reduce", ""}));
}

TEST(DatabaseTest, ExportCsvGoldenColumnOrdering) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("cut emissions",
                       {{"Action", "cut"}, {"Deadline", "2030"}}),
            "Acme", "report.pdf", 12);
  db.Insert(MakeRecord("plant trees", {{"Action", "plant"}}), "Beta");
  std::string expected =
      "row_id,company,document,page,objective,Action,Amount,Deadline\n"
      "0,Acme,report.pdf,12,cut emissions,cut,,2030\n"
      "1,Beta,,0,plant trees,plant,,\n";
  EXPECT_EQ(db.ExportCsv({"Action", "Amount", "Deadline"}), expected);
}

TEST(DatabaseTest, ExportCsvRowCount) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("a", {}), "C1");
  db.Insert(MakeRecord("b", {}), "C2");
  std::string csv = db.ExportCsv({});
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(DatabaseTest, SaveLoadRoundTripsByteIdentically) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_roundtrip")
                        .string();
  std::filesystem::remove_all(dir);

  ObjectiveDatabase db;
  db.Insert(MakeRecord("cut, emissions \"fast\"\r\nnow",
                       {{"Action", "cut"},
                        {"Amount", "20%"},
                        {"Deadline", "by 2030"}}),
            "Acme Corp", "esg report.pdf", 4);
  db.Insert(MakeRecord("net zero", {{"Amount", "net-zero"}}), "Beta");
  for (int i = 0; i < 200; ++i) {
    db.Insert(MakeRecord("obj" + std::to_string(i),
                         {{"Deadline", std::to_string(2025 + i % 20)}}),
              "Company" + std::to_string(i % 9));
  }
  ASSERT_TRUE(db.Save(dir).ok());

  ObjectiveDatabase loaded(/*num_shards=*/4);  // Re-sharding must not matter.
  ASSERT_TRUE(loaded.Load(dir).ok());
  EXPECT_EQ(loaded.size(), db.size());

  std::vector<std::string> kinds = {"Action", "Amount", "Deadline"};
  EXPECT_EQ(loaded.ExportCsv(kinds), db.ExportCsv(kinds));
  EXPECT_EQ(loaded.CountPerCompany(), db.CountPerCompany());
  EXPECT_EQ(loaded.FieldCoverageByCompany("Deadline"),
            db.FieldCoverageByCompany("Deadline"));
  EXPECT_EQ(loaded.ByDeadlineYear(2030).size(), db.ByDeadlineYear(2030).size());

  // Inserts continue above the highest loaded id.
  int64_t next = loaded.Insert(MakeRecord("new", {}), "Acme Corp");
  EXPECT_EQ(next, static_cast<int64_t>(db.size()));

  std::filesystem::remove_all(dir);
}

TEST(DatabaseTest, LoadRejectsMissingAndCorruptSnapshots) {
  ObjectiveDatabase db;
  Status missing = db.Load("/nonexistent/goalex-db-dir");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_corrupt")
                        .string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/objectives.db", std::ios::binary);
    out << "not a snapshot";
  }
  Status corrupt = db.Load(dir);
  EXPECT_EQ(corrupt.code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

// Concurrency stress: writers insert across companies (and thus shards)
// while readers hammer every indexed query and the exporter. Run under the
// TSAN CI job; invariants are re-checked after the threads join.
TEST(DatabaseTest, ConcurrentInsertAndQueryStress) {
  ObjectiveDatabase db(8);
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kRowsPerWriter = 500;
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      for (int i = 0; i < kRowsPerWriter; ++i) {
        std::map<std::string, std::string> fields;
        if (i % 2 == 0) fields["Deadline"] = std::to_string(2025 + i % 10);
        if (i % 3 == 0) fields["Amount"] = "20%";
        // A per-writer company plus one shared hot company.
        std::string company =
            i % 5 == 0 ? "Shared" : "Writer" + std::to_string(w);
        db.Insert(MakeRecord("w" + std::to_string(w) + "#" +
                                 std::to_string(i),
                             fields),
                  company, "doc", i);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db, &done, r] {
      size_t checksum = 0;
      while (!done.load(std::memory_order_acquire)) {
        checksum += db.ByCompany("Shared").size();
        checksum += db.WithField("Deadline").size();
        checksum += db.WhereFieldEquals("Amount", "20%").size();
        checksum += db.DeadlineYearBetween(2025, 2030).size();
        checksum += db.CountPerCompany().size();
        checksum += db.FieldCoverageByCompany("Amount").size();
        if (r == 0) checksum += db.ExportCsv({"Deadline"}).size();
        std::optional<DbRow> row = db.Get(static_cast<int64_t>(checksum % 97));
        if (row.has_value()) checksum += row->record.objective_text.size();
      }
      volatile size_t sink = checksum;  // Keep the reads observable.
      (void)sink;
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Post-conditions: every row landed exactly once with a unique id.
  ASSERT_EQ(db.size(), static_cast<size_t>(kWriters * kRowsPerWriter));
  std::vector<DbRow> rows = db.SnapshotRows();
  std::set<int64_t> ids;
  for (const DbRow& row : rows) ids.insert(row.row_id);
  EXPECT_EQ(ids.size(), rows.size());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int64_t>(rows.size()) - 1);

  std::map<std::string, int64_t> counts = db.CountPerCompany();
  int64_t total = 0;
  for (const auto& [company, count] : counts) total += count;
  EXPECT_EQ(total, kWriters * kRowsPerWriter);
  EXPECT_EQ(counts["Shared"], kWriters * (kRowsPerWriter / 5));
  EXPECT_EQ(db.WithField("Deadline").size(),
            static_cast<size_t>(kWriters * (kRowsPerWriter / 2)));
}

TEST(DatabaseTest, LoadEmptyOrNonexistentDirIsCleanNotFound) {
  ObjectiveDatabase db;
  db.Insert(MakeRecord("keep me", {}), "Acme");

  // Nonexistent directory.
  Status missing = db.Load("/nonexistent/goalex-db-dir");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  // Existing but empty directory: neither a manifest nor a legacy file.
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_empty_dir")
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Status empty = db.Load(dir);
  EXPECT_EQ(empty.code(), StatusCode::kNotFound);

  // A failed Load leaves the database contents untouched.
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.ByCompany("Acme").size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(DatabaseTest, SaveIntoUnwritableTargetFailsWithErrorStatus) {
  std::string blocker = (std::filesystem::temp_directory_path() /
                         "goalex_db_blocker")
                            .string();
  std::filesystem::remove_all(blocker);
  {
    std::ofstream out(blocker, std::ios::binary);
    out << "a regular file where a directory is needed";
  }

  ObjectiveDatabase db;
  db.Insert(MakeRecord("x", {}), "Acme");
  // The target's parent is a regular file, so the directory cannot be
  // created: Save must fail with an error Status, not crash or half-write.
  Status status = db.Save(blocker + "/store");
  EXPECT_FALSE(status.ok());
  Status legacy = db.SaveLegacy(blocker + "/store");
  EXPECT_FALSE(legacy.ok());
  std::filesystem::remove_all(blocker);
}

TEST(DatabaseTest, OpenRecoversWalRowsAcrossReopen) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_wal_reopen")
                        .string();
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.background_seal = false;

  std::string reference_csv;
  {
    ObjectiveDatabase db(4, options);
    ASSERT_TRUE(db.Open(dir).ok());
    EXPECT_TRUE(db.attached());
    // Re-opening while attached is refused.
    EXPECT_EQ(db.Open(dir).code(), StatusCode::kFailedPrecondition);
    // Saving into the attached directory is refused (use Flush).
    EXPECT_EQ(db.Save(dir).code(), StatusCode::kFailedPrecondition);
    for (int i = 0; i < 50; ++i) {
      db.Insert(MakeRecord("wal row " + std::to_string(i),
                           {{"Amount", std::to_string(i) + "%"}}),
                "Company" + std::to_string(i % 5));
    }
    reference_csv = db.ExportCsv({"Amount"});
    // No Flush: all 50 rows live only in the shard WALs.
    EXPECT_EQ(db.SealedSegmentCount(), 0u);
  }

  ObjectiveDatabase reopened(4, options);
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(reopened.size(), 50u);
  EXPECT_EQ(reopened.ExportCsv({"Amount"}), reference_csv);

  // Ids continue after recovery, and recovered rows are queryable.
  EXPECT_EQ(reopened.Insert(MakeRecord("new", {}), "Company0"), 50);
  EXPECT_EQ(reopened.WhereFieldEquals("Amount", "7%").size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(DatabaseTest, BackgroundSealerSealsPastThreshold) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_background_seal")
                        .string();
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.seal_threshold = 16;
  options.background_seal = true;

  ObjectiveDatabase db(2, options);
  ASSERT_TRUE(db.Open(dir).ok());
  for (int i = 0; i < 200; ++i) {
    db.Insert(MakeRecord("row " + std::to_string(i),
                         {{"Deadline", std::to_string(2025 + i % 10)}}),
              "Company" + std::to_string(i % 4));
  }
  // The sealer runs asynchronously; poll until it has sealed something.
  for (int spin = 0; spin < 500 && db.SealedSegmentCount() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(db.SealedSegmentCount(), 0u);

  // Sealing moved rows out of the growing segments without losing any.
  EXPECT_EQ(db.size(), 200u);
  EXPECT_EQ(db.SnapshotRows().size(), 200u);
  EXPECT_EQ(db.ByDeadlineYear(2025).size(), 20u);

  // Everything — sealed and still-growing — survives a reopen.
  ObjectiveDatabase reopened(2, options);
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(reopened.size(), 200u);
  EXPECT_EQ(reopened.ExportCsv({"Deadline"}), db.ExportCsv({"Deadline"}));
  std::filesystem::remove_all(dir);
}

// Attached-mode concurrency stress: writers insert while the background
// sealer compacts shards under a tiny threshold and readers query across
// the sealed/growing boundary. Run under the TSAN CI job.
TEST(DatabaseTest, AttachedConcurrentInsertQuerySealStress) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_attached_stress")
                        .string();
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.seal_threshold = 32;
  options.background_seal = true;
  options.wal_fsync_interval = 0;  // Throughput: this test is about races.

  constexpr int kWriters = 3;
  constexpr int kRowsPerWriter = 300;
  {
    ObjectiveDatabase db(4, options);
    ASSERT_TRUE(db.Open(dir).ok());
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&db, w] {
        for (int i = 0; i < kRowsPerWriter; ++i) {
          std::map<std::string, std::string> fields;
          if (i % 2 == 0) fields["Deadline"] = std::to_string(2025 + i % 10);
          db.Insert(MakeRecord("w" + std::to_string(w) + "#" +
                                   std::to_string(i),
                               fields),
                    i % 4 == 0 ? "Shared" : "Writer" + std::to_string(w));
        }
      });
    }
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&db, &done] {
        size_t checksum = 0;
        while (!done.load(std::memory_order_acquire)) {
          checksum += db.ByCompany("Shared").size();
          checksum += db.DeadlineYearBetween(2025, 2030).size();
          checksum += db.QueryText("w0", TextFilter{}).size();
          checksum += db.SnapshotRows().size();
        }
        volatile size_t sink = checksum;
        (void)sink;
      });
    }
    for (int w = 0; w < kWriters; ++w) threads[w].join();
    done.store(true, std::memory_order_release);
    for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
    ASSERT_TRUE(db.Flush().ok());
    ASSERT_EQ(db.size(), static_cast<size_t>(kWriters * kRowsPerWriter));
  }

  // Every row survives the concurrent seals and a reopen, exactly once.
  ObjectiveDatabase reopened(4, options);
  ASSERT_TRUE(reopened.Open(dir).ok());
  ASSERT_EQ(reopened.size(), static_cast<size_t>(kWriters * kRowsPerWriter));
  std::set<int64_t> ids;
  for (const DbRow& row : reopened.SnapshotRows()) ids.insert(row.row_id);
  EXPECT_EQ(ids.size(), static_cast<size_t>(kWriters * kRowsPerWriter));
  EXPECT_EQ(*ids.rbegin(),
            static_cast<int64_t>(kWriters * kRowsPerWriter) - 1);
  std::filesystem::remove_all(dir);
}

DbOptions UpsertOptions() {
  DbOptions options;
  options.background_seal = false;
  options.track_upserts = true;
  return options;
}

TEST(DatabaseUpsertTest, InsertUpdateAndNoOpSemantics) {
  ObjectiveDatabase db(4, UpsertOptions());
  data::DetailRecord v1 = MakeRecord(
      "Reduce emissions by 20% by 2030",
      {{"Action", "Reduce"}, {"Qualifier", "emissions"}, {"Amount", "20%"}});
  UpsertResult first = db.Upsert(v1, "Acme");
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.version, 1);
  EXPECT_EQ(db.live_size(), 1u);

  // A restated target (same company + action lemma + qualifier, new
  // amount) updates the existing row in place: same id, version bump,
  // no new row.
  data::DetailRecord v2 = MakeRecord(
      "Reduce emissions by 30% by 2030",
      {{"Action", "Reduce"}, {"Qualifier", "emissions"}, {"Amount", "30%"}});
  UpsertResult second = db.Upsert(v2, "Acme");
  EXPECT_TRUE(second.updated);
  EXPECT_EQ(second.version, 2);
  EXPECT_EQ(second.row_id, first.row_id);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.live_size(), 1u);

  // Replaying the identical document is a no-op, not version 3.
  UpsertResult replay = db.Upsert(v2, "Acme");
  EXPECT_TRUE(replay.unchanged());
  EXPECT_EQ(replay.version, 2);

  // The action lemma and qualifier case-fold, so surface variants of the
  // same objective still match ("will reduce" / "Reducing" -> "reduce").
  data::DetailRecord v3 = MakeRecord(
      "We will be reducing Emissions by 35% by 2030",
      {{"Action", "Reducing"}, {"Qualifier", "Emissions"}, {"Amount", "35%"}});
  UpsertResult third = db.Upsert(v3, "Acme");
  EXPECT_TRUE(third.updated);
  EXPECT_EQ(third.version, 3);

  // A different qualifier is a different objective.
  data::DetailRecord other = MakeRecord(
      "Reduce water use by 10% by 2030",
      {{"Action", "Reduce"}, {"Qualifier", "water use"}, {"Amount", "10%"}});
  EXPECT_TRUE(db.Upsert(other, "Acme").inserted);
  // Same objective at a different company is also distinct.
  EXPECT_TRUE(db.Upsert(v2, "Globex").inserted);
  EXPECT_EQ(db.live_size(), 3u);

  std::optional<DbRow> live = db.Get(first.row_id);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->record.FieldOrEmpty("Amount"), "35%");
  EXPECT_EQ(RecordVersion(live->record), 3);
  EXPECT_EQ(db.ByCompany("Acme").size(), 2u);
}

TEST(DatabaseUpsertTest, EmptyKeyFieldsFallBackToObjectiveText) {
  ObjectiveDatabase db(2, UpsertOptions());
  data::DetailRecord bare = MakeRecord("Achieve net-zero by 2040", {});
  EXPECT_TRUE(db.Upsert(bare, "Acme").inserted);
  // Same text (modulo case/whitespace) matches; different text does not.
  data::DetailRecord bare_again = MakeRecord("  achieve NET-ZERO by 2040 ", {});
  UpsertResult again = db.Upsert(bare_again, "Acme");
  EXPECT_TRUE(again.updated);  // Same key; the raw text differs, so v2.
  EXPECT_EQ(again.version, 2);
  EXPECT_TRUE(db.Upsert(MakeRecord("Plant one million trees", {}), "Acme")
                  .inserted);
  EXPECT_EQ(db.live_size(), 2u);
}

TEST(DatabaseUpsertTest, SealedRowSupersededByNewVersion) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_upsert_sealed")
                        .string();
  std::filesystem::remove_all(dir);
  ObjectiveDatabase db(2, UpsertOptions());
  ASSERT_TRUE(db.Open(dir).ok());
  data::DetailRecord v1 = MakeRecord(
      "Cut waste by 40% by 2035",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "40%"}});
  UpsertResult first = db.Upsert(v1, "Acme");
  db.Upsert(MakeRecord("Reduce water use by 10%",
                       {{"Action", "Reduce"},
                        {"Qualifier", "water use"},
                        {"Amount", "10%"}}),
            "Acme");
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_GT(db.SealedSegmentCount(), 0u);

  // Updating a sealed row appends a fresh row (mmap segments are
  // immutable) and masks the old id everywhere except Get().
  data::DetailRecord v2 = MakeRecord(
      "Cut waste by 50% by 2035",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "50%"}});
  UpsertResult second = db.Upsert(v2, "Acme");
  EXPECT_TRUE(second.updated);
  EXPECT_EQ(second.version, 2);
  EXPECT_GT(second.row_id, first.row_id);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.live_size(), 2u);
  EXPECT_EQ(db.superseded_count(), 1u);

  // Every query path sees exactly the live rows.
  EXPECT_EQ(db.ByCompany("Acme").size(), 2u);
  EXPECT_EQ(db.WhereFieldEquals("Amount", "40%").size(), 0u);
  EXPECT_EQ(db.WhereFieldEquals("Amount", "50%").size(), 1u);
  EXPECT_EQ(db.CountPerCompany()["Acme"], 2);
  EXPECT_EQ(db.FieldCoverageByCompany("Amount")["Acme"], 1.0);
  EXPECT_EQ(db.SnapshotRows().size(), 2u);
  auto csv_records = ParseCsv(db.ExportCsv({"Amount"}));
  EXPECT_EQ(csv_records.size(), 3u);  // header + 2 live rows

  // Get() intentionally still serves the masked row: version history.
  std::optional<DbRow> old_row = db.Get(first.row_id);
  ASSERT_TRUE(old_row.has_value());
  EXPECT_EQ(old_row->record.FieldOrEmpty("Amount"), "40%");
  EXPECT_EQ(RecordVersion(old_row->record), 1);
  std::filesystem::remove_all(dir);
}

TEST(DatabaseUpsertTest, DedupStateSurvivesReopen) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_upsert_reopen")
                        .string();
  std::filesystem::remove_all(dir);
  data::DetailRecord v1 = MakeRecord(
      "Cut waste by 40% by 2035",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "40%"}});
  data::DetailRecord v2 = MakeRecord(
      "Cut waste by 50% by 2035",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "50%"}});
  {
    ObjectiveDatabase db(2, UpsertOptions());
    ASSERT_TRUE(db.Open(dir).ok());
    db.Upsert(v1, "Acme");
    ASSERT_TRUE(db.Flush().ok());
    EXPECT_TRUE(db.Upsert(v2, "Acme").updated);  // sealed -> superseded
    db.Upsert(MakeRecord("Plant trees", {{"Action", "Plant"},
                                         {"Qualifier", "trees"}}),
              "Globex");
  }

  ObjectiveDatabase reopened(2, UpsertOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.live_size(), 2u);
  EXPECT_EQ(reopened.superseded_count(), 1u);

  // The rebuilt dedup map still recognizes the key: replay is a no-op,
  // a further restatement lands version 3.
  EXPECT_TRUE(reopened.Upsert(v2, "Acme").unchanged());
  data::DetailRecord v3 = MakeRecord(
      "Cut waste by 60% by 2035",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "60%"}});
  UpsertResult third = reopened.Upsert(v3, "Acme");
  EXPECT_TRUE(third.updated);
  EXPECT_EQ(third.version, 3);
  EXPECT_EQ(reopened.live_size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(DatabaseUpsertTest, WalReplayAppliesInPlaceUpdates) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_upsert_wal")
                        .string();
  std::filesystem::remove_all(dir);
  data::DetailRecord v2 = MakeRecord(
      "Cut waste by 50% by 2035",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "50%"}});
  {
    ObjectiveDatabase db(2, UpsertOptions());
    ASSERT_TRUE(db.Open(dir).ok());
    db.Upsert(MakeRecord("Cut waste by 40% by 2035",
                         {{"Action", "Cut"},
                          {"Qualifier", "waste"},
                          {"Amount", "40%"}}),
              "Acme");
    // No Flush: both the original and the in-place update live only in
    // the WAL, as two records sharing one row id.
    EXPECT_TRUE(db.Upsert(v2, "Acme").updated);
    EXPECT_EQ(db.SealedSegmentCount(), 0u);
  }

  ObjectiveDatabase reopened(2, UpsertOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.live_size(), 1u);
  std::vector<DbRow> rows = reopened.SnapshotRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].record.FieldOrEmpty("Amount"), "50%");
  EXPECT_EQ(RecordVersion(rows[0].record), 2);
  EXPECT_TRUE(reopened.Upsert(v2, "Acme").unchanged());
  std::filesystem::remove_all(dir);
}

TEST(DatabaseUpsertTest, SaveCompactsSupersededRows) {
  std::string attached_dir = (std::filesystem::temp_directory_path() /
                              "goalex_db_upsert_compact_src")
                                 .string();
  std::string saved_dir = (std::filesystem::temp_directory_path() /
                           "goalex_db_upsert_compact_dst")
                              .string();
  std::filesystem::remove_all(attached_dir);
  std::filesystem::remove_all(saved_dir);
  ObjectiveDatabase db(2, UpsertOptions());
  ASSERT_TRUE(db.Open(attached_dir).ok());
  db.Upsert(MakeRecord("Cut waste by 40%", {{"Action", "Cut"},
                                            {"Qualifier", "waste"},
                                            {"Amount", "40%"}}),
            "Acme");
  ASSERT_TRUE(db.Flush().ok());
  db.Upsert(MakeRecord("Cut waste by 50%", {{"Action", "Cut"},
                                            {"Qualifier", "waste"},
                                            {"Amount", "50%"}}),
            "Acme");
  EXPECT_EQ(db.size(), 2u);

  // Save() writes only live rows: the superseded copy is compacted away.
  ObjectiveDatabase copy(2, UpsertOptions());
  ASSERT_TRUE(db.Save(saved_dir).ok());
  ASSERT_TRUE(copy.Load(saved_dir).ok());
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy.superseded_count(), 0u);
  std::vector<DbRow> rows = copy.SnapshotRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].record.FieldOrEmpty("Amount"), "50%");
  std::filesystem::remove_all(attached_dir);
  std::filesystem::remove_all(saved_dir);
}

TEST(DatabaseUpsertTest, PlainInsertBypassesDedup) {
  ObjectiveDatabase db(2, UpsertOptions());
  data::DetailRecord record = MakeRecord(
      "Cut waste by 40%",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "40%"}});
  db.Insert(record, "Acme");
  db.Insert(record, "Acme");
  EXPECT_EQ(db.live_size(), 2u);  // Insert never dedups.
  // Upsert then matches the newest inserted row for the key.
  data::DetailRecord restated = MakeRecord(
      "Cut waste by 55%",
      {{"Action", "Cut"}, {"Qualifier", "waste"}, {"Amount", "55%"}});
  UpsertResult result = db.Upsert(restated, "Acme");
  EXPECT_TRUE(result.updated);
  EXPECT_EQ(result.row_id, 1);
  EXPECT_EQ(db.live_size(), 2u);
}

TEST(DatabaseUpsertTest, StaleSequencedDeliveriesAreDropped) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "goalex_db_upsert_stale")
                        .string();
  std::filesystem::remove_all(dir);
  data::DetailRecord v1 = MakeRecord(
      "Reduce emissions by 20% by 2030",
      {{"Action", "Reduce"}, {"Qualifier", "emissions"}, {"Amount", "20%"}});
  data::DetailRecord v2 = MakeRecord(
      "Reduce emissions by 30% by 2030",
      {{"Action", "Reduce"}, {"Qualifier", "emissions"}, {"Amount", "30%"}});
  int64_t live_id = -1;
  {
    ObjectiveDatabase db(2, UpsertOptions());
    ASSERT_TRUE(db.Open(dir).ok());
    UpsertResult first = db.Upsert(v1, "Acme", "report-2029.pdf", 1, 0);
    EXPECT_TRUE(first.inserted);
    live_id = first.row_id;
    UpsertResult second = db.Upsert(v2, "Acme", "report-2030.pdf", 1, 7);
    EXPECT_TRUE(second.updated);
    EXPECT_EQ(second.version, 2);

    // Replaying the feed re-delivers the v1 publication with its original
    // (older) sequence: dropped as stale, not applied as version 3.
    UpsertResult stale = db.Upsert(v1, "Acme", "report-2029.pdf", 1, 0);
    EXPECT_TRUE(stale.stale);
    EXPECT_TRUE(stale.unchanged());
    EXPECT_EQ(stale.version, 2);
    // Re-delivering the newest publication is a byte-identical no-op.
    UpsertResult replay = db.Upsert(v2, "Acme", "report-2030.pdf", 1, 7);
    EXPECT_FALSE(replay.stale);
    EXPECT_TRUE(replay.unchanged());
    std::optional<DbRow> live = db.Get(live_id);
    ASSERT_TRUE(live.has_value());
    EXPECT_EQ(live->record.FieldOrEmpty("Amount"), "30%");
    EXPECT_EQ(RecordSequence(live->record), 7);
  }
  // The sequence rides the _seq field through the WAL, so the stale guard
  // survives a reopen.
  ObjectiveDatabase reopened(2, UpsertOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  UpsertResult stale = reopened.Upsert(v1, "Acme", "report-2029.pdf", 1, 0);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(stale.version, 2);
  EXPECT_EQ(reopened.live_size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace goalex::core
