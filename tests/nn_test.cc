#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/adam.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "nn/transformer.h"

namespace goalex::nn {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.max_seq_len = 16;
  config.d_model = 16;
  config.heads = 2;
  config.layers = 2;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(4, 6, rng);
  tensor::Var x = tensor::Leaf(
      tensor::Tensor::RandomNormal({3, 4}, 1.0f, rng), false);
  tensor::Var y = layer.Forward(x);
  EXPECT_EQ(y->value().dim(0), 3);
  EXPECT_EQ(y->value().dim(1), 6);
}

TEST(LinearTest, ParameterEnumeration) {
  Rng rng(2);
  Linear layer(4, 6, rng);
  std::vector<NamedParam> params = layer.NamedParameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "weight");
  EXPECT_EQ(params[1].name, "bias");
  EXPECT_EQ(layer.ParameterCount(), 4 * 6 + 6);
}

TEST(TransformerTest, ForwardShape) {
  Rng rng(3);
  TransformerEncoder encoder(SmallConfig(), rng);
  tensor::Var out = encoder.Forward({2, 5, 7, 9});
  EXPECT_EQ(out->value().dim(0), 4);
  EXPECT_EQ(out->value().dim(1), 16);
}

TEST(TransformerTest, TruncatesLongInput) {
  Rng rng(4);
  TransformerEncoder encoder(SmallConfig(), rng);
  std::vector<int32_t> ids(40, 5);
  tensor::Var out = encoder.Forward(ids);
  EXPECT_EQ(out->value().dim(0), 16);
}

TEST(TransformerTest, DeterministicEval) {
  Rng rng(5);
  TransformerEncoder encoder(SmallConfig(), rng);
  tensor::Var a = encoder.Forward({1, 2, 3});
  tensor::Var b = encoder.Forward({1, 2, 3});
  for (int64_t i = 0; i < a->value().numel(); ++i) {
    EXPECT_EQ(a->value().data()[i], b->value().data()[i]);
  }
}

TEST(TransformerTest, OutputIsFinite) {
  Rng rng(6);
  TransformerEncoder encoder(SmallConfig(), rng);
  tensor::Var out = encoder.Forward({2, 5, 7, 9, 11, 13});
  EXPECT_FALSE(out->value().HasNonFinite());
}

TEST(TransformerTest, SinusoidalPositionsNotTrainable) {
  Rng rng(7);
  TransformerConfig config = SmallConfig();
  config.sinusoidal_positions = true;
  TransformerEncoder sin_encoder(config, rng);
  config.sinusoidal_positions = false;
  TransformerEncoder learned_encoder(config, rng);
  // Learned-positions model has one extra parameter tensor.
  EXPECT_EQ(learned_encoder.NamedParameters().size(),
            sin_encoder.NamedParameters().size() + 1);
}

TEST(TokenClassifierTest, LogitsShapeAndPredict) {
  Rng rng(8);
  TokenClassifier model(SmallConfig(), 7, rng);
  tensor::Var logits = model.ForwardLogits({1, 2, 3, 4, 5});
  EXPECT_EQ(logits->value().dim(0), 5);
  EXPECT_EQ(logits->value().dim(1), 7);
  std::vector<int32_t> pred = model.Predict({1, 2, 3, 4, 5});
  EXPECT_EQ(pred.size(), 5u);
  for (int32_t p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 7);
  }
}

TEST(TokenClassifierTest, LossIsPositiveAtInit) {
  Rng rng(9);
  TokenClassifier model(SmallConfig(), 7, rng);
  tensor::Var loss = model.ForwardLoss({1, 2, 3}, {0, 1, 2});
  EXPECT_GT(loss->value().at(0), 0.5f);  // Roughly log(7) ~ 1.95 at init.
  EXPECT_LT(loss->value().at(0), 4.0f);
}

// The decisive training test: a tiny classifier must overfit a toy
// sequence-labeling task (label = token id parity) in a few hundred steps.
TEST(TokenClassifierTest, LearnsToyTask) {
  Rng rng(10);
  TransformerConfig config = SmallConfig();
  config.layers = 1;
  TokenClassifier model(config, 2, rng);
  Adam optimizer(model.Parameters(), AdamOptions{.learning_rate = 1e-2f});

  std::vector<std::vector<int32_t>> inputs = {
      {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}, {5, 8, 13, 4}};
  auto parity_targets = [](const std::vector<int32_t>& ids) {
    std::vector<int32_t> t;
    for (int32_t id : ids) t.push_back(id % 2);
    return t;
  };

  Rng train_rng(0);
  for (int step = 0; step < 150; ++step) {
    for (const auto& ids : inputs) {
      tensor::Var loss =
          model.ForwardLoss(ids, parity_targets(ids), train_rng);
      tensor::Backward(loss);
    }
    optimizer.Step();
  }

  int correct = 0, total = 0;
  for (const auto& ids : inputs) {
    std::vector<int32_t> pred = model.Predict(ids);
    std::vector<int32_t> gold = parity_targets(ids);
    for (size_t i = 0; i < pred.size(); ++i) {
      correct += (pred[i] == gold[i]);
      ++total;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / total, 0.9);
}

TEST(SequenceClassifierTest, PredictAndLearnToyTask) {
  Rng rng(11);
  TransformerConfig config = SmallConfig();
  config.layers = 1;
  SequenceClassifier model(config, 2, rng);
  Adam optimizer(model.Parameters(), AdamOptions{.learning_rate = 1e-2f});

  // Class 1 iff token 7 appears.
  std::vector<std::pair<std::vector<int32_t>, int32_t>> dataset = {
      {{4, 7, 6}, 1}, {{4, 5, 6}, 0}, {{7, 9, 9}, 1},
      {{8, 9, 9}, 0}, {{10, 7, 12}, 1}, {{10, 11, 12}, 0}};

  Rng train_rng(0);
  for (int step = 0; step < 150; ++step) {
    for (const auto& [ids, label] : dataset) {
      tensor::Var loss = model.ForwardLoss(ids, label, train_rng);
      tensor::Backward(loss);
    }
    optimizer.Step();
  }
  int correct = 0;
  for (const auto& [ids, label] : dataset) {
    correct += (model.Predict(ids) == label);
  }
  EXPECT_GE(correct, 5);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 via autograd.
  Rng rng(12);
  tensor::Var w =
      tensor::Leaf(tensor::Tensor::RandomNormal({1, 4}, 1.0f, rng), true);
  tensor::Tensor target = tensor::Tensor::FromValues({1, 4}, {1, -2, 3, 0});
  Adam optimizer({w}, AdamOptions{.learning_rate = 5e-2f, .clip_norm = 0});
  for (int step = 0; step < 400; ++step) {
    tensor::Var diff =
        tensor::Add(w, tensor::Leaf(
                           [&] {
                             tensor::Tensor t = target.Clone();
                             for (int64_t i = 0; i < t.numel(); ++i) {
                               t.data()[i] = -t.data()[i];
                             }
                             return t;
                           }(),
                           false));
    tensor::Var sq = tensor::Mul(diff, diff);
    tensor::Var ones =
        tensor::Leaf(tensor::Tensor::Full({4, 1}, 1.0f), false);
    tensor::Var loss = tensor::MatMul(sq, ones);
    tensor::Backward(loss);
    optimizer.Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w->value().at(0, i), target.at(0, i), 0.05f);
  }
}

TEST(AdamTest, ClipNormBoundsUpdates) {
  tensor::Var w = tensor::Leaf(tensor::Tensor::Zeros({1, 2}), true);
  Adam optimizer({w}, AdamOptions{.learning_rate = 1.0f, .clip_norm = 1.0f});
  w->grad().data()[0] = 1e6f;
  w->grad().data()[1] = 1e6f;
  optimizer.Step();
  // Update magnitude is bounded by learning_rate regardless of huge grads.
  EXPECT_LT(std::fabs(w->value().at(0, 0)), 1.5f);
}

TEST(SerializeTest, RoundTripExact) {
  Rng rng(13);
  TokenClassifier model(SmallConfig(), 5, rng);
  std::string path =
      (std::filesystem::temp_directory_path() / "goalex_nn_test.bin")
          .string();
  ASSERT_TRUE(SaveParameters(model, path).ok());

  Rng rng2(99);  // Different init.
  TokenClassifier restored(SmallConfig(), 5, rng2);
  ASSERT_TRUE(LoadParameters(restored, path).ok());

  std::vector<int32_t> ids = {1, 2, 3, 4};
  std::vector<int32_t> a = model.Predict(ids);
  std::vector<int32_t> b = restored.Predict(ids);
  EXPECT_EQ(a, b);

  // Logits match exactly, not just argmax.
  tensor::Var la = model.ForwardLogits(ids);
  tensor::Var lb = restored.ForwardLogits(ids);
  for (int64_t i = 0; i < la->value().numel(); ++i) {
    EXPECT_EQ(la->value().data()[i], lb->value().data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
  Rng rng(14);
  TokenClassifier model(SmallConfig(), 5, rng);
  std::string path =
      (std::filesystem::temp_directory_path() / "goalex_nn_test2.bin")
          .string();
  ASSERT_TRUE(SaveParameters(model, path).ok());

  TransformerConfig other = SmallConfig();
  other.d_model = 32;
  other.heads = 2;
  Rng rng2(15);
  TokenClassifier different(other, 5, rng2);
  EXPECT_FALSE(LoadParameters(different, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(16);
  TokenClassifier model(SmallConfig(), 5, rng);
  Status s = LoadParameters(model, "/nonexistent/path/weights.bin");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace goalex::nn
