#include "values/value_normalizer.h"

#include <gtest/gtest.h>

namespace goalex::values {
namespace {

TEST(NormalizeAmountTest, Percentages) {
  auto v = NormalizeAmount("20%");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kPercent);
  EXPECT_DOUBLE_EQ(v->magnitude, 0.20);

  v = NormalizeAmount("8.1%");
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(v->magnitude, 0.081, 1e-12);

  v = NormalizeAmount("25 percent");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kPercent);
  EXPECT_DOUBLE_EQ(v->magnitude, 0.25);
}

TEST(NormalizeAmountTest, NetZeroForms) {
  for (const char* raw : {"net-zero", "net zero", "zero", "Net-Zero"}) {
    auto v = NormalizeAmount(raw);
    ASSERT_TRUE(v.has_value()) << raw;
    EXPECT_EQ(v->type, AmountType::kNetZero);
  }
}

TEST(NormalizeAmountTest, Multipliers) {
  EXPECT_DOUBLE_EQ(NormalizeAmount("double")->magnitude, 2.0);
  EXPECT_DOUBLE_EQ(NormalizeAmount("half")->magnitude, 0.5);
  EXPECT_NEAR(NormalizeAmount("two thirds")->magnitude, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(NormalizeAmount("one third")->magnitude, 1.0 / 3.0, 1e-12);
}

TEST(NormalizeAmountTest, Counts) {
  auto v = NormalizeAmount("250");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kCount);
  EXPECT_DOUBLE_EQ(v->magnitude, 250.0);

  EXPECT_DOUBLE_EQ(NormalizeAmount("10,000")->magnitude, 10000.0);
  EXPECT_DOUBLE_EQ(NormalizeAmount("1 million")->magnitude, 1e6);
  EXPECT_DOUBLE_EQ(NormalizeAmount("100 million")->magnitude, 1e8);
}

TEST(NormalizeAmountTest, MassEnergyPower) {
  auto mass = NormalizeAmount("500 tonnes");
  ASSERT_TRUE(mass.has_value());
  EXPECT_EQ(mass->type, AmountType::kMass);
  EXPECT_DOUBLE_EQ(mass->magnitude, 500.0 * 1000.0);  // kg

  auto mt = NormalizeAmount("1.5 Mt");
  ASSERT_TRUE(mt.has_value());
  EXPECT_DOUBLE_EQ(mt->magnitude, 1.5e9);

  auto energy = NormalizeAmount("10 GWh");
  ASSERT_TRUE(energy.has_value());
  EXPECT_EQ(energy->type, AmountType::kEnergy);
  EXPECT_DOUBLE_EQ(energy->magnitude, 10 * 3.6e12);  // J

  auto power = NormalizeAmount("25 MW");
  ASSERT_TRUE(power.has_value());
  EXPECT_EQ(power->type, AmountType::kPower);
  EXPECT_DOUBLE_EQ(power->magnitude, 25e6);  // W
}

TEST(NormalizeAmountTest, ThousandsSeparatorRequiresGroupsOfThree) {
  // Valid separators: comma groups of exactly 3 digits.
  EXPECT_DOUBLE_EQ(NormalizeAmount("1,000")->magnitude, 1000.0);
  EXPECT_DOUBLE_EQ(NormalizeAmount("12,345.6")->magnitude, 12345.6);
  EXPECT_DOUBLE_EQ(NormalizeAmount("1,234,567")->magnitude, 1234567.0);

  // Regression: "2,5" (a European decimal) used to glue into 25, so
  // "2,5 million" parsed as 25 million. The comma is now rejected as a
  // separator and the leftover ",5 ..." makes the whole form unparseable
  // rather than silently 10x off.
  EXPECT_FALSE(NormalizeAmount("2,5").has_value());
  EXPECT_FALSE(NormalizeAmount("2,5 million").has_value());
  // Regression: "1,00" used to parse as 100 and "1,0000" as 10000.
  EXPECT_FALSE(NormalizeAmount("1,00").has_value());
  EXPECT_FALSE(NormalizeAmount("1,0000").has_value());
}

TEST(NormalizeAmountTest, TrailingPunctuationIsStripped) {
  // Regression: values clipped from running text carry sentence
  // punctuation; "40 percent." used to return nullopt because the special
  // forms and units were matched against the raw remainder.
  auto v = NormalizeAmount("40 percent.");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kPercent);
  EXPECT_DOUBLE_EQ(v->magnitude, 0.40);

  v = NormalizeAmount("40%.");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kPercent);
  EXPECT_DOUBLE_EQ(v->magnitude, 0.40);

  v = NormalizeAmount("30 per cent,");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kPercent);
  EXPECT_DOUBLE_EQ(v->magnitude, 0.30);

  v = NormalizeAmount("net zero.");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kNetZero);

  v = NormalizeAmount("1,000 tonnes,");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, AmountType::kMass);
  EXPECT_DOUBLE_EQ(v->magnitude, 1000.0 * 1000.0);  // kg

  // Repeated punctuation and trailing whitespace after stripping.
  EXPECT_DOUBLE_EQ(NormalizeAmount("double.")->magnitude, 2.0);
  EXPECT_DOUBLE_EQ(NormalizeAmount("25 percent!?")->magnitude, 0.25);

  // A bare '%' is a unit, not punctuation — it must survive stripping.
  EXPECT_DOUBLE_EQ(NormalizeAmount("15%")->magnitude, 0.15);

  // European decimals stay rejected: the comma is internal, not trailing.
  EXPECT_FALSE(NormalizeAmount("2,5 million").has_value());
}

TEST(NormalizeAmountTest, RejectsNonQuantities) {
  EXPECT_FALSE(NormalizeAmount("").has_value());
  EXPECT_FALSE(NormalizeAmount("energy consumption").has_value());
  EXPECT_FALSE(NormalizeAmount("significantly").has_value());
  EXPECT_FALSE(NormalizeAmount("20 gadgets").has_value());
}

TEST(NormalizeAmountTest, TypeNames) {
  EXPECT_STREQ(AmountTypeName(AmountType::kPercent), "percent");
  EXPECT_STREQ(AmountTypeName(AmountType::kNetZero), "net-zero");
}

TEST(NormalizeYearTest, BareAndEmbedded) {
  EXPECT_EQ(NormalizeYear("2040").value(), 2040);
  EXPECT_EQ(NormalizeYear("the end of 2035").value(), 2035);
  EXPECT_EQ(NormalizeYear("fiscal year 2028").value(), 2028);
}

TEST(NormalizeYearTest, RejectsNonYears) {
  EXPECT_FALSE(NormalizeYear("next year").has_value());
  EXPECT_FALSE(NormalizeYear("123").has_value());
  EXPECT_FALSE(NormalizeYear("20401").has_value());  // 5-digit run.
  EXPECT_FALSE(NormalizeYear("1203").has_value());   // Implausible year.
  EXPECT_FALSE(NormalizeYear("").has_value());
}

TEST(NormalizeDeadlineYearTest, MatchesNormalizeYearOnSingleYearStrings) {
  EXPECT_EQ(NormalizeDeadlineYear("2040").value(), 2040);
  EXPECT_EQ(NormalizeDeadlineYear("the end of 2035").value(), 2035);
  EXPECT_EQ(NormalizeDeadlineYear("fiscal year 2028").value(), 2028);
  EXPECT_FALSE(NormalizeDeadlineYear("next year").has_value());
  EXPECT_FALSE(NormalizeDeadlineYear("20401").has_value());
  EXPECT_FALSE(NormalizeDeadlineYear("").has_value());
}

TEST(NormalizeDeadlineYearTest, BaselineAndDeadlineInOneString) {
  // Regression: the first-run rule returned the *baseline* 2019 for all of
  // these, corrupting the deadline-year index.
  EXPECT_EQ(NormalizeDeadlineYear("compared to 2019 levels, by 2035"), 2035);
  EXPECT_EQ(NormalizeDeadlineYear("against a 2019 baseline, by 2035"), 2035);
  EXPECT_EQ(NormalizeDeadlineYear("from 2019 levels, no later than 2032"),
            2032);
  EXPECT_EQ(NormalizeDeadlineYear("versus fiscal year 2019, before 2030"),
            2030);
  EXPECT_EQ(NormalizeDeadlineYear("relative to 2017, until 2026"), 2026);
  // The deadline may also come first.
  EXPECT_EQ(NormalizeDeadlineYear("by 2035, compared to 2019 levels"), 2035);
  EXPECT_EQ(NormalizeDeadlineYear("by the end of 2045 (baseline 2020)"),
            2045);
  EXPECT_EQ(NormalizeDeadlineYear("by fiscal year 2033 against 2021"), 2033);
  EXPECT_EQ(NormalizeDeadlineYear("with a target date of 2036, from 2019"),
            2036);
}

TEST(NormalizeDeadlineYearTest, AmountByIsNotADeadlineCue) {
  // The "by" of "by 40 percent" belongs to the amount; the cue walk stops
  // at the first substantive word before the year ("compared") and must
  // not reach across it. With no cue anywhere, the last run wins.
  EXPECT_EQ(NormalizeDeadlineYear("by 40 percent compared to 2019"), 2019);
  EXPECT_EQ(NormalizeDeadlineYear("by 25 percent against 2015 and by 2030"),
            2030);
}

TEST(NormalizeDeadlineYearTest, NoCueFallsBackToLastRun) {
  EXPECT_EQ(NormalizeDeadlineYear("2019 levels and then 2035"), 2035);
  EXPECT_EQ(NormalizeDeadlineYear("sometime around 2044"), 2044);
}

TEST(NormalizeActionTest, StripsWillAndLowercases) {
  EXPECT_EQ(NormalizeAction("will Reduce"), "reduce");
  EXPECT_EQ(NormalizeAction("Reduce"), "reduce");
  EXPECT_EQ(NormalizeAction("REACH"), "reach");
}

TEST(NormalizeActionTest, GerundStemming) {
  EXPECT_EQ(NormalizeAction("reducing"), "reduce");
  EXPECT_EQ(NormalizeAction("cutting"), "cut");
  EXPECT_EQ(NormalizeAction("planting"), "plant");
  EXPECT_EQ(NormalizeAction("achieving"), "achieve");
  EXPECT_EQ(NormalizeAction("phasing out"), "phase out");
  EXPECT_EQ(NormalizeAction("restoring"), "restore");
  EXPECT_EQ(NormalizeAction("doubling"), "double");
  EXPECT_EQ(NormalizeAction("offsetting"), "offset");
  EXPECT_EQ(NormalizeAction("installing"), "install");
  EXPECT_EQ(NormalizeAction("expanding"), "expand");
}

TEST(NormalizeActionTest, GerundDeDoublingKeepsLegitimateDoubledBases) {
  // Regression: de-doubling used to strip any trailing doubled letter not
  // on a three-word allowlist, truncating stems whose base form genuinely
  // ends in a doubled letter ("selling" -> "sel", "agreeing" -> "agre").
  struct Case {
    const char* gerund;
    const char* lemma;
  };
  const Case kCases[] = {
      // Doubled vowels are never gerund doubling.
      {"agreeing", "agree"},
      {"seeing", "see"},
      {"fleeing", "flee"},
      {"freeing up", "free up"},
      // Base forms ending in "-ll" keep the pair by default — no
      // allowlist enumeration required.
      {"selling", "sell"},
      {"rolling out", "roll out"},
      {"falling", "fall"},
      {"filling", "fill"},
      {"installing", "install"},
      {"fulfilling", "fulfill"},
      {"enrolling", "enroll"},
      {"pulling", "pull"},
      {"killing", "kill"},
      {"willing", "will"},
      {"chilling", "chill"},
      {"grilling", "grill"},
      {"billing", "bill"},
      {"milling", "mill"},
      {"scrolling", "scroll"},
      {"spelling", "spell"},
      {"drilling", "drill"},
      {"recalling", "recall"},
      // ...while known single-'l' bases that double still de-double.
      {"controlling", "control"},
      {"compelling", "compel"},
      {"propelling", "propel"},
      {"expelling", "expel"},
      {"travelling", "travel"},
      {"labelling", "label"},
      {"modelling", "model"},
      {"cancelling", "cancel"},
      // Non-'l' base forms that genuinely end doubled (allowlisted).
      {"adding", "add"},
      {"erring", "err"},
      // Letters that never double before -ing keep their pair.
      {"pressing", "press"},
      {"passing", "pass"},
      {"assessing", "assess"},
      {"discussing", "discuss"},
      {"addressing", "address"},
      {"crossing", "cross"},
      // True CVC doubling still de-doubles.
      {"cutting", "cut"},
      {"running", "run"},
      {"planning", "plan"},
      {"stopping", "stop"},
      {"offsetting", "offset"},
      {"committing", "commit"},
      {"equipping", "equip"},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(NormalizeAction(c.gerund), c.lemma) << c.gerund;
  }
}

TEST(NormalizeActionTest, SameLemmaForAllSurfaceForms) {
  // The categorization use case: all three surface forms of "reduce"
  // canonicalize identically, enabling cross-company grouping.
  EXPECT_EQ(NormalizeAction("Reduce"), NormalizeAction("reducing"));
  EXPECT_EQ(NormalizeAction("Reduce"), NormalizeAction("will reduce"));
}

TEST(NormalizeRecordTest, SustainabilityGoalsSchema) {
  data::DetailRecord record;
  record.fields = {{"Action", "will Reduce"},
                   {"Amount", "20%"},
                   {"Baseline", "2017"},
                   {"Deadline", "2025"}};
  TypedDetails typed = NormalizeRecord(record);
  EXPECT_EQ(typed.action_lemma, "reduce");
  ASSERT_TRUE(typed.amount.has_value());
  EXPECT_DOUBLE_EQ(typed.amount->magnitude, 0.20);
  EXPECT_EQ(typed.baseline_year.value(), 2017);
  EXPECT_EQ(typed.deadline_year.value(), 2025);
}

TEST(NormalizeRecordTest, NetZeroFactsSchemaViaAliases) {
  data::DetailRecord record;
  record.fields = {{"TargetValue", "net zero"},
                   {"ReferenceYear", "2015"},
                   {"TargetYear", "2040"}};
  TypedDetails typed = NormalizeRecord(record);
  ASSERT_TRUE(typed.amount.has_value());
  EXPECT_EQ(typed.amount->type, AmountType::kNetZero);
  EXPECT_EQ(typed.baseline_year.value(), 2015);
  EXPECT_EQ(typed.deadline_year.value(), 2040);
}

TEST(NormalizeRecordTest, EmptyRecord) {
  TypedDetails typed = NormalizeRecord(data::DetailRecord{});
  EXPECT_TRUE(typed.action_lemma.empty());
  EXPECT_FALSE(typed.amount.has_value());
  EXPECT_FALSE(typed.baseline_year.has_value());
  EXPECT_FALSE(typed.deadline_year.has_value());
}

}  // namespace
}  // namespace goalex::values
