// Stress and edge-case tests for the parallel batched runtime, beyond the
// semantics covered by runtime_test.cc: degenerate batch shapes, exception
// propagation out of Map, ordering under heavy jittered fan-out, and the
// queue-depth/utilization instrumentation. Runs under GOALEX_ENABLE_TSAN.
#include "runtime/batch_runner.h"
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace goalex::runtime {
namespace {

TEST(BatchRunnerEdgeTest, EmptyInputProducesEmptyOutput) {
  for (int threads : {1, 4}) {
    BatchRunner runner(threads);
    std::atomic<int> calls{0};
    std::vector<int> out = runner.Map<int>(0, [&calls](size_t) {
      calls.fetch_add(1);
      return 0;
    });
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(runner.last_stats().items, 0u);
  }
}

TEST(BatchRunnerEdgeTest, MoreThreadsThanItems) {
  // 16 workers, 3 items: the partition must not create empty or
  // overlapping chunks.
  BatchRunner runner(16);
  std::vector<int> out =
      runner.Map<int>(3, [](size_t i) { return static_cast<int>(i) + 10; });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  EXPECT_EQ(out[2], 12);
}

TEST(BatchRunnerEdgeTest, SingleItemBatch) {
  for (int threads : {1, 2, 16}) {
    BatchRunner runner(threads);
    std::vector<std::string> out = runner.Map<std::string>(
        1, [](size_t i) { return "item-" + std::to_string(i); });
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], "item-0");
  }
}

TEST(BatchRunnerEdgeTest, WorkItemExceptionPropagatesFromMap) {
  BatchRunner runner(4);
  EXPECT_THROW(runner.Map<int>(100,
                               [](size_t i) -> int {
                                 if (i == 57) {
                                   throw std::runtime_error("item 57 broke");
                                 }
                                 return static_cast<int>(i);
                               }),
               std::runtime_error);

  // The runner (and its pool) survives: the next Map is complete and
  // correct, and the stored exception does not leak into it.
  std::vector<int> out =
      runner.Map<int>(100, [](size_t i) { return static_cast<int>(i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(BatchRunnerEdgeTest, ExceptionInSerialModePropagatesToo) {
  BatchRunner runner(1);
  EXPECT_THROW(runner.Map<int>(10,
                               [](size_t i) -> int {
                                 if (i == 3) throw std::invalid_argument("x");
                                 return 0;
                               }),
               std::invalid_argument);
}

TEST(BatchRunnerStressTest, OrderingHoldsUnder16ThreadsWithJitter) {
  // Jittered task durations make chunks finish far out of order; the
  // output must still be exactly input-ordered. This is the scenario the
  // TSAN job watches: 16 workers writing disjoint slices of one vector.
  BatchRunner runner(16);
  constexpr size_t kItems = 2000;
  std::vector<uint64_t> out = runner.Map<uint64_t>(kItems, [](size_t i) {
    // Deterministic per-item jitter: spin between 0 and ~40us.
    std::mt19937_64 rng(i);
    uint64_t spin = rng() % 400;
    uint64_t acc = i;
    for (uint64_t k = 0; k < spin; ++k) acc = acc * 6364136223846793005ULL + k;
    if (spin % 7 == 0) std::this_thread::yield();
    return static_cast<uint64_t>(i) * 2 + 1;
  });
  ASSERT_EQ(out.size(), kItems);
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(out[i], static_cast<uint64_t>(i) * 2 + 1) << "index " << i;
  }
}

TEST(BatchRunnerStressTest, RepeatedMapsOnOneRunnerStayExact) {
  BatchRunner runner(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    size_t n = static_cast<size_t>(round) * 7 % 97;  // Varying batch sizes.
    runner.Map<int>(n, [&sum](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
      return 0;
    });
    EXPECT_EQ(sum.load(), n == 0 ? 0 : n * (n - 1) / 2) << "round " << round;
    EXPECT_EQ(runner.last_stats().items, n);
  }
}

TEST(BatchRunnerStressTest, ManyConcurrentRunnersDoNotInterfere) {
  // Four runners on four caller threads, each mapping its own range: the
  // shared metrics registry is the only common state, and results must be
  // independent.
  constexpr int kRunners = 4;
  std::vector<std::thread> callers;
  std::vector<uint64_t> checksums(kRunners, 0);
  for (int r = 0; r < kRunners; ++r) {
    callers.emplace_back([r, &checksums] {
      BatchRunner runner(4);
      std::vector<uint64_t> out = runner.Map<uint64_t>(
          500, [r](size_t i) { return static_cast<uint64_t>(r) * 1000 + i; });
      uint64_t sum = 0;
      for (uint64_t v : out) sum += v;
      checksums[static_cast<size_t>(r)] = sum;
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (int r = 0; r < kRunners; ++r) {
    // sum over i of (r * 1000 + i), i in [0, 500).
    uint64_t expected =
        static_cast<uint64_t>(r) * 1000 * 500 + 500 * 499 / 2;
    EXPECT_EQ(checksums[static_cast<size_t>(r)], expected) << "runner " << r;
  }
}

TEST(BatchRunnerInstrumentationTest, QueueDrainsAndMetricsAccumulate) {
  if (!obs::Active()) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.Reset();

  BatchRunner runner(8);
  runner.Map<int>(64, [](size_t i) {
    std::this_thread::yield();
    return static_cast<int>(i);
  });

  // All tasks drained: queue depth gauge must be back at zero, and the
  // batch counters must reflect exactly one recorded batch of 64 items.
  EXPECT_DOUBLE_EQ(registry.GetGauge("runtime.pool.queue_depth")->Value(),
                   0.0);
  EXPECT_EQ(registry.GetCounter("runtime.batches")->Value(), 1u);
  obs::HistogramSnapshot items =
      registry.GetHistogram("runtime.batch.items", obs::DefaultSizeBounds())
          ->Snapshot();
  EXPECT_EQ(items.count, 1u);
  EXPECT_DOUBLE_EQ(items.sum, 64.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("runtime.batch.threads")->Value(), 8.0);
  // Utilization is a ratio in (0, 1]; with yielding workers it may be low
  // but can never exceed 1 by more than scheduler measurement noise.
  double utilization =
      registry.GetGauge("runtime.batch.utilization")->Value();
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 1.05);
  registry.Reset();
}

TEST(BatchRunnerInstrumentationTest, DisabledRuntimeRecordsNothing) {
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::SetEnabled(false);
  registry.Reset();
  BatchRunner runner(4);
  runner.Map<int>(32, [](size_t i) { return static_cast<int>(i); });
  obs::SetEnabled(true);
  EXPECT_EQ(registry.GetCounter("runtime.batches")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("runtime.pool.tasks")->Value(), 0u);
}

TEST(BatchRunnerInstrumentationTest, SingleChunkRunOnMultiThreadPoolHasUtilization) {
  // Regression: ParallelFor with a single chunk used to run it inline
  // without busy-seconds accounting, so runtime.batch.utilization read ~0
  // for every small batch on a multi-thread pool even though the guard
  // (threads > 1) passed.
  if (!obs::Active()) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.Reset();

  BatchRunner runner(4);
  runner.Map<int>(1, [](size_t) {
    // Busy-spin ~2ms so the chunk's busy time dominates clock noise.
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) {
    }
    return 0;
  });

  double utilization =
      registry.GetGauge("runtime.batch.utilization")->Value();
  // One busy chunk on a 4-thread pool: utilization ~0.25. Anything
  // strictly positive proves the inline chunk was accounted; the upper
  // bound guards against double-counting.
  EXPECT_GT(utilization, 0.05);
  EXPECT_LE(utilization, 1.05);
  // Since the task-graph refactor the inline chunk is an executor node
  // (a one-node graph runs serially on the calling thread), so it shows
  // up in the executor's node counter rather than the pool's.
  EXPECT_EQ(registry.GetCounter("exec.nodes")->Value(), 1u);
  registry.Reset();
}

TEST(ThreadPoolErrorDeliveryTest, DestructorLogsAndDropsUnretrievedError) {
  // Fire-and-forget Submit whose error is never retrieved by Wait(): the
  // destructor must log-and-drop it, never throw or terminate.
  {
    ThreadPool pool(4);
    pool.Submit([] { throw std::runtime_error("never waited on"); });
    // No Wait(): the pool is destroyed with the captured error pending.
  }
  SUCCEED();
}

TEST(ThreadPoolErrorDeliveryTest, SerialInlineSubmitErrorSurfacesOnNextWait) {
  // On a serial pool Submit runs the task inline but still returns
  // normally when the task throws; the error is delivered by the next
  // Wait(), exactly like the threaded path.
  ThreadPool pool(1);
  pool.Submit([] { throw std::invalid_argument("serial boom"); });
  EXPECT_THROW(pool.Wait(), std::invalid_argument);
  // The error is cleared by delivery: a second Wait is clean.
  pool.Wait();
  // And the pool is still usable.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolErrorDeliveryTest, OnlyFirstErrorIsDelivered) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("task error"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // Later errors were not queued up behind the first.
}

TEST(ThreadPoolErrorDeliveryTest, ParallelForInlineChunkErrorPropagates) {
  // The single-chunk inline path propagates the chunk's own exception
  // directly to the caller, without parking it in first_error_.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1,
                       [](size_t, size_t) {
                         throw std::runtime_error("inline chunk");
                       }),
      std::runtime_error);
  // Nothing was captured: the next Wait() is clean.
  pool.Wait();
}

TEST(ThreadPoolErrorDeliveryTest, SingleChunkParallelForIgnoresUnrelatedErrors) {
  // Regression: the single-chunk path used to route through Wait(), which
  // both stalled behind unrelated in-flight Submit() work and rethrew an
  // earlier unrelated task's captured error as if the chunk had failed.
  ThreadPool pool(4);
  pool.Submit([] { throw std::runtime_error("unrelated"); });
  // Whether or not the unrelated error has been captured yet, a clean
  // chunk must return normally...
  std::atomic<bool> ran{false};
  pool.ParallelFor(1, [&ran](size_t, size_t) { ran = true; });
  EXPECT_TRUE(ran.load());
  // ...and the unrelated error is still delivered by the next Wait().
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllExecute) {
  ThreadPool pool(8);
  std::atomic<int> executed{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

}  // namespace
}  // namespace goalex::runtime
