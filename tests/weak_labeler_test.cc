#include "weaksup/weak_labeler.h"

#include <gtest/gtest.h>

#include "data/schema.h"
#include "labels/iob.h"

namespace goalex::weaksup {
namespace {

labels::LabelCatalog Catalog() {
  return labels::LabelCatalog(data::SustainabilityGoalKinds());
}

data::Objective PaperObjective() {
  data::Objective o;
  o.id = "paper-fig3";
  o.text =
      "We co-founded The Climate Pledge, a commitment to reach net-zero "
      "carbon by 2040.";
  o.annotations = {{"Action", "reach"},
                   {"Amount", "net-zero"},
                   {"Qualifier", "carbon"},
                   {"Baseline", ""},
                   {"Deadline", "2040"}};
  return o;
}

// The exact expected labeling from the paper's Table 3.
TEST(WeakLabelerTest, ReproducesPaperTable3) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  WeakLabeling out = labeler.Label(PaperObjective());

  std::vector<std::string> expected_tokens = {
      "We",     "co", "-",    "founded", "The",   "Climate",
      "Pledge", ",",  "a",    "commitment", "to", "reach",
      "net",    "-",  "zero", "carbon",  "by",    "2040", "."};
  std::vector<std::string> expected_labels = {
      "O", "O", "O", "O", "O", "O", "O", "O", "O", "O", "O",
      "B-Action", "B-Amount", "I-Amount", "I-Amount", "B-Qualifier",
      "O", "B-Deadline", "O"};

  ASSERT_EQ(out.tokens.size(), expected_tokens.size());
  ASSERT_EQ(out.label_ids.size(), expected_labels.size());
  for (size_t i = 0; i < expected_tokens.size(); ++i) {
    EXPECT_EQ(out.tokens[i].text, expected_tokens[i]) << "token " << i;
    EXPECT_EQ(catalog.LabelName(out.label_ids[i]), expected_labels[i])
        << "label " << i;
  }
  EXPECT_TRUE(out.unmatched_kinds.empty());
}

TEST(WeakLabelerTest, EmptyAnnotationValueSkipped) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Reduce waste.";
  o.annotations = {{"Baseline", ""}};
  WeakLabeling out = labeler.Label(o);
  for (labels::LabelId id : out.label_ids) {
    EXPECT_EQ(id, labels::LabelCatalog::kOutsideId);
  }
  EXPECT_TRUE(out.unmatched_kinds.empty());
}

TEST(WeakLabelerTest, UnmatchableValueRecorded) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Reduce waste by 2030.";
  o.annotations = {{"Action", "Eliminate"}};  // Not in text.
  WeakLabeling out = labeler.Label(o);
  ASSERT_EQ(out.unmatched_kinds.size(), 1u);
  EXPECT_EQ(out.unmatched_kinds[0], "Action");
}

TEST(WeakLabelerTest, ExactMatchIsCaseSensitive) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Reduce waste by 2030.";
  o.annotations = {{"Action", "reduce"}};  // Lowercase, text has "Reduce".
  WeakLabeling out = labeler.Label(o);
  EXPECT_EQ(out.unmatched_kinds.size(), 1u);
}

TEST(WeakLabelerTest, FuzzyMatchIgnoresCase) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabelerOptions opts;
  opts.exact_match = false;
  WeakLabeler labeler(&catalog, opts);
  data::Objective o;
  o.text = "Reduce waste by 2030.";
  o.annotations = {{"Action", "reduce"}};
  WeakLabeling out = labeler.Label(o);
  EXPECT_TRUE(out.unmatched_kinds.empty());
  EXPECT_EQ(catalog.LabelName(out.label_ids[0]), "B-Action");
}

TEST(WeakLabelerTest, FuzzyMatchAbsorbsPunctuation) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabelerOptions opts;
  opts.exact_match = false;
  WeakLabeler labeler(&catalog, opts);
  data::Objective o;
  o.text = "Achieve net-zero carbon by 2040.";
  // Annotation written without the hyphen.
  o.annotations = {{"Amount", "net zero"}};
  WeakLabeling out = labeler.Label(o);
  EXPECT_TRUE(out.unmatched_kinds.empty());
  // Tokens: Achieve net - zero carbon ... -> B-Amount I-Amount I-Amount.
  EXPECT_EQ(catalog.LabelName(out.label_ids[1]), "B-Amount");
  EXPECT_EQ(catalog.LabelName(out.label_ids[2]), "I-Amount");
  EXPECT_EQ(catalog.LabelName(out.label_ids[3]), "I-Amount");
}

TEST(WeakLabelerTest, FirstMatchWins) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Reduce waste to reduce waste.";
  o.annotations = {{"Qualifier", "waste"}};
  WeakLabeling out = labeler.Label(o);
  // Tokens: Reduce waste to reduce waste .
  EXPECT_EQ(catalog.LabelName(out.label_ids[1]), "B-Qualifier");
  EXPECT_EQ(catalog.LabelName(out.label_ids[4]), "O");
}

TEST(WeakLabelerTest, UnknownKindIgnored) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Reduce waste.";
  o.annotations = {{"NotAKind", "waste"}};
  WeakLabeling out = labeler.Label(o);
  for (labels::LabelId id : out.label_ids) {
    EXPECT_EQ(id, labels::LabelCatalog::kOutsideId);
  }
}

TEST(WeakLabelerTest, MultiTokenValueGetsBeginInside) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Restore 100% of our global water use by 2025.";
  o.annotations = {{"Amount", "100%"}, {"Qualifier", "global water use"}};
  WeakLabeling out = labeler.Label(o);
  // Tokens: Restore 100 % of our global water use by 2025 .
  EXPECT_EQ(catalog.LabelName(out.label_ids[1]), "B-Amount");
  EXPECT_EQ(catalog.LabelName(out.label_ids[2]), "I-Amount");
  EXPECT_EQ(catalog.LabelName(out.label_ids[5]), "B-Qualifier");
  EXPECT_EQ(catalog.LabelName(out.label_ids[6]), "I-Qualifier");
  EXPECT_EQ(catalog.LabelName(out.label_ids[7]), "I-Qualifier");
}

TEST(WeakLabelerTest, LabelAllPreservesOrder) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective a = PaperObjective();
  data::Objective b;
  b.text = "Reduce energy consumption by 20% by 2025.";
  b.annotations = {{"Action", "Reduce"}};
  std::vector<WeakLabeling> all = labeler.LabelAll({a, b});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].tokens.size(), 19u);
  EXPECT_EQ(catalog.LabelName(all[1].label_ids[0]), "B-Action");
}

TEST(WeakLabelerTest, StatsAggregation) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective a = PaperObjective();  // 4 non-empty, all match.
  data::Objective b;
  b.text = "Reduce waste.";
  b.annotations = {{"Action", "Grow"}};  // 1 non-empty, unmatched.
  std::vector<data::Objective> objectives = {a, b};
  std::vector<WeakLabeling> labelings = labeler.LabelAll(objectives);
  WeakLabelStats stats = ComputeStats(objectives, labelings);
  EXPECT_EQ(stats.objective_count, 2u);
  EXPECT_EQ(stats.annotation_count, 5u);
  EXPECT_EQ(stats.matched_count, 4u);
  EXPECT_NEAR(stats.MatchRate(), 0.8, 1e-9);
  EXPECT_GT(stats.total_token_count, stats.labeled_token_count);
  // Table 3: 6 labeled tokens in objective a; 0 in b.
  EXPECT_EQ(stats.labeled_token_count, 6u);
}

TEST(WeakLabelerTest, ValueLongerThanTextUnmatched) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Act.";
  o.annotations = {{"Qualifier", "a much longer phrase than the text"}};
  WeakLabeling out = labeler.Label(o);
  EXPECT_EQ(out.unmatched_kinds.size(), 1u);
}

// Regression: an annotation kind outside the schema is skipped by Label
// without attempting a match; it must not count as matched in the stats.
TEST(WeakLabelerTest, StatsDoNotCountUnknownKindAsMatched) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  data::Objective o;
  o.text = "Reduce waste.";
  // The value even occurs in the text, but the kind carries no signal.
  o.annotations = {{"NotAKind", "waste"}};
  std::vector<data::Objective> objectives = {o};
  std::vector<WeakLabeling> labelings = labeler.LabelAll(objectives);
  ASSERT_EQ(labelings[0].skipped_kinds.size(), 1u);
  EXPECT_EQ(labelings[0].skipped_kinds[0], "NotAKind");
  WeakLabelStats stats = ComputeStats(objectives, labelings);
  EXPECT_EQ(stats.annotation_count, 1u);
  EXPECT_EQ(stats.skipped_count, 1u);
  EXPECT_EQ(stats.matched_count, 0u);
  EXPECT_EQ(stats.MatchRate(), 0.0);
}

// Regression: in fuzzy mode a punctuation-only value produces a zero-length
// alignment; it must be reported unmatched instead of labeling a token that
// is not part of the value.
TEST(WeakLabelerTest, FuzzyPunctuationOnlyValueUnmatched) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabelerOptions opts;
  opts.exact_match = false;
  WeakLabeler labeler(&catalog, opts);
  data::Objective o;
  o.text = "Reduce waste by 2030.";
  o.annotations = {{"Amount", "-"}};
  WeakLabeling out = labeler.Label(o);
  ASSERT_EQ(out.unmatched_kinds.size(), 1u);
  EXPECT_EQ(out.unmatched_kinds[0], "Amount");
  for (labels::LabelId id : out.label_ids) {
    EXPECT_EQ(id, labels::LabelCatalog::kOutsideId);
  }
}

// Regression: in fuzzy mode the needle may be longer than the haystack
// because annotator punctuation is tolerated; the exact-mode length guard
// must not reject it.
TEST(WeakLabelerTest, FuzzyNeedleLongerThanHaystackStillMatches) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabelerOptions opts;
  opts.exact_match = false;
  WeakLabeler labeler(&catalog, opts);
  data::Objective o;
  o.text = "net zero";  // 2 tokens.
  o.annotations = {{"Amount", "net - zero"}};  // 3 tokens.
  WeakLabeling out = labeler.Label(o);
  EXPECT_TRUE(out.unmatched_kinds.empty());
  ASSERT_EQ(out.label_ids.size(), 2u);
  EXPECT_EQ(catalog.LabelName(out.label_ids[0]), "B-Amount");
  EXPECT_EQ(catalog.LabelName(out.label_ids[1]), "I-Amount");
}

TEST(WeakLabelerTest, ParallelLabelAllMatchesSerial) {
  labels::LabelCatalog catalog = Catalog();
  WeakLabeler labeler(&catalog);
  std::vector<data::Objective> objectives;
  for (int i = 0; i < 64; ++i) {
    data::Objective o = PaperObjective();
    o.id = "obj-" + std::to_string(i);
    objectives.push_back(o);
    data::Objective b;
    b.id = "short-" + std::to_string(i);
    b.text = "Reduce energy consumption by 20% by 2025.";
    b.annotations = {{"Action", "Reduce"}, {"Deadline", "2025"}};
    objectives.push_back(b);
  }
  std::vector<WeakLabeling> serial = labeler.LabelAll(objectives, 1);
  std::vector<WeakLabeling> parallel = labeler.LabelAll(objectives, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].tokens, parallel[i].tokens) << "objective " << i;
    EXPECT_EQ(serial[i].label_ids, parallel[i].label_ids) << "objective " << i;
    EXPECT_EQ(serial[i].unmatched_kinds, parallel[i].unmatched_kinds);
    EXPECT_EQ(serial[i].skipped_kinds, parallel[i].skipped_kinds);
  }
}

}  // namespace
}  // namespace goalex::weaksup
