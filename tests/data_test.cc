#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/report.h"
#include "data/schema.h"
#include "labels/iob.h"
#include "weaksup/weak_labeler.h"

namespace goalex::data {
namespace {

TEST(SchemaTest, AnnotationValueLookup) {
  Objective o;
  o.annotations = {{"Action", "Reduce"}, {"Deadline", "2030"}};
  EXPECT_EQ(o.AnnotationValue("Action").value(), "Reduce");
  EXPECT_FALSE(o.AnnotationValue("Amount").has_value());
}

TEST(SchemaTest, DetailRecordFieldOrEmpty) {
  DetailRecord r;
  r.fields["Action"] = "Reduce";
  EXPECT_EQ(r.FieldOrEmpty("Action"), "Reduce");
  EXPECT_EQ(r.FieldOrEmpty("Amount"), "");
}

TEST(GeneratorTest, ProducesRequestedCount) {
  SustainabilityGoalsConfig config;
  config.objective_count = 200;
  std::vector<Objective> corpus = GenerateSustainabilityGoals(config);
  EXPECT_EQ(corpus.size(), 200u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  SustainabilityGoalsConfig config;
  config.objective_count = 50;
  std::vector<Objective> a = GenerateSustainabilityGoals(config);
  std::vector<Objective> b = GenerateSustainabilityGoals(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].annotations.size(), b[i].annotations.size());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SustainabilityGoalsConfig a_config;
  a_config.objective_count = 50;
  SustainabilityGoalsConfig b_config = a_config;
  b_config.seed = 777;
  std::vector<Objective> a = GenerateSustainabilityGoals(a_config);
  std::vector<Objective> b = GenerateSustainabilityGoals(b_config);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += (a[i].text == b[i].text);
  EXPECT_LT(same, 10);
}

TEST(GeneratorTest, EveryObjectiveHasAnnotation) {
  SustainabilityGoalsConfig config;
  config.objective_count = 300;
  for (const Objective& o : GenerateSustainabilityGoals(config)) {
    EXPECT_FALSE(o.annotations.empty()) << o.text;
    EXPECT_FALSE(o.text.empty());
  }
}

TEST(GeneratorTest, AnnotationRatesMatchPaperStatistics) {
  SustainabilityGoalsConfig config;  // Defaults: 1106 objectives.
  std::vector<Objective> corpus = GenerateSustainabilityGoals(config);
  std::map<std::string, int> counts;
  for (const Objective& o : corpus) {
    for (const Annotation& a : o.annotations) ++counts[a.kind];
  }
  double n = static_cast<double>(corpus.size());
  // The paper reports Action 85%, Baseline 14%, Deadline 34%.
  EXPECT_NEAR(counts["Action"] / n, 0.85, 0.05);
  EXPECT_NEAR(counts["Baseline"] / n, 0.14, 0.04);
  EXPECT_NEAR(counts["Deadline"] / n, 0.34, 0.05);
}

TEST(GeneratorTest, MostAnnotationsAreExactSubstrings) {
  // The weak labeler should locate ~95% of annotation values (the rest are
  // intentionally divergent, modeling the paper's matching limitation).
  SustainabilityGoalsConfig config;
  config.objective_count = 500;
  std::vector<Objective> corpus = GenerateSustainabilityGoals(config);
  labels::LabelCatalog catalog(SustainabilityGoalKinds());
  weaksup::WeakLabeler labeler(&catalog);
  weaksup::WeakLabelStats stats =
      weaksup::ComputeStats(corpus, labeler.LabelAll(corpus));
  EXPECT_GT(stats.MatchRate(), 0.88);
  EXPECT_LT(stats.MatchRate(), 0.995);
}

TEST(GeneratorTest, TextsAreHeterogeneous) {
  SustainabilityGoalsConfig config;
  config.objective_count = 200;
  std::set<std::string> texts;
  for (const Objective& o : GenerateSustainabilityGoals(config)) {
    texts.insert(o.text);
  }
  EXPECT_GT(texts.size(), 190u);  // Near-unique sentences.
}

TEST(GeneratorTest, NetZeroFactsCountAndSchema) {
  NetZeroFactsConfig config;
  std::vector<Objective> corpus = GenerateNetZeroFacts(config);
  EXPECT_EQ(corpus.size(), 599u);  // Paper: 599 sentences.
  std::set<std::string> kinds;
  for (const Objective& o : corpus) {
    EXPECT_FALSE(o.annotations.empty());
    for (const Annotation& a : o.annotations) kinds.insert(a.kind);
  }
  EXPECT_TRUE(kinds.count("TargetValue"));
  EXPECT_TRUE(kinds.count("ReferenceYear"));
  EXPECT_TRUE(kinds.count("TargetYear"));
  EXPECT_EQ(kinds.size(), 3u);
}

TEST(GeneratorTest, NoiseSentencesNonEmpty) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(GenerateNoiseSentence(rng).empty());
  }
}

TEST(SplitTest, FractionsAndDisjointness) {
  SustainabilityGoalsConfig config;
  config.objective_count = 100;
  Split split =
      TrainTestSplit(GenerateSustainabilityGoals(config), 0.2, 11);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::set<std::string> train_ids, test_ids;
  for (const Objective& o : split.train) train_ids.insert(o.id);
  for (const Objective& o : split.test) test_ids.insert(o.id);
  for (const std::string& id : test_ids) {
    EXPECT_EQ(train_ids.count(id), 0u);
  }
}

TEST(SplitTest, DeterministicForSeed) {
  SustainabilityGoalsConfig config;
  config.objective_count = 60;
  std::vector<Objective> corpus = GenerateSustainabilityGoals(config);
  Split a = TrainTestSplit(corpus, 0.25, 5);
  Split b = TrainTestSplit(corpus, 0.25, 5);
  ASSERT_EQ(a.test.size(), b.test.size());
  for (size_t i = 0; i < a.test.size(); ++i) {
    EXPECT_EQ(a.test[i].id, b.test[i].id);
  }
}

TEST(TsvTest, RoundTrip) {
  SustainabilityGoalsConfig config;
  config.objective_count = 40;
  std::vector<Objective> corpus = GenerateSustainabilityGoals(config);
  auto restored = ObjectivesFromTsv(ObjectivesToTsv(corpus));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*restored)[i].id, corpus[i].id);
    EXPECT_EQ((*restored)[i].text, corpus[i].text);
    EXPECT_EQ((*restored)[i].annotations, corpus[i].annotations);
  }
}

TEST(TsvTest, EscapesSpecialCharacters) {
  Objective o;
  o.id = "tricky";
  o.text = "line1\nline2\twith\ttabs\\and backslash";
  o.annotations = {{"Action", "a\tb"}};
  auto restored = ObjectivesFromTsv(ObjectivesToTsv({o}));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)[0].text, o.text);
  EXPECT_EQ((*restored)[0].annotations[0].value, "a\tb");
}

TEST(TsvTest, RejectsMalformedLines) {
  EXPECT_FALSE(ObjectivesFromTsv("only-one-field").ok());
  EXPECT_FALSE(ObjectivesFromTsv("id\ttext\tbad-annotation").ok());
}

TEST(TsvTest, FileRoundTrip) {
  SustainabilityGoalsConfig config;
  config.objective_count = 10;
  std::vector<Objective> corpus = GenerateSustainabilityGoals(config);
  std::string path =
      (std::filesystem::temp_directory_path() / "goalex_data_test.tsv")
          .string();
  ASSERT_TRUE(SaveObjectives(corpus, path).ok());
  auto loaded = LoadObjectives(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), corpus.size());
  std::filesystem::remove(path);
}

TEST(ReportTest, ProfilesMatchPaperTable5) {
  const std::vector<CompanyProfile>& profiles = PaperDeploymentProfiles();
  ASSERT_EQ(profiles.size(), 14u);
  int64_t documents = 0, pages = 0, objectives = 0;
  for (const CompanyProfile& profile : profiles) {
    documents += profile.document_count;
    pages += profile.total_pages;
    objectives += profile.objective_count;
  }
  EXPECT_EQ(documents, 380);
  EXPECT_EQ(pages, 37871);
  EXPECT_EQ(objectives, 3580);
}

TEST(ReportTest, GeneratedFleetMatchesProfile) {
  CompanyProfile profile{"C5", 17, 1298, 113};
  std::vector<Report> reports = GenerateCompanyReports(profile, 99);
  ASSERT_EQ(reports.size(), 17u);
  int pages = 0, objectives = 0;
  for (const Report& report : reports) {
    pages += report.page_count;
    EXPECT_EQ(report.company, "C5");
    EXPECT_FALSE(report.blocks.empty());
    for (const ReportBlock& block : report.blocks) {
      EXPECT_GE(block.page, 1);
      EXPECT_LE(block.page, report.page_count);
      if (block.is_objective) {
        ++objectives;
        EXPECT_FALSE(block.annotations.empty());
      }
    }
  }
  EXPECT_EQ(pages, 1298);
  EXPECT_EQ(objectives, 113);
}

TEST(ReportTest, SingleReportHasRequestedShape) {
  Report report = GenerateSingleReport("DemoCo", 40, 6, 12);
  EXPECT_EQ(report.company, "DemoCo");
  EXPECT_EQ(report.page_count, 40);
  int objectives = 0;
  for (const ReportBlock& block : report.blocks) {
    objectives += block.is_objective ? 1 : 0;
  }
  EXPECT_EQ(objectives, 6);
}

TEST(ReportTest, DeterministicForSeed) {
  CompanyProfile profile{"C1", 3, 30, 5};
  std::vector<Report> a = GenerateCompanyReports(profile, 7);
  std::vector<Report> b = GenerateCompanyReports(profile, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].blocks.size(), b[i].blocks.size());
    for (size_t j = 0; j < a[i].blocks.size(); ++j) {
      EXPECT_EQ(a[i].blocks[j].text, b[i].blocks[j].text);
    }
  }
}

}  // namespace
}  // namespace goalex::data
