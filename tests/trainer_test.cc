// Unit tests of the deterministic data-parallel trainer: batch-mean
// gradient scaling (including the final partial batch), thread-count
// invariance, the per-example RNG streams, and the scratch recycler.
#include "nn/trainer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace goalex::nn {
namespace {

tensor::Var ScalarParam(float value) {
  return tensor::Leaf(tensor::Tensor::FromValues({1}, {value}),
                      /*requires_grad=*/true);
}

// Builds a trainer over one scalar master parameter with the required
// number of slot replicas. Returns the master separately.
struct ToySetup {
  tensor::Var master;
  std::vector<tensor::Var> replicas;  // One scalar param per slot.
  std::unique_ptr<DataParallelTrainer> trainer;
};

ToySetup MakeToy(ParallelTrainerOptions options) {
  ToySetup toy;
  toy.master = ScalarParam(0.0f);
  std::vector<std::vector<tensor::Var>> replica_params;
  for (int32_t s = 0; s < DataParallelTrainer::SlotCount(options.batch_size);
       ++s) {
    toy.replicas.push_back(ScalarParam(0.0f));
    replica_params.push_back({toy.replicas.back()});
  }
  toy.trainer = std::make_unique<DataParallelTrainer>(
      std::vector<tensor::Var>{toy.master}, std::move(replica_params),
      options);
  return toy;
}

TEST(TrainerTest, SlotCountIsBatchSizeCappedAtMax) {
  EXPECT_EQ(DataParallelTrainer::SlotCount(1), 1);
  EXPECT_EQ(DataParallelTrainer::SlotCount(4), 4);
  EXPECT_EQ(DataParallelTrainer::SlotCount(16), 16);
  EXPECT_EQ(DataParallelTrainer::SlotCount(64), DataParallelTrainer::kMaxSlots);
}

TEST(TrainerTest, PartialTailBatchAveragesOverItsOwnSize) {
  // Six examples with per-example gradient c_i, batch size 4: the full
  // batch must reduce to mean(c_0..c_3) and the 2-example tail to
  // mean(c_4, c_5) — not sum/4. All constants are powers of two, so the
  // expected means are exact in float.
  const std::vector<float> c = {1.0f, 2.0f, 4.0f, 8.0f, 16.0f, 32.0f};

  ParallelTrainerOptions options;
  options.batch_size = 4;
  options.num_threads = 2;
  std::vector<float> reduced_grads;
  std::vector<int32_t> batch_sizes;
  options.post_reduce_hook = [&](int32_t batch_examples,
                                 const std::vector<tensor::Var>& params) {
    batch_sizes.push_back(batch_examples);
    reduced_grads.push_back(params[0]->grad().at(0));
  };
  ToySetup toy = MakeToy(options);

  std::vector<size_t> order = {0, 1, 2, 3, 4, 5};
  toy.trainer->RunEpoch(order, /*epoch=*/1,
                        [&](size_t slot, size_t example, Rng&) {
                          return tensor::Scale(toy.replicas[slot], c[example]);
                        });

  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], 4);
  EXPECT_EQ(batch_sizes[1], 2);
  ASSERT_EQ(reduced_grads.size(), 2u);
  EXPECT_EQ(reduced_grads[0], (1.0f + 2.0f + 4.0f + 8.0f) / 4.0f);
  EXPECT_EQ(reduced_grads[1], (16.0f + 32.0f) / 2.0f);
}

TEST(TrainerTest, EpochLossIsSummedInExampleOrder) {
  const std::vector<float> c = {3.0f, 5.0f, 7.0f};
  ParallelTrainerOptions options;
  options.batch_size = 2;
  // Freeze the weight (lr 0) so the second batch's losses are not shifted
  // by the optimizer step taken after the first.
  options.adam.learning_rate = 0.0f;
  ToySetup toy = MakeToy(options);
  toy.master->mutable_value().Fill(1.0f);
  std::vector<size_t> order = {2, 0, 1};
  double loss_sum = toy.trainer->RunEpoch(
      order, /*epoch=*/1, [&](size_t slot, size_t example, Rng&) {
        return tensor::Scale(toy.replicas[slot], c[example]);
      });
  EXPECT_DOUBLE_EQ(loss_sum, 7.0 + 3.0 + 5.0);
}

TEST(TrainerTest, ReducedGradientsAreIdenticalForEveryThreadCount) {
  const std::vector<float> c = {0.5f, -1.25f, 3.75f, 2.5f, -0.125f,
                                8.0f, 1.5f,   -2.0f, 0.25f};
  std::vector<std::vector<float>> grads_by_threads;
  std::vector<float> final_weights;
  for (int32_t threads : {1, 2, 8}) {
    ParallelTrainerOptions options;
    options.batch_size = 4;
    options.num_threads = threads;
    std::vector<float> grads;
    options.post_reduce_hook = [&](int32_t,
                                   const std::vector<tensor::Var>& params) {
      grads.push_back(params[0]->grad().at(0));
    };
    ToySetup toy = MakeToy(options);
    std::vector<size_t> order(c.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int32_t epoch = 1; epoch <= 3; ++epoch) {
      toy.trainer->RunEpoch(order, epoch,
                            [&](size_t slot, size_t example, Rng&) {
                              return tensor::Scale(toy.replicas[slot],
                                                   c[example]);
                            });
    }
    grads_by_threads.push_back(grads);
    final_weights.push_back(toy.master->value().at(0));
  }
  EXPECT_EQ(grads_by_threads[0], grads_by_threads[1]);
  EXPECT_EQ(grads_by_threads[0], grads_by_threads[2]);
  EXPECT_EQ(final_weights[0], final_weights[1]);
  EXPECT_EQ(final_weights[0], final_weights[2]);
}

TEST(TrainerTest, ScratchStorageIsRecycledAcrossExamples) {
  ParallelTrainerOptions options;
  options.batch_size = 2;
  options.num_threads = 1;
  ToySetup toy = MakeToy(options);
  std::vector<size_t> order = {0, 1, 2, 3};
  for (int32_t epoch = 1; epoch <= 2; ++epoch) {
    toy.trainer->RunEpoch(order, epoch, [&](size_t slot, size_t, Rng&) {
      return tensor::Scale(toy.replicas[slot], 2.0f);
    });
  }
  // Each example builds Scale nodes (value clones + gradient tensors)
  // inside the slot's scratch scope; after warm-up those come from the
  // freelist instead of fresh allocations.
  EXPECT_GT(toy.trainer->scratch_reuse_count(), 0u);
}

TEST(ScratchAllocatorTest, ReusedBlocksAreZeroFilled) {
  tensor::ScratchAllocator allocator;
  {
    std::shared_ptr<std::vector<float>> block = allocator.Acquire(16);
    for (float& x : *block) x = 42.0f;
  }  // Released back to the freelist here.
  std::shared_ptr<std::vector<float>> again = allocator.Acquire(16);
  EXPECT_EQ(allocator.reuse_count(), 1u);
  for (float x : *again) EXPECT_EQ(x, 0.0f);
}

TEST(ScratchAllocatorTest, StorageOutlivingTheScopeStaysValid) {
  tensor::ScratchAllocator allocator;
  tensor::Tensor escaped;
  {
    tensor::ScratchScope scope(&allocator);
    escaped = tensor::Tensor::Full({4}, 2.5f);
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(escaped.at(i), 2.5f);
}

TEST(RngStreamTest, SameKeyYieldsSameSequence) {
  Rng a = Rng::Stream(17, 3, 5);
  Rng b = Rng::Stream(17, 3, 5);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngStreamTest, DifferentKeysYieldDifferentSequences) {
  Rng base = Rng::Stream(17, 3, 5);
  Rng other_example = Rng::Stream(17, 4, 5);
  Rng other_epoch = Rng::Stream(17, 3, 6);
  Rng other_seed = Rng::Stream(18, 3, 5);
  uint64_t first = base.NextUint64();
  EXPECT_NE(first, other_example.NextUint64());
  EXPECT_NE(first, other_epoch.NextUint64());
  EXPECT_NE(first, other_seed.NextUint64());
}

}  // namespace
}  // namespace goalex::nn
