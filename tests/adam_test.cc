// Direct unit tests of the fused Adam optimizer: clip-norm scaling,
// decoupled weight decay, double-precision bias correction, and bitwise
// parity between the vector and scalar kernel variants.
#include "nn/adam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/variable.h"

namespace goalex::nn {
namespace {

tensor::Var MakeParam(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return tensor::Leaf(tensor::Tensor::FromValues({n}, std::move(values)),
                      /*requires_grad=*/true);
}

void SetGrad(const tensor::Var& p, const std::vector<float>& g) {
  ASSERT_EQ(p->grad().numel(), static_cast<int64_t>(g.size()));
  std::memcpy(p->grad().data(), g.data(), sizeof(float) * g.size());
}

TEST(AdamTest, ClipNormScalesGradientExactly) {
  // One nonzero gradient entry of 2 gives global norm exactly 2; with
  // clip_norm 1 the effective gradient is exactly 0.5 — every quantity in
  // the first moment is a power of two, so the check is exact.
  tensor::Var p = MakeParam({1.0f, 1.0f, 1.0f, 1.0f});
  AdamOptions options;
  options.clip_norm = 1.0f;
  Adam adam({p}, options);
  SetGrad(p, {2.0f, 0.0f, 0.0f, 0.0f});
  adam.Step();

  // After one step m = (1 - beta1) * clipped_grad; recover m from the
  // bias-corrected update applied to the weight.
  float clipped = 0.5f;
  double m = (1.0 - options.beta1) * clipped;
  double v = (1.0 - options.beta2) * clipped * clipped;
  double m_hat = m / (1.0 - options.beta1);
  double v_hat = v / (1.0 - options.beta2);
  double expected =
      1.0 - options.learning_rate * m_hat / (std::sqrt(v_hat) + options.eps);
  EXPECT_NEAR(p->value().at(0), expected, 1e-7);
  EXPECT_FLOAT_EQ(p->value().at(1), 1.0f);  // Zero grad entries untouched.
}

TEST(AdamTest, BelowClipNormGradientIsUnscaled) {
  tensor::Var p = MakeParam({0.0f});
  AdamOptions options;
  options.clip_norm = 10.0f;
  Adam adam({p}, options);
  SetGrad(p, {0.25f});
  adam.Step();

  double m_hat = 0.25;  // Bias correction cancels at t = 1.
  double v_hat = 0.25 * 0.25;
  double expected =
      -options.learning_rate * m_hat / (std::sqrt(v_hat) + options.eps);
  EXPECT_NEAR(p->value().at(0), expected, 1e-10);
}

TEST(AdamTest, DecoupledWeightDecayShrinksWeightsNotMoments) {
  tensor::Var p = MakeParam({2.0f});
  AdamOptions options;
  options.learning_rate = 0.125f;   // Exact in float.
  options.weight_decay = 0.25f;
  options.clip_norm = 0.0f;
  Adam adam({p}, options);
  SetGrad(p, {0.0f});
  adam.Step();

  // Zero gradient: moments stay zero, the update term is 0/eps = 0, and the
  // only effect is the decoupled decay w *= (1 - lr * wd) — exactly
  // representable with these constants.
  EXPECT_FLOAT_EQ(p->value().at(0), 2.0f * (1.0f - 0.125f * 0.25f));
}

TEST(AdamTest, GradientsAreZeroedByStep) {
  tensor::Var p = MakeParam({1.0f, 2.0f, 3.0f});
  Adam adam({p}, AdamOptions());
  SetGrad(p, {0.5f, -0.25f, 4.0f});
  adam.Step();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(p->grad().at(i), 0.0f);
  }
}

TEST(AdamTest, BiasCorrectionMatchesDoubleReferenceAtHighStepCount) {
  // Constant gradient, many steps. The reference runs entirely in double
  // with textbook m_hat/v_hat bias correction; float pow of beta2^t drifts
  // visibly in this regime while the double path stays tight.
  constexpr int kSteps = 2000;
  constexpr double kGrad = 0.01;
  AdamOptions options;
  options.learning_rate = 1e-3f;
  options.clip_norm = 0.0f;

  tensor::Var p = MakeParam({1.0f});
  Adam adam({p}, options);

  double w = 1.0, m = 0.0, v = 0.0;
  for (int t = 1; t <= kSteps; ++t) {
    SetGrad(p, {static_cast<float>(kGrad)});
    adam.Step();

    m = options.beta1 * m + (1.0 - options.beta1) * kGrad;
    v = options.beta2 * v + (1.0 - options.beta2) * kGrad * kGrad;
    double m_hat = m / (1.0 - std::pow(static_cast<double>(options.beta1), t));
    double v_hat = v / (1.0 - std::pow(static_cast<double>(options.beta2), t));
    w -= options.learning_rate * m_hat / (std::sqrt(v_hat) + options.eps);
  }
  EXPECT_EQ(adam.step_count(), kSteps);
  EXPECT_NEAR(p->value().at(0), w, 5e-4);
}

TEST(AdamKernelTest, FusedMatchesScalarBitwise) {
  constexpr int64_t kN = 1003;  // Forces a vector body plus a scalar tail.
  Rng rng(7);
  std::vector<float> w(kN), g(kN), m(kN), v(kN);
  for (int64_t i = 0; i < kN; ++i) {
    w[i] = static_cast<float>(rng.NextGaussian());
    g[i] = static_cast<float>(rng.NextGaussian());
    m[i] = static_cast<float>(rng.NextGaussian()) * 0.1f;
    v[i] = std::abs(static_cast<float>(rng.NextGaussian())) * 0.01f;
  }
  std::vector<float> w2 = w, g2 = g, m2 = m, v2 = v;

  tensor::AdamStepParams params;
  params.clip_scale = 0.73f;
  params.step_size = 3e-4f;
  params.inv_sqrt_bias2 = 1.7f;
  params.decay_scale = 1e-4f;
  tensor::AdamFusedStep(w.data(), g.data(), m.data(), v.data(), kN, params);
  tensor::AdamFusedStepScalar(w2.data(), g2.data(), m2.data(), v2.data(), kN,
                              params);

  EXPECT_EQ(0, std::memcmp(w.data(), w2.data(), sizeof(float) * kN));
  EXPECT_EQ(0, std::memcmp(m.data(), m2.data(), sizeof(float) * kN));
  EXPECT_EQ(0, std::memcmp(v.data(), v2.data(), sizeof(float) * kN));
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(g[i], 0.0f);
    EXPECT_EQ(g2[i], 0.0f);
  }
}

TEST(AdamKernelTest, GradSquaredSumMatchesScalarBitwiseAndReference) {
  constexpr int64_t kN = 517;
  Rng rng(11);
  std::vector<float> g(kN);
  for (int64_t i = 0; i < kN; ++i) {
    g[i] = static_cast<float>(rng.NextGaussian());
  }
  double fast = tensor::GradSquaredSum(g.data(), kN);
  double scalar = tensor::GradSquaredSumScalar(g.data(), kN);
  EXPECT_EQ(fast, scalar);  // Bitwise: same lane assignment by contract.

  double reference = 0.0;
  for (int64_t i = 0; i < kN; ++i) {
    reference += static_cast<double>(g[i]) * g[i];
  }
  EXPECT_NEAR(fast, reference, 1e-9 * std::abs(reference));
}

}  // namespace
}  // namespace goalex::nn
