#include "text/word_tokenizer.h"

#include <gtest/gtest.h>

namespace goalex::text {
namespace {

std::vector<std::string> Tok(std::string_view s) {
  return WordTokenizer().TokenizeToStrings(s);
}

TEST(WordTokenizerTest, SimpleWords) {
  EXPECT_EQ(Tok("reduce energy consumption"),
            (std::vector<std::string>{"reduce", "energy", "consumption"}));
}

TEST(WordTokenizerTest, PaperTable3Example) {
  // "We co-founded The Climate Pledge, a commitment to reach net-zero
  // carbon by 2040." must tokenize exactly as the paper's Table 3 shows.
  std::vector<std::string> expected = {
      "We",   "co",         "-",  "founded", "The",    "Climate", "Pledge",
      ",",    "a",          "commitment",    "to",     "reach",   "net",
      "-",    "zero",       "carbon",        "by",     "2040",    "."};
  EXPECT_EQ(Tok("We co-founded The Climate Pledge, a commitment to reach "
                "net-zero carbon by 2040."),
            expected);
}

TEST(WordTokenizerTest, PercentSplitsOff) {
  EXPECT_EQ(Tok("20%"), (std::vector<std::string>{"20", "%"}));
}

TEST(WordTokenizerTest, NumbersKeepInternalSeparators) {
  EXPECT_EQ(Tok("8.1%"), (std::vector<std::string>{"8.1", "%"}));
  EXPECT_EQ(Tok("10,000 units"),
            (std::vector<std::string>{"10,000", "units"}));
  // A sentence-final period after a number is still its own token.
  EXPECT_EQ(Tok("by 2040."), (std::vector<std::string>{"by", "2040", "."}));
  // Separators not surrounded by digits split as usual.
  EXPECT_EQ(Tok("a.b"), (std::vector<std::string>{"a", ".", "b"}));
}

TEST(WordTokenizerTest, OffsetsAreByteAccurate) {
  WordTokenizer tokenizer;
  std::string input = "net-zero by 2040.";
  std::vector<Token> tokens = tokenizer.Tokenize(input);
  ASSERT_EQ(tokens.size(), 6u);
  for (const Token& t : tokens) {
    EXPECT_EQ(input.substr(t.begin, t.end - t.begin), t.text);
  }
  EXPECT_EQ(tokens[0].text, "net");
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[5].text, ".");
  EXPECT_EQ(tokens[5].end, input.size());
}

TEST(WordTokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tok("").empty());
  EXPECT_TRUE(Tok("   \t\n").empty());
}

TEST(WordTokenizerTest, Utf8WordsStayTogether) {
  EXPECT_EQ(Tok("CO\xE2\x82\x82 emissions"),
            (std::vector<std::string>{"CO\xE2\x82\x82", "emissions"}));
}

TEST(WordTokenizerTest, MultiplePunctuation) {
  EXPECT_EQ(Tok("(2017)"),
            (std::vector<std::string>{"(", "2017", ")"}));
}

TEST(WordTokenizerTest, TokenizationIsIdempotentOnJoin) {
  // Tokenizing the space-joined tokens yields the same token strings.
  std::vector<std::string> once = Tok("Reduce energy use by 20% by 2025.");
  std::string joined;
  for (const std::string& t : once) {
    if (!joined.empty()) joined += ' ';
    joined += t;
  }
  EXPECT_EQ(Tok(joined), once);
}

}  // namespace
}  // namespace goalex::text
