#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace goalex::obs {
namespace {

/// Shortest round-trip-ish formatting: %.9g keeps latencies readable
/// ("0.00025") without dumping 17 digits.
std::string FormatNumber(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return std::string(buffer);
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(c));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// becomes '_'. A "goalex_" prefix namespaces the process.
std::string PrometheusName(const std::string& name) {
  std::string out = "goalex_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

}  // namespace

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  out << "{";

  out << "\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonQuote(snapshot.counters[i].name) << ":"
        << snapshot.counters[i].value;
  }
  out << "},";

  out << "\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonQuote(snapshot.gauges[i].name) << ":"
        << FormatNumber(snapshot.gauges[i].value);
  }
  out << "},";

  out << "\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out << ",";
    const HistogramSnapshot& h = snapshot.histograms[i].snapshot;
    out << JsonQuote(snapshot.histograms[i].name) << ":{"
        << "\"count\":" << h.count << ","
        << "\"sum\":" << FormatNumber(h.sum) << ","
        << "\"mean\":" << FormatNumber(h.Mean()) << ","
        << "\"min\":" << FormatNumber(h.min) << ","
        << "\"max\":" << FormatNumber(h.max) << ","
        << "\"p50\":" << FormatNumber(h.Quantile(0.50)) << ","
        << "\"p95\":" << FormatNumber(h.Quantile(0.95)) << ","
        << "\"p99\":" << FormatNumber(h.Quantile(0.99)) << ","
        << "\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ",";
      out << "{\"le\":";
      if (b < h.bounds.size()) {
        out << FormatNumber(h.bounds[b]);
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << h.buckets[b] << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string ToPrometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSample& c : snapshot.counters) {
    std::string name = PrometheusName(c.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    std::string name = PrometheusName(g.name);
    out << "# TYPE " << name << " gauge\n"
        << name << " " << FormatNumber(g.value) << "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const HistogramSnapshot& h = sample.snapshot;
    std::string name = PrometheusName(sample.name);
    out << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out << name << "_bucket{le=\"";
      if (b < h.bounds.size()) {
        out << FormatNumber(h.bounds[b]);
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << "\n";
    }
    out << name << "_sum " << FormatNumber(h.sum) << "\n"
        << name << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string ToSummary(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const CounterSample& c : snapshot.counters) {
      out << "  " << c.name << " = " << c.value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const GaugeSample& g : snapshot.gauges) {
      out << "  " << g.name << " = " << FormatNumber(g.value) << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms:\n";
    for (const HistogramSample& sample : snapshot.histograms) {
      const HistogramSnapshot& h = sample.snapshot;
      out << "  " << sample.name << ": count=" << h.count;
      if (h.count > 0) {
        out << " mean=" << FormatNumber(h.Mean())
            << " p50=" << FormatNumber(h.Quantile(0.50))
            << " p95=" << FormatNumber(h.Quantile(0.95))
            << " p99=" << FormatNumber(h.Quantile(0.99))
            << " max=" << FormatNumber(h.max);
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace goalex::obs
