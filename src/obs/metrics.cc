#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace goalex::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// CAS-add for atomics without native fetch_add (double on some targets).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double expected = target.load(std::memory_order_relaxed);
  while (v < expected && !target.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double expected = target.load(std::memory_order_relaxed);
  while (v > expected && !target.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    GOALEX_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  Reset();
}

void Histogram::Observe(double v) {
  // First bound >= v: le semantics, so an observation exactly on a bound
  // belongs to that bound's bucket. Past the last bound lands in +inf.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) {
    snap.min = 0.0;
    snap.max = 0.0;
  }
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // +inf bucket: clamp.
    double upper = bounds[i];
    double lower = i == 0 ? 0.0 : bounds[i - 1];
    if (buckets[i] == 0) return upper;
    // Linear interpolation within the bucket.
    double into =
        (rank - static_cast<double>(cumulative - buckets[i])) /
        static_cast<double>(buckets[i]);
    return lower + (upper - lower) * into;
  }
  return bounds.back();
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double>* const kBounds = [] {
    auto* bounds = new std::vector<double>();
    // 1-2.5-5 per decade, 10us .. 25s: fine enough for per-stage latency,
    // coarse enough that a snapshot stays readable.
    for (double decade = 1e-5; decade < 30.0; decade *= 10.0) {
      bounds->push_back(decade);
      bounds->push_back(decade * 2.5);
      bounds->push_back(decade * 5.0);
    }
    return bounds;
  }();
  return *kBounds;
}

const std::vector<double>& DefaultSizeBounds() {
  static const std::vector<double>* const kBounds = [] {
    auto* bounds = new std::vector<double>();
    for (double b = 1.0; b <= 16384.0; b *= 4.0) bounds->push_back(b);
    return bounds;
  }();
  return *kBounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

Histogram* MetricsRegistry::GetLatencyHistogram(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBounds());
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->Snapshot()});
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

}  // namespace goalex::obs
