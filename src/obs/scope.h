#ifndef GOALEX_OBS_SCOPE_H_
#define GOALEX_OBS_SCOPE_H_

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace goalex::obs {

/// RAII stopwatch that records its lifetime (seconds) into a histogram.
/// A null histogram disarms the timer entirely — the disabled path is one
/// pointer test, no clock reads — so hot paths write
///   obs::ScopedTimer timer(enabled ? stage_hist : nullptr);
/// and pay nothing when observability is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }

  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now and disarms; returns the elapsed seconds (0 if disarmed).
  double Stop() {
    if (histogram_ == nullptr) return 0.0;
    double seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    histogram_->Observe(seconds);
    histogram_ = nullptr;
    return seconds;
  }

  bool armed() const { return histogram_ != nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;  // Not owned; null = disarmed.
  Clock::time_point start_;
};

/// Named tracing span for the cooler pipeline stages: on destruction it
/// records "<stage>.seconds" (latency histogram) and bumps "<stage>.calls"
/// in the given registry. Resolution happens at construction, so use
/// ScopedTimer with a pre-resolved handle on per-token/per-objective hot
/// paths and Span at per-document/per-batch granularity.
class Span {
 public:
  /// A null registry (or inactive observability) produces a disarmed span.
  Span(MetricsRegistry* registry, const std::string& stage)
      : timer_(registry != nullptr && Active()
                   ? registry->GetLatencyHistogram(stage + ".seconds")
                   : nullptr) {
    if (timer_.armed()) registry->GetCounter(stage + ".calls")->Increment();
  }

  /// Span in the default registry.
  explicit Span(const std::string& stage)
      : Span(&MetricsRegistry::Default(), stage) {}

  /// Ends the span early (records the elapsed time once).
  double Stop() { return timer_.Stop(); }

 private:
  ScopedTimer timer_;
};

}  // namespace goalex::obs

#endif  // GOALEX_OBS_SCOPE_H_
