#ifndef GOALEX_OBS_METRICS_H_
#define GOALEX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace goalex::obs {

// ---------------------------------------------------------------------------
// Compile-time kill switch. Building with -DGOALEX_DISABLE_METRICS compiles
// every instrumentation site in the pipeline down to nothing (the helpers in
// scope.h and the Active() gate below become constant-false and fold away).
// ---------------------------------------------------------------------------
#ifdef GOALEX_DISABLE_METRICS
inline constexpr bool kMetricsCompiled = false;
#else
inline constexpr bool kMetricsCompiled = true;
#endif

/// Process-wide runtime toggle (default on). Layers that have no
/// configuration struct of their own (thread pool, batch runner, weak
/// labeler) consult this; DetailExtractor additionally honors
/// ExtractorConfig::enable_metrics.
bool Enabled();
void SetEnabled(bool enabled);

/// True when instrumentation is both compiled in and enabled at runtime.
inline bool Active() { return kMetricsCompiled && Enabled(); }

// ---------------------------------------------------------------------------
// Metric primitives. All update paths are lock-free (relaxed atomics / CAS
// loops); registration and snapshotting take the registry mutex. Handles
// returned by the registry are stable for the registry's lifetime, so hot
// paths resolve a metric once and update through the pointer.
// ---------------------------------------------------------------------------

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, worker count, rates).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only view of a histogram at one point in time.
struct HistogramSnapshot {
  std::vector<double> bounds;     ///< Upper bounds; implicit +inf tail.
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 entries.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Bucket-interpolated quantile estimate (q in [0, 1]). The +inf bucket
  /// reports the largest finite bound (the estimate is clamped).
  double Quantile(double q) const;
};

/// Fixed-bucket histogram: observation fan-in is lock-free.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bounds; a +inf bucket is
  /// appended implicitly.
  explicit Histogram(std::vector<double> bounds);

  /// Records one observation: the first bucket with v <= bound, else +inf.
  void Observe(double v);

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Exponential 1-2.5-5 ladder from 10 microseconds to 25 seconds — the
/// default for the pipeline's per-stage latency histograms.
const std::vector<double>& DefaultLatencyBounds();

/// Power-of-four ladder from 1 to ~16k — for batch-size distributions.
const std::vector<double>& DefaultSizeBounds();

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  HistogramSnapshot snapshot;
};

/// A consistent point-in-time read of every registered metric, ready for
/// the exporters in export.h.
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Thread-safe name -> metric registry. Metric names use dotted lowercase
/// components ("extractor.stage.predict.seconds"); the Prometheus exporter
/// maps them to legal identifiers. Get* registers on first use and returns
/// the same stable handle for the same name ever after.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` are used only on first registration; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);
  /// Latency histogram with DefaultLatencyBounds().
  Histogram* GetLatencyHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric, keeping registrations (and thus handles) valid.
  void Reset();

  /// The process-wide registry the pipeline instrumentation writes to.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace goalex::obs

#endif  // GOALEX_OBS_METRICS_H_
