#ifndef GOALEX_OBS_EXPORT_H_
#define GOALEX_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace goalex::obs {

/// Machine-readable JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {count, sum, mean, min, max, p50, p95, p99,
///                          buckets: [{"le": bound, "count": n}, ...]}}}
/// Bucket counts are per-bucket (not cumulative); the last bucket's "le"
/// is the string "+Inf".
std::string ToJson(const RegistrySnapshot& snapshot);

/// Prometheus text exposition format (# TYPE lines, cumulative
/// <name>_bucket{le="..."} series plus _sum/_count). Dotted metric names
/// are mapped to legal identifiers ("extractor.stage.predict.seconds" ->
/// "goalex_extractor_stage_predict_seconds").
std::string ToPrometheus(const RegistrySnapshot& snapshot);

/// Human-readable summary: one line per counter/gauge, one block per
/// histogram with count/mean/p50/p95/p99/max.
std::string ToSummary(const RegistrySnapshot& snapshot);

}  // namespace goalex::obs

#endif  // GOALEX_OBS_EXPORT_H_
