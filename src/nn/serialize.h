#ifndef GOALEX_NN_SERIALIZE_H_
#define GOALEX_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace goalex::nn {

/// Writes all named parameters of `module` to `path` in a simple binary
/// format (magic, count, then per-parameter name/shape/float data).
Status SaveParameters(const Module& module, const std::string& path);

/// Loads parameters saved by SaveParameters into `module`. Names and shapes
/// must match exactly (same architecture config).
Status LoadParameters(Module& module, const std::string& path);

}  // namespace goalex::nn

#endif  // GOALEX_NN_SERIALIZE_H_
