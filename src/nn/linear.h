#ifndef GOALEX_NN_LINEAR_H_
#define GOALEX_NN_LINEAR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace goalex::nn {

/// Affine layer: y = x W + b with W[in, out], b[out]. Weights use scaled
/// Gaussian init (stddev 1/sqrt(in)), biases start at zero.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  /// Applies the layer to x[m, in] -> [m, out].
  tensor::Var Forward(const tensor::Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const tensor::Var& weight() const { return weight_; }
  const tensor::Var& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  tensor::Var weight_;
  tensor::Var bias_;
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_LINEAR_H_
