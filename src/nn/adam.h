#ifndef GOALEX_NN_ADAM_H_
#define GOALEX_NN_ADAM_H_

#include <vector>

#include "tensor/variable.h"

namespace goalex::nn {

/// Adam hyperparameters; defaults match the paper's training setup (Section
/// 3.3: Adam, learning rate 5e-5).
struct AdamOptions {
  float learning_rate = 5e-5f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  /// Global gradient-norm clip; <= 0 disables clipping.
  float clip_norm = 1.0f;
};

/// Adam optimizer with bias correction and optional global-norm gradient
/// clipping. Owns first/second-moment state per parameter.
///
/// Step() runs as a single fused pass per parameter (tensor::AdamFusedStep):
/// clip scaling, decoupled weight decay, both moment updates, bias
/// correction, weight update, and gradient zeroing in one sweep. The
/// bias-correction terms 1 - beta^t are computed in double and only the
/// final per-step constants are cast to float, so correction stays accurate
/// at high step counts where float pow drifts.
class Adam {
 public:
  Adam(std::vector<tensor::Var> params, AdamOptions options);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all parameter gradients without updating.
  void ZeroGrad();

  int64_t step_count() const { return step_count_; }
  AdamOptions& options() { return options_; }

 private:
  std::vector<tensor::Var> params_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  AdamOptions options_;
  int64_t step_count_ = 0;
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_ADAM_H_
