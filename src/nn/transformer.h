#ifndef GOALEX_NN_TRANSFORMER_H_
#define GOALEX_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace goalex::nn {

/// Architecture hyperparameters of the transformer encoder. The presets in
/// core/config.h instantiate the model families compared in Figure 4
/// (RoBERTa-like vs BERT-like, original vs distilled).
struct TransformerConfig {
  int32_t vocab_size = 0;
  int32_t max_seq_len = 128;
  int32_t d_model = 64;
  int32_t heads = 4;
  int32_t layers = 2;
  int32_t ffn_dim = 128;
  float dropout = 0.1f;
  /// BERT uses fixed sinusoidal position encodings in this reproduction;
  /// RoBERTa uses learned position embeddings.
  bool sinusoidal_positions = false;
};

/// One pre-LN encoder layer:
///   x = x + Attn(LN1(x));  x = x + FFN(LN2(x))
/// with FFN(h) = Gelu(h W1 + b1) W2 + b2.
class EncoderLayer : public Module {
 public:
  EncoderLayer(const TransformerConfig& config, Rng& rng);

  tensor::Var Forward(const tensor::Var& x, bool training, Rng& rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

 private:
  TransformerConfig config_;
  std::unique_ptr<Linear> q_proj_, k_proj_, v_proj_, o_proj_;
  std::unique_ptr<Linear> ffn_in_, ffn_out_;
  tensor::Var ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
};

/// Transformer encoder: token embeddings + position encodings -> N encoder
/// layers -> final LayerNorm. Processes one sequence at a time ([T] token
/// ids -> [T, d_model] contextual states); batching is done by gradient
/// accumulation in the trainer.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng& rng);

  /// Encodes `ids` (length <= max_seq_len; longer inputs are truncated).
  tensor::Var Forward(const std::vector<int32_t>& ids, bool training,
                      Rng& rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  tensor::Var token_embedding_;     ///< [vocab, d_model]
  tensor::Var position_embedding_;  ///< [max_seq_len, d_model]
  bool position_trainable_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
  tensor::Var final_gamma_, final_beta_;
};

/// Token classification model: encoder + linear head to `num_labels`
/// per-token logits. This is the sequence-labeling model of Section 3.3.
class TokenClassifier : public Module {
 public:
  TokenClassifier(const TransformerConfig& config, int32_t num_labels,
                  Rng& rng);

  /// Returns per-token logits [T', num_labels] where T' = min(T, max_len).
  tensor::Var ForwardLogits(const std::vector<int32_t>& ids, bool training,
                            Rng& rng) const;

  /// Computes the mean cross-entropy loss against `targets` (-1 = ignore).
  /// Target vector longer than the truncated input is truncated to match.
  tensor::Var ForwardLoss(const std::vector<int32_t>& ids,
                          const std::vector<int32_t>& targets, bool training,
                          Rng& rng) const;

  /// Greedy per-token prediction (argmax over labels).
  std::vector<int32_t> Predict(const std::vector<int32_t>& ids) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  const TransformerEncoder& encoder() const { return *encoder_; }
  int32_t num_labels() const { return num_labels_; }

 private:
  std::unique_ptr<TransformerEncoder> encoder_;
  std::unique_ptr<Linear> head_;
  int32_t num_labels_;
  mutable Rng inference_rng_;  ///< Unused randomness source for eval passes.
};

/// Sequence classification model: encoder + mean pooling + linear head.
/// Used by the GoalSpotter objective-detection substrate.
class SequenceClassifier : public Module {
 public:
  SequenceClassifier(const TransformerConfig& config, int32_t num_classes,
                     Rng& rng);

  tensor::Var ForwardLogits(const std::vector<int32_t>& ids, bool training,
                            Rng& rng) const;
  tensor::Var ForwardLoss(const std::vector<int32_t>& ids, int32_t target,
                          bool training, Rng& rng) const;
  int32_t Predict(const std::vector<int32_t>& ids) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

 private:
  std::unique_ptr<TransformerEncoder> encoder_;
  std::unique_ptr<Linear> head_;
  int32_t num_classes_;
  mutable Rng inference_rng_;
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_TRANSFORMER_H_
