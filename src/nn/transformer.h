#ifndef GOALEX_NN_TRANSFORMER_H_
#define GOALEX_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace goalex::nn {

/// Architecture hyperparameters of the transformer encoder. The presets in
/// core/config.h instantiate the model families compared in Figure 4
/// (RoBERTa-like vs BERT-like, original vs distilled).
struct TransformerConfig {
  int32_t vocab_size = 0;
  int32_t max_seq_len = 128;
  int32_t d_model = 64;
  int32_t heads = 4;
  int32_t layers = 2;
  int32_t ffn_dim = 128;
  float dropout = 0.1f;
  /// BERT uses fixed sinusoidal position encodings in this reproduction;
  /// RoBERTa uses learned position embeddings.
  bool sinusoidal_positions = false;
};

/// One pre-LN encoder layer:
///   x = x + Attn(LN1(x));  x = x + FFN(LN2(x))
/// with FFN(h) = Gelu(h W1 + b1) W2 + b2.
///
/// Forward comes in two structurally separate flavors: the training overload
/// takes the dropout Rng, the evaluation overload has no Rng parameter and
/// no dropout call sites at all — inference cannot apply dropout by
/// construction, rather than by a correctly-passed flag.
class EncoderLayer : public Module {
 public:
  EncoderLayer(const TransformerConfig& config, Rng& rng);

  /// Evaluation forward (no dropout, deterministic).
  tensor::Var Forward(const tensor::Var& x) const;

  /// Training forward (applies dropout driven by `rng`).
  tensor::Var Forward(const tensor::Var& x, Rng& rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  /// Borrowed-weight accessors for inference plan compilation (src/infer).
  const Linear& q_proj() const { return *q_proj_; }
  const Linear& k_proj() const { return *k_proj_; }
  const Linear& v_proj() const { return *v_proj_; }
  const Linear& o_proj() const { return *o_proj_; }
  const Linear& ffn_in() const { return *ffn_in_; }
  const Linear& ffn_out() const { return *ffn_out_; }
  const tensor::Var& ln1_gamma() const { return ln1_gamma_; }
  const tensor::Var& ln1_beta() const { return ln1_beta_; }
  const tensor::Var& ln2_gamma() const { return ln2_gamma_; }
  const tensor::Var& ln2_beta() const { return ln2_beta_; }

 private:
  TransformerConfig config_;
  std::unique_ptr<Linear> q_proj_, k_proj_, v_proj_, o_proj_;
  std::unique_ptr<Linear> ffn_in_, ffn_out_;
  tensor::Var ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
};

/// Transformer encoder: token embeddings + position encodings -> N encoder
/// layers -> final LayerNorm. Processes one sequence at a time ([T] token
/// ids -> [T, d_model] contextual states); batching is done by gradient
/// accumulation in the trainer.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng& rng);

  /// Evaluation encode of `ids` (length <= max_seq_len; longer inputs are
  /// truncated). Dropout-free by construction.
  tensor::Var Forward(const std::vector<int32_t>& ids) const;

  /// Training encode (embedding + per-layer dropout driven by `rng`).
  tensor::Var Forward(const std::vector<int32_t>& ids, Rng& rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  const TransformerConfig& config() const { return config_; }

  /// Borrowed-weight accessors for inference plan compilation.
  const tensor::Var& token_embedding() const { return token_embedding_; }
  const tensor::Var& position_embedding() const {
    return position_embedding_;
  }
  const std::vector<std::unique_ptr<EncoderLayer>>& layers() const {
    return layers_;
  }
  const tensor::Var& final_gamma() const { return final_gamma_; }
  const tensor::Var& final_beta() const { return final_beta_; }

 private:
  /// Truncates to max_seq_len and builds the position id ramp.
  std::vector<int32_t> Truncated(const std::vector<int32_t>& ids) const;
  tensor::Var Embed(const std::vector<int32_t>& truncated) const;

  TransformerConfig config_;
  tensor::Var token_embedding_;     ///< [vocab, d_model]
  tensor::Var position_embedding_;  ///< [max_seq_len, d_model]
  bool position_trainable_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
  tensor::Var final_gamma_, final_beta_;
};

/// Token classification model: encoder + linear head to `num_labels`
/// per-token logits. This is the sequence-labeling model of Section 3.3.
class TokenClassifier : public Module {
 public:
  TokenClassifier(const TransformerConfig& config, int32_t num_labels,
                  Rng& rng);

  /// Evaluation logits [T', num_labels] where T' = min(T, max_len). This is
  /// the autograd reference path the inference engine is bit-compared to.
  tensor::Var ForwardLogits(const std::vector<int32_t>& ids) const;

  /// Training logits (dropout active).
  tensor::Var ForwardLogits(const std::vector<int32_t>& ids, Rng& rng) const;

  /// Mean cross-entropy loss against `targets` (-1 = ignore) with dropout
  /// active (training). Target vector longer than the truncated input is
  /// truncated to match.
  tensor::Var ForwardLoss(const std::vector<int32_t>& ids,
                          const std::vector<int32_t>& targets,
                          Rng& rng) const;

  /// Evaluation loss (no dropout) — diagnostics and tests.
  tensor::Var ForwardLoss(const std::vector<int32_t>& ids,
                          const std::vector<int32_t>& targets) const;

  /// Greedy per-token prediction (argmax over labels) via the autograd
  /// evaluation path. Production inference uses infer::Engine instead,
  /// which is bit-identical and graph-free.
  std::vector<int32_t> Predict(const std::vector<int32_t>& ids) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  const TransformerEncoder& encoder() const { return *encoder_; }
  const Linear& head() const { return *head_; }
  int32_t num_labels() const { return num_labels_; }

 private:
  tensor::Var LossFromLogits(const tensor::Var& logits,
                             const std::vector<int32_t>& targets) const;

  std::unique_ptr<TransformerEncoder> encoder_;
  std::unique_ptr<Linear> head_;
  int32_t num_labels_;
};

/// Sequence classification model: encoder + mean pooling + linear head.
/// Used by the GoalSpotter objective-detection substrate.
class SequenceClassifier : public Module {
 public:
  SequenceClassifier(const TransformerConfig& config, int32_t num_classes,
                     Rng& rng);

  /// Evaluation logits [1, num_classes] (no dropout, deterministic).
  tensor::Var ForwardLogits(const std::vector<int32_t>& ids) const;

  /// Training logits (dropout active).
  tensor::Var ForwardLogits(const std::vector<int32_t>& ids, Rng& rng) const;

  /// Training loss (dropout active).
  tensor::Var ForwardLoss(const std::vector<int32_t>& ids, int32_t target,
                          Rng& rng) const;

  /// Argmax class via the autograd evaluation path.
  int32_t Predict(const std::vector<int32_t>& ids) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>& out) const override;

  const TransformerEncoder& encoder() const { return *encoder_; }
  const Linear& head() const { return *head_; }
  int32_t num_classes() const { return num_classes_; }

 private:
  std::unique_ptr<TransformerEncoder> encoder_;
  std::unique_ptr<Linear> head_;
  int32_t num_classes_;
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_TRANSFORMER_H_
