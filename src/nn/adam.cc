#include "nn/adam.h"

#include <cmath>

#include "common/check.h"
#include "tensor/kernels.h"

namespace goalex::nn {

Adam::Adam(std::vector<tensor::Var> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const tensor::Var& p : params_) {
    GOALEX_CHECK(p != nullptr && p->requires_grad());
    m_.push_back(tensor::Tensor::Zeros(p->value().shape()));
    v_.push_back(tensor::Tensor::Zeros(p->value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;

  // Optional global-norm clipping across all parameters. GradSquaredSum uses
  // fixed double accumulator lanes, so the norm (and therefore the clip
  // scale) is identical whichever kernel variant runs.
  float clip_scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (tensor::Var& p : params_) {
      sq += tensor::GradSquaredSum(p->grad().data(), p->grad().numel());
    }
    double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      clip_scale = static_cast<float>(options_.clip_norm / norm);
    }
  }

  // Bias-correction terms in double: 1 - beta^t underflows float precision
  // for small (1 - beta) * t products, and float std::pow drifts from the
  // true power long before that. Only the final per-step constants drop to
  // float, once, here.
  double bias1 =
      1.0 - std::pow(static_cast<double>(options_.beta1), step_count_);
  double bias2 =
      1.0 - std::pow(static_cast<double>(options_.beta2), step_count_);

  tensor::AdamStepParams step;
  step.clip_scale = clip_scale;
  step.step_size =
      static_cast<float>(static_cast<double>(options_.learning_rate) / bias1);
  step.inv_sqrt_bias2 = static_cast<float>(1.0 / std::sqrt(bias2));
  step.beta1 = options_.beta1;
  step.one_minus_beta1 = 1.0f - options_.beta1;
  step.beta2 = options_.beta2;
  step.one_minus_beta2 = 1.0f - options_.beta2;
  step.eps = options_.eps;
  step.decay_scale = options_.weight_decay > 0.0f
                         ? options_.learning_rate * options_.weight_decay
                         : 0.0f;

  for (size_t idx = 0; idx < params_.size(); ++idx) {
    tensor::Var& p = params_[idx];
    // The fused kernel zeroes the gradient as it streams through, so no
    // separate ZeroGrad pass (which would re-touch every cache line).
    tensor::AdamFusedStep(p->mutable_value().data(), p->grad().data(),
                          m_[idx].data(), v_[idx].data(), p->value().numel(),
                          step);
  }
}

void Adam::ZeroGrad() {
  for (tensor::Var& p : params_) p->ZeroGrad();
}

}  // namespace goalex::nn
