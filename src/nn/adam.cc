#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace goalex::nn {

Adam::Adam(std::vector<tensor::Var> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const tensor::Var& p : params_) {
    GOALEX_CHECK(p != nullptr && p->requires_grad());
    m_.push_back(tensor::Tensor::Zeros(p->value().shape()));
    v_.push_back(tensor::Tensor::Zeros(p->value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;

  // Optional global-norm clipping across all parameters.
  float clip_scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (tensor::Var& p : params_) {
      const float* g = p->grad().data();
      for (int64_t i = 0; i < p->grad().numel(); ++i) {
        sq += static_cast<double>(g[i]) * g[i];
      }
    }
    double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      clip_scale = static_cast<float>(options_.clip_norm / norm);
    }
  }

  float bias1 = 1.0f - std::pow(options_.beta1,
                                static_cast<float>(step_count_));
  float bias2 = 1.0f - std::pow(options_.beta2,
                                static_cast<float>(step_count_));

  for (size_t idx = 0; idx < params_.size(); ++idx) {
    tensor::Var& p = params_[idx];
    float* w = p->mutable_value().data();
    float* g = p->grad().data();
    float* m = m_[idx].data();
    float* v = v_[idx].data();
    int64_t n = p->value().numel();
    for (int64_t i = 0; i < n; ++i) {
      float grad = g[i] * clip_scale;
      if (options_.weight_decay > 0.0f) {
        // Decoupled (AdamW-style) weight decay.
        w[i] -= options_.learning_rate * options_.weight_decay * w[i];
      }
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * grad;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * grad * grad;
      float m_hat = m[i] / bias1;
      float v_hat = v[i] / bias2;
      w[i] -= options_.learning_rate * m_hat /
              (std::sqrt(v_hat) + options_.eps);
    }
    p->ZeroGrad();
  }
}

void Adam::ZeroGrad() {
  for (tensor::Var& p : params_) p->ZeroGrad();
}

}  // namespace goalex::nn
