#include "nn/linear.h"

#include <cmath>

namespace goalex::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  float stddev = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = tensor::Leaf(
      tensor::Tensor::RandomNormal({in_features, out_features}, stddev, rng),
      /*requires_grad=*/true);
  bias_ = tensor::Leaf(tensor::Tensor::Zeros({out_features}),
                       /*requires_grad=*/true);
}

tensor::Var Linear::Forward(const tensor::Var& x) const {
  return tensor::AddBias(tensor::MatMul(x, weight_), bias_);
}

void Linear::CollectParameters(const std::string& prefix,
                               std::vector<NamedParam>& out) const {
  out.push_back(NamedParam{prefix + "weight", weight_});
  out.push_back(NamedParam{prefix + "bias", bias_});
}

}  // namespace goalex::nn
