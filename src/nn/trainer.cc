#include "nn/trainer.h"

#include <algorithm>

#include "common/check.h"
#include "obs/scope.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace goalex::nn {

int32_t DataParallelTrainer::SlotCount(int32_t batch_size) {
  return std::min(batch_size, kMaxSlots);
}

DataParallelTrainer::DataParallelTrainer(
    std::vector<tensor::Var> master_params,
    std::vector<std::vector<tensor::Var>> replica_params,
    ParallelTrainerOptions options)
    : master_params_(std::move(master_params)),
      replica_params_(std::move(replica_params)),
      options_(std::move(options)),
      slot_count_(SlotCount(options_.batch_size)),
      pool_(std::min(options_.num_threads <= 0
                         ? runtime::ThreadPool::DefaultThreadCount()
                         : options_.num_threads,
                     slot_count_)),
      optimizer_(master_params_, options_.adam),
      executor_(&pool_, &scratch_pool_) {
  GOALEX_CHECK_GE(options_.batch_size, 1);
  GOALEX_CHECK_EQ(replica_params_.size(), static_cast<size_t>(slot_count_));

  // Pre-touch every gradient here, outside any scratch scope: grad tensors
  // allocate lazily, and a grad born inside a slot's ScratchScope would
  // hand its storage back to the recycler when cleared. Cache the raw
  // pointers — ZeroGrad and AccumulateAndClear keep allocations alive.
  master_grad_.reserve(master_params_.size());
  param_numel_.reserve(master_params_.size());
  param_offset_.reserve(master_params_.size() + 1);
  for (const tensor::Var& p : master_params_) {
    GOALEX_CHECK(p != nullptr && p->requires_grad());
    master_grad_.push_back(p->grad().data());
    param_numel_.push_back(p->value().numel());
    param_offset_.push_back(total_numel_);
    total_numel_ += p->value().numel();
  }
  param_offset_.push_back(total_numel_);

  replica_grad_.resize(replica_params_.size());
  for (size_t s = 0; s < replica_params_.size(); ++s) {
    GOALEX_CHECK_EQ(replica_params_[s].size(), master_params_.size());
    replica_grad_[s].reserve(master_params_.size());
    for (size_t i = 0; i < master_params_.size(); ++i) {
      tensor::Var& rp = replica_params_[s][i];
      GOALEX_CHECK(rp != nullptr && rp->requires_grad());
      GOALEX_CHECK_EQ(rp->value().numel(), master_params_[i]->value().numel());
      // Rebind the replica's value to the master storage (Tensor shares its
      // buffer on copy-assign): optimizer updates to the master are
      // immediately visible in every slot, no broadcast pass.
      rp->mutable_value() = master_params_[i]->value();
      replica_grad_[s].push_back(rp->grad().data());
    }
    if (options_.eager_scratch) {
      scratch_.push_back(std::make_unique<tensor::ScratchAllocator>());
    }
  }

  batch_losses_.resize(static_cast<size_t>(options_.batch_size));

  if (options_.registry != nullptr && obs::Active()) {
    reduce_hist_ =
        options_.registry->GetLatencyHistogram("train.grad_reduce.seconds");
    step_hist_ =
        options_.registry->GetLatencyHistogram("train.optimizer_step.seconds");
    options_.registry->GetGauge("train.workers")
        ->Set(static_cast<double>(pool_.thread_count()));
  }
}

double DataParallelTrainer::RunEpoch(const std::vector<size_t>& order,
                                     int32_t epoch,
                                     const SlotLossFn& loss_fn) {
  double loss_sum = 0.0;
  const size_t n = order.size();
  for (size_t pos = 0; pos < n; pos += options_.batch_size) {
    const int32_t batch = static_cast<int32_t>(
        std::min<size_t>(options_.batch_size, n - pos));
    // Fixed contiguous sharding over the slot count — a function of the
    // batch size only, so the float-summation grouping (and therefore the
    // resulting bits) cannot depend on how many threads execute the slots.
    const int32_t chunk = (batch + slot_count_ - 1) / slot_count_;
    const int32_t slots_used = (batch + chunk - 1) / chunk;
    // Every example contributes grad/batch, including in a final partial
    // batch: a tail of 3 examples averages over 3, not batch_size.
    const float inv_batch = 1.0f / static_cast<float>(batch);

    // One task graph per batch: slot nodes (independent, scratch-leased)
    // -> reduce-chunk nodes (each depends on every slot) -> one fused step
    // node. The graph constrains scheduling only; every value lands in a
    // caller-indexed slot, so the bits cannot depend on thread count.
    exec::Graph graph;
    std::vector<exec::NodeId> slot_nodes;
    slot_nodes.reserve(static_cast<size_t>(slots_used));
    for (int32_t s = 0; s < slots_used; ++s) {
      const int32_t begin = s * chunk;
      const int32_t end = std::min(batch, begin + chunk);
      auto body = [this, s, begin, end, pos, epoch, inv_batch, &order,
                   &loss_fn] {
        for (int32_t j = begin; j < end; ++j) {
          const size_t example = order[pos + static_cast<size_t>(j)];
          Rng rng = Rng::Stream(options_.seed, static_cast<uint64_t>(example),
                                static_cast<uint64_t>(epoch));
          tensor::Var loss =
              loss_fn(static_cast<size_t>(s), example, rng);
          batch_losses_[static_cast<size_t>(j)] =
              static_cast<double>(loss->value().at(0));
          tensor::Backward(tensor::Scale(loss, inv_batch));
        }
      };
      if (options_.eager_scratch) {
        // Eager plan: the slot's pinned allocator, installed by the node
        // itself; the executor's scratch pool stays untouched.
        slot_nodes.push_back(graph.Add([this, s, body] {
          tensor::ScratchScope scope(scratch_[static_cast<size_t>(s)].get());
          body();
        }));
      } else {
        slot_nodes.push_back(
            graph.Add(body, {}, exec::NodeOptions{/*uses_scratch=*/true}));
      }
    }

    // Element-parallel, slot-sequential reduction: chunk boundaries vary
    // with thread count, but each element's ascending-slot sum runs
    // entirely inside the chunk node that owns it, so the bits cannot.
    const size_t numel = static_cast<size_t>(total_numel_);
    const size_t reduce_chunks =
        std::min(numel, static_cast<size_t>(pool_.thread_count()));
    std::vector<exec::NodeId> reduce_nodes;
    reduce_nodes.reserve(reduce_chunks);
    if (numel > 0) {
      const size_t rbase = numel / reduce_chunks;
      const size_t rextra = numel % reduce_chunks;
      size_t rbegin = 0;
      for (size_t c = 0; c < reduce_chunks; ++c) {
        const size_t rend = rbegin + rbase + (c < rextra ? 1 : 0);
        reduce_nodes.push_back(graph.Add(
            [this, rbegin, rend, slots_used] {
              obs::ScopedTimer timer(reduce_hist_);
              ReduceRange(rbegin, rend, slots_used);
            },
            slot_nodes));
        rbegin = rend;
      }
    }

    graph.Add(
        [this, batch] {
          if (options_.post_reduce_hook) {
            options_.post_reduce_hook(batch, master_params_);
          }
          obs::ScopedTimer timer(step_hist_);
          optimizer_.Step();
        },
        reduce_nodes.empty() ? slot_nodes : reduce_nodes);

    Status status = executor_.Run(graph);  // Rethrows loss_fn exceptions.
    GOALEX_CHECK_OK(status);               // The batch graph is a DAG.

    // Batch-position order, independent of which slot ran where.
    for (int32_t j = 0; j < batch; ++j) {
      loss_sum += batch_losses_[static_cast<size_t>(j)];
    }
  }
  return loss_sum;
}

void DataParallelTrainer::ReduceRange(size_t begin, size_t end,
                                      int32_t slots_used) {
  size_t idx = static_cast<size_t>(
      std::upper_bound(param_offset_.begin(), param_offset_.end(),
                       static_cast<int64_t>(begin)) -
      param_offset_.begin() - 1);
  size_t elem = begin;
  while (elem < end) {
    const size_t param_end = static_cast<size_t>(param_offset_[idx + 1]);
    const size_t run_end = std::min(end, param_end);
    const int64_t offset = static_cast<int64_t>(elem) - param_offset_[idx];
    const int64_t len = static_cast<int64_t>(run_end - elem);
    for (int32_t s = 0; s < slots_used; ++s) {
      tensor::AccumulateAndClear(
          master_grad_[idx] + offset,
          replica_grad_[static_cast<size_t>(s)][idx] + offset, len);
    }
    elem = run_end;
    ++idx;
  }
}

uint64_t DataParallelTrainer::scratch_reuse_count() const {
  if (!options_.eager_scratch) return scratch_pool_.reuse_count();
  uint64_t total = 0;
  for (const auto& s : scratch_) total += s->reuse_count();
  return total;
}

uint64_t DataParallelTrainer::scratch_alloc_count() const {
  if (!options_.eager_scratch) return scratch_pool_.alloc_count();
  uint64_t total = 0;
  for (const auto& s : scratch_) total += s->alloc_count();
  return total;
}

size_t DataParallelTrainer::scratch_peak_bytes() const {
  if (!options_.eager_scratch) return scratch_pool_.peak_bytes();
  size_t total = 0;
  for (const auto& s : scratch_) total += s->peak_bytes();
  return total;
}

}  // namespace goalex::nn
