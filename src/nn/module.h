#ifndef GOALEX_NN_MODULE_H_
#define GOALEX_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/variable.h"

namespace goalex::nn {

/// A named trainable parameter.
struct NamedParam {
  std::string name;
  tensor::Var var;
};

/// Minimal module base: owns nothing but defines the parameter-enumeration
/// contract used by the optimizer and the serializer.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends this module's parameters (with `prefix` + local name).
  virtual void CollectParameters(const std::string& prefix,
                                 std::vector<NamedParam>& out) const = 0;

  /// Convenience: all parameters with names.
  std::vector<NamedParam> NamedParameters() const {
    std::vector<NamedParam> out;
    CollectParameters("", out);
    return out;
  }

  /// Convenience: all parameter Vars.
  std::vector<tensor::Var> Parameters() const {
    std::vector<tensor::Var> out;
    for (NamedParam& p : NamedParameters()) out.push_back(std::move(p.var));
    return out;
  }

  /// Zeroes the gradients of all parameters.
  void ZeroGrad() const {
    for (const tensor::Var& p : Parameters()) p->ZeroGrad();
  }

  /// Total scalar parameter count.
  int64_t ParameterCount() const {
    int64_t count = 0;
    for (const tensor::Var& p : Parameters()) count += p->value().numel();
    return count;
  }
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_MODULE_H_
