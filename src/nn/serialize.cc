#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace goalex::nn {
namespace {

constexpr uint32_t kMagic = 0x474C5831;  // "GLX1"

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot open for write: " + path);

  std::vector<NamedParam> params = module.NamedParameters();
  WriteU32(out, kMagic);
  WriteU32(out, static_cast<uint32_t>(params.size()));
  for (const NamedParam& p : params) {
    WriteU32(out, static_cast<uint32_t>(p.name.size()));
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const auto& shape = p.var->value().shape();
    WriteU32(out, static_cast<uint32_t>(shape.size()));
    for (int64_t d : shape) WriteU32(out, static_cast<uint32_t>(d));
    out.write(reinterpret_cast<const char*>(p.var->value().data()),
              static_cast<std::streamsize>(sizeof(float) *
                                           p.var->value().numel()));
  }
  if (!out) return DataLossError("short write: " + path);
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open for read: " + path);

  uint32_t magic = 0, count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return DataLossError("bad magic in " + path);
  }
  if (!ReadU32(in, &count)) return DataLossError("truncated header");

  std::vector<NamedParam> params = module.NamedParameters();
  if (params.size() != count) {
    return FailedPreconditionError(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", module has " + std::to_string(params.size()));
  }
  for (NamedParam& p : params) {
    uint32_t name_len = 0;
    if (!ReadU32(in, &name_len)) return DataLossError("truncated name len");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) return DataLossError("truncated name");
    if (name != p.name) {
      return FailedPreconditionError("parameter name mismatch: file " + name +
                                     " vs module " + p.name);
    }
    uint32_t rank = 0;
    if (!ReadU32(in, &rank)) return DataLossError("truncated rank");
    std::vector<int64_t> shape(rank);
    for (uint32_t i = 0; i < rank; ++i) {
      uint32_t d = 0;
      if (!ReadU32(in, &d)) return DataLossError("truncated shape");
      shape[i] = d;
    }
    if (shape != p.var->value().shape()) {
      return FailedPreconditionError("shape mismatch for " + p.name);
    }
    in.read(reinterpret_cast<char*>(p.var->mutable_value().data()),
            static_cast<std::streamsize>(sizeof(float) *
                                         p.var->value().numel()));
    if (!in) return DataLossError("truncated data for " + p.name);
  }
  return Status::Ok();
}

}  // namespace goalex::nn
