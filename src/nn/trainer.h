#ifndef GOALEX_NN_TRAINER_H_
#define GOALEX_NN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/scratch.h"
#include "tensor/variable.h"

namespace goalex::nn {

/// Computes the loss for one training example inside slot `slot`'s model
/// replica. `example_index` is the index into the training set (not the
/// batch position); `rng` is that example's private dropout stream,
/// Rng::Stream(seed, example_index, epoch). Called concurrently for
/// different slots, never concurrently for the same slot.
using SlotLossFn =
    std::function<tensor::Var(size_t slot, size_t example_index, Rng& rng)>;

struct ParallelTrainerOptions {
  int32_t batch_size = 16;
  /// <= 0 resolves to runtime::ThreadPool::DefaultThreadCount().
  int32_t num_threads = 1;
  /// Base seed of the per-example dropout streams
  /// (Rng::Stream(seed, example_index, epoch)).
  uint64_t seed = 0;
  AdamOptions adam;
  /// Null disables instrumentation.
  obs::MetricsRegistry* registry = nullptr;
  /// Runs after each batch's gradients are reduced into the master
  /// parameters, before the optimizer step. Test hook.
  std::function<void(int32_t batch_examples,
                     const std::vector<tensor::Var>& params)>
      post_reduce_hook;
};

/// Deterministic data-parallel mini-batch trainer.
///
/// The batch positions are sharded over a fixed number of gradient "slots",
/// each backed by a model replica whose parameter *values* alias the master
/// parameters (shared tensor storage) while its *gradients* stay private —
/// the replica gradients are the per-slot accumulation buffers. Slots run
/// concurrently on a thread pool; after the batch, slot gradients are
/// reduced into the master gradients in ascending slot order and the fused
/// Adam step runs on the master parameters (visible to every replica
/// through the shared storage).
///
/// Determinism across thread counts is structural, not incidental:
///   * The batch -> slot assignment depends only on the batch size (fixed
///     contiguous chunks over min(batch_size, kMaxSlots) slots), never on
///     num_threads. Each slot accumulates its examples in ascending order.
///   * Reduction always walks slots in ascending order. It is parallelized
///     element-wise, which cannot change grouping: every element's
///     slot-order sum happens entirely within whichever chunk owns it.
///   * Dropout draws from Rng::Stream(seed, example_index, epoch) — a
///     private counter-based stream per example, untouched by scheduling.
/// Hence final weights are bit-identical for every num_threads value.
class DataParallelTrainer {
 public:
  /// Upper bound on gradient slots (and thus replica gradient memory).
  /// Grouping uses min(batch_size, kMaxSlots) slots regardless of
  /// num_threads, so raising threads past this adds no parallelism but
  /// never changes results.
  static constexpr int32_t kMaxSlots = 16;

  /// Number of gradient slots used for a given batch size.
  static int32_t SlotCount(int32_t batch_size);

  /// `master_params` receive the optimizer updates; `replica_params[s]`
  /// must be shape-congruent with them (same order). Replica values are
  /// rebound to share the master storage.
  DataParallelTrainer(std::vector<tensor::Var> master_params,
                      std::vector<std::vector<tensor::Var>> replica_params,
                      ParallelTrainerOptions options);

  /// Runs one epoch over `order` (example indices, already shuffled by the
  /// caller). `epoch` feeds the per-example RNG streams. Returns the sum of
  /// per-example losses, accumulated in example order (deterministic).
  double RunEpoch(const std::vector<size_t>& order, int32_t epoch,
                  const SlotLossFn& loss_fn);

  Adam& optimizer() { return optimizer_; }
  int thread_count() const { return pool_.thread_count(); }
  int32_t slot_count() const { return slot_count_; }

  /// Scratch-pool telemetry, summed over slots (test hook).
  uint64_t scratch_reuse_count() const;
  uint64_t scratch_alloc_count() const;

 private:
  void ReduceAndStep(int32_t batch_examples, int32_t slots_used);

  std::vector<tensor::Var> master_params_;
  std::vector<std::vector<tensor::Var>> replica_params_;
  ParallelTrainerOptions options_;
  int32_t slot_count_;
  runtime::ThreadPool pool_;
  Adam optimizer_;

  // Raw gradient pointers, cached once: grad tensors are pre-touched in the
  // constructor (outside any scratch scope) and ZeroGrad/AccumulateAndClear
  // keep the allocation, so the pointers stay stable for our lifetime.
  std::vector<float*> master_grad_;
  std::vector<std::vector<float*>> replica_grad_;
  std::vector<int64_t> param_numel_;
  std::vector<int64_t> param_offset_;  ///< Prefix sums; total at back.
  int64_t total_numel_ = 0;

  // One recycling allocator per slot: a slot's forward/backward graphs are
  // built and torn down on one task at a time, so each pool is effectively
  // single-threaded on the hot path.
  std::vector<std::unique_ptr<tensor::ScratchAllocator>> scratch_;

  std::vector<double> batch_losses_;

  obs::Histogram* reduce_hist_ = nullptr;
  obs::Histogram* step_hist_ = nullptr;
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_TRAINER_H_
