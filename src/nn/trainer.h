#ifndef GOALEX_NN_TRAINER_H_
#define GOALEX_NN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/lifetime.h"
#include "nn/adam.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/scratch.h"
#include "tensor/variable.h"

namespace goalex::nn {

/// Computes the loss for one training example inside slot `slot`'s model
/// replica. `example_index` is the index into the training set (not the
/// batch position); `rng` is that example's private dropout stream,
/// Rng::Stream(seed, example_index, epoch). Called concurrently for
/// different slots, never concurrently for the same slot.
using SlotLossFn =
    std::function<tensor::Var(size_t slot, size_t example_index, Rng& rng)>;

struct ParallelTrainerOptions {
  int32_t batch_size = 16;
  /// <= 0 resolves to runtime::ThreadPool::DefaultThreadCount().
  int32_t num_threads = 1;
  /// Base seed of the per-example dropout streams
  /// (Rng::Stream(seed, example_index, epoch)).
  uint64_t seed = 0;
  AdamOptions adam;
  /// Null disables instrumentation.
  obs::MetricsRegistry* registry = nullptr;
  /// Runs after each batch's gradients are reduced into the master
  /// parameters, before the optimizer step. Test hook.
  std::function<void(int32_t batch_examples,
                     const std::vector<tensor::Var>& params)>
      post_reduce_hook;
  /// Test hook: pin one ScratchAllocator per gradient slot for the
  /// trainer's whole lifetime (the pre-graph eager plan) instead of leasing
  /// from the executor's ScratchPool per node. Results are bit-identical
  /// either way (recycled scratch is zero-filled); this exists as the
  /// peak-bytes baseline the lifetime-pass test compares against.
  bool eager_scratch = false;
};

/// Deterministic data-parallel mini-batch trainer.
///
/// The batch positions are sharded over a fixed number of gradient "slots",
/// each backed by a model replica whose parameter *values* alias the master
/// parameters (shared tensor storage) while its *gradients* stay private —
/// the replica gradients are the per-slot accumulation buffers. Slots run
/// concurrently on a thread pool; after the batch, slot gradients are
/// reduced into the master gradients in ascending slot order and the fused
/// Adam step runs on the master parameters (visible to every replica
/// through the shared storage).
///
/// Since the task-graph refactor each batch is one exec::Graph: independent
/// slot nodes fan into fixed-order reduce-chunk nodes which fan into a
/// single fused step node (post_reduce_hook + Adam), all scheduled on the
/// executor's work-stealing queues. Slot scratch comes from the executor's
/// ScratchPool, leased per node execution and released at the node's
/// completion (its last use) rather than pinned for the trainer's lifetime.
///
/// Determinism across thread counts is structural, not incidental:
///   * The graph encodes ordering constraints only; every result lands in a
///     caller-indexed slot. The batch -> slot assignment depends only on
///     the batch size (fixed contiguous chunks over min(batch_size,
///     kMaxSlots) slots), never on num_threads. Each slot accumulates its
///     examples in ascending order.
///   * Reduction always walks slots in ascending order. It is parallelized
///     element-wise across reduce nodes, which cannot change grouping:
///     every element's slot-order sum happens entirely within whichever
///     chunk node owns it, and all of them precede the step node.
///   * Dropout draws from Rng::Stream(seed, example_index, epoch) — a
///     private counter-based stream per example, untouched by scheduling.
///   * Scratch leases hand out zero-filled recycled storage, so which
///     allocator a slot node receives cannot change bits.
/// Hence final weights are bit-identical for every num_threads value.
class DataParallelTrainer {
 public:
  /// Upper bound on gradient slots (and thus replica gradient memory).
  /// Grouping uses min(batch_size, kMaxSlots) slots regardless of
  /// num_threads, so raising threads past this adds no parallelism but
  /// never changes results.
  static constexpr int32_t kMaxSlots = 16;

  /// Number of gradient slots used for a given batch size.
  static int32_t SlotCount(int32_t batch_size);

  /// `master_params` receive the optimizer updates; `replica_params[s]`
  /// must be shape-congruent with them (same order). Replica values are
  /// rebound to share the master storage.
  DataParallelTrainer(std::vector<tensor::Var> master_params,
                      std::vector<std::vector<tensor::Var>> replica_params,
                      ParallelTrainerOptions options);

  /// Runs one epoch over `order` (example indices, already shuffled by the
  /// caller). `epoch` feeds the per-example RNG streams. Returns the sum of
  /// per-example losses, accumulated in example order (deterministic).
  double RunEpoch(const std::vector<size_t>& order, int32_t epoch,
                  const SlotLossFn& loss_fn);

  Adam& optimizer() { return optimizer_; }
  int thread_count() const { return pool_.thread_count(); }
  int32_t slot_count() const { return slot_count_; }

  /// Scratch telemetry: leased-pool counters on the graph plan, summed
  /// per-slot counters under eager_scratch (test hook).
  uint64_t scratch_reuse_count() const;
  uint64_t scratch_alloc_count() const;

  /// Peak scratch bytes of the active plan: the ScratchPool high-water for
  /// the graph plan, the summed per-slot high-water under eager_scratch.
  size_t scratch_peak_bytes() const;

  /// The executor's scratch pool (test hook for lifetime-pass assertions).
  const exec::ScratchPool& scratch_pool() const { return scratch_pool_; }

 private:
  /// Ascending-slot accumulation of replica gradients into the master
  /// gradients for elements [begin, end) of the flattened parameter space.
  void ReduceRange(size_t begin, size_t end, int32_t slots_used);

  std::vector<tensor::Var> master_params_;
  std::vector<std::vector<tensor::Var>> replica_params_;
  ParallelTrainerOptions options_;
  int32_t slot_count_;
  runtime::ThreadPool pool_;
  Adam optimizer_;
  exec::ScratchPool scratch_pool_;
  exec::Executor executor_;

  // Raw gradient pointers, cached once: grad tensors are pre-touched in the
  // constructor (outside any scratch scope) and ZeroGrad/AccumulateAndClear
  // keep the allocation, so the pointers stay stable for our lifetime.
  std::vector<float*> master_grad_;
  std::vector<std::vector<float*>> replica_grad_;
  std::vector<int64_t> param_numel_;
  std::vector<int64_t> param_offset_;  ///< Prefix sums; total at back.
  int64_t total_numel_ = 0;

  // Eager plan only (options_.eager_scratch): one recycling allocator
  // pinned per slot for the trainer's lifetime. Empty on the default graph
  // plan, which leases allocators from scratch_pool_ per slot node.
  std::vector<std::unique_ptr<tensor::ScratchAllocator>> scratch_;

  std::vector<double> batch_losses_;

  obs::Histogram* reduce_hist_ = nullptr;
  obs::Histogram* step_hist_ = nullptr;
};

}  // namespace goalex::nn

#endif  // GOALEX_NN_TRAINER_H_
