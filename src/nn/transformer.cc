#include "nn/transformer.h"

#include <cmath>

#include "common/check.h"

namespace goalex::nn {
namespace {

tensor::Var LayerNormParamGamma(int64_t d) {
  return tensor::Leaf(tensor::Tensor::Full({d}, 1.0f),
                      /*requires_grad=*/true);
}

tensor::Var LayerNormParamBeta(int64_t d) {
  return tensor::Leaf(tensor::Tensor::Zeros({d}), /*requires_grad=*/true);
}

tensor::Tensor SinusoidalPositions(int64_t max_len, int64_t d) {
  tensor::Tensor t({max_len, d});
  float* p = t.data();
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < d; ++i) {
      double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / static_cast<double>(d));
      p[pos * d + i] = static_cast<float>((i % 2 == 0) ? std::sin(angle)
                                                       : std::cos(angle));
    }
  }
  return t;
}

}  // namespace

EncoderLayer::EncoderLayer(const TransformerConfig& config, Rng& rng)
    : config_(config) {
  int64_t d = config.d_model;
  q_proj_ = std::make_unique<Linear>(d, d, rng);
  k_proj_ = std::make_unique<Linear>(d, d, rng);
  v_proj_ = std::make_unique<Linear>(d, d, rng);
  o_proj_ = std::make_unique<Linear>(d, d, rng);
  ffn_in_ = std::make_unique<Linear>(d, config.ffn_dim, rng);
  ffn_out_ = std::make_unique<Linear>(config.ffn_dim, d, rng);
  ln1_gamma_ = LayerNormParamGamma(d);
  ln1_beta_ = LayerNormParamBeta(d);
  ln2_gamma_ = LayerNormParamGamma(d);
  ln2_beta_ = LayerNormParamBeta(d);
}

tensor::Var EncoderLayer::Forward(const tensor::Var& x) const {
  // Attention block (pre-LN). No dropout call sites: this overload is the
  // inference path and has no randomness to apply.
  tensor::Var h = tensor::LayerNorm(x, ln1_gamma_, ln1_beta_);
  tensor::Var q = q_proj_->Forward(h);
  tensor::Var k = k_proj_->Forward(h);
  tensor::Var v = v_proj_->Forward(h);
  tensor::Var attn = tensor::AttentionCore(q, k, v, config_.heads);
  attn = o_proj_->Forward(attn);
  tensor::Var x1 = tensor::Add(x, attn);

  // Feed-forward block (pre-LN).
  tensor::Var h2 = tensor::LayerNorm(x1, ln2_gamma_, ln2_beta_);
  tensor::Var ffn = ffn_out_->Forward(tensor::Gelu(ffn_in_->Forward(h2)));
  return tensor::Add(x1, ffn);
}

tensor::Var EncoderLayer::Forward(const tensor::Var& x, Rng& rng) const {
  // Attention block (pre-LN).
  tensor::Var h = tensor::LayerNorm(x, ln1_gamma_, ln1_beta_);
  tensor::Var q = q_proj_->Forward(h);
  tensor::Var k = k_proj_->Forward(h);
  tensor::Var v = v_proj_->Forward(h);
  tensor::Var attn = tensor::AttentionCore(q, k, v, config_.heads);
  attn = o_proj_->Forward(attn);
  attn = tensor::Dropout(attn, config_.dropout, rng);
  tensor::Var x1 = tensor::Add(x, attn);

  // Feed-forward block (pre-LN).
  tensor::Var h2 = tensor::LayerNorm(x1, ln2_gamma_, ln2_beta_);
  tensor::Var ffn = ffn_out_->Forward(tensor::Gelu(ffn_in_->Forward(h2)));
  ffn = tensor::Dropout(ffn, config_.dropout, rng);
  return tensor::Add(x1, ffn);
}

void EncoderLayer::CollectParameters(const std::string& prefix,
                                     std::vector<NamedParam>& out) const {
  q_proj_->CollectParameters(prefix + "q.", out);
  k_proj_->CollectParameters(prefix + "k.", out);
  v_proj_->CollectParameters(prefix + "v.", out);
  o_proj_->CollectParameters(prefix + "o.", out);
  ffn_in_->CollectParameters(prefix + "ffn_in.", out);
  ffn_out_->CollectParameters(prefix + "ffn_out.", out);
  out.push_back(NamedParam{prefix + "ln1.gamma", ln1_gamma_});
  out.push_back(NamedParam{prefix + "ln1.beta", ln1_beta_});
  out.push_back(NamedParam{prefix + "ln2.gamma", ln2_gamma_});
  out.push_back(NamedParam{prefix + "ln2.beta", ln2_beta_});
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       Rng& rng)
    : config_(config) {
  GOALEX_CHECK_GT(config.vocab_size, 0);
  GOALEX_CHECK_GT(config.max_seq_len, 0);
  GOALEX_CHECK_EQ(config.d_model % config.heads, 0);
  int64_t d = config.d_model;
  token_embedding_ = tensor::Leaf(
      tensor::Tensor::RandomNormal({config.vocab_size, d}, 0.02f, rng),
      /*requires_grad=*/true);
  position_trainable_ = !config.sinusoidal_positions;
  if (config.sinusoidal_positions) {
    position_embedding_ =
        tensor::Leaf(SinusoidalPositions(config.max_seq_len, d),
                     /*requires_grad=*/false);
  } else {
    position_embedding_ = tensor::Leaf(
        tensor::Tensor::RandomNormal({config.max_seq_len, d}, 0.02f, rng),
        /*requires_grad=*/true);
  }
  for (int32_t i = 0; i < config.layers; ++i) {
    layers_.push_back(std::make_unique<EncoderLayer>(config, rng));
  }
  final_gamma_ = LayerNormParamGamma(d);
  final_beta_ = LayerNormParamBeta(d);
}

std::vector<int32_t> TransformerEncoder::Truncated(
    const std::vector<int32_t>& ids) const {
  GOALEX_CHECK(!ids.empty());
  std::vector<int32_t> truncated = ids;
  if (truncated.size() > static_cast<size_t>(config_.max_seq_len)) {
    truncated.resize(static_cast<size_t>(config_.max_seq_len));
  }
  return truncated;
}

tensor::Var TransformerEncoder::Embed(
    const std::vector<int32_t>& truncated) const {
  std::vector<int32_t> positions(truncated.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    positions[i] = static_cast<int32_t>(i);
  }
  return tensor::Add(tensor::EmbeddingGather(token_embedding_, truncated),
                     tensor::EmbeddingGather(position_embedding_, positions));
}

tensor::Var TransformerEncoder::Forward(
    const std::vector<int32_t>& ids) const {
  tensor::Var x = Embed(Truncated(ids));
  for (const auto& layer : layers_) {
    x = layer->Forward(x);
  }
  return tensor::LayerNorm(x, final_gamma_, final_beta_);
}

tensor::Var TransformerEncoder::Forward(const std::vector<int32_t>& ids,
                                        Rng& rng) const {
  tensor::Var x = Embed(Truncated(ids));
  x = tensor::Dropout(x, config_.dropout, rng);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, rng);
  }
  return tensor::LayerNorm(x, final_gamma_, final_beta_);
}

void TransformerEncoder::CollectParameters(
    const std::string& prefix, std::vector<NamedParam>& out) const {
  out.push_back(NamedParam{prefix + "tok_emb", token_embedding_});
  if (position_trainable_) {
    out.push_back(NamedParam{prefix + "pos_emb", position_embedding_});
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectParameters(
        prefix + "layer" + std::to_string(i) + ".", out);
  }
  out.push_back(NamedParam{prefix + "final.gamma", final_gamma_});
  out.push_back(NamedParam{prefix + "final.beta", final_beta_});
}

TokenClassifier::TokenClassifier(const TransformerConfig& config,
                                 int32_t num_labels, Rng& rng)
    : num_labels_(num_labels) {
  encoder_ = std::make_unique<TransformerEncoder>(config, rng);
  head_ = std::make_unique<Linear>(config.d_model, num_labels, rng);
}

tensor::Var TokenClassifier::ForwardLogits(
    const std::vector<int32_t>& ids) const {
  return head_->Forward(encoder_->Forward(ids));
}

tensor::Var TokenClassifier::ForwardLogits(const std::vector<int32_t>& ids,
                                           Rng& rng) const {
  return head_->Forward(encoder_->Forward(ids, rng));
}

tensor::Var TokenClassifier::LossFromLogits(
    const tensor::Var& logits, const std::vector<int32_t>& targets) const {
  std::vector<int32_t> truncated_targets = targets;
  size_t t = static_cast<size_t>(logits->value().dim(0));
  GOALEX_CHECK_GE(truncated_targets.size(), t);
  truncated_targets.resize(t);
  return tensor::CrossEntropy(logits, truncated_targets);
}

tensor::Var TokenClassifier::ForwardLoss(const std::vector<int32_t>& ids,
                                         const std::vector<int32_t>& targets,
                                         Rng& rng) const {
  return LossFromLogits(ForwardLogits(ids, rng), targets);
}

tensor::Var TokenClassifier::ForwardLoss(
    const std::vector<int32_t>& ids,
    const std::vector<int32_t>& targets) const {
  return LossFromLogits(ForwardLogits(ids), targets);
}

std::vector<int32_t> TokenClassifier::Predict(
    const std::vector<int32_t>& ids) const {
  return tensor::ArgmaxRows(ForwardLogits(ids));
}

void TokenClassifier::CollectParameters(const std::string& prefix,
                                        std::vector<NamedParam>& out) const {
  encoder_->CollectParameters(prefix + "enc.", out);
  head_->CollectParameters(prefix + "head.", out);
}

SequenceClassifier::SequenceClassifier(const TransformerConfig& config,
                                       int32_t num_classes, Rng& rng)
    : num_classes_(num_classes) {
  encoder_ = std::make_unique<TransformerEncoder>(config, rng);
  head_ = std::make_unique<Linear>(config.d_model, num_classes, rng);
}

tensor::Var SequenceClassifier::ForwardLogits(
    const std::vector<int32_t>& ids) const {
  tensor::Var states = encoder_->Forward(ids);
  return head_->Forward(tensor::MeanRows(states));
}

tensor::Var SequenceClassifier::ForwardLogits(const std::vector<int32_t>& ids,
                                              Rng& rng) const {
  tensor::Var states = encoder_->Forward(ids, rng);
  return head_->Forward(tensor::MeanRows(states));
}

tensor::Var SequenceClassifier::ForwardLoss(const std::vector<int32_t>& ids,
                                            int32_t target, Rng& rng) const {
  GOALEX_CHECK(target >= 0 && target < num_classes_);
  tensor::Var logits = ForwardLogits(ids, rng);
  return tensor::CrossEntropy(logits, {target});
}

int32_t SequenceClassifier::Predict(const std::vector<int32_t>& ids) const {
  return tensor::ArgmaxRows(ForwardLogits(ids))[0];
}

void SequenceClassifier::CollectParameters(
    const std::string& prefix, std::vector<NamedParam>& out) const {
  encoder_->CollectParameters(prefix + "enc.", out);
  head_->CollectParameters(prefix + "head.", out);
}

}  // namespace goalex::nn
