#ifndef GOALEX_EVAL_TABLE_H_
#define GOALEX_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace goalex::eval {

/// Plain-text table renderer for the bench harnesses that regenerate the
/// paper's tables. Column widths auto-fit; long cells can be wrapped.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with ASCII borders. `max_cell_width` truncates long cells with
  /// an ellipsis (0 = unlimited).
  std::string Render(size_t max_cell_width = 0) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace goalex::eval

#endif  // GOALEX_EVAL_TABLE_H_
