#include "eval/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace goalex::eval {

Prf ComputePrf(const Counts& counts) {
  Prf out;
  if (counts.tp + counts.fp > 0) {
    out.precision =
        static_cast<double>(counts.tp) / (counts.tp + counts.fp);
  }
  if (counts.tp + counts.fn > 0) {
    out.recall = static_cast<double>(counts.tp) / (counts.tp + counts.fn);
  }
  if (out.precision + out.recall > 0) {
    out.f1 = 2 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

std::string NormalizeFieldValue(const std::string& value) {
  std::vector<std::string> parts = StrSplitWhitespace(value);
  return StrJoin(parts, " ");
}

void FieldEvaluator::Add(const data::Objective& gold,
                         const data::DetailRecord& predicted) {
  for (const std::string& kind : kinds_) {
    auto annotated = gold.AnnotationValue(kind);
    std::string gold_value =
        annotated ? NormalizeFieldValue(*annotated) : std::string();
    std::string pred_value =
        NormalizeFieldValue(predicted.FieldOrEmpty(kind));

    Counts& c = per_kind_[kind];
    if (gold_value.empty() && pred_value.empty()) continue;
    if (gold_value.empty()) {
      ++c.fp;  // Extracted something that was not annotated.
    } else if (pred_value.empty()) {
      ++c.fn;  // Missed an annotated detail.
    } else if (gold_value == pred_value) {
      ++c.tp;
    } else {
      ++c.fp;  // Wrong value: counted as both a spurious extraction...
      ++c.fn;  // ...and a miss of the true value.
    }
  }
}

void FieldEvaluator::AddAll(const std::vector<data::Objective>& gold,
                            const std::vector<data::DetailRecord>& predicted) {
  GOALEX_CHECK_EQ(gold.size(), predicted.size());
  for (size_t i = 0; i < gold.size(); ++i) Add(gold[i], predicted[i]);
}

Counts FieldEvaluator::Total() const {
  Counts total;
  for (const auto& [kind, counts] : per_kind_) total += counts;
  return total;
}

Prf FieldEvaluator::ForKind(const std::string& kind) const {
  auto it = per_kind_.find(kind);
  if (it == per_kind_.end()) return Prf();
  return ComputePrf(it->second);
}

Counts CountSpanMatches(const std::vector<labels::Span>& gold,
                        const std::vector<labels::Span>& predicted) {
  Counts counts;
  std::vector<bool> matched(gold.size(), false);
  for (const labels::Span& p : predicted) {
    bool found = false;
    for (size_t i = 0; i < gold.size(); ++i) {
      if (!matched[i] && gold[i] == p) {
        matched[i] = true;
        found = true;
        break;
      }
    }
    if (found) {
      ++counts.tp;
    } else {
      ++counts.fp;
    }
  }
  counts.fn = static_cast<int64_t>(
      std::count(matched.begin(), matched.end(), false));
  return counts;
}

}  // namespace goalex::eval
