#ifndef GOALEX_EVAL_METRICS_H_
#define GOALEX_EVAL_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "data/schema.h"
#include "labels/iob.h"

namespace goalex::eval {

/// Raw confusion counts for one entity kind (or aggregated).
struct Counts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;

  Counts& operator+=(const Counts& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

/// Precision / recall / F1 derived from Counts. All are 0 when undefined.
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Converts counts to precision/recall/F1 using the paper's definitions
/// (Section 4.1).
Prf ComputePrf(const Counts& counts);

/// Field-level evaluation: the paper's protocol. For each objective and
/// each entity kind, compares the extracted value against the annotated
/// value. A correct extraction (values equal after whitespace
/// normalization) is a TP; an extraction where nothing was annotated or
/// with the wrong value is an FP; a missed or wrong annotated value is an
/// FN (a wrong value therefore counts as both FP and FN).
class FieldEvaluator {
 public:
  explicit FieldEvaluator(std::vector<std::string> kinds)
      : kinds_(std::move(kinds)) {}

  /// Accumulates one objective's prediction against its gold annotations.
  void Add(const data::Objective& gold, const data::DetailRecord& predicted);

  /// Accumulates a full test set (parallel vectors).
  void AddAll(const std::vector<data::Objective>& gold,
              const std::vector<data::DetailRecord>& predicted);

  /// Micro-averaged counts over all kinds.
  Counts Total() const;

  /// Overall micro P/R/F1.
  Prf Overall() const { return ComputePrf(Total()); }

  /// Per-kind metrics.
  const std::map<std::string, Counts>& per_kind() const { return per_kind_; }
  Prf ForKind(const std::string& kind) const;

 private:
  std::vector<std::string> kinds_;
  std::map<std::string, Counts> per_kind_;
};

/// Token/span-level evaluation (seqeval-style exact span match), used for
/// model-internal diagnostics and the CRF/transformer unit tests.
Counts CountSpanMatches(const std::vector<labels::Span>& gold,
                        const std::vector<labels::Span>& predicted);

/// Normalizes a field value for comparison: trims, collapses inner
/// whitespace runs.
std::string NormalizeFieldValue(const std::string& value);

}  // namespace goalex::eval

#endif  // GOALEX_EVAL_METRICS_H_
