#include "eval/table.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace goalex::eval {
namespace {

std::string Truncate(const std::string& cell, size_t max_width) {
  if (max_width == 0 || cell.size() <= max_width) return cell;
  if (max_width <= 3) return cell.substr(0, max_width);
  return cell.substr(0, max_width - 3) + "...";
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GOALEX_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  GOALEX_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render(size_t max_cell_width) const {
  std::vector<size_t> widths(header_.size());
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] =
          std::max(widths[i], Truncate(row[i], max_cell_width).size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (size_t i = 0; i < row.size(); ++i) {
      std::string cell = Truncate(row[i], max_cell_width);
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ')
          << " |";
    }
    out << '\n';
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return out.str();
}

}  // namespace goalex::eval
