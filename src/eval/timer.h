#ifndef GOALEX_EVAL_TIMER_H_
#define GOALEX_EVAL_TIMER_H_

#include <chrono>

namespace goalex::eval {

/// Wall-clock stopwatch for the efficiency columns of Table 4.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed minutes (the paper reports minutes).
  double Minutes() const { return Seconds() / 60.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace goalex::eval

#endif  // GOALEX_EVAL_TIMER_H_
