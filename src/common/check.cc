#include "common/check.h"

namespace goalex {
namespace internal_check {

void CheckFailed(const char* file, int line, const char* condition,
                 const std::string& extra) {
  if (extra.empty()) {
    std::fprintf(stderr, "FATAL %s:%d: check failed: %s\n", file, line,
                 condition);
  } else {
    std::fprintf(stderr, "FATAL %s:%d: check failed: %s (%s)\n", file, line,
                 condition, extra.c_str());
  }
  std::abort();
}

}  // namespace internal_check
}  // namespace goalex
