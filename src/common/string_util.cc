#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace goalex {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> StrSplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc < 0x80) c = static_cast<char>(std::tolower(uc));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAsciiDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string StrReplaceAll(std::string_view text, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace goalex
