#include "common/rng.h"

#include <cmath>

namespace goalex {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; u1 in (0, 1] to keep log() finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace goalex
