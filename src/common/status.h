#ifndef GOALEX_COMMON_STATUS_H_
#define GOALEX_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace goalex {

/// Canonical error categories, modeled after absl::StatusCode.
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object for recoverable errors. Library code never
/// throws; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ == StatusCode::kOk) message_.clear();
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);

/// Union of a value and an error Status. Callers must check ok() before
/// accessing the value; accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : rep_(std::move(value)) {}

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is converted to an internal error.
  StatusOr(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) {
      rep_ = InternalError("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<Status, T> rep_;
};

namespace internal_status {
[[noreturn]] void DieBadStatusOrAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) internal_status::DieBadStatusOrAccess(std::get<Status>(rep_));
}

/// Propagates a non-OK status from an expression to the caller.
#define GOALEX_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::goalex::Status goalex_status_macro_tmp = (expr); \
    if (!goalex_status_macro_tmp.ok()) {               \
      return goalex_status_macro_tmp;                  \
    }                                                  \
  } while (false)

}  // namespace goalex

#endif  // GOALEX_COMMON_STATUS_H_
