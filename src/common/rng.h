#ifndef GOALEX_COMMON_RNG_H_
#define GOALEX_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace goalex {

/// Deterministic pseudo-random number generator (SplitMix64 core). Every
/// stochastic component in the library takes an explicit Rng (or seed) so
/// experiments are reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    GOALEX_CHECK_GT(bound, 0u);
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0ULL - bound) % bound;
    while (true) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniform integer index in [0, size). Requires size > 0.
  size_t NextIndex(size_t size) {
    return static_cast<size_t>(NextBounded(static_cast<uint64_t>(size)));
  }

  /// Returns an int uniform in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi) {
    GOALEX_CHECK_LE(lo, hi);
    return lo + static_cast<int>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Returns a sample from a standard normal distribution (Box-Muller).
  double NextGaussian();

  /// Returns a uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = NextIndex(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Returns a reference to a uniformly chosen element. Requires non-empty.
  template <typename T>
  const T& Choose(const std::vector<T>& items) {
    GOALEX_CHECK(!items.empty());
    return items[NextIndex(items.size())];
  }

  /// Forks an independent child generator; deterministic given the parent
  /// state. Useful for giving each dataset instance its own stream.
  Rng Fork() { return Rng(NextUint64()); }

  /// Derives a counter-based stream: an independent generator addressed by
  /// (seed, a, b) with no sequential dependence on any other stream. The
  /// data-parallel trainer keys dropout on (config seed, example index,
  /// epoch) this way, so an example's mask depends only on the example —
  /// never on thread scheduling or on how many examples ran before it.
  static Rng Stream(uint64_t seed, uint64_t a, uint64_t b) {
    uint64_t h = Mix64(seed + 0x9E3779B97F4A7C15ULL);
    h = Mix64(h ^ Mix64(a + 0xBF58476D1CE4E5B9ULL));
    h = Mix64(h ^ Mix64(b + 0x94D049BB133111EBULL));
    return Rng(h);
  }

 private:
  /// SplitMix64 finalizer: a bijective avalanche mix.
  static uint64_t Mix64(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace goalex

#endif  // GOALEX_COMMON_RNG_H_
