#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace goalex {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

namespace internal_status {

void DieBadStatusOrAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of failed StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace goalex
