#ifndef GOALEX_COMMON_CHECK_H_
#define GOALEX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace goalex {
namespace internal_check {

/// Prints a fatal check failure and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& extra);

}  // namespace internal_check
}  // namespace goalex

/// Aborts the process when `condition` is false. Used for programming errors
/// (invariant violations), not for recoverable errors — those use Status.
#define GOALEX_CHECK(condition)                                             \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::goalex::internal_check::CheckFailed(__FILE__, __LINE__, #condition, \
                                            "");                            \
    }                                                                       \
  } while (false)

/// Like GOALEX_CHECK but appends a formatted message, e.g.
/// GOALEX_CHECK_MSG(i < n, "index " << i << " out of range " << n).
#define GOALEX_CHECK_MSG(condition, stream_expr)                            \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::ostringstream goalex_check_msg_stream;                           \
      goalex_check_msg_stream << stream_expr;                               \
      ::goalex::internal_check::CheckFailed(__FILE__, __LINE__, #condition, \
                                            goalex_check_msg_stream.str()); \
    }                                                                       \
  } while (false)

#define GOALEX_CHECK_EQ(a, b) \
  GOALEX_CHECK_MSG((a) == (b), "expected equal: " << (a) << " vs " << (b))
#define GOALEX_CHECK_NE(a, b) \
  GOALEX_CHECK_MSG((a) != (b), "expected not equal: " << (a))
#define GOALEX_CHECK_LT(a, b) \
  GOALEX_CHECK_MSG((a) < (b), "expected " << (a) << " < " << (b))
#define GOALEX_CHECK_LE(a, b) \
  GOALEX_CHECK_MSG((a) <= (b), "expected " << (a) << " <= " << (b))
#define GOALEX_CHECK_GT(a, b) \
  GOALEX_CHECK_MSG((a) > (b), "expected " << (a) << " > " << (b))
#define GOALEX_CHECK_GE(a, b) \
  GOALEX_CHECK_MSG((a) >= (b), "expected " << (a) << " >= " << (b))

/// Aborts on a non-OK Status. For use in tests, examples, and benches where
/// an error is unrecoverable by design.
#define GOALEX_CHECK_OK(expr)                                         \
  do {                                                                \
    ::goalex::Status goalex_check_ok_status = (expr);                 \
    GOALEX_CHECK_MSG(goalex_check_ok_status.ok(),                     \
                     "status not OK: " << goalex_check_ok_status);    \
  } while (false)

#endif  // GOALEX_COMMON_CHECK_H_
