#ifndef GOALEX_COMMON_STRING_UTIL_H_
#define GOALEX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace goalex {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Splits `text` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> StrSplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// ASCII-lowercases `text` (bytes >= 0x80 are passed through unchanged).
std::string AsciiToLower(std::string_view text);

/// Returns true if `text` starts with / ends with `affix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Returns true if every char is an ASCII digit (and text is non-empty).
bool IsAsciiDigits(std::string_view text);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string StrReplaceAll(std::string_view text, std::string_view from,
                          std::string_view to);

/// Formats a double with `precision` decimal places (locale-independent).
std::string FormatDouble(double value, int precision);

}  // namespace goalex

#endif  // GOALEX_COMMON_STRING_UTIL_H_
