#ifndef GOALEX_LLM_SIM_LLM_H_
#define GOALEX_LLM_SIM_LLM_H_

#include <string>

#include "common/rng.h"

namespace goalex::llm {

/// Behavioural profile of the simulated large language model.
///
/// SUBSTITUTION NOTE (see DESIGN.md §3): the paper prompts Llama 4 109B,
/// which cannot run in this offline CPU environment. This simulator keeps
/// the entire baseline harness real — prompt construction, response
/// parsing, evaluation, latency accounting — and replaces only the model
/// call with a deterministic heuristic engine plus a stochastic error
/// channel whose rates are calibrated to reproduce the error profile the
/// paper reports (high recall, imperfect precision; few-shot > zero-shot).
struct LlmProfile {
  /// Probability of omitting a field the engine did find.
  double omission_rate = 0.05;
  /// Probability of inventing a value for a field the engine found empty.
  double hallucination_rate = 0.08;
  /// Probability of corrupting a found multi-word value's boundary.
  double boundary_error_rate = 0.06;
  /// Probability the whole response is malformed (unparseable JSON).
  double format_error_rate = 0.01;
  /// Probability of confusing the roles of years (reference vs. target
  /// year) in an objective — the dominant zero-shot failure mode on
  /// NetZeroFacts, largely fixed by in-context examples.
  double year_confusion_rate = 0.0;
  /// Use in-context examples to adapt the extraction lexicon (few-shot).
  bool example_adaptation = false;
  /// Simulated latency: fixed per-request seconds plus per-token decode.
  double seconds_per_request = 3.2;
  double completion_tokens_per_second = 35.0;

  /// Zero-shot profile: generic lexicon only, noisier output.
  static LlmProfile ZeroShot();
  /// Few-shot profile: example adaptation, tighter output.
  static LlmProfile FewShot();
};

/// Result of one simulated completion.
struct LlmResponse {
  std::string text;
  double simulated_seconds = 0.0;
};

/// The simulated LLM endpoint. Deterministic: the error channel is seeded
/// from the prompt text and the instance seed, so identical runs produce
/// identical outputs.
class SimulatedLlm {
 public:
  SimulatedLlm(LlmProfile profile, uint64_t seed)
      : profile_(profile), seed_(seed) {}

  /// Parses the prompt (instructions, optional examples, target objective),
  /// runs the heuristic engine, injects profile-dependent errors, and
  /// renders a JSON answer.
  LlmResponse Complete(const std::string& prompt) const;

  const LlmProfile& profile() const { return profile_; }

 private:
  LlmProfile profile_;
  uint64_t seed_;
};

}  // namespace goalex::llm

#endif  // GOALEX_LLM_SIM_LLM_H_
