#include "llm/heuristics.h"

#include <cctype>
#include <regex>

#include "common/string_util.h"
#include "text/word_tokenizer.h"

namespace goalex::llm {
namespace {

int YearOf(const std::string& digits) {
  if (digits.size() != 4 || !goalex::IsAsciiDigits(digits)) return -1;
  return std::stoi(digits);
}

// Number/unit separators are \s* rather than a fixed \s? / \s: real
// reports produce both "40  percent" (double space after line rewrapping)
// and "40million" (lost space), and a rigid separator silently drops the
// amount entirely.
const std::regex& PercentRegex() {
  static const std::regex* const kRegex =
      new std::regex(R"((\d+(?:\.\d+)?)\s*(%|percent))");
  return *kRegex;
}

const std::regex& UnitAmountRegex() {
  static const std::regex* const kRegex = new std::regex(
      R"((\d[\d,\.]*)\s*(million|billion|thousand|tonnes|GWh|MWh|MW|Mt(?:\sCO2e)?))");
  return *kRegex;
}

// The UnitAmountRegex number capture (\d[\d,\.]*) may end in a trailing
// ','/'.' ("1,500. tonnes"); strip it so the captured value parses clean.
std::string TrimTrailingNumberPunct(std::string number) {
  while (!number.empty() &&
         (number.back() == ',' || number.back() == '.')) {
    number.pop_back();
  }
  return number;
}

const std::regex& CommaNumberRegex() {
  static const std::regex* const kRegex =
      new std::regex(R"((?:^|\s)(\d{1,3}(?:,\d{3})+))");
  return *kRegex;
}

const std::regex& LeadingNumberRegex() {
  static const std::regex* const kRegex =
      new std::regex(R"(^(\d+)\s(?:of\s)?[A-Za-z])");
  return *kRegex;
}

const std::regex& DeadlineRegex() {
  static const std::regex* const kRegex = new std::regex(
      R"((?:by|before|until|than|of)(?:\sthe\send\sof|\sfiscal\syear)?\s(\d{4}))");
  return *kRegex;
}

const std::regex& BaselineForwardRegex() {
  static const std::regex* const kRegex = new std::regex(
      R"((?:baseline\s|compared\sto\s|relative\sto\s|versus\sfiscal\syear\s|from\sa\s|from\s|since\s|vs\.?\s)(\d{4}))");
  return *kRegex;
}

const std::regex& BaselineBackwardRegex() {
  static const std::regex* const kRegex = new std::regex(
      R"((\d{4})\s(?:baseline|levels|base\syear))");
  return *kRegex;
}

std::string ExtractAmount(const std::string& text) {
  // Collect candidates from every amount pattern and take the earliest
  // occurrence (models a left-to-right reading of the objective).
  size_t best_pos = std::string::npos;
  std::string best;
  auto consider = [&](size_t pos, size_t length) {
    if (pos == std::string::npos) return;
    if (pos < best_pos) {
      best_pos = pos;
      best = text.substr(pos, length);
    }
  };
  // Same, but with an explicit value replacing the raw slice — used when
  // trailing punctuation was trimmed out of the captured number.
  auto consider_value = [&](size_t pos, std::string value) {
    if (pos == std::string::npos) return;
    if (pos < best_pos) {
      best_pos = pos;
      best = std::move(value);
    }
  };

  std::smatch match;
  if (std::regex_search(text, match, PercentRegex())) {
    consider(static_cast<size_t>(match.position(0)),
             static_cast<size_t>(match.length(0)));
  }
  std::string lower = goalex::AsciiToLower(text);
  size_t nz = lower.find("net-zero");
  if (nz == std::string::npos) nz = lower.find("net zero");
  if (nz != std::string::npos) consider(nz, 8);
  if (std::regex_search(text, match, UnitAmountRegex())) {
    std::string number = match[1].str();
    std::string trimmed = TrimTrailingNumberPunct(number);
    if (trimmed == number) {
      // Keep the raw surface slice when the capture is already clean, so
      // weak labels still align with the objective text byte-for-byte.
      consider(static_cast<size_t>(match.position(0)),
               static_cast<size_t>(match.length(0)));
    } else if (!trimmed.empty()) {
      consider_value(static_cast<size_t>(match.position(0)),
                     trimmed + " " + match[2].str());
    }
  }
  if (std::regex_search(text, match, CommaNumberRegex())) {
    consider(static_cast<size_t>(match.position(1)),
             static_cast<size_t>(match.length(1)));
  }
  for (const char* word : {"double", "half", "two thirds", "one third"}) {
    size_t pos = lower.find(word);
    if (pos != std::string::npos) consider(pos, std::string(word).size());
  }
  if (best_pos != std::string::npos) return best;

  // A bare count leading the sentence ("250 students in ...").
  if (std::regex_search(text, match, LeadingNumberRegex())) {
    return match[1].str();
  }
  size_t zero = lower.find("zero");
  if (zero != std::string::npos) return text.substr(zero, 4);
  return "";
}

std::string ExtractDeadline(const std::string& text) {
  auto begin = std::sregex_iterator(text.begin(), text.end(),
                                    DeadlineRegex());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string year = (*it)[1].str();
    int y = YearOf(year);
    if (y >= 1990 && y <= 2060) return year;
  }
  return "";
}

std::string ExtractBaseline(const std::string& text) {
  std::smatch match;
  if (std::regex_search(text, match, BaselineBackwardRegex())) {
    int y = YearOf(match[1].str());
    if (y >= 1990 && y <= 2060) return match[1].str();
  }
  if (std::regex_search(text, match, BaselineForwardRegex())) {
    int y = YearOf(match[1].str());
    if (y >= 1990 && y <= 2060) return match[1].str();
  }
  return "";
}

// Finds the action verb and returns {value, end_byte_offset} (offset past
// the matched verb inside `text`), or an empty value.
std::pair<std::string, size_t> ExtractAction(
    const std::string& text, const HeuristicLexicon& lexicon) {
  goalex::text::WordTokenizer tokenizer;
  std::vector<goalex::text::Token> tokens = tokenizer.Tokenize(text);
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string lower = goalex::AsciiToLower(tokens[i].text);
    bool is_verb = lexicon.action_verbs.count(lower) > 0;
    bool is_gerund = false;
    if (!is_verb && goalex::EndsWith(lower, "ing") && lower.size() > 5) {
      std::string stem = lower.substr(0, lower.size() - 3);
      // "reducing" -> "reduc" -> try "reduce" and "reduc".
      is_gerund = lexicon.action_verbs.count(stem) > 0 ||
                  lexicon.action_verbs.count(stem + "e") > 0;
    }
    if (!is_verb && !is_gerund) continue;

    std::string value = tokens[i].text;
    if (lexicon.will_prefix_convention && i > 0 &&
        goalex::AsciiToLower(tokens[i - 1].text) == "will") {
      value = tokens[i - 1].text + " " + tokens[i].text;
    }
    // Multi-word verbs ("Phase out").
    if (i + 1 < tokens.size()) {
      std::string next = goalex::AsciiToLower(tokens[i + 1].text);
      if (next == "out" && (lower == "phase" || lower == "phasing")) {
        value += " " + tokens[i + 1].text;
        return {value, tokens[i + 1].end};
      }
    }
    return {value, tokens[i].end};
  }
  return {"", 0};
}

// The qualifier is the noun phrase following the action (or following the
// amount in amount-led objectives), ending at the first boundary marker.
std::string ExtractQualifier(const std::string& text, size_t search_from) {
  static const char* kBoundaries[] = {" by ",      ",",         " (",
                                      " across ",  " against ",  " compared",
                                      " from ",    " before ",   " until ",
                                      " with a target",          " as validated",
                                      " throughout ",            " in partnership"};
  size_t start = search_from;
  // Skip glue words after the action/amount.
  static const char* kGlue[] = {" of", " the", " our", " to", " in"};
  bool skipped = true;
  while (skipped) {
    skipped = false;
    for (const char* glue : kGlue) {
      size_t len = std::string(glue).size();
      if (text.compare(start, len, glue) == 0) {
        start += len;
        skipped = true;
      }
    }
  }
  while (start < text.size() && text[start] == ' ') ++start;
  if (start >= text.size()) return "";

  size_t end = text.size();
  for (const char* boundary : kBoundaries) {
    size_t pos = text.find(boundary, start);
    if (pos != std::string::npos && pos < end) end = pos;
  }
  size_t dot = text.find_last_of('.');
  if (dot != std::string::npos && dot >= start && dot < end) end = dot;

  std::string phrase(
      goalex::StripAsciiWhitespace(text.substr(start, end - start)));
  // A qualifier should not start with a digit (that is the amount) or a
  // dangling function word left over from boundary detection.
  if (!phrase.empty() && std::isdigit(static_cast<unsigned char>(phrase[0]))) {
    return "";
  }
  for (const char* bad_start : {"by ", "at ", "to ", "and "}) {
    if (phrase.rfind(bad_start, 0) == 0) return "";
  }
  // Overly long captures are boundary failures; give up instead.
  if (goalex::StrSplitWhitespace(phrase).size() > 8) return "";
  return phrase;
}

}  // namespace

FieldRole RoleForKind(const std::string& kind) {
  std::string lower = goalex::AsciiToLower(kind);
  auto contains = [&lower](const char* needle) {
    return lower.find(needle) != std::string::npos;
  };
  if (contains("action") || contains("predicate") || contains("verb")) {
    return FieldRole::kAction;
  }
  if (contains("amount") || contains("value") || contains("quantity")) {
    return FieldRole::kAmount;
  }
  if (contains("qualifier") || contains("object") || contains("subject")) {
    return FieldRole::kQualifier;
  }
  if (contains("deadline") || (contains("target") && contains("year"))) {
    return FieldRole::kDeadlineYear;
  }
  if (contains("baseline") || contains("reference")) {
    return FieldRole::kBaselineYear;
  }
  return FieldRole::kUnknown;
}

HeuristicLexicon HeuristicLexicon::Generic() {
  HeuristicLexicon lexicon;
  // A generic world-knowledge verb list — deliberately narrower than the
  // corpus grammar, which is what limits zero-shot recall.
  lexicon.action_verbs = {
      "reduce",      "achieve",    "increase",  "eliminate", "improve",
      "cut",         "reach",      "expand",    "implement", "restore",
      "install",     "transition", "double",    "promote",   "invest",
      "lower",       "recycle",    "launch",    "halve",     "substitute",
      "deliver",     "train",      "support",   "empower",   "plant",
      "protect",     "source",     "procure",   "phase",     "divert",
      "offset",      "electrify",  "decarbonize", "audit",   "certify",
      "integrate",   "align",      "strengthen", "minimize", "conserve",
      "retrofit",    "decrease",   "shrink",
  };
  return lexicon;
}

void HeuristicLexicon::LearnFromExample(
    const std::string& objective_text,
    const std::vector<data::Annotation>& annotations) {
  (void)objective_text;
  for (const data::Annotation& annotation : annotations) {
    if (RoleForKind(annotation.kind) != FieldRole::kAction) continue;
    std::vector<std::string> words =
        goalex::StrSplitWhitespace(annotation.value);
    if (words.empty()) continue;
    if (goalex::AsciiToLower(words[0]) == "will") {
      will_prefix_convention = true;
      words.erase(words.begin());
      if (words.empty()) continue;
    }
    std::string verb = goalex::AsciiToLower(words[0]);
    if (goalex::EndsWith(verb, "ing")) gerund_convention = true;
    action_verbs.insert(verb);
    // Also learn the likely stem of gerunds: "reducing" -> "reduce".
    if (goalex::EndsWith(verb, "ing") && verb.size() > 5) {
      std::string stem = verb.substr(0, verb.size() - 3);
      action_verbs.insert(stem);
      action_verbs.insert(stem + "e");
    }
  }
}

std::map<std::string, std::string> HeuristicExtract(
    const std::string& text, const std::vector<std::string>& kinds,
    const HeuristicLexicon& lexicon) {
  std::map<std::string, std::string> out;

  auto [action_value, action_end] = ExtractAction(text, lexicon);
  std::string amount = ExtractAmount(text);

  for (const std::string& kind : kinds) {
    switch (RoleForKind(kind)) {
      case FieldRole::kAction:
        out[kind] = action_value;
        break;
      case FieldRole::kAmount:
        out[kind] = amount;
        break;
      case FieldRole::kDeadlineYear:
        out[kind] = ExtractDeadline(text);
        break;
      case FieldRole::kBaselineYear:
        out[kind] = ExtractBaseline(text);
        break;
      case FieldRole::kQualifier: {
        size_t from = action_end;
        if (from == 0 && !amount.empty()) {
          size_t amount_pos = text.find(amount);
          if (amount_pos != std::string::npos) {
            from = amount_pos + amount.size();
          }
        }
        out[kind] = ExtractQualifier(text, from);
        break;
      }
      case FieldRole::kUnknown:
        out[kind] = "";
        break;
    }
  }
  return out;
}

}  // namespace goalex::llm
