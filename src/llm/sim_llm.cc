#include "llm/sim_llm.h"

#include <map>
#include <vector>

#include "common/string_util.h"
#include "llm/heuristics.h"
#include "llm/prompt.h"

namespace goalex::llm {
namespace {

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Parses "Extract the following fields from the objective: A, B, C." out of
// the instruction block.
std::vector<std::string> ParseKinds(const std::string& prompt) {
  const std::string marker = "fields from the objective: ";
  size_t pos = prompt.find(marker);
  if (pos == std::string::npos) return {};
  size_t start = pos + marker.size();
  size_t end = prompt.find(".\n", start);
  if (end == std::string::npos) return {};
  std::vector<std::string> kinds;
  for (const std::string& part :
       StrSplit(prompt.substr(start, end - start), ',')) {
    std::string kind(StripAsciiWhitespace(part));
    if (!kind.empty()) kinds.push_back(kind);
  }
  return kinds;
}

struct ParsedPrompt {
  std::vector<std::string> kinds;
  std::vector<std::pair<std::string, std::string>> examples;  // obj, answer
  std::string objective;
};

ParsedPrompt ParsePrompt(const std::string& prompt) {
  ParsedPrompt out;
  out.kinds = ParseKinds(prompt);

  // Collect all "Objective: ..." segments; each ends at "\nAnswer: ".
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t pos = 0;
  while (true) {
    size_t obj_pos = prompt.find("Objective: ", pos);
    if (obj_pos == std::string::npos) break;
    size_t obj_start = obj_pos + 11;
    size_t ans_pos = prompt.find("\nAnswer: ", obj_start);
    if (ans_pos == std::string::npos) break;
    std::string objective = prompt.substr(obj_start, ans_pos - obj_start);
    size_t ans_start = ans_pos + 9;
    size_t ans_end = prompt.find('\n', ans_start);
    std::string answer =
        ans_end == std::string::npos
            ? prompt.substr(ans_start)
            : prompt.substr(ans_start, ans_end - ans_start);
    pairs.emplace_back(std::move(objective), std::move(answer));
    pos = ans_end == std::string::npos ? prompt.size() : ans_end;
  }
  if (pairs.empty()) return out;
  out.objective = pairs.back().first;
  pairs.pop_back();
  out.examples = std::move(pairs);
  return out;
}

// Minimal parser for the {"Key": "value", ...} answers used in examples.
std::vector<data::Annotation> ParseAnswerJson(const std::string& answer) {
  std::vector<data::Annotation> out;
  size_t i = 0;
  auto read_string = [&](std::string& dst) -> bool {
    while (i < answer.size() && answer[i] != '"') ++i;
    if (i >= answer.size()) return false;
    ++i;
    dst.clear();
    while (i < answer.size() && answer[i] != '"') {
      if (answer[i] == '\\' && i + 1 < answer.size()) ++i;
      dst.push_back(answer[i]);
      ++i;
    }
    if (i >= answer.size()) return false;
    ++i;
    return true;
  };
  while (i < answer.size()) {
    std::string key, value;
    if (!read_string(key)) break;
    while (i < answer.size() && answer[i] != ':') ++i;
    if (!read_string(value)) break;
    if (!value.empty()) out.push_back(data::Annotation{key, value});
  }
  return out;
}

// Picks a plausible hallucinated value for an empty field: a capitalized
// word or noun-ish token from the objective.
std::string Hallucinate(const std::string& objective, FieldRole role,
                        Rng& rng) {
  std::vector<std::string> words = StrSplitWhitespace(objective);
  if (words.empty()) return "";
  switch (role) {
    case FieldRole::kDeadlineYear:
      return std::to_string(rng.NextInt(2025, 2045));
    case FieldRole::kBaselineYear:
      return std::to_string(rng.NextInt(2010, 2020));
    case FieldRole::kAmount:
      return std::to_string(rng.NextInt(1, 19) * 5) + "%";
    default: {
      // A random content word from the sentence.
      for (int attempt = 0; attempt < 5; ++attempt) {
        const std::string& w = rng.Choose(words);
        if (w.size() > 3) return w;
      }
      return words[0];
    }
  }
}

std::string CorruptBoundary(const std::string& value, Rng& rng) {
  std::vector<std::string> words = StrSplitWhitespace(value);
  if (words.size() < 2) return value;
  if (rng.NextBernoulli(0.5)) {
    words.erase(words.begin());
  } else {
    words.pop_back();
  }
  return StrJoin(words, " ");
}

}  // namespace

LlmProfile LlmProfile::ZeroShot() {
  LlmProfile profile;
  profile.omission_rate = 0.08;
  profile.hallucination_rate = 0.10;
  profile.boundary_error_rate = 0.08;
  profile.format_error_rate = 0.02;
  profile.year_confusion_rate = 0.15;
  profile.example_adaptation = false;
  return profile;
}

LlmProfile LlmProfile::FewShot() {
  LlmProfile profile;
  profile.omission_rate = 0.01;
  profile.hallucination_rate = 0.03;
  profile.boundary_error_rate = 0.02;
  profile.format_error_rate = 0.005;
  profile.year_confusion_rate = 0.03;
  profile.example_adaptation = true;
  return profile;
}

LlmResponse SimulatedLlm::Complete(const std::string& prompt) const {
  ParsedPrompt parsed = ParsePrompt(prompt);
  Rng rng(HashString(prompt) ^ seed_);

  HeuristicLexicon lexicon = HeuristicLexicon::Generic();
  if (profile_.example_adaptation) {
    for (const auto& [objective, answer] : parsed.examples) {
      lexicon.LearnFromExample(objective, ParseAnswerJson(answer));
    }
  }

  std::map<std::string, std::string> fields =
      HeuristicExtract(parsed.objective, parsed.kinds, lexicon);

  // Year-role confusion: swap (or misassign) the reference/baseline and
  // target/deadline year fields.
  if (rng.NextBernoulli(profile_.year_confusion_rate)) {
    std::string* deadline = nullptr;
    std::string* baseline = nullptr;
    for (auto& [kind, value] : fields) {
      FieldRole role = RoleForKind(kind);
      if (role == FieldRole::kDeadlineYear) deadline = &value;
      if (role == FieldRole::kBaselineYear) baseline = &value;
    }
    if (deadline != nullptr && baseline != nullptr &&
        (!deadline->empty() || !baseline->empty())) {
      std::swap(*deadline, *baseline);
    }
  }

  // Error channel.
  for (auto& [kind, value] : fields) {
    if (!value.empty() && rng.NextBernoulli(profile_.omission_rate)) {
      value.clear();
      continue;
    }
    if (!value.empty() &&
        rng.NextBernoulli(profile_.boundary_error_rate)) {
      value = CorruptBoundary(value, rng);
      continue;
    }
    if (value.empty() &&
        rng.NextBernoulli(profile_.hallucination_rate)) {
      value = Hallucinate(parsed.objective, RoleForKind(kind), rng);
    }
  }

  std::vector<data::Annotation> annotations;
  for (const std::string& kind : parsed.kinds) {
    annotations.push_back(data::Annotation{kind, fields[kind]});
  }
  std::string answer = RenderAnswer(parsed.kinds, annotations);
  if (rng.NextBernoulli(profile_.format_error_rate)) {
    // A malformed response: truncated JSON plus chatter.
    answer = answer.substr(0, answer.size() / 2) +
             "... (model refused to complete)";
  }

  LlmResponse response;
  response.text = answer;
  response.simulated_seconds =
      profile_.seconds_per_request +
      static_cast<double>(CountPromptTokens(answer)) /
          profile_.completion_tokens_per_second;
  return response;
}

}  // namespace goalex::llm
