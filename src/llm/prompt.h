#ifndef GOALEX_LLM_PROMPT_H_
#define GOALEX_LLM_PROMPT_H_

#include <string>
#include <vector>

#include "data/schema.h"

namespace goalex::llm {

/// One in-context example for few-shot prompting: an objective and its
/// desired structured output.
struct PromptExample {
  std::string objective_text;
  std::vector<data::Annotation> annotations;
};

/// Builds the zero-shot instruction prompt: task description, the field
/// schema, the output format, and the objective to analyze. Mirrors the
/// zero-shot baseline of Section 4.1 [9].
std::string BuildZeroShotPrompt(const std::vector<std::string>& kinds,
                                const std::string& objective_text);

/// Builds the few-shot prompt: the zero-shot instructions plus
/// input/output example pairs (the paper uses three [32]).
std::string BuildFewShotPrompt(const std::vector<std::string>& kinds,
                               const std::vector<PromptExample>& examples,
                               const std::string& objective_text);

/// Crude whitespace token count used by the latency model.
size_t CountPromptTokens(const std::string& prompt);

/// Renders annotations as the JSON-style answer block the prompts request:
/// {"Action": "reach", "Deadline": "2040"}.
std::string RenderAnswer(const std::vector<std::string>& kinds,
                         const std::vector<data::Annotation>& annotations);

}  // namespace goalex::llm

#endif  // GOALEX_LLM_PROMPT_H_
