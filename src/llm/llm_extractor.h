#ifndef GOALEX_LLM_LLM_EXTRACTOR_H_
#define GOALEX_LLM_LLM_EXTRACTOR_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "llm/prompt.h"
#include "llm/sim_llm.h"

namespace goalex::llm {

/// The zero-/few-shot prompting baselines of Table 4: wraps the simulated
/// LLM with prompt construction and tolerant response parsing, and tracks
/// the simulated inference time.
class PromptingBaseline {
 public:
  /// `few_shot` selects the profile; `kinds` is the extraction schema.
  PromptingBaseline(std::vector<std::string> kinds, bool few_shot,
                    uint64_t seed);

  /// Provides the in-context examples (the paper uses three training
  /// instances). Only used in few-shot mode.
  void SetExamples(const std::vector<data::Objective>& examples);

  /// Extracts the details of one objective.
  data::DetailRecord Extract(const data::Objective& objective) const;

  /// Extracts a whole test set.
  std::vector<data::DetailRecord> ExtractAll(
      const std::vector<data::Objective>& objectives) const;

  /// Total simulated LLM latency accumulated so far, in seconds.
  double simulated_seconds() const { return simulated_seconds_; }
  void ResetTimer() { simulated_seconds_ = 0.0; }

  bool few_shot() const { return few_shot_; }

 private:
  std::vector<std::string> kinds_;
  bool few_shot_;
  SimulatedLlm llm_;
  std::vector<PromptExample> examples_;
  mutable double simulated_seconds_ = 0.0;
};

/// Parses a (possibly malformed) JSON answer into a DetailRecord. Exposed
/// for testing. Unparseable input yields an empty record.
data::DetailRecord ParseLlmAnswer(const std::string& answer,
                                  const std::vector<std::string>& kinds,
                                  const data::Objective& objective);

}  // namespace goalex::llm

#endif  // GOALEX_LLM_LLM_EXTRACTOR_H_
