#include "llm/llm_extractor.h"

#include "common/check.h"

namespace goalex::llm {

PromptingBaseline::PromptingBaseline(std::vector<std::string> kinds,
                                     bool few_shot, uint64_t seed)
    : kinds_(std::move(kinds)),
      few_shot_(few_shot),
      llm_(few_shot ? LlmProfile::FewShot() : LlmProfile::ZeroShot(),
           seed) {}

void PromptingBaseline::SetExamples(
    const std::vector<data::Objective>& examples) {
  examples_.clear();
  for (const data::Objective& example : examples) {
    examples_.push_back(PromptExample{example.text, example.annotations});
  }
}

data::DetailRecord PromptingBaseline::Extract(
    const data::Objective& objective) const {
  std::string prompt =
      few_shot_ ? BuildFewShotPrompt(kinds_, examples_, objective.text)
                : BuildZeroShotPrompt(kinds_, objective.text);
  LlmResponse response = llm_.Complete(prompt);
  simulated_seconds_ += response.simulated_seconds;
  return ParseLlmAnswer(response.text, kinds_, objective);
}

std::vector<data::DetailRecord> PromptingBaseline::ExtractAll(
    const std::vector<data::Objective>& objectives) const {
  std::vector<data::DetailRecord> out;
  out.reserve(objectives.size());
  for (const data::Objective& objective : objectives) {
    out.push_back(Extract(objective));
  }
  return out;
}

data::DetailRecord ParseLlmAnswer(const std::string& answer,
                                  const std::vector<std::string>& kinds,
                                  const data::Objective& objective) {
  data::DetailRecord record;
  record.objective_id = objective.id;
  record.objective_text = objective.text;

  // Tolerant key/value scan: find "Kind": "value" for each schema kind.
  // Ignores anything else the model may have emitted.
  for (const std::string& kind : kinds) {
    std::string needle = "\"" + kind + "\"";
    size_t pos = answer.find(needle);
    if (pos == std::string::npos) continue;
    size_t colon = answer.find(':', pos + needle.size());
    if (colon == std::string::npos) continue;
    size_t open = answer.find('"', colon);
    if (open == std::string::npos) continue;
    size_t close = open + 1;
    std::string value;
    while (close < answer.size() && answer[close] != '"') {
      if (answer[close] == '\\' && close + 1 < answer.size()) ++close;
      value.push_back(answer[close]);
      ++close;
    }
    if (close >= answer.size()) continue;  // Unterminated: malformed.
    if (!value.empty()) record.fields[kind] = value;
  }
  return record;
}

}  // namespace goalex::llm
