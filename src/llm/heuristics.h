#ifndef GOALEX_LLM_HEURISTICS_H_
#define GOALEX_LLM_HEURISTICS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "data/schema.h"

namespace goalex::llm {

/// Semantic role a schema field plays, inferred from its name. This lets
/// the same engine serve both the Sustainability Goals schema (Action,
/// Amount, Qualifier, Baseline, Deadline) and the NetZeroFacts schema
/// (TargetValue, ReferenceYear, TargetYear).
enum class FieldRole {
  kAction,
  kAmount,
  kQualifier,
  kDeadlineYear,
  kBaselineYear,
  kUnknown,
};

/// Maps a field name to its role by keyword ("value"/"amount" -> amount,
/// "target year"/"deadline" -> deadline, "reference"/"baseline" ->
/// baseline, ...).
FieldRole RoleForKind(const std::string& kind);

/// The pattern knowledge of the simulated LLM. The generic lexicon models
/// zero-shot world knowledge (common sustainability verbs and general verb
/// morphology); few-shot prompting additionally learns the dataset's
/// annotation conventions (e.g., whether the "will" auxiliary belongs to
/// the Action value) from the in-context examples — one of the mechanisms
/// that make the few-shot baseline stronger than zero-shot in Table 4.
struct HeuristicLexicon {
  /// Lowercased action verbs recognized as objective actions.
  std::set<std::string> action_verbs;
  /// Learned: annotations may include the "will" auxiliary ("will reduce").
  bool will_prefix_convention = false;
  /// Learned: annotations may use gerund forms ("reducing"). Gerunds are
  /// always *recognized* (verb morphology is world knowledge); this flag
  /// records that the convention was observed in examples.
  bool gerund_convention = false;

  /// The built-in zero-shot lexicon.
  static HeuristicLexicon Generic();

  /// Absorbs conventions and vocabulary from one in-context example.
  void LearnFromExample(const std::string& objective_text,
                        const std::vector<data::Annotation>& annotations);
};

/// Rule-based detail extraction over one objective sentence. Returns a
/// value for each requested kind (missing -> empty string). Deterministic.
std::map<std::string, std::string> HeuristicExtract(
    const std::string& text, const std::vector<std::string>& kinds,
    const HeuristicLexicon& lexicon);

}  // namespace goalex::llm

#endif  // GOALEX_LLM_HEURISTICS_H_
