#include "llm/prompt.h"

#include <sstream>

#include "common/string_util.h"

namespace goalex::llm {
namespace {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void AppendInstructions(std::ostringstream& out,
                        const std::vector<std::string>& kinds) {
  out << "You are an assistant that extracts key details from corporate "
         "sustainability objectives.\n"
      << "Extract the following fields from the objective: "
      << StrJoin(kinds, ", ") << ".\n"
      << "Answer with a single JSON object whose keys are the field names "
         "and whose values are exact substrings of the objective. Use \"\" "
         "for fields that are not present.\n";
}

}  // namespace

std::string BuildZeroShotPrompt(const std::vector<std::string>& kinds,
                                const std::string& objective_text) {
  std::ostringstream out;
  AppendInstructions(out, kinds);
  out << "Objective: " << objective_text << "\nAnswer: ";
  return out.str();
}

std::string BuildFewShotPrompt(const std::vector<std::string>& kinds,
                               const std::vector<PromptExample>& examples,
                               const std::string& objective_text) {
  std::ostringstream out;
  AppendInstructions(out, kinds);
  out << "Here are some examples.\n";
  for (const PromptExample& example : examples) {
    out << "Objective: " << example.objective_text << "\nAnswer: "
        << RenderAnswer(kinds, example.annotations) << "\n";
  }
  out << "Objective: " << objective_text << "\nAnswer: ";
  return out.str();
}

size_t CountPromptTokens(const std::string& prompt) {
  return StrSplitWhitespace(prompt).size();
}

std::string RenderAnswer(const std::vector<std::string>& kinds,
                         const std::vector<data::Annotation>& annotations) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const std::string& kind : kinds) {
    std::string value;
    for (const data::Annotation& a : annotations) {
      if (a.kind == kind) {
        value = a.value;
        break;
      }
    }
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(kind) << "\": \"" << JsonEscape(value) << '"';
  }
  out << "}";
  return out.str();
}

}  // namespace goalex::llm
