#include "crf/crf.h"

#include <cmath>

#include "common/check.h"
#include "crf/features.h"

namespace goalex::crf {
namespace {

constexpr double kEps = 1e-8;

double LogSumExpVec(const double* x, int32_t n) {
  double max_val = x[0];
  for (int32_t i = 1; i < n; ++i) max_val = std::max(max_val, x[i]);
  double sum = 0.0;
  for (int32_t i = 0; i < n; ++i) sum += std::exp(x[i] - max_val);
  return max_val + std::log(sum);
}

}  // namespace

LinearChainCrf::LinearChainCrf(int32_t label_count)
    : label_count_(label_count),
      emission_(static_cast<size_t>(kFeatureBuckets) * label_count, 0.0f),
      transition_(static_cast<size_t>(label_count) * label_count, 0.0f),
      emission_g2_(emission_.size(), 0.0f),
      transition_g2_(transition_.size(), 0.0f) {
  GOALEX_CHECK_GT(label_count, 0);
}

std::vector<double> LinearChainCrf::UnaryScores(
    const std::vector<std::vector<uint32_t>>& features) const {
  const int32_t L = label_count_;
  std::vector<double> unary(features.size() * L, 0.0);
  for (size_t t = 0; t < features.size(); ++t) {
    double* row = unary.data() + t * L;
    for (uint32_t f : features[t]) {
      const float* w = emission_.data() + static_cast<size_t>(f) * L;
      for (int32_t l = 0; l < L; ++l) row[l] += w[l];
    }
  }
  return unary;
}

double LinearChainCrf::LogLikelihood(const CrfInstance& instance) const {
  const int32_t L = label_count_;
  const size_t T = instance.features.size();
  if (T == 0) return 0.0;
  GOALEX_CHECK_EQ(T, instance.labels.size());
  std::vector<double> unary = UnaryScores(instance.features);

  // Gold score.
  double gold = unary[0 * L + instance.labels[0]];
  for (size_t t = 1; t < T; ++t) {
    gold += transition_[instance.labels[t - 1] * L + instance.labels[t]];
    gold += unary[t * L + instance.labels[t]];
  }

  // Partition function via forward recursion.
  std::vector<double> alpha(T * L, 0.0);
  for (int32_t l = 0; l < L; ++l) alpha[l] = unary[l];
  std::vector<double> scratch(L);
  for (size_t t = 1; t < T; ++t) {
    for (int32_t l = 0; l < L; ++l) {
      for (int32_t k = 0; k < L; ++k) {
        scratch[k] = alpha[(t - 1) * L + k] + transition_[k * L + l];
      }
      alpha[t * L + l] = unary[t * L + l] + LogSumExpVec(scratch.data(), L);
    }
  }
  double log_z = LogSumExpVec(alpha.data() + (T - 1) * L, L);
  return gold - log_z;
}

double LinearChainCrf::UpdateOne(const CrfInstance& instance,
                                 float learning_rate, float l2) {
  const int32_t L = label_count_;
  const size_t T = instance.features.size();
  if (T == 0) return 0.0;
  GOALEX_CHECK_EQ(T, instance.labels.size());
  std::vector<double> unary = UnaryScores(instance.features);

  // Forward.
  std::vector<double> alpha(T * L), beta(T * L, 0.0), scratch(L);
  for (int32_t l = 0; l < L; ++l) alpha[l] = unary[l];
  for (size_t t = 1; t < T; ++t) {
    for (int32_t l = 0; l < L; ++l) {
      for (int32_t k = 0; k < L; ++k) {
        scratch[k] = alpha[(t - 1) * L + k] + transition_[k * L + l];
      }
      alpha[t * L + l] = unary[t * L + l] + LogSumExpVec(scratch.data(), L);
    }
  }
  double log_z = LogSumExpVec(alpha.data() + (T - 1) * L, L);

  // Backward.
  for (size_t ti = T - 1; ti > 0; --ti) {
    size_t t = ti - 1;
    for (int32_t k = 0; k < L; ++k) {
      for (int32_t l = 0; l < L; ++l) {
        scratch[l] = transition_[k * L + l] + unary[(t + 1) * L + l] +
                     beta[(t + 1) * L + l];
      }
      beta[t * L + k] = LogSumExpVec(scratch.data(), L);
    }
  }

  // Unary marginals and emission updates (gradient ascent on LL).
  auto adagrad_emission = [&](size_t idx, double grad) {
    emission_g2_[idx] += static_cast<float>(grad * grad);
    emission_[idx] += learning_rate * static_cast<float>(grad) /
                      std::sqrt(emission_g2_[idx] + kEps);
  };
  auto adagrad_transition = [&](size_t idx, double grad) {
    transition_g2_[idx] += static_cast<float>(grad * grad);
    transition_[idx] += learning_rate * static_cast<float>(grad) /
                        std::sqrt(transition_g2_[idx] + kEps);
  };

  std::vector<double> marginal(L);
  for (size_t t = 0; t < T; ++t) {
    for (int32_t l = 0; l < L; ++l) {
      marginal[l] = std::exp(alpha[t * L + l] + beta[t * L + l] - log_z);
    }
    for (uint32_t f : instance.features[t]) {
      size_t base = static_cast<size_t>(f) * L;
      for (int32_t l = 0; l < L; ++l) {
        double grad = -marginal[l] - l2 * emission_[base + l];
        if (l == instance.labels[t]) grad += 1.0;
        adagrad_emission(base + l, grad);
      }
    }
  }

  // Pairwise marginals and transition updates.
  for (size_t t = 0; t + 1 < T; ++t) {
    for (int32_t k = 0; k < L; ++k) {
      for (int32_t l = 0; l < L; ++l) {
        double p = std::exp(alpha[t * L + k] + transition_[k * L + l] +
                            unary[(t + 1) * L + l] +
                            beta[(t + 1) * L + l] - log_z);
        double grad = -p - l2 * transition_[k * L + l];
        if (instance.labels[t] == k && instance.labels[t + 1] == l) {
          grad += 1.0;
        }
        adagrad_transition(static_cast<size_t>(k) * L + l, grad);
      }
    }
  }

  // Gold score for reporting.
  double gold = unary[instance.labels[0]];
  for (size_t t = 1; t < T; ++t) {
    gold += transition_[instance.labels[t - 1] * L + instance.labels[t]];
    gold += unary[t * L + instance.labels[t]];
  }
  return gold - log_z;
}

void LinearChainCrf::Train(const std::vector<CrfInstance>& instances,
                           const CrfOptions& options) {
  Rng rng(options.seed);
  std::vector<size_t> order(instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      UpdateOne(instances[idx], options.learning_rate, options.l2);
    }
  }
}

std::vector<labels::LabelId> LinearChainCrf::Predict(
    const std::vector<std::vector<uint32_t>>& features) const {
  const int32_t L = label_count_;
  const size_t T = features.size();
  if (T == 0) return {};
  std::vector<double> unary = UnaryScores(features);

  std::vector<double> delta(T * L);
  std::vector<int32_t> backptr(T * L, 0);
  for (int32_t l = 0; l < L; ++l) delta[l] = unary[l];
  for (size_t t = 1; t < T; ++t) {
    for (int32_t l = 0; l < L; ++l) {
      double best = -1e300;
      int32_t best_k = 0;
      for (int32_t k = 0; k < L; ++k) {
        double s = delta[(t - 1) * L + k] + transition_[k * L + l];
        if (s > best) {
          best = s;
          best_k = k;
        }
      }
      delta[t * L + l] = best + unary[t * L + l];
      backptr[t * L + l] = best_k;
    }
  }

  int32_t best_last = 0;
  for (int32_t l = 1; l < L; ++l) {
    if (delta[(T - 1) * L + l] > delta[(T - 1) * L + best_last]) {
      best_last = l;
    }
  }
  std::vector<labels::LabelId> out(T);
  out[T - 1] = best_last;
  for (size_t ti = T - 1; ti > 0; --ti) {
    out[ti - 1] = backptr[ti * L + out[ti]];
  }
  return out;
}

}  // namespace goalex::crf
