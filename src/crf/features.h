#ifndef GOALEX_CRF_FEATURES_H_
#define GOALEX_CRF_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace goalex::crf {

/// Number of hash buckets for the feature space. Collisions are tolerated
/// (standard feature-hashing trick); 2^17 buckets keeps the weight matrix
/// small while leaving collisions rare on our vocabularies.
inline constexpr uint32_t kFeatureBuckets = 1u << 17;

/// Feature template richness. kContextual is the full template; kBasic
/// omits the neighbor-identity and bigram features — the configuration
/// used for the Table 4 baseline, where the paper's CRF is a standard
/// off-the-shelf setup (see EXPERIMENTS.md for the full-template ablation).
enum class FeatureTemplate { kBasic, kContextual };

/// Extracts hashed binary features for each token position of a sentence.
/// Templates cover the lexical, orthographic, and contextual features the
/// paper lists for the CRF baseline (Section 4.1):
///  - token identity (cased + lowercased), previous/next token identity
///  - token bigrams with the previous/next token
///  - word shape ("Xxx", "dddd", "d%", ...) and short shape
///  - prefixes/suffixes (lengths 1-3)
///  - orthographic flags: digits, year-like, percent, currency,
///    capitalization, punctuation, first/last position
/// Every feature id is in [0, kFeatureBuckets).
std::vector<std::vector<uint32_t>> ExtractFeatures(
    const std::vector<std::string>& tokens,
    FeatureTemplate feature_template = FeatureTemplate::kContextual);

/// Word shape: uppercase letters -> 'X', lowercase -> 'x', digits -> 'd',
/// everything else kept. "Reduce" -> "Xxxxxx", "2040" -> "dddd".
std::string WordShape(const std::string& token);

/// Collapsed shape: runs compressed. "Reduce" -> "Xx", "2040" -> "d".
std::string ShortShape(const std::string& token);

/// True for 4-digit tokens in [1900, 2100] (baseline/deadline years).
bool IsYearToken(const std::string& token);

}  // namespace goalex::crf

#endif  // GOALEX_CRF_FEATURES_H_
