#ifndef GOALEX_CRF_CRF_H_
#define GOALEX_CRF_CRF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "labels/iob.h"

namespace goalex::crf {

/// Training hyperparameters for the linear-chain CRF baseline.
struct CrfOptions {
  int32_t epochs = 12;
  float learning_rate = 0.2f;   ///< Adagrad base step.
  float l2 = 1e-6f;             ///< L2 regularization strength per example.
  uint64_t seed = 7;            ///< Shuffling seed.
};

/// One training instance: per-position hashed features and gold label ids.
struct CrfInstance {
  std::vector<std::vector<uint32_t>> features;
  std::vector<labels::LabelId> labels;
};

/// Linear-chain conditional random field with hashed binary emission
/// features and a dense label-transition matrix, trained by maximizing
/// conditional log-likelihood with Adagrad (forward-backward gradients),
/// decoded with Viterbi. This is the "traditional statistical model"
/// baseline of Table 4.
class LinearChainCrf {
 public:
  /// Creates an untrained model over `label_count` labels.
  explicit LinearChainCrf(int32_t label_count);

  /// Trains on `instances` (weak-labeled sentences).
  void Train(const std::vector<CrfInstance>& instances,
             const CrfOptions& options);

  /// Viterbi-decodes the most likely label sequence.
  std::vector<labels::LabelId> Predict(
      const std::vector<std::vector<uint32_t>>& features) const;

  /// Average per-sentence conditional log-likelihood of the gold labels
  /// (useful for monitoring convergence; higher is better).
  double LogLikelihood(const CrfInstance& instance) const;

  int32_t label_count() const { return label_count_; }

 private:
  /// Computes unary scores U[t*L + l] for a sentence.
  std::vector<double> UnaryScores(
      const std::vector<std::vector<uint32_t>>& features) const;

  /// Accumulates the gradient of one instance into the Adagrad update.
  /// Returns the instance log-likelihood.
  double UpdateOne(const CrfInstance& instance, float learning_rate,
                   float l2);

  int32_t label_count_;
  /// Emission weights, [kFeatureBuckets * label_count].
  std::vector<float> emission_;
  /// Transition weights, [label_count * label_count], row = previous label.
  std::vector<float> transition_;
  /// Adagrad accumulators.
  std::vector<float> emission_g2_;
  std::vector<float> transition_g2_;
};

}  // namespace goalex::crf

#endif  // GOALEX_CRF_CRF_H_
