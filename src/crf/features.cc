#include "crf/features.h"

#include <cctype>

#include "common/string_util.h"

namespace goalex::crf {
namespace {

// FNV-1a over the template-tagged feature string.
uint32_t HashFeature(std::string_view text) {
  uint32_t h = 2166136261u;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h % kFeatureBuckets;
}

void AddFeature(std::vector<uint32_t>& out, std::string_view tag,
                std::string_view value) {
  std::string key;
  key.reserve(tag.size() + value.size() + 1);
  key.append(tag);
  key.push_back('=');
  key.append(value);
  out.push_back(HashFeature(key));
}

bool HasDigit(const std::string& token) {
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

bool AllDigits(const std::string& token) {
  return goalex::IsAsciiDigits(token);
}

}  // namespace

std::string WordShape(const std::string& token) {
  std::string shape;
  shape.reserve(token.size());
  for (char c : token) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isupper(uc)) {
      shape.push_back('X');
    } else if (std::islower(uc)) {
      shape.push_back('x');
    } else if (std::isdigit(uc)) {
      shape.push_back('d');
    } else {
      shape.push_back(c);
    }
  }
  return shape;
}

std::string ShortShape(const std::string& token) {
  std::string full = WordShape(token);
  std::string collapsed;
  for (char c : full) {
    if (collapsed.empty() || collapsed.back() != c) collapsed.push_back(c);
  }
  return collapsed;
}

bool IsYearToken(const std::string& token) {
  if (token.size() != 4 || !AllDigits(token)) return false;
  int year = std::stoi(token);
  return year >= 1900 && year <= 2100;
}

std::vector<std::vector<uint32_t>> ExtractFeatures(
    const std::vector<std::string>& tokens,
    FeatureTemplate feature_template) {
  std::vector<std::vector<uint32_t>> features(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& w = tokens[i];
    std::vector<uint32_t>& out = features[i];
    out.reserve(24);

    std::string lower = AsciiToLower(w);
    AddFeature(out, "w", w);
    AddFeature(out, "lw", lower);
    AddFeature(out, "shape", WordShape(w));
    AddFeature(out, "sshape", ShortShape(w));

    // Prefixes and suffixes.
    for (size_t len = 1; len <= 3 && len <= lower.size(); ++len) {
      AddFeature(out, "pre", lower.substr(0, len));
      AddFeature(out, "suf", lower.substr(lower.size() - len));
    }

    // Orthographic flags.
    if (HasDigit(w)) AddFeature(out, "flag", "has_digit");
    if (AllDigits(w)) AddFeature(out, "flag", "all_digits");
    if (IsYearToken(w)) AddFeature(out, "flag", "year");
    if (w == "%" || lower == "percent") AddFeature(out, "flag", "percent");
    if (w == "$" || lower == "eur" || lower == "usd") {
      AddFeature(out, "flag", "currency");
    }
    if (!w.empty() && std::isupper(static_cast<unsigned char>(w[0]))) {
      AddFeature(out, "flag", "capitalized");
    }
    if (!w.empty() && std::ispunct(static_cast<unsigned char>(w[0])) &&
        w.size() == 1) {
      AddFeature(out, "flag", "punct");
    }
    if (i == 0) AddFeature(out, "flag", "first");
    if (i + 1 == tokens.size()) AddFeature(out, "flag", "last");

    // Context: neighbors and bigrams (contextual template only).
    if (feature_template == FeatureTemplate::kBasic) continue;
    if (i > 0) {
      std::string prev = AsciiToLower(tokens[i - 1]);
      AddFeature(out, "w-1", prev);
      AddFeature(out, "bi-1", prev + "|" + lower);
      AddFeature(out, "shape-1", ShortShape(tokens[i - 1]));
    } else {
      AddFeature(out, "w-1", "<bos>");
    }
    if (i + 1 < tokens.size()) {
      std::string next = AsciiToLower(tokens[i + 1]);
      AddFeature(out, "w+1", next);
      AddFeature(out, "bi+1", lower + "|" + next);
      AddFeature(out, "shape+1", ShortShape(tokens[i + 1]));
    } else {
      AddFeature(out, "w+1", "<eos>");
    }
  }
  return features;
}

}  // namespace goalex::crf
