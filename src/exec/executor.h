#ifndef GOALEX_EXEC_EXECUTOR_H_
#define GOALEX_EXEC_EXECUTOR_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "exec/graph.h"
#include "exec/lifetime.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace goalex::exec {

/// Counters and timings of the most recent Executor::Run.
struct RunStats {
  double wall_seconds = 0.0;
  /// Sum of node execution times — true busy time, immune to the
  /// double-counting that staged/pipelined execution causes when stage
  /// walls are summed (overlapping stages share the same wall clock).
  double busy_seconds = 0.0;
  /// Longest dependency chain weighted by measured node durations: the
  /// lower bound on wall time at infinite parallelism.
  double critical_path_seconds = 0.0;
  size_t executed = 0;
  size_t cancelled = 0;
  uint64_t steals = 0;
};

/// Runs a Graph on a runtime::ThreadPool with sharded per-worker queues.
///
/// Scheduling: each worker owns a deque; a node released by worker w is
/// pushed to w's deque and popped LIFO (chains run depth-first, so a
/// tokenize -> predict -> decode pipeline keeps at most ~one open chain
/// per worker and staged buffers die at their last-use node). Idle workers
/// steal FIFO from other shards — oldest nodes first, which is where
/// unstarted chains live. When a completing node releases a wave of R
/// ready nodes, exactly min(R, sleeping workers) are woken (no thundering
/// herd). On a single-thread pool the graph runs inline on the calling
/// thread in deterministic ascending-id chain order.
///
/// Error propagation: the first node exception is captured; every
/// transitive dependent that has not started is cancelled (never runs);
/// independent nodes still execute. After the graph settles, Run rethrows
/// the captured exception — the same surface-on-Wait contract as
/// runtime::ThreadPool.
///
/// Scratch lifetimes: nodes tagged NodeOptions::uses_scratch execute
/// inside a tensor::ScratchScope leased from `scratch` (see lifetime.h);
/// the lease is returned when the node finishes.
///
/// An Executor instance runs one graph at a time (not reentrant: a node
/// must not Run another graph on the same pool it executes on).
class Executor {
 public:
  /// `pool` is borrowed and must outlive the executor. `scratch` may be
  /// null (no scratch leasing).
  explicit Executor(runtime::ThreadPool* pool, ScratchPool* scratch = nullptr);

  /// Executes `graph` to completion. Returns InvalidArgument (running
  /// nothing) when the graph is cyclic; rethrows the first node exception
  /// after cancelling its dependents and letting independent nodes finish.
  Status Run(Graph& graph);

  const RunStats& last_run() const { return last_run_; }
  int worker_count() const { return pool_->thread_count(); }

 private:
  struct RunState;

  void RunSerial(Graph& graph, RunState& state);
  void RunParallel(Graph& graph, RunState& state);
  void WorkerLoop(Graph& graph, RunState& state, int worker);
  void ExecuteNode(Graph& graph, RunState& state, NodeId id, int worker);
  void ReleaseDependents(Graph& graph, RunState& state, NodeId id,
                         int worker);
  void CancelDependents(Graph& graph, RunState& state, NodeId id);
  void FinishNodes(RunState& state, size_t count);
  void FinalizeStats(const Graph& graph, RunState& state);

  runtime::ThreadPool* pool_;    ///< Not owned.
  ScratchPool* scratch_;         ///< Not owned; may be null.
  RunStats last_run_;

  // Observability handles (null when instrumentation is inactive).
  obs::Gauge* ready_depth_gauge_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Counter* nodes_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Histogram* node_seconds_hist_ = nullptr;
  obs::Histogram* run_seconds_hist_ = nullptr;
  obs::Gauge* critical_path_gauge_ = nullptr;
  obs::Gauge* scratch_peak_gauge_ = nullptr;
};

}  // namespace goalex::exec

#endif  // GOALEX_EXEC_EXECUTOR_H_
