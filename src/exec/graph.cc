#include "exec/graph.h"

#include <deque>

#include "common/check.h"

namespace goalex::exec {

NodeId Graph::Add(std::function<void()> fn, std::vector<NodeId> deps,
                  NodeOptions options) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId dep : deps) {
    GOALEX_CHECK(dep >= 0 && dep < id);
    nodes_[static_cast<size_t>(dep)].dependents.push_back(id);
  }
  Node node;
  node.fn = std::move(fn);
  node.deps = std::move(deps);
  node.uses_scratch = options.uses_scratch;
  nodes_.push_back(std::move(node));
  return id;
}

Status Graph::AddEdge(NodeId from, NodeId to) {
  const NodeId n = static_cast<NodeId>(nodes_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) {
    return InvalidArgumentError("AddEdge: unknown node id");
  }
  if (from == to) return InvalidArgumentError("AddEdge: self-dependency");
  nodes_[static_cast<size_t>(from)].dependents.push_back(to);
  nodes_[static_cast<size_t>(to)].deps.push_back(from);
  return Status::Ok();
}

std::vector<NodeId> Graph::TopologicalOrder() const {
  const size_t n = nodes_.size();
  std::vector<int32_t> pending(n, 0);
  for (size_t i = 0; i < n; ++i) {
    pending[i] = static_cast<int32_t>(nodes_[i].deps.size());
  }
  // A deque seeded and drained in ascending-id order makes the result
  // stable: it is also the serial executor's execution order fallback.
  std::deque<NodeId> ready;
  for (size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (NodeId dep : nodes_[static_cast<size_t>(id)].dependents) {
      if (--pending[static_cast<size_t>(dep)] == 0) ready.push_back(dep);
    }
  }
  if (order.size() != n) order.clear();  // Cycle.
  return order;
}

Status Graph::Validate() const {
  if (!nodes_.empty() && TopologicalOrder().empty()) {
    return InvalidArgumentError("task graph contains a cycle");
  }
  return Status::Ok();
}

}  // namespace goalex::exec
