#include "exec/lifetime.h"

#include <algorithm>

#include "common/check.h"

namespace goalex::exec {

LifetimePlan PlanScratchLifetimes(const Graph& graph, int worker_count) {
  GOALEX_CHECK_GE(worker_count, 1);
  LifetimePlan plan;
  const size_t n = graph.node_count();
  // chain[i] = scratch nodes on the heaviest dependency chain ending at i.
  // Nodes only depend on earlier ids through Add; AddEdge can introduce
  // back-edges, but planning runs on builder-constructed graphs — walk in
  // id order and ignore any dep with a larger id (a cyclic graph is
  // rejected by the executor before scratch sizing matters).
  std::vector<uint32_t> chain(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint32_t deepest = 0;
    for (NodeId dep : graph.deps(static_cast<NodeId>(i))) {
      if (static_cast<size_t>(dep) < i) {
        deepest = std::max(deepest, chain[static_cast<size_t>(dep)]);
      }
    }
    chain[i] = deepest + (graph.uses_scratch(static_cast<NodeId>(i)) ? 1 : 0);
    if (graph.uses_scratch(static_cast<NodeId>(i))) ++plan.scratch_nodes;
    plan.longest_scratch_chain =
        std::max<size_t>(plan.longest_scratch_chain, chain[i]);
  }
  if (plan.scratch_nodes == 0) return plan;
  const size_t antichain_bound =
      plan.scratch_nodes - plan.longest_scratch_chain + 1;
  plan.lease_count = static_cast<int>(
      std::min({static_cast<size_t>(worker_count), plan.scratch_nodes,
                antichain_bound}));
  plan.lease_count = std::max(plan.lease_count, 1);
  return plan;
}

void ScratchPool::EnsureCapacity(int lease_count) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max(capacity_, lease_count);
}

tensor::ScratchAllocator* ScratchPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    tensor::ScratchAllocator* allocator = free_.back();
    free_.pop_back();
    return allocator;
  }
  GOALEX_CHECK_MSG(static_cast<int>(allocators_.size()) < capacity_,
                   "ScratchPool lease demand exceeded the planned capacity");
  allocators_.push_back(std::make_unique<tensor::ScratchAllocator>());
  return allocators_.back().get();
}

void ScratchPool::Release(tensor::ScratchAllocator* allocator) {
  if (allocator == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(allocator);
}

int ScratchPool::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

int ScratchPool::resident_allocators() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(allocators_.size());
}

size_t ScratchPool::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& a : allocators_) total += a->cached_bytes();
  return total;
}

size_t ScratchPool::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& a : allocators_) total += a->peak_bytes();
  return total;
}

uint64_t ScratchPool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& a : allocators_) total += a->reuse_count();
  return total;
}

uint64_t ScratchPool::alloc_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& a : allocators_) total += a->alloc_count();
  return total;
}

}  // namespace goalex::exec
