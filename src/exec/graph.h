#ifndef GOALEX_EXEC_GRAPH_H_
#define GOALEX_EXEC_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace goalex::exec {

/// Index of a node within one Graph (dense, assigned by Add in order).
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct NodeOptions {
  /// Executes the node inside a tensor::ScratchScope backed by an
  /// allocator leased from the run's ScratchPool (see lifetime.h). The
  /// lease is returned when the node finishes — the node is the buffer's
  /// last use, not the end of the batch.
  bool uses_scratch = false;
};

/// A task graph: nodes with explicit dependencies, built once and executed
/// by exec::Executor. This is the one scheduling substrate shared by the
/// batch mapper (runtime::BatchRunner), the data-parallel trainer, the
/// GoalSpotter document pipeline, and the staged extraction pipeline.
///
/// Determinism contract: the graph only constrains *when* a node may run,
/// never *where results go*. Nodes write into caller-owned slots indexed by
/// position, and reductions are expressed as a node that depends on all of
/// its inputs and walks them in a fixed order inside its callback — so the
/// output bits cannot depend on worker count or scheduling order.
///
/// Not thread-safe during construction; immutable while a run is active.
class Graph {
 public:
  /// Adds a node that becomes ready once every node in `deps` has finished.
  /// Dependencies must name previously added nodes (checked), so a graph
  /// built with Add alone is acyclic by construction. Use AddEdge for
  /// edges decided after both endpoints exist.
  NodeId Add(std::function<void()> fn, std::vector<NodeId> deps = {},
             NodeOptions options = {});

  /// Adds the dependency edge `from -> to` (to waits for from). Unknown
  /// ids or self-edges are InvalidArgument. Edges added here can form a
  /// cycle; Validate()/Executor::Run reject cyclic graphs.
  Status AddEdge(NodeId from, NodeId to);

  /// Kahn's algorithm: InvalidArgument when the graph has a cycle.
  Status Validate() const;

  size_t node_count() const { return nodes_.size(); }

  /// Read access for analysis passes (lifetime.h) and tests.
  const std::vector<NodeId>& deps(NodeId id) const {
    return nodes_[static_cast<size_t>(id)].deps;
  }
  bool uses_scratch(NodeId id) const {
    return nodes_[static_cast<size_t>(id)].uses_scratch;
  }

 private:
  friend class Executor;

  struct Node {
    std::function<void()> fn;
    std::vector<NodeId> deps;
    std::vector<NodeId> dependents;
    bool uses_scratch = false;
  };

  /// Topological order via Kahn (ties broken by ascending id); empty when
  /// the graph is cyclic.
  std::vector<NodeId> TopologicalOrder() const;

  std::vector<Node> nodes_;
};

}  // namespace goalex::exec

#endif  // GOALEX_EXEC_GRAPH_H_
