#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "tensor/scratch.h"

namespace goalex::exec {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

struct Executor::RunState {
  enum NodeState : uint8_t {
    kWaiting = 0,
    kReady,
    kRunning,
    kDone,
    kFailed,
    kCancelled,
  };

  struct Shard {
    std::mutex mu;
    std::deque<NodeId> queue;
  };

  explicit RunState(size_t n, int workers)
      : pending(n), state(n), seconds(n, 0.0), shards(workers) {}

  std::vector<std::atomic<int32_t>> pending;
  std::vector<std::atomic<uint8_t>> state;
  std::vector<double> seconds;  ///< Written only by the executing worker.
  std::vector<NodeId> topo;     ///< Kahn order (cycle check + critical path).

  std::vector<Shard> shards;
  std::atomic<int64_t> ready_count{0};
  std::atomic<size_t> unfinished{0};
  std::atomic<size_t> executed{0};
  std::atomic<size_t> cancelled{0};
  std::atomic<uint64_t> steals{0};

  std::mutex sleep_mu;
  std::condition_variable cv;
  int sleepers = 0;
  int active_workers = 0;
  bool done = false;
  std::exception_ptr first_error;  ///< Guarded by sleep_mu.
};

Executor::Executor(runtime::ThreadPool* pool, ScratchPool* scratch)
    : pool_(pool), scratch_(scratch) {
  GOALEX_CHECK(pool_ != nullptr);
  if (obs::Active()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    ready_depth_gauge_ = registry.GetGauge("exec.ready_queue.depth");
    steals_counter_ = registry.GetCounter("exec.steals");
    nodes_counter_ = registry.GetCounter("exec.nodes");
    cancelled_counter_ = registry.GetCounter("exec.nodes.cancelled");
    node_seconds_hist_ = registry.GetLatencyHistogram("exec.node.seconds");
    run_seconds_hist_ = registry.GetLatencyHistogram("exec.run.seconds");
    critical_path_gauge_ = registry.GetGauge("exec.critical_path.seconds");
    scratch_peak_gauge_ = registry.GetGauge("exec.scratch.peak_bytes");
  }
}

Status Executor::Run(Graph& graph) {
  const size_t n = graph.node_count();
  last_run_ = RunStats{};
  if (n == 0) return Status::Ok();

  const int workers = std::min(pool_->thread_count(),
                               static_cast<int>(std::min<size_t>(
                                   n, static_cast<size_t>(INT32_MAX))));
  RunState state(n, std::max(workers, 1));
  state.topo = graph.TopologicalOrder();
  if (state.topo.empty()) {
    return InvalidArgumentError("task graph contains a cycle");
  }
  for (size_t i = 0; i < n; ++i) {
    state.pending[i].store(
        static_cast<int32_t>(graph.nodes_[i].deps.size()),
        std::memory_order_relaxed);
    state.state[i].store(RunState::kWaiting, std::memory_order_relaxed);
    GOALEX_CHECK_MSG(static_cast<bool>(graph.nodes_[i].fn),
                     "task graph node has no callback");
  }
  state.unfinished.store(n, std::memory_order_relaxed);

  if (scratch_ != nullptr) {
    scratch_->EnsureCapacity(
        PlanScratchLifetimes(graph, std::max(workers, 1)).lease_count);
  }

  const Clock::time_point start = Clock::now();
  std::exception_ptr error;
  if (workers <= 1) {
    RunSerial(graph, state);
    error = state.first_error;
  } else {
    RunParallel(graph, state);
    error = state.first_error;
  }
  last_run_.wall_seconds = SecondsSince(start);
  FinalizeStats(graph, state);
  if (error) std::rethrow_exception(error);
  return Status::Ok();
}

void Executor::RunSerial(Graph& graph, RunState& state) {
  const size_t n = graph.node_count();
  // LIFO stack: a finished node's dependents run before unstarted roots,
  // so chains complete depth-first and staged buffers die early. Roots are
  // pushed in reverse id order (lowest id executes first); a released wave
  // is pushed in reverse as well, making serial execution deterministic.
  std::vector<NodeId> stack;
  for (size_t i = n; i-- > 0;) {
    if (state.pending[i].load(std::memory_order_relaxed) == 0) {
      state.state[i].store(RunState::kReady, std::memory_order_relaxed);
      stack.push_back(static_cast<NodeId>(i));
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (state.state[static_cast<size_t>(id)].load(
            std::memory_order_relaxed) == RunState::kCancelled) {
      continue;
    }
    ExecuteNode(graph, state, id, /*worker=*/-1);
    if (state.state[static_cast<size_t>(id)].load(
            std::memory_order_relaxed) == RunState::kDone) {
      // Collect the newly ready dependents, then push them reversed so the
      // first-listed dependent runs next.
      auto& node = graph.nodes_[static_cast<size_t>(id)];
      size_t wave_begin = stack.size();
      for (NodeId dep : node.dependents) {
        if (state.pending[static_cast<size_t>(dep)].fetch_sub(
                1, std::memory_order_relaxed) == 1) {
          uint8_t expected = RunState::kWaiting;
          if (state.state[static_cast<size_t>(dep)].compare_exchange_strong(
                  expected, RunState::kReady, std::memory_order_relaxed)) {
            stack.push_back(dep);
          }
        }
      }
      std::reverse(stack.begin() + static_cast<ptrdiff_t>(wave_begin),
                   stack.end());
    }
  }
}

void Executor::RunParallel(Graph& graph, RunState& state) {
  const size_t n = graph.node_count();
  const int workers = static_cast<int>(state.shards.size());
  // Seed the roots round-robin over the shards (in id order, so worker 0
  // starts on the lowest root).
  int shard = 0;
  int64_t roots = 0;
  for (size_t i = 0; i < n; ++i) {
    if (state.pending[i].load(std::memory_order_relaxed) == 0) {
      state.state[i].store(RunState::kReady, std::memory_order_relaxed);
      state.shards[static_cast<size_t>(shard)].queue.push_back(
          static_cast<NodeId>(i));
      shard = (shard + 1) % workers;
      ++roots;
    }
  }
  state.ready_count.store(roots, std::memory_order_relaxed);
  if (ready_depth_gauge_ != nullptr) {
    ready_depth_gauge_->Set(static_cast<double>(roots));
  }
  state.active_workers = workers;

  std::vector<std::function<void()>> loops;
  loops.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    loops.push_back([this, &graph, &state, w] {
      WorkerLoop(graph, state, w);
      std::lock_guard<std::mutex> lock(state.sleep_mu);
      if (--state.active_workers == 0) state.cv.notify_all();
    });
  }
  pool_->SubmitBatch(std::move(loops));

  // Block until the graph settles AND every worker loop has exited (a loop
  // still running would read this stack frame's RunState after return).
  std::unique_lock<std::mutex> lock(state.sleep_mu);
  state.cv.wait(lock,
                [&state] { return state.done && state.active_workers == 0; });
}

void Executor::WorkerLoop(Graph& graph, RunState& state, int worker) {
  const int workers = static_cast<int>(state.shards.size());
  for (;;) {
    NodeId id = kInvalidNode;
    {
      RunState::Shard& own = state.shards[static_cast<size_t>(worker)];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.queue.empty()) {
        id = own.queue.back();  // LIFO: finish chains before starting new.
        own.queue.pop_back();
      }
    }
    if (id < 0) {
      for (int offset = 1; offset < workers && id < 0; ++offset) {
        RunState::Shard& victim =
            state.shards[static_cast<size_t>((worker + offset) % workers)];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.queue.empty()) {
          id = victim.queue.front();  // FIFO: steal unstarted chains.
          victim.queue.pop_front();
          state.steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (id >= 0) {
      int64_t depth =
          state.ready_count.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (ready_depth_gauge_ != nullptr) {
        ready_depth_gauge_->Set(static_cast<double>(depth));
      }
      ExecuteNode(graph, state, id, worker);
      continue;
    }
    std::unique_lock<std::mutex> lock(state.sleep_mu);
    if (state.done) return;
    if (state.ready_count.load(std::memory_order_relaxed) > 0) continue;
    ++state.sleepers;
    state.cv.wait(lock, [&state] {
      return state.done ||
             state.ready_count.load(std::memory_order_relaxed) > 0;
    });
    --state.sleepers;
    if (state.done) return;
  }
}

void Executor::ExecuteNode(Graph& graph, RunState& state, NodeId id,
                           int worker) {
  auto& node = graph.nodes_[static_cast<size_t>(id)];
  state.state[static_cast<size_t>(id)].store(RunState::kRunning,
                                             std::memory_order_relaxed);
  const Clock::time_point start = Clock::now();
  bool ok = true;
  try {
    if (node.uses_scratch && scratch_ != nullptr) {
      ScratchLease lease(scratch_);
      tensor::ScratchScope scope(lease.get());
      node.fn();
    } else {
      node.fn();
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(state.sleep_mu);
    if (!state.first_error) state.first_error = std::current_exception();
    ok = false;
  }
  const double seconds = SecondsSince(start);
  state.seconds[static_cast<size_t>(id)] = seconds;
  if (node_seconds_hist_ != nullptr) node_seconds_hist_->Observe(seconds);
  state.executed.fetch_add(1, std::memory_order_relaxed);
  state.state[static_cast<size_t>(id)].store(
      ok ? RunState::kDone : RunState::kFailed, std::memory_order_release);
  if (ok) {
    if (worker >= 0) ReleaseDependents(graph, state, id, worker);
    // Serial release happens in RunSerial (it owns the stack).
  } else {
    CancelDependents(graph, state, id);
  }
  if (worker >= 0) FinishNodes(state, 1);
}

void Executor::ReleaseDependents(Graph& graph, RunState& state, NodeId id,
                                 int worker) {
  auto& node = graph.nodes_[static_cast<size_t>(id)];
  if (node.dependents.empty()) return;
  NodeId wave_buf[8];
  std::vector<NodeId> wave_overflow;
  size_t wave_size = 0;
  for (NodeId dep : node.dependents) {
    if (state.pending[static_cast<size_t>(dep)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      uint8_t expected = RunState::kWaiting;
      if (state.state[static_cast<size_t>(dep)].compare_exchange_strong(
              expected, RunState::kReady, std::memory_order_relaxed)) {
        if (wave_size < 8) {
          wave_buf[wave_size] = dep;
        } else {
          wave_overflow.push_back(dep);
        }
        ++wave_size;
      }
    }
  }
  if (wave_size == 0) return;
  {
    RunState::Shard& own = state.shards[static_cast<size_t>(worker)];
    std::lock_guard<std::mutex> lock(own.mu);
    // Reverse push: the back of the deque (popped first) is the
    // first-listed dependent — the next stage of the chain just finished.
    for (size_t i = wave_overflow.size(); i-- > 0;) {
      own.queue.push_back(wave_overflow[i]);
    }
    for (size_t i = std::min<size_t>(wave_size, 8); i-- > 0;) {
      own.queue.push_back(wave_buf[i]);
    }
  }
  int64_t depth = state.ready_count.fetch_add(
                      static_cast<int64_t>(wave_size),
                      std::memory_order_relaxed) +
                  static_cast<int64_t>(wave_size);
  if (ready_depth_gauge_ != nullptr) {
    ready_depth_gauge_->Set(static_cast<double>(depth));
  }
  // This worker immediately pops one node itself, so a wave of R ready
  // nodes needs at most R-1 extra workers: wake exactly that many (batched
  // under one lock), never the whole pool.
  if (wave_size > 1) {
    std::lock_guard<std::mutex> lock(state.sleep_mu);
    int wake = static_cast<int>(
        std::min<size_t>(wave_size - 1, static_cast<size_t>(state.sleepers)));
    for (int i = 0; i < wake; ++i) state.cv.notify_one();
  }
}

void Executor::CancelDependents(Graph& graph, RunState& state, NodeId id) {
  std::vector<NodeId> work(graph.nodes_[static_cast<size_t>(id)].dependents);
  size_t cancelled = 0;
  while (!work.empty()) {
    const NodeId d = work.back();
    work.pop_back();
    uint8_t expected = RunState::kWaiting;
    if (state.state[static_cast<size_t>(d)].compare_exchange_strong(
            expected, RunState::kCancelled, std::memory_order_relaxed)) {
      ++cancelled;
      const auto& dependents =
          graph.nodes_[static_cast<size_t>(d)].dependents;
      work.insert(work.end(), dependents.begin(), dependents.end());
    }
  }
  if (cancelled == 0) return;
  state.cancelled.fetch_add(cancelled, std::memory_order_relaxed);
  if (cancelled_counter_ != nullptr) {
    cancelled_counter_->Increment(cancelled);
  }
  FinishNodes(state, cancelled);
}

void Executor::FinishNodes(RunState& state, size_t count) {
  if (state.unfinished.fetch_sub(count, std::memory_order_acq_rel) ==
      count) {
    std::lock_guard<std::mutex> lock(state.sleep_mu);
    state.done = true;
    state.cv.notify_all();
  }
}

void Executor::FinalizeStats(const Graph& graph, RunState& state) {
  double busy = 0.0;
  for (double s : state.seconds) busy += s;
  last_run_.busy_seconds = busy;
  last_run_.executed = state.executed.load(std::memory_order_relaxed);
  last_run_.cancelled = state.cancelled.load(std::memory_order_relaxed);
  last_run_.steals = state.steals.load(std::memory_order_relaxed);

  // Critical path: longest dependency chain weighted by measured node
  // durations, over the topological order computed at validation.
  std::vector<double> path(graph.node_count(), 0.0);
  double critical = 0.0;
  for (NodeId id : state.topo) {
    double longest_dep = 0.0;
    for (NodeId dep : graph.nodes_[static_cast<size_t>(id)].deps) {
      longest_dep = std::max(longest_dep, path[static_cast<size_t>(dep)]);
    }
    path[static_cast<size_t>(id)] =
        longest_dep + state.seconds[static_cast<size_t>(id)];
    critical = std::max(critical, path[static_cast<size_t>(id)]);
  }
  last_run_.critical_path_seconds = critical;

  if (nodes_counter_ != nullptr) {
    nodes_counter_->Increment(last_run_.executed);
    run_seconds_hist_->Observe(last_run_.wall_seconds);
    critical_path_gauge_->Set(critical);
    if (ready_depth_gauge_ != nullptr) ready_depth_gauge_->Set(0.0);
    if (scratch_ != nullptr && scratch_peak_gauge_ != nullptr) {
      scratch_peak_gauge_->Set(static_cast<double>(scratch_->peak_bytes()));
    }
  }
}

}  // namespace goalex::exec
