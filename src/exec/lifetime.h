#ifndef GOALEX_EXEC_LIFETIME_H_
#define GOALEX_EXEC_LIFETIME_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/graph.h"
#include "tensor/scratch.h"

namespace goalex::exec {

/// Result of the buffer-lifetime pass over one graph.
struct LifetimePlan {
  /// Scratch allocators the executor can ever need live at once for this
  /// graph: min(worker_count, scratch node count, antichain bound).
  int lease_count = 0;
  /// Scratch-tagged nodes in the graph.
  size_t scratch_nodes = 0;
  /// Longest dependency chain measured in scratch nodes.
  size_t longest_scratch_chain = 0;
};

/// Walks `graph` and bounds how many scratch-tagged nodes can execute
/// concurrently. Two bounds compose:
///  * the executor never runs more than `worker_count` nodes at once;
///  * scratch nodes on a common dependency chain can never overlap, so a
///    maximum antichain has at most S - L + 1 nodes, where S is the number
///    of scratch nodes and L the longest scratch chain (removing a maximum
///    chain costs any antichain at most one node).
/// The pre-refactor eager plan pinned one allocator per gradient slot for
/// the trainer's whole lifetime; this plan is what lets a 16-slot batch on
/// 4 workers hold 4 allocators instead of 16, and lets every allocator be
/// released at its node's completion (last use) instead of end-of-batch.
LifetimePlan PlanScratchLifetimes(const Graph& graph, int worker_count);

/// A bounded pool of tensor::ScratchAllocators leased to scratch-tagged
/// nodes for the duration of their execution. Allocators are created
/// lazily up to the capacity, so the resident set reflects actual peak
/// concurrency, not the configured ceiling. Recycled storage is zero-filled
/// (BufferPool contract), so which lease a node receives can never change
/// results — determinism is preserved by construction.
///
/// Thread-safe; Acquire aborts (CHECK) if demand ever exceeds capacity,
/// which the executor rules out by sizing capacity from PlanScratchLifetimes
/// with the worker count as a floor bound.
class ScratchPool {
 public:
  ScratchPool() = default;

  /// Grows capacity to at least `lease_count` (monotone; never shrinks).
  void EnsureCapacity(int lease_count);

  tensor::ScratchAllocator* Acquire();
  void Release(tensor::ScratchAllocator* allocator);

  int capacity() const;
  /// Allocators actually materialized so far (<= capacity()).
  int resident_allocators() const;

  /// Sum of freelist bytes across resident allocators (steady-state
  /// resident scratch once all leases are returned).
  size_t resident_bytes() const;
  /// Sum of per-allocator high-water bytes — the plan's peak scratch
  /// footprint, reported via the exec.scratch.peak_bytes gauge.
  size_t peak_bytes() const;

  uint64_t reuse_count() const;
  uint64_t alloc_count() const;

 private:
  mutable std::mutex mu_;
  int capacity_ = 0;
  std::vector<std::unique_ptr<tensor::ScratchAllocator>> allocators_;
  std::vector<tensor::ScratchAllocator*> free_;
};

/// RAII lease used by the executor around a scratch node's callback.
class ScratchLease {
 public:
  explicit ScratchLease(ScratchPool* pool)
      : pool_(pool), allocator_(pool != nullptr ? pool->Acquire() : nullptr) {}
  ~ScratchLease() {
    if (allocator_ != nullptr) pool_->Release(allocator_);
  }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  tensor::ScratchAllocator* get() const { return allocator_; }

 private:
  ScratchPool* pool_;
  tensor::ScratchAllocator* allocator_;
};

}  // namespace goalex::exec

#endif  // GOALEX_EXEC_LIFETIME_H_
