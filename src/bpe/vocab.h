#ifndef GOALEX_BPE_VOCAB_H_
#define GOALEX_BPE_VOCAB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace goalex::bpe {

/// Token id type used throughout the model stack.
using TokenId = int32_t;

/// Vocabulary mapping subword strings to dense ids. Ids 0..3 are reserved
/// for the special tokens used by the transformer (RoBERTa conventions).
class Vocab {
 public:
  static constexpr TokenId kPadId = 0;
  static constexpr TokenId kUnkId = 1;
  static constexpr TokenId kBosId = 2;  ///< "<s>", start of sequence.
  static constexpr TokenId kEosId = 3;  ///< "</s>", end of sequence.

  /// Constructs a vocabulary holding only the special tokens.
  Vocab();

  /// Adds `token` if absent; returns its id either way.
  TokenId AddToken(std::string_view token);

  /// Returns the id of `token`, or kUnkId if unknown.
  TokenId GetId(std::string_view token) const;

  /// Returns true if `token` is in the vocabulary.
  bool Contains(std::string_view token) const;

  /// Returns the surface string for `id`. Requires a valid id.
  const std::string& GetToken(TokenId id) const;

  /// Number of entries including the special tokens.
  size_t size() const { return tokens_.size(); }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, TokenId> ids_;
};

}  // namespace goalex::bpe

#endif  // GOALEX_BPE_VOCAB_H_
