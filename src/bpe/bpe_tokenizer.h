#ifndef GOALEX_BPE_BPE_TOKENIZER_H_
#define GOALEX_BPE_BPE_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bpe/vocab.h"
#include "common/status.h"

namespace goalex::bpe {

/// One learned merge rule: the pair of adjacent symbols to join.
struct MergeRule {
  std::string left;
  std::string right;

  friend bool operator==(const MergeRule& a, const MergeRule& b) {
    return a.left == b.left && a.right == b.right;
  }
};

/// A subword token produced by encoding, with provenance back to the word it
/// came from (used to project word-level weak labels onto subwords).
struct Subword {
  std::string text;      ///< Surface form (no boundary markers).
  TokenId id = 0;        ///< Vocabulary id.
  size_t word_index = 0; ///< Index of the source word-level token.
  bool is_word_start = false;  ///< True for the first subword of its word.
};

/// Byte-Pair Encoding model: learned merge table + vocabulary. Pre-tokenizes
/// with the same word tokenizer used by the weak labeler, then applies BPE
/// merges within each word (Sennrich et al. [27] style). Lowercasing at
/// encode time models the cased (RoBERTa-like) vs uncased (BERT-like)
/// tokenizer distinction evaluated in Figure 4.
class BpeModel {
 public:
  /// Learns a BPE model from `corpus` (one text per entry) with at most
  /// `merge_count` merges. `lowercase` folds the corpus before training.
  static BpeModel Train(const std::vector<std::string>& corpus,
                        size_t merge_count, bool lowercase = false);

  /// Encodes `text` into subwords. Words not seen in training fall back to
  /// characters; characters outside the alphabet map to <unk>.
  std::vector<Subword> Encode(std::string_view text) const;

  /// Encodes pre-tokenized words (each entry is one word-level token).
  std::vector<Subword> EncodeWords(
      const std::vector<std::string>& words) const;

  /// Decodes ids back to a readable string (subwords joined with word
  /// boundaries restored best-effort).
  std::string Decode(const std::vector<TokenId>& ids) const;

  const Vocab& vocab() const { return vocab_; }
  const std::vector<MergeRule>& merges() const { return merges_; }
  bool lowercase() const { return lowercase_; }

  /// Serializes the model to a simple line-based format.
  std::string Serialize() const;

  /// Restores a model from Serialize() output.
  static StatusOr<BpeModel> Deserialize(std::string_view data);

  /// Freezes the per-word encode cache: after this call Encode/EncodeWords
  /// never mutate the model, making concurrent encoding safe. Words absent
  /// from the cache are still encoded correctly (recomputed per call).
  /// Called once the training corpus has been encoded (or after loading).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  BpeModel() = default;

  /// Applies the merge table to one word, returning its subword strings.
  std::vector<std::string> ApplyMerges(const std::string& word) const;

  Vocab vocab_;
  std::vector<MergeRule> merges_;
  /// rank of each merge pair, keyed by "left\x1Fright".
  std::unordered_map<std::string, size_t> merge_ranks_;
  bool lowercase_ = false;
  /// Per-word encode cache (word -> subword strings). Lazily filled on the
  /// hot path until Freeze(); immutable (and thus thread-safe) afterwards.
  mutable std::unordered_map<std::string, std::vector<std::string>> cache_;
  bool frozen_ = false;
};

}  // namespace goalex::bpe

#endif  // GOALEX_BPE_BPE_TOKENIZER_H_
