#include "bpe/vocab.h"

#include "common/check.h"

namespace goalex::bpe {

Vocab::Vocab() {
  AddToken("<pad>");
  AddToken("<unk>");
  AddToken("<s>");
  AddToken("</s>");
}

TokenId Vocab::AddToken(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId Vocab::GetId(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  if (it == ids_.end()) return kUnkId;
  return it->second;
}

bool Vocab::Contains(std::string_view token) const {
  return ids_.find(std::string(token)) != ids_.end();
}

const std::string& Vocab::GetToken(TokenId id) const {
  GOALEX_CHECK_GE(id, 0);
  GOALEX_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[static_cast<size_t>(id)];
}

}  // namespace goalex::bpe
