#include "bpe/bpe_tokenizer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"
#include "text/word_tokenizer.h"

namespace goalex::bpe {
namespace {

constexpr char kRankSep = '\x1F';

std::string PairKey(std::string_view left, std::string_view right) {
  std::string key;
  key.reserve(left.size() + right.size() + 1);
  key.append(left);
  key.push_back(kRankSep);
  key.append(right);
  return key;
}

// Splits a word into UTF-8 character symbols.
std::vector<std::string> SplitToChars(const std::string& word) {
  std::vector<std::string> symbols;
  size_t i = 0;
  while (i < word.size()) {
    size_t length = 1;
    unsigned char b = static_cast<unsigned char>(word[i]);
    if ((b & 0xE0) == 0xC0) {
      length = 2;
    } else if ((b & 0xF0) == 0xE0) {
      length = 3;
    } else if ((b & 0xF8) == 0xF0) {
      length = 4;
    }
    length = std::min(length, word.size() - i);
    symbols.push_back(word.substr(i, length));
    i += length;
  }
  return symbols;
}

}  // namespace

BpeModel BpeModel::Train(const std::vector<std::string>& corpus,
                         size_t merge_count, bool lowercase) {
  BpeModel model;
  model.lowercase_ = lowercase;

  // Count unique words across the corpus.
  text::WordTokenizer word_tokenizer;
  std::unordered_map<std::string, int64_t> word_counts;
  for (const std::string& doc : corpus) {
    std::string prepared = lowercase ? AsciiToLower(doc) : doc;
    for (const std::string& w : word_tokenizer.TokenizeToStrings(prepared)) {
      ++word_counts[w];
    }
  }

  // Working representation: each unique word as a symbol sequence + count.
  struct WordEntry {
    std::vector<std::string> symbols;
    int64_t count;
  };
  std::vector<WordEntry> words;
  words.reserve(word_counts.size());
  for (const auto& [word, count] : word_counts) {
    words.push_back(WordEntry{SplitToChars(word), count});
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(words.begin(), words.end(),
            [](const WordEntry& a, const WordEntry& b) {
              return a.symbols < b.symbols;
            });

  // Seed the vocabulary with all single characters.
  for (const WordEntry& entry : words) {
    for (const std::string& symbol : entry.symbols) {
      model.vocab_.AddToken(symbol);
    }
  }

  for (size_t merge = 0; merge < merge_count; ++merge) {
    // Count adjacent symbol pairs. std::map gives deterministic tie-breaks.
    std::map<std::pair<std::string, std::string>, int64_t> pair_counts;
    for (const WordEntry& entry : words) {
      for (size_t i = 0; i + 1 < entry.symbols.size(); ++i) {
        pair_counts[{entry.symbols[i], entry.symbols[i + 1]}] += entry.count;
      }
    }
    if (pair_counts.empty()) break;

    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < 2) break;  // No productive merges left.

    const std::string& left = best->first.first;
    const std::string& right = best->first.second;
    std::string joined = left + right;
    model.merge_ranks_[PairKey(left, right)] = model.merges_.size();
    model.merges_.push_back(MergeRule{left, right});
    model.vocab_.AddToken(joined);

    // Apply the merge to every word.
    for (WordEntry& entry : words) {
      std::vector<std::string>& symbols = entry.symbols;
      size_t write = 0;
      for (size_t read = 0; read < symbols.size(); ++read) {
        if (read + 1 < symbols.size() && symbols[read] == left &&
            symbols[read + 1] == right) {
          symbols[write++] = joined;
          ++read;
        } else {
          if (write != read) symbols[write] = std::move(symbols[read]);
          ++write;
        }
      }
      symbols.resize(write);
    }
  }
  return model;
}

std::vector<std::string> BpeModel::ApplyMerges(const std::string& word) const {
  auto cached = cache_.find(word);
  if (cached != cache_.end()) return cached->second;

  std::vector<std::string> symbols = SplitToChars(word);
  while (symbols.size() > 1) {
    // Find the adjacent pair with the lowest merge rank.
    size_t best_rank = merge_ranks_.size();
    size_t best_pos = symbols.size();
    for (size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = merge_ranks_.find(PairKey(symbols[i], symbols[i + 1]));
      if (it != merge_ranks_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_pos == symbols.size()) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + best_pos + 1);
  }

  if (!frozen_ && cache_.size() < 200000) cache_.emplace(word, symbols);
  return symbols;
}

std::vector<Subword> BpeModel::EncodeWords(
    const std::vector<std::string>& words) const {
  std::vector<Subword> out;
  for (size_t w = 0; w < words.size(); ++w) {
    const std::string prepared =
        lowercase_ ? AsciiToLower(words[w]) : words[w];
    std::vector<std::string> pieces = ApplyMerges(prepared);
    for (size_t p = 0; p < pieces.size(); ++p) {
      Subword sw;
      sw.text = pieces[p];
      sw.id = vocab_.GetId(pieces[p]);
      sw.word_index = w;
      sw.is_word_start = (p == 0);
      out.push_back(std::move(sw));
    }
  }
  return out;
}

std::vector<Subword> BpeModel::Encode(std::string_view text) const {
  text::WordTokenizer word_tokenizer;
  return EncodeWords(word_tokenizer.TokenizeToStrings(text));
}

std::string BpeModel::Decode(const std::vector<TokenId>& ids) const {
  std::string out;
  for (TokenId id : ids) {
    if (id == Vocab::kPadId || id == Vocab::kBosId || id == Vocab::kEosId) {
      continue;
    }
    if (!out.empty()) out.push_back(' ');
    out += vocab_.GetToken(id);
  }
  return out;
}

std::string BpeModel::Serialize() const {
  std::ostringstream out;
  out << "bpe_v1\n" << (lowercase_ ? 1 : 0) << "\n" << merges_.size() << "\n";
  for (const MergeRule& rule : merges_) {
    out << rule.left << kRankSep << rule.right << "\n";
  }
  // Persist the full vocabulary (character alphabet is not derivable from
  // merges alone).
  out << vocab_.size() << "\n";
  for (size_t i = 4; i < vocab_.size(); ++i) {
    out << vocab_.GetToken(static_cast<TokenId>(i)) << "\n";
  }
  return out.str();
}

StatusOr<BpeModel> BpeModel::Deserialize(std::string_view data) {
  std::vector<std::string> lines = StrSplit(data, '\n');
  size_t pos = 0;
  auto next_line = [&]() -> StatusOr<std::string> {
    if (pos >= lines.size()) {
      return DataLossError("bpe model truncated");
    }
    return lines[pos++];
  };

  auto header = next_line();
  if (!header.ok()) return header.status();
  if (*header != "bpe_v1") {
    return InvalidArgumentError("bad bpe model header: " + *header);
  }
  auto lowercase_line = next_line();
  if (!lowercase_line.ok()) return lowercase_line.status();
  auto merge_count_line = next_line();
  if (!merge_count_line.ok()) return merge_count_line.status();

  BpeModel model;
  model.lowercase_ = (*lowercase_line == "1");
  size_t merge_count = std::strtoull(merge_count_line->c_str(), nullptr, 10);
  for (size_t i = 0; i < merge_count; ++i) {
    auto line = next_line();
    if (!line.ok()) return line.status();
    size_t sep = line->find(kRankSep);
    if (sep == std::string::npos) {
      return DataLossError("bad merge rule line: " + *line);
    }
    MergeRule rule{line->substr(0, sep), line->substr(sep + 1)};
    model.merge_ranks_[PairKey(rule.left, rule.right)] =
        model.merges_.size();
    model.merges_.push_back(std::move(rule));
  }
  auto vocab_count_line = next_line();
  if (!vocab_count_line.ok()) return vocab_count_line.status();
  size_t vocab_count = std::strtoull(vocab_count_line->c_str(), nullptr, 10);
  if (vocab_count < 4) return DataLossError("vocab too small");
  for (size_t i = 4; i < vocab_count; ++i) {
    auto line = next_line();
    if (!line.ok()) return line.status();
    model.vocab_.AddToken(*line);
  }
  return model;
}

}  // namespace goalex::bpe
