#ifndef GOALEX_SEGMENT_SEGMENTER_H_
#define GOALEX_SEGMENT_SEGMENTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace goalex::segment {

/// One single-target clause of a (possibly multi-target) objective.
struct Segment {
  std::string text;
  size_t begin = 0;  ///< Byte offset in the original objective, inclusive.
  size_t end = 0;    ///< Byte offset, exclusive.

  friend bool operator==(const Segment& a, const Segment& b) {
    return a.text == b.text && a.begin == b.begin && a.end == b.end;
  }
};

/// Objective segmentation — the paper's Section 5.3 names it as the
/// improvement for objectives that "contain multiple actions or targets
/// within a single sentence" and confuse the extraction model. Splits an
/// objective into single-target clauses at coordinating patterns
/// ("... and <gerund> ...", "; ", " as well as ", " and to <verb> ...")
/// while leaving coordinated noun phrases ("water and waste targets")
/// intact.
class ObjectiveSegmenter {
 public:
  /// Splits `objective` into 1..n clauses. A text without multi-target
  /// coordination comes back as a single segment spanning the whole input.
  std::vector<Segment> Split(std::string_view objective) const;

  /// Convenience: true if Split() produces more than one clause.
  bool IsMultiTarget(std::string_view objective) const {
    return Split(objective).size() > 1;
  }
};

}  // namespace goalex::segment

#endif  // GOALEX_SEGMENT_SEGMENTER_H_
