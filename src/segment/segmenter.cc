#include "segment/segmenter.h"

#include <cctype>

#include "common/string_util.h"

namespace goalex::segment {
namespace {

// Returns true if the word starting at `pos` looks like a gerund verb
// ("reducing", "phasing") — the signature of a coordinated second target
// ("... and expanding solar capacity ...").
bool IsGerundAt(std::string_view text, size_t pos) {
  size_t end = pos;
  while (end < text.size() &&
         (std::isalpha(static_cast<unsigned char>(text[end])) ||
          text[end] == '-')) {
    ++end;
  }
  std::string_view word = text.substr(pos, end - pos);
  return word.size() > 5 && EndsWith(word, "ing");
}

// Returns true if `text` positions [pos, ...) start with `prefix`.
bool MatchAt(std::string_view text, size_t pos, std::string_view prefix) {
  return text.size() - pos >= prefix.size() &&
         text.substr(pos, prefix.size()) == prefix;
}

}  // namespace

std::vector<Segment> ObjectiveSegmenter::Split(
    std::string_view objective) const {
  std::vector<size_t> cut_positions;   // Where a new clause starts.
  std::vector<size_t> cut_lengths;     // Length of the separator consumed.

  for (size_t i = 0; i + 1 < objective.size(); ++i) {
    // Semicolons always separate targets.
    if (objective[i] == ';') {
      cut_positions.push_back(i);
      cut_lengths.push_back(1);
      continue;
    }
    // " as well as " separates targets.
    if (MatchAt(objective, i, " as well as ")) {
      cut_positions.push_back(i);
      cut_lengths.push_back(12);
      continue;
    }
    // " and <gerund>" / ", and <gerund>" / " and to <verb>" separate
    // targets; a plain " and " between nouns does not.
    if (MatchAt(objective, i, " and ")) {
      size_t after = i + 5;
      if (after < objective.size() &&
          (IsGerundAt(objective, after) ||
           MatchAt(objective, i, " and to "))) {
        cut_positions.push_back(i);
        cut_lengths.push_back(5);
      }
      continue;
    }
  }

  std::vector<Segment> segments;
  size_t start = 0;
  for (size_t c = 0; c < cut_positions.size(); ++c) {
    size_t cut = cut_positions[c];
    if (cut <= start) continue;
    std::string_view clause = objective.substr(start, cut - start);
    std::string_view trimmed = StripAsciiWhitespace(clause);
    if (!trimmed.empty()) {
      size_t offset = start + (trimmed.data() - clause.data());
      segments.push_back(
          Segment{std::string(trimmed), offset, offset + trimmed.size()});
    }
    start = cut + cut_lengths[c];
  }
  std::string_view tail = objective.substr(start);
  std::string_view trimmed = StripAsciiWhitespace(tail);
  if (!trimmed.empty()) {
    size_t offset = start + (trimmed.data() - tail.data());
    segments.push_back(
        Segment{std::string(trimmed), offset, offset + trimmed.size()});
  }
  if (segments.empty()) {
    segments.push_back(Segment{std::string(objective), 0, objective.size()});
  }
  return segments;
}

}  // namespace goalex::segment
