#ifndef GOALEX_CORE_EXTRACTOR_H_
#define GOALEX_CORE_EXTRACTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bpe/bpe_tokenizer.h"
#include "common/status.h"
#include "core/config.h"
#include "data/schema.h"
#include "infer/engine.h"
#include "infer/packed.h"
#include "labels/iob.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "runtime/stats.h"
#include "text/word_tokenizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex::runtime {
class ThreadPool;
}  // namespace goalex::runtime

namespace goalex::core {

/// Per-epoch training progress, surfaced to the optional callback so the
/// hyperparameter experiments (Figure 4c/d) can evaluate checkpoints.
struct EpochStats {
  int32_t epoch = 0;           ///< 1-based.
  double mean_train_loss = 0.0;
  double seconds = 0.0;        ///< Wall-clock time of this epoch.
};

/// The sustainability objective detail extraction system (Figure 2).
///
/// Development phase (Train): tokenize the annotated objectives, convert
/// the coarse objective-level annotations into token-level IOB labels with
/// the weak supervision algorithm (Algorithm 1), and fine-tune a
/// transformer token classifier on those weak signals.
///
/// Production phase (Extract): tokenize a new objective, predict per-token
/// labels with the trained model, decode IOB spans, and read the surface
/// values back out of the original text.
class DetailExtractor {
 public:
  explicit DetailExtractor(ExtractorConfig config);
  ~DetailExtractor();

  // Neither copyable nor movable: labeler_ holds a pointer to catalog_.
  DetailExtractor(const DetailExtractor&) = delete;
  DetailExtractor& operator=(const DetailExtractor&) = delete;
  DetailExtractor(DetailExtractor&&) = delete;
  DetailExtractor& operator=(DetailExtractor&&) = delete;

  /// Trains on weakly annotated objectives. `on_epoch_end` (optional) is
  /// invoked after each epoch; the model is usable for Extract() inside the
  /// callback, enabling per-epoch evaluation sweeps.
  Status Train(const std::vector<data::Objective>& objectives,
               const std::function<void(const EpochStats&)>& on_epoch_end =
                   nullptr);

  /// Extracts the key details of one objective. Requires a trained (or
  /// loaded) model.
  data::DetailRecord Extract(const data::Objective& objective) const;

  /// Extracts details for a whole collection as a staged task graph: each
  /// objective is a tokenize -> predict -> decode node chain on a
  /// work-stealing executor, so stages of different examples overlap (one
  /// worker can decode objective 3 while another predicts objective 7).
  /// Chains run depth-first (LIFO own-queue), so staged buffers die at the
  /// decode node and in-flight memory stays ~O(workers), not O(n). The
  /// output is order-preserving (record i belongs to objective i) and
  /// byte-identical to the serial Extract() path for every thread count —
  /// the stages are the same code Extract() composes inline.
  std::vector<data::DetailRecord> ExtractAll(
      const std::vector<data::Objective>& objectives) const;

  /// Same, with an explicit thread count (<= 0 = hardware concurrency,
  /// 1 = serial) and optional throughput counters for observability.
  std::vector<data::DetailRecord> ExtractAll(
      const std::vector<data::Objective>& objectives, int32_t num_threads,
      runtime::Stats* stats = nullptr) const;

  /// Extracts a batch presented by pointer — the serve scheduler's view of
  /// a closed batch — on `pool` (null = a private pool with
  /// config.num_threads workers). Semantically identical to calling
  /// Extract() per objective: record i belongs to *objectives[i] and is
  /// byte-identical to the serial path. With packed inference enabled
  /// (ExtractorConfig::packed_inference) the predict stage runs as
  /// padding-free packed chunks on infer::PackedEngine instead of one plan
  /// execution per clause; otherwise it falls back to the staged
  /// per-objective node chains.
  std::vector<data::DetailRecord> ExtractBatch(
      const std::vector<const data::Objective*>& objectives,
      runtime::ThreadPool* pool, runtime::Stats* stats = nullptr) const;

  /// Predicts word-level IOB label ids for a raw text (diagnostics and
  /// tests). Requires a trained model.
  std::vector<labels::LabelId> PredictWordLabels(
      const std::string& text) const;

  /// Persists the tokenizer and model weights to `directory` (two files).
  Status Save(const std::string& directory) const;

  /// Restores a model saved with Save(); the config must match.
  Status Load(const std::string& directory);

  bool trained() const { return model_ != nullptr; }
  const ExtractorConfig& config() const { return config_; }
  const labels::LabelCatalog& catalog() const { return catalog_; }

  /// Weak-labeling coverage statistics from the last Train() call.
  const weaksup::WeakLabelStats& last_train_stats() const {
    return train_stats_;
  }

 private:
  /// Observability handles into obs::MetricsRegistry::Default(), resolved
  /// once at construction so the (concurrent, const) inference hot path
  /// never touches the registry lock. All null when
  /// ExtractorConfig::enable_metrics is false or instrumentation is
  /// compiled out; each site additionally honors the obs::Enabled()
  /// runtime toggle.
  struct Metrics {
    obs::Histogram* tokenize_seconds = nullptr;
    obs::Histogram* predict_seconds = nullptr;
    obs::Histogram* decode_seconds = nullptr;
    obs::Histogram* extract_seconds = nullptr;
    obs::Counter* objectives = nullptr;
    obs::Counter* empty_objectives = nullptr;
    obs::Counter* spans = nullptr;
    std::vector<obs::Counter*> spans_by_kind;  ///< Parallel to kinds.
    obs::Gauge* objectives_per_second = nullptr;
    /// High-water count of objectives simultaneously holding staged
    /// pipeline state (tokenized but not yet decoded) in ExtractAll.
    obs::Gauge* staged_peak = nullptr;
  };

  /// True when this call should record metrics (handles resolved and the
  /// global runtime toggle is on).
  bool InstrumentNow() const {
    return metrics_.objectives != nullptr && obs::Enabled();
  }

  /// One encoded training instance.
  struct EncodedExample {
    std::vector<int32_t> ids;       ///< Subword ids with BOS/EOS.
    std::vector<int32_t> targets;   ///< Label per position (-1 = ignore).
  };

  /// The production-phase inference pipeline for one text, run exactly
  /// once per objective: normalize -> word-tokenize -> BPE-encode ->
  /// transformer predict -> word-level labels.
  struct WordPrediction {
    std::string prepared;                     ///< Normalized text.
    std::vector<text::Token> tokens;          ///< Word tokens of prepared.
    std::vector<labels::LabelId> word_labels; ///< One label per token.
  };

  /// Pipeline state of one (single-target) clause between stages. The
  /// serial Extract() path and the staged ExtractAll() graph run the exact
  /// same three stage methods over this struct, which is what makes their
  /// outputs byte-identical.
  struct StagedClause {
    WordPrediction prediction;
    std::vector<bpe::Subword> subwords;
    std::vector<int32_t> ids;          ///< Subword ids with BOS/EOS.
    std::vector<int32_t> predictions;  ///< Model output per position.
  };

  /// Stage 1: normalize, word-tokenize, and BPE-encode `text` into
  /// `clause`. After it, `clause.prediction.tokens.empty()` means there is
  /// nothing to predict (stages 2/3 must be skipped).
  void TokenizeStage(const std::string& text, StagedClause& clause) const;

  /// Stage 2: run the model (engine or autograd) over clause.ids.
  void PredictStage(StagedClause& clause) const;

  /// Stage 3 (first half): map subword predictions back to word labels.
  void DecodeStage(StagedClause& clause) const;

  /// Splits an objective text into single-target clause texts; returns the
  /// whole text as one clause unless segmentation is on and finds > 1.
  std::vector<std::string> ClauseTexts(const std::string& text) const;

  /// Runs the inference pipeline once (the three stages back to back).
  /// Thread-safe after Train()/Load(): the model, tokenizer, and catalog
  /// are immutable by then, and each worker thread executes the compiled
  /// plan in its own arena.
  WordPrediction PredictPrepared(const std::string& text) const;

  /// Compiles the inference plan for the current model (no-op when
  /// config_.use_inference_engine is false) and, when packed inference is
  /// configured, the packed-batch engine. Called when Train()/Load()
  /// completes — the single point where the model's weights are final —
  /// and again per training epoch while a packed engine exists (it derives
  /// state from the weights at build time; see the packed_engine_ comment).
  void RebuildEngine();

  /// Shared implementation of both ExtractAll overloads and ExtractBatch:
  /// picks the packed two-phase pipeline when packed_engine_ exists, the
  /// per-objective staged chains otherwise.
  std::vector<data::DetailRecord> ExtractBatchImpl(
      const std::vector<const data::Objective*>& objectives,
      runtime::ThreadPool& pool, runtime::Stats* stats) const;

  /// Extracts from one (already single-target) objective.
  data::DetailRecord ExtractSingle(const data::Objective& objective) const;

  /// Stage 3 (second half): decode IOB spans from a finished prediction
  /// and read the surface values out of the prepared text.
  data::DetailRecord DecodeRecord(const data::Objective& objective,
                                  const WordPrediction& prediction) const;

  /// Merges per-clause records in clause order (first value wins per
  /// field) under the original objective's id/text. `parts` is consumed.
  data::DetailRecord MergeClauseRecords(
      const data::Objective& objective,
      std::vector<data::DetailRecord>& parts) const;

  /// Normalizes an objective text per config.
  std::string Prepare(const std::string& text) const;

  /// Encodes word tokens + word labels into a model input/target pair.
  EncodedExample EncodeExample(
      const std::vector<text::Token>& tokens,
      const std::vector<labels::LabelId>& word_labels) const;

  ExtractorConfig config_;
  Metrics metrics_;
  labels::LabelCatalog catalog_;
  weaksup::WeakLabeler labeler_;
  text::WordTokenizer word_tokenizer_;
  std::unique_ptr<bpe::BpeModel> tokenizer_;
  std::unique_ptr<nn::TokenClassifier> model_;
  /// Compiled graph-free inference plan over model_'s weights (borrowed by
  /// view — must be destroyed before or rebuilt with model_). Null until
  /// trained/loaded, or when use_inference_engine is off.
  std::unique_ptr<infer::Engine> engine_;
  /// Packed-batch engine for ExtractAll/ExtractBatch (DESIGN.md §14). Null
  /// until trained/loaded or when packed_inference/use_inference_engine is
  /// off. Unlike engine_ (whose borrowed views track in-place Adam updates
  /// automatically), this one *derives* state at construction — the padded
  /// classifier head and any int8 codes — so Train() rebuilds it every
  /// epoch while it exists.
  std::unique_ptr<infer::PackedEngine> packed_engine_;
  weaksup::WeakLabelStats train_stats_;
};

}  // namespace goalex::core

#endif  // GOALEX_CORE_EXTRACTOR_H_
