#ifndef GOALEX_CORE_DATABASE_H_
#define GOALEX_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "obs/metrics.h"

namespace goalex::core {

/// A stored row of the structured sustainability database the paper
/// motivates (Section 2.4): the extracted details plus source metadata, so
/// domain experts can index, filter, and compare objectives across
/// companies and track them over time.
struct DbRow {
  int64_t row_id = 0;
  std::string company;
  std::string document;
  int page = 0;
  data::DetailRecord record;
};

/// Thread-safe sharded serving store for extracted sustainability
/// objectives (DESIGN.md §10).
///
/// Rows are partitioned into shards by a hash of the company name, each
/// shard guarded by its own reader/writer lock, so pipeline workers can
/// Insert concurrently while analyst queries run. Within a shard rows live
/// in a std::deque (stable storage — no reallocation ever moves a row) and
/// secondary indexes are maintained at insert time:
///
///   - by company (ByCompany, CountPerCompany, FieldCoverageByCompany),
///   - by non-empty field kind (WithField),
///   - by exact field value (WhereFieldEquals),
///   - by normalized deadline year via values::NormalizeYear
///     (ByDeadlineYear, DeadlineYearBetween).
///
/// Every query returns copies of rows (or plain row ids), never pointers
/// into internal storage, so results stay valid across later inserts.
/// Row ids are assigned from a global counter under the owning shard's
/// lock; serial insertion yields the sequential ids 0, 1, 2, ... and every
/// query result is sorted by row id, so single-threaded behavior is
/// deterministic and matches the pre-sharding store exactly.
class ObjectiveDatabase {
 public:
  /// Default shard count: enough to keep a machine-sized worker pool from
  /// serializing on one lock, small enough that per-shard overhead is noise.
  static constexpr int kDefaultShards = 16;

  explicit ObjectiveDatabase(int num_shards = kDefaultShards);

  ObjectiveDatabase(const ObjectiveDatabase&) = delete;
  ObjectiveDatabase& operator=(const ObjectiveDatabase&) = delete;

  /// Inserts a record with source metadata; returns its row id.
  /// Thread-safe: concurrent inserts to different companies usually land on
  /// different shards and proceed in parallel.
  int64_t Insert(const data::DetailRecord& record,
                 const std::string& company,
                 const std::string& document = "", int page = 0);

  /// Total row count (exact; maintained atomically).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Row count of each shard (for balance inspection and the
  /// db.rows_per_shard gauge).
  std::vector<size_t> RowsPerShard() const;

  /// Looks up one row by id. O(num_shards * log rows).
  std::optional<DbRow> Get(int64_t row_id) const;

  /// All rows of one company, sorted by row id. Indexed: touches only the
  /// company's shard.
  std::vector<DbRow> ByCompany(const std::string& company) const;

  /// Rows whose extracted `kind` field is non-empty (e.g., all objectives
  /// with a Deadline, for commitment tracking), sorted by row id. Indexed.
  std::vector<DbRow> WithField(const std::string& kind) const;

  /// Rows whose `kind` field equals `value` exactly, sorted by row id.
  /// Indexed.
  std::vector<DbRow> WhereFieldEquals(const std::string& kind,
                                      const std::string& value) const;

  /// Rows whose Deadline (or NetZeroFacts TargetYear) normalizes to `year`
  /// via values::NormalizeYear, sorted by row id. Indexed.
  std::vector<DbRow> ByDeadlineYear(int year) const;

  /// Rows whose normalized deadline year lies in [min_year, max_year],
  /// sorted by row id — the "commitments due by 2030" query of the
  /// deployment scenarios.
  std::vector<DbRow> DeadlineYearBetween(int min_year, int max_year) const;

  /// All distinct company names, sorted.
  std::vector<std::string> Companies() const;

  /// Objective counts per company (Table 5's last column). Indexed.
  std::map<std::string, int64_t> CountPerCompany() const;

  /// Fraction of rows per company carrying the given field — the
  /// "specificity" signal the deployment discussion derives from Table 6
  /// (companies quoting amounts/deadlines are more specific). Indexed.
  std::map<std::string, double> FieldCoverageByCompany(
      const std::string& kind) const;

  /// A consistent copy of every row, sorted by row id.
  std::vector<DbRow> SnapshotRows() const;

  /// Exports all rows (sorted by row id) as CSV with the given field
  /// columns. Fields containing commas, quotes, CR, or LF are quoted.
  std::string ExportCsv(const std::vector<std::string>& kinds) const;

  /// Persists every row to `<dir>/objectives.db` (versioned binary format,
  /// DESIGN.md §10.3). Creates `dir` if needed.
  Status Save(const std::string& dir) const;

  /// Replaces the database contents with a snapshot written by Save().
  /// Row ids are preserved, indexes are rebuilt, and the next insert
  /// continues above the highest loaded id.
  Status Load(const std::string& dir);

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::deque<DbRow> rows;  ///< Ascending row_id (ids assigned under mu).
    /// Secondary indexes; values are indices into `rows` in ascending order.
    std::unordered_map<std::string, std::vector<size_t>> by_company;
    std::unordered_map<std::string, std::vector<size_t>> by_field;
    std::unordered_map<std::string,
                       std::unordered_map<std::string, std::vector<size_t>>>
        by_field_value;
    std::map<int, std::vector<size_t>> by_deadline_year;
    /// company -> kind -> number of rows with a non-empty value, so
    /// FieldCoverageByCompany is O(companies), not O(rows).
    std::unordered_map<std::string, std::unordered_map<std::string, int64_t>>
        field_count_by_company;
  };

  Shard& ShardFor(const std::string& company);
  const Shard& ShardFor(const std::string& company) const;

  /// Appends `row` to `shard` and maintains every index. Caller holds the
  /// shard's exclusive lock.
  static void AppendLocked(Shard& shard, DbRow row);

  /// Collects copies of the rows at `indices`, sorted by row id, into
  /// `out`. Caller holds at least the shard's shared lock.
  static void CollectLocked(const Shard& shard,
                            const std::vector<size_t>& indices,
                            std::vector<DbRow>* out);

  /// Arms `timer` with the query-latency histogram and bumps the query
  /// counter when observability is active.
  obs::Histogram* QueryHistogram() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> next_id_{0};
  std::atomic<size_t> size_{0};

  // Observability handles, resolved once at construction; all null when
  // instrumentation is compiled out or disabled (DESIGN.md §7 idiom).
  obs::Histogram* insert_seconds_ = nullptr;
  obs::Histogram* query_seconds_ = nullptr;
  obs::Counter* insert_counter_ = nullptr;
  obs::Counter* query_counter_ = nullptr;
  obs::Gauge* rows_gauge_ = nullptr;
  obs::Gauge* rows_per_shard_gauge_ = nullptr;
};

}  // namespace goalex::core

#endif  // GOALEX_CORE_DATABASE_H_
