#ifndef GOALEX_CORE_DATABASE_H_
#define GOALEX_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/manifest.h"
#include "storage/row.h"
#include "storage/segment.h"
#include "storage/wal.h"

namespace goalex::core {

/// A stored row of the structured sustainability database the paper
/// motivates (Section 2.4): the extracted details plus source metadata, so
/// domain experts can index, filter, and compare objectives across
/// companies and track them over time. Defined at the storage layer (the
/// WAL and segment codecs speak it directly) and re-exported here as the
/// public query-result type.
using DbRow = storage::Row;

/// Tuning knobs of ObjectiveDatabase (DESIGN.md §12).
struct DbOptions {
  /// Rows a shard's growing segment may hold before a background seal is
  /// requested (only meaningful once Open() has attached a directory).
  /// <= 0 disables automatic sealing; Flush() still seals on demand.
  int64_t seal_threshold = 64 * 1024;

  /// WAL durability policy: 1 fsyncs after every record (default,
  /// crash-safe), N > 1 after every N-th record (bounded loss window,
  /// higher throughput), 0 never (the OS decides). Mirrors
  /// core::ServeConfig::db_wal_fsync_interval.
  int32_t wal_fsync_interval = 1;

  /// Run sealing on a dedicated background thread. When false, sealing
  /// happens only inside Flush().
  bool background_seal = true;

  /// Storage environment. Null means storage::Env::Default(); tests inject
  /// a storage::FaultInjectionEnv here to crash the database at an exact
  /// write offset.
  storage::Env* env = nullptr;

  /// Maintain the per-shard objective-identity map that Upsert() dedups
  /// against (DESIGN.md §15.2). Off by default: plain Insert ingest pays
  /// nothing for it. When on, Open()/Load() additionally rebuild the map
  /// (and the superseded-row overlay) by scanning every loaded row.
  bool track_upserts = false;
};

/// The reserved field kind Upsert() stores an objective's version number
/// under ("1", "2", ...). Rides the ordinary field codec, so versions
/// survive the WAL, sealed segments, and snapshots without a format bump;
/// exportable like any other kind (e.g. ExportCsv({"_version"})).
inline constexpr char kVersionField[] = "_version";

/// The version of `record` as stored by Upsert(); 1 when the row has no
/// _version field (plain Insert rows, pre-upsert data).
int32_t RecordVersion(const data::DetailRecord& record);

/// The reserved field kind Upsert() stores the delivery's source sequence
/// under when the caller provides one. Persisting it on the row (same
/// codec ride-along as _version) is what makes feed replay idempotent
/// across reopen: a replayed *earlier* publication of a restated target
/// carries a sequence below the live row's and is dropped as stale
/// instead of ping-ponging the row back through its history.
inline constexpr char kSequenceField[] = "_seq";

/// The source sequence of `record` as stored by Upsert(); -1 when the row
/// has no _seq field (sequence-less upserts, plain Insert rows).
int64_t RecordSequence(const data::DetailRecord& record);

/// The dedup identity of an objective row: company + normalized action
/// lemma (values::NormalizeAction) + lowercased qualifier, '\x1f'-joined.
/// Two statements of the same target — "Reduce water usage by 20% by
/// 2030" restated as "Reducing water usage by 35% by 2035" — share a key
/// and therefore one versioned row. Records carrying neither an Action
/// nor a Qualifier field (e.g. NetZeroFacts rows) fall back to the
/// lowercased objective text, so unextractable rows never collapse into
/// one identity per company.
std::string ObjectiveUpsertKey(const std::string& company,
                               const data::DetailRecord& record);

/// What Upsert() did with a record.
struct UpsertResult {
  int64_t row_id = -1;   ///< The live row holding this objective now.
  int32_t version = 1;   ///< Its version after the call.
  bool inserted = false; ///< New objective identity: fresh row, version 1.
  bool updated = false;  ///< Existing identity, content changed: bumped.
  /// Delivery's source sequence was older than the live row's: a replayed
  /// historical publication. Dropped without a write (implies unchanged()).
  bool stale = false;
  /// !inserted && !updated: byte-identical restatement or stale replay;
  /// no write at all.
  bool unchanged() const { return !inserted && !updated; }
};

/// Company / field / deadline constraints combined (AND) with a QueryText
/// term match. Empty members are inactive.
struct TextFilter {
  std::string company;     ///< Exact company name.
  std::string with_field;  ///< Field kind that must be non-empty.
  std::optional<int> min_deadline_year;
  std::optional<int> max_deadline_year;
};

/// Thread-safe sharded serving store for extracted sustainability
/// objectives (DESIGN.md §10, storage engine §12).
///
/// Rows are partitioned into shards by a hash of the company name. Each
/// shard is a small LSM: a mutable *growing* segment (std::deque of rows
/// plus in-memory secondary indexes, guarded by the shard's reader/writer
/// lock) in front of a stack of immutable *sealed* segments — columnar,
/// index-complete files that Load()/Open() mmap back in without
/// deserializing, so a million-row cold start is a CRC pass over the
/// mapped bytes instead of a row-by-row rebuild.
///
/// Durability: Open(dir) attaches a directory read-write. Every Insert is
/// then appended to the owning shard's write-ahead log (per-record CRC;
/// fsync policy via DbOptions::wal_fsync_interval) before it becomes
/// visible. When a growing segment passes DbOptions::seal_threshold, a
/// background thread seals it: segment file (temp + fsync + rename), then
/// manifest commit, then WAL shrink — in that order, so a crash at any
/// byte leaves a prefix-consistent store (replay dedups rows whose id is
/// already covered by a sealed segment; orphan segment files are ignored).
///
/// Queries merge sealed posting lists with the growing indexes:
///
///   - by company (ByCompany, CountPerCompany, FieldCoverageByCompany),
///   - by non-empty field kind (WithField),
///   - by exact field value (WhereFieldEquals),
///   - by normalized deadline year via values::NormalizeDeadlineYear
///     (ByDeadlineYear, DeadlineYearBetween),
///   - by full text over objective text and field values (QueryText:
///     AND of terms and "quoted phrases", optional TextFilter).
///
/// Every query returns copies of rows (or plain row ids), never pointers
/// into internal storage, so results stay valid across later inserts and
/// seals. Row ids are assigned from a global counter under the owning
/// shard's lock; serial insertion yields the sequential ids 0, 1, 2, ...
/// and every query result is sorted by row id, so single-threaded behavior
/// is deterministic and matches the pre-storage-engine store exactly.
class ObjectiveDatabase {
 public:
  /// Default shard count: enough to keep a machine-sized worker pool from
  /// serializing on one lock, small enough that per-shard overhead is noise.
  static constexpr int kDefaultShards = 16;

  explicit ObjectiveDatabase(int num_shards = kDefaultShards,
                             DbOptions options = DbOptions());

  ObjectiveDatabase(const ObjectiveDatabase&) = delete;
  ObjectiveDatabase& operator=(const ObjectiveDatabase&) = delete;

  /// Stops the background sealer. Does not flush: an attached database
  /// whose growing rows are only in the WAL recovers them on next Open().
  ~ObjectiveDatabase();

  /// Inserts a record with source metadata; returns its row id.
  /// Thread-safe: concurrent inserts to different companies usually land on
  /// different shards and proceed in parallel. When attached, the row is
  /// WAL-logged before it becomes visible.
  int64_t Insert(const data::DetailRecord& record,
                 const std::string& company,
                 const std::string& document = "", int page = 0);

  /// Versioned insert-or-update (requires DbOptions::track_upserts; the
  /// streaming pipeline's write path, DESIGN.md §15.2). The record's
  /// ObjectiveUpsertKey decides its fate:
  ///
  ///   - unseen key: inserted as a fresh row at version 1;
  ///   - known key, identical content (metadata, text, and fields all
  ///     equal): no write at all — replaying a feed is idempotent;
  ///   - known key, changed content: the version is bumped. A still-
  ///     growing live row is updated *in place* (same row id, WAL re-logs
  ///     the id); a sealed live row is immutable, so the new version gets
  ///     a fresh row id and the sealed row is masked from every query via
  ///     the superseded overlay (Get(old_id) still returns it — that is
  ///     the version history).
  ///
  /// `source_sequence` (>= 0) is the delivery's position in its source
  /// feed; it is stored on the row under kSequenceField and guards
  /// against out-of-order redelivery: a known key whose live row carries
  /// a *newer* sequence drops the upsert as stale (UpsertResult::stale)
  /// instead of regressing the row to older content. Feed replay is
  /// therefore idempotent even for multiply-restated targets — earlier
  /// publications replay as stale, the final one as byte-identical. Pass
  /// -1 (default) for sequence-less upserts; mixing sequenced and
  /// sequence-less upserts on one key is not meaningful (the _seq field
  /// itself participates in the content comparison).
  ///
  /// Thread-safe like Insert. Concurrent upserts of the same key are
  /// serialized by the shard lock.
  UpsertResult Upsert(const data::DetailRecord& record,
                      const std::string& company,
                      const std::string& document = "", int page = 0,
                      int64_t source_sequence = -1);

  /// Total row count (exact; maintained atomically).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Rows visible to queries: size() minus superseded (masked) rows.
  size_t live_size() const {
    return size() - superseded_count_.load(std::memory_order_acquire);
  }

  /// Sealed rows masked by a newer version of the same objective.
  size_t superseded_count() const {
    return superseded_count_.load(std::memory_order_acquire);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Row count of each shard — sealed plus growing (for balance inspection
  /// and the db.rows_per_shard gauge).
  std::vector<size_t> RowsPerShard() const;

  /// Looks up one row by id. O(num_shards * (segments + log rows)).
  std::optional<DbRow> Get(int64_t row_id) const;

  /// All rows of one company, sorted by row id. Indexed: touches only the
  /// company's shard.
  std::vector<DbRow> ByCompany(const std::string& company) const;

  /// Rows whose extracted `kind` field is non-empty (e.g., all objectives
  /// with a Deadline, for commitment tracking), sorted by row id. Indexed.
  std::vector<DbRow> WithField(const std::string& kind) const;

  /// Rows whose `kind` field equals `value` exactly, sorted by row id.
  /// Indexed.
  std::vector<DbRow> WhereFieldEquals(const std::string& kind,
                                      const std::string& value) const;

  /// Rows whose Deadline (or NetZeroFacts TargetYear) normalizes to `year`
  /// via values::NormalizeDeadlineYear, sorted by row id. Indexed.
  std::vector<DbRow> ByDeadlineYear(int year) const;

  /// Rows whose normalized deadline year lies in [min_year, max_year],
  /// sorted by row id — the "commitments due by 2030" query of the
  /// deployment scenarios.
  std::vector<DbRow> DeadlineYearBetween(int min_year, int max_year) const;

  /// Full-text query over objective text and extracted field values,
  /// sorted by row id. `query` is parsed into bare terms and "quoted
  /// phrases" (tokenized with src/text's WordTokenizer, ASCII-lowercased).
  /// A row matches when every term appears somewhere in its text (objective
  /// text or any non-empty field value), every phrase appears contiguously
  /// within one of those texts, and `filter`'s active constraints hold.
  /// Terms that tokenize to nothing (punctuation-only) are ignored; a query
  /// with no effective terms returns only what `filter` alone selects — or
  /// nothing when the filter is empty too. Served from the inverted text
  /// index of each sealed segment plus the growing segment's term map;
  /// no row scan.
  std::vector<DbRow> QueryText(const std::string& query,
                               const TextFilter& filter = TextFilter()) const;

  /// All distinct company names, sorted.
  std::vector<std::string> Companies() const;

  /// Objective counts per company (Table 5's last column). Indexed.
  std::map<std::string, int64_t> CountPerCompany() const;

  /// Fraction of rows per company carrying the given field — the
  /// "specificity" signal the deployment discussion derives from Table 6
  /// (companies quoting amounts/deadlines are more specific). Indexed.
  std::map<std::string, double> FieldCoverageByCompany(
      const std::string& kind) const;

  /// A consistent copy of every row, sorted by row id.
  std::vector<DbRow> SnapshotRows() const;

  /// Exports all rows (sorted by row id) as CSV with the given field
  /// columns. Fields containing commas, quotes, CR, or LF are quoted.
  std::string ExportCsv(const std::vector<std::string>& kinds) const;

  /// Attaches `dir` read-write (creating it if needed) and recovers
  /// whatever it holds: a v2 manifest (sealed segments are mmap'ed, shard
  /// WALs replayed — rows already covered by a sealed segment are skipped,
  /// a torn or corrupt WAL tail is truncated), a legacy v1 objectives.db
  /// (loaded, then migrated to v2 by an immediate Flush), or nothing (a
  /// fresh database). After Open, inserts are WAL-logged and the
  /// background sealer (if enabled) keeps growing segments bounded.
  /// The shard count is adopted from an existing manifest.
  /// Fails with FailedPrecondition when already attached, DataLoss when the
  /// directory holds an unrecoverable store.
  Status Open(const std::string& dir);

  /// Seals every non-empty growing segment to the attached directory and
  /// syncs the manifest, leaving the WALs empty. FailedPrecondition when
  /// not attached.
  Status Flush();

  /// True after a successful Open().
  bool attached() const { return attached_; }

  /// Sealed segments currently serving, across all shards.
  size_t SealedSegmentCount() const;

  /// Writes a complete, self-contained v2 snapshot of the current contents
  /// into `dir` (segment per non-empty shard + manifest, committed via
  /// temp + rename), independent of any attached directory. Stale shard
  /// WALs in `dir` are removed so a later Load sees exactly this snapshot.
  /// FailedPrecondition when `dir` is the attached directory (use Flush).
  Status Save(const std::string& dir) const;

  /// Writes the legacy v1 single-file snapshot (`<dir>/objectives.db`) —
  /// kept as the cold-start baseline bench_micro_db compares mmap loading
  /// against, and for downgrade escapes.
  Status SaveLegacy(const std::string& dir) const;

  /// Replaces the database contents from `dir`, read-only: a v2 manifest
  /// (sealed segments mmap'ed in place — near-instant even at millions of
  /// rows) or a legacy v1 objectives.db. Does not attach: WALs in `dir`
  /// are replayed into memory but never written, and subsequent inserts
  /// stay in memory (row ids continue above the highest loaded id).
  /// NotFound when `dir` holds neither format.
  Status Load(const std::string& dir);

 private:
  /// The mutable head of a shard: rows not yet sealed, with in-memory
  /// secondary indexes (values are indices into `rows`, ascending).
  struct Growing {
    std::deque<DbRow> rows;  ///< Ascending row_id (ids assigned under mu).
    std::unordered_map<std::string, std::vector<size_t>> by_company;
    std::unordered_map<std::string, std::vector<size_t>> by_field;
    std::unordered_map<std::string,
                       std::unordered_map<std::string, std::vector<size_t>>>
        by_field_value;
    std::map<int, std::vector<size_t>> by_deadline_year;
    /// Lowercased term -> rows containing it (objective text or any
    /// non-empty field value) — the growing side of the text index.
    std::unordered_map<std::string, std::vector<size_t>> by_term;
    /// company -> kind -> number of rows with a non-empty value, so
    /// FieldCoverageByCompany is O(companies), not O(rows).
    std::unordered_map<std::string, std::unordered_map<std::string, int64_t>>
        field_count_by_company;

    void Clear();
  };

  struct Shard {
    mutable std::shared_mutex mu;
    Growing growing;
    /// Immutable mmap-backed segments, in seal order (ascending row-id
    /// ranges, disjoint). shared_ptr so queries can keep serving a segment
    /// snapshot without holding the shard lock.
    std::vector<std::shared_ptr<storage::SealedSegment>> sealed;
    /// Highest row id covered by `sealed` (-1 when none): WAL replay drops
    /// records at or below it.
    int64_t max_sealed_id = -1;
    /// Armed by Open(); null when detached.
    std::unique_ptr<storage::WalWriter> wal;

    // --- Versioned-upsert state (populated only with track_upserts) ------
    /// ObjectiveUpsertKey -> row id of the live (newest) version.
    std::unordered_map<std::string, int64_t> latest_by_key;
    /// Rows replaced by a newer version that could not be updated in place
    /// (sealed at update time, or stale duplicates found on load). Keyed
    /// by row id, holding a full copy of the masked row so count-style
    /// queries can subtract its contributions without touching a segment.
    /// Every query path filters against this map; Get() alone serves the
    /// masked rows as version history.
    std::unordered_map<int64_t, DbRow> superseded;
  };

  size_t ShardIndexFor(const std::string& company) const;

  /// Registers `row` (stored at `ordinal`) in every growing index.
  /// Ordinals are kept sorted within each posting vector, so this works
  /// both for appends (ordinal is the largest) and for in-place updates
  /// (ordinal lands mid-vector).
  static void IndexGrowingRowLocked(Growing& growing, const DbRow& row,
                                    size_t ordinal);

  /// Removes `row` (stored at `ordinal`) from every growing index — the
  /// exact inverse of IndexGrowingRowLocked, erasing entries that empty
  /// out so Companies()/coverage queries never see ghosts.
  static void DeindexGrowingRowLocked(Growing& growing, const DbRow& row,
                                      size_t ordinal);

  /// Replaces the growing row at `ordinal` with `row` (same row id),
  /// keeping every index exact. Caller holds the exclusive lock.
  static void ReplaceGrowingLocked(Shard& shard, size_t ordinal, DbRow row);

  /// Ordinal of the growing row with id `row_id`, if present. Caller holds
  /// at least the shared lock.
  static std::optional<size_t> FindGrowingOrdinalLocked(const Shard& shard,
                                                        int64_t row_id);

  /// Reads the sealed row with id `row_id`, if any segment holds it.
  /// Caller holds at least the shared lock.
  static std::optional<DbRow> ReadSealedRowLocked(const Shard& shard,
                                                  int64_t row_id);

  /// WAL-logs `row` when attached (shared by Insert and Upsert). Caller
  /// holds the exclusive lock.
  void LogRowLocked(Shard& shard, const DbRow& row);

  /// Rebuilds every shard's latest_by_key map and superseded overlay from
  /// the loaded rows: per key the highest (version, row id) pair is live,
  /// every other row is masked. Called by Open()/Load() when
  /// track_upserts is on — the overlay has no on-disk form; it is derived
  /// state, which also makes it self-healing after crashes.
  void BuildUpsertState();

  /// Appends `row` to the growing segment and maintains every index.
  /// Caller holds the shard's exclusive lock.
  static void AppendGrowingLocked(Shard& shard, DbRow row);

  /// Rebuilds the growing indexes from its rows (after a seal erased the
  /// front of the deque, shifting every ordinal). Caller holds the
  /// exclusive lock.
  static void RebuildGrowingLocked(Shard& shard);

  /// Copies the growing rows at `ordinals` into `out`. Caller holds at
  /// least the shard's shared lock.
  static void CollectGrowing(const Shard& shard,
                             const std::vector<size_t>& ordinals,
                             std::vector<DbRow>* out);

  /// Materializes the rows of `postings` from `segment` into `out`,
  /// skipping rows masked by `shard`'s superseded overlay.
  static void CollectSealed(const Shard& shard,
                            const storage::SealedSegment& segment,
                            const storage::PostingsView& postings,
                            std::vector<DbRow>* out);

  /// Copies every row of one shard (sealed segments in order, then
  /// growing), ascending by row id.
  std::vector<DbRow> CollectShardRows(const Shard& shard) const;

  /// Replaces all shards with `count` fresh ones (detached state is
  /// untouched). Caller must ensure no concurrent access.
  void ResetShards(int count);

  /// Loads a v2 store described by `manifest` from `dir_`. In `read_write`
  /// mode torn WAL tails are truncated on disk; otherwise the directory is
  /// never written.
  Status LoadManifest(const storage::Manifest& manifest, bool read_write);

  /// Loads the legacy v1 snapshot file at `path` into the growing
  /// segments.
  Status LoadLegacyFile(const std::string& path);

  /// Seals shard `index`'s growing rows into a new segment file, commits
  /// the manifest, and shrinks the WAL (DESIGN.md §12.6 ordering). No-op
  /// for an empty shard.
  Status SealShard(size_t index);

  /// Queues shard `index` for the background sealer (or ignores the
  /// request when sealing is synchronous-only).
  void RequestSeal(size_t index);

  /// Rewrites shard `index`'s WAL to hold only the still-growing rows.
  /// Best-effort: on any failure the previous WAL stays in place, which is
  /// correct (replay drops rows already covered by a sealed segment).
  /// Caller holds the shard's exclusive lock.
  void RewriteWalLocked(Shard& shard, size_t index);

  void SealerLoop();
  void StopSealer();

  std::string WalPath(size_t shard_index) const;

  /// Arms `timer` with the query-latency histogram and bumps the query
  /// counter when observability is active.
  obs::Histogram* QueryHistogram() const;

  void UpdateRowGauges(size_t total) const;

  DbOptions options_;
  storage::Env* env_;  ///< Never null (DbOptions::env or Env::Default()).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> next_id_{0};
  std::atomic<size_t> size_{0};
  /// Sum of every shard's superseded overlay size.
  std::atomic<size_t> superseded_count_{0};

  // --- Attached (read-write) state -----------------------------------------
  std::atomic<bool> attached_{false};
  std::string dir_;
  std::atomic<uint64_t> next_segment_{0};
  /// Guards manifest_ and the on-disk MANIFEST commit sequence.
  mutable std::mutex manifest_mu_;
  storage::Manifest manifest_;

  // --- Background sealer ---------------------------------------------------
  std::mutex seal_mu_;
  std::condition_variable seal_cv_;
  std::set<size_t> seal_pending_;
  bool stop_sealer_ = false;
  std::thread sealer_;
  /// Serializes whole seal operations (background sealer vs. Flush), so a
  /// shard is never snapshotted by two concurrent seals.
  std::mutex seal_op_mu_;

  // Observability handles, resolved once at construction; all null when
  // instrumentation is compiled out or disabled (DESIGN.md §7 idiom).
  obs::Histogram* insert_seconds_ = nullptr;
  obs::Histogram* query_seconds_ = nullptr;
  obs::Histogram* mmap_load_seconds_ = nullptr;
  obs::Counter* insert_counter_ = nullptr;
  obs::Counter* query_counter_ = nullptr;
  obs::Counter* wal_append_counter_ = nullptr;
  obs::Counter* wal_error_counter_ = nullptr;
  obs::Counter* wal_replayed_counter_ = nullptr;
  obs::Counter* wal_truncated_bytes_counter_ = nullptr;
  obs::Counter* seal_counter_ = nullptr;
  obs::Counter* seal_error_counter_ = nullptr;
  obs::Gauge* rows_gauge_ = nullptr;
  obs::Gauge* rows_per_shard_gauge_ = nullptr;
  obs::Gauge* segments_gauge_ = nullptr;
  obs::Counter* upsert_inserted_counter_ = nullptr;
  obs::Counter* upsert_updated_counter_ = nullptr;
  obs::Counter* upsert_unchanged_counter_ = nullptr;
  obs::Gauge* superseded_gauge_ = nullptr;
};

}  // namespace goalex::core

#endif  // GOALEX_CORE_DATABASE_H_
