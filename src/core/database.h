#ifndef GOALEX_CORE_DATABASE_H_
#define GOALEX_CORE_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/schema.h"

namespace goalex::core {

/// A stored row of the structured sustainability database the paper
/// motivates (Section 2.4): the extracted details plus source metadata, so
/// domain experts can index, filter, and compare objectives across
/// companies and track them over time.
struct DbRow {
  int64_t row_id = 0;
  std::string company;
  std::string document;
  int page = 0;
  data::DetailRecord record;
};

/// In-memory structured store for extracted sustainability objectives with
/// the query operations the paper's deployment scenarios exercise.
class ObjectiveDatabase {
 public:
  /// Inserts a record with source metadata; returns its row id.
  int64_t Insert(const data::DetailRecord& record,
                 const std::string& company,
                 const std::string& document = "", int page = 0);

  size_t size() const { return rows_.size(); }
  const std::vector<DbRow>& rows() const { return rows_; }

  /// All rows of one company.
  std::vector<const DbRow*> ByCompany(const std::string& company) const;

  /// Rows whose extracted `kind` field is non-empty (e.g., all objectives
  /// with a Deadline, for commitment tracking).
  std::vector<const DbRow*> WithField(const std::string& kind) const;

  /// Rows whose `kind` field equals `value` exactly.
  std::vector<const DbRow*> WhereFieldEquals(const std::string& kind,
                                             const std::string& value) const;

  /// Objective counts per company (Table 5's last column).
  std::map<std::string, int64_t> CountPerCompany() const;

  /// Fraction of rows per company carrying the given field — the
  /// "specificity" signal the deployment discussion derives from Table 6
  /// (companies quoting amounts/deadlines are more specific).
  std::map<std::string, double> FieldCoverageByCompany(
      const std::string& kind) const;

  /// Exports all rows as CSV with the given field columns.
  std::string ExportCsv(const std::vector<std::string>& kinds) const;

 private:
  std::vector<DbRow> rows_;
  std::multimap<std::string, size_t> company_index_;
};

}  // namespace goalex::core

#endif  // GOALEX_CORE_DATABASE_H_
