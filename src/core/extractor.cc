#include "core/extractor.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "eval/timer.h"
#include "exec/executor.h"
#include "exec/graph.h"
#include "exec/lifetime.h"
#include "obs/scope.h"
#include "runtime/thread_pool.h"
#include "nn/adam.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "tensor/ops.h"
#include "segment/segmenter.h"
#include "text/normalizer.h"

namespace goalex::core {

DetailExtractor::DetailExtractor(ExtractorConfig config)
    : config_(std::move(config)),
      catalog_(config_.kinds),
      labeler_(&catalog_, config_.weak_labeler) {
  GOALEX_CHECK_MSG(!config_.kinds.empty(),
                   "ExtractorConfig.kinds must not be empty");
  if (config_.enable_metrics && obs::Active()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    metrics_.tokenize_seconds =
        registry.GetLatencyHistogram("extractor.stage.tokenize.seconds");
    metrics_.predict_seconds =
        registry.GetLatencyHistogram("extractor.stage.predict.seconds");
    metrics_.decode_seconds =
        registry.GetLatencyHistogram("extractor.stage.decode.seconds");
    metrics_.extract_seconds =
        registry.GetLatencyHistogram("extractor.extract.seconds");
    metrics_.objectives = registry.GetCounter("extractor.objectives");
    metrics_.empty_objectives =
        registry.GetCounter("extractor.objectives.empty");
    metrics_.spans = registry.GetCounter("extractor.spans");
    metrics_.spans_by_kind.reserve(config_.kinds.size());
    for (const std::string& kind : config_.kinds) {
      metrics_.spans_by_kind.push_back(
          registry.GetCounter("extractor.spans." + kind));
    }
    metrics_.objectives_per_second =
        registry.GetGauge("extractor.objectives_per_second");
    metrics_.staged_peak =
        registry.GetGauge("extractor.pipeline.staged_peak");
  }
}

DetailExtractor::~DetailExtractor() = default;

std::string DetailExtractor::Prepare(const std::string& text) const {
  if (!config_.normalize_text) return text;
  return text::Normalize(text);
}

DetailExtractor::EncodedExample DetailExtractor::EncodeExample(
    const std::vector<text::Token>& tokens,
    const std::vector<labels::LabelId>& word_labels) const {
  GOALEX_CHECK(tokenizer_ != nullptr);
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const text::Token& t : tokens) words.push_back(t.text);
  std::vector<bpe::Subword> subwords = tokenizer_->EncodeWords(words);

  EncodedExample example;
  example.ids.push_back(bpe::Vocab::kBosId);
  example.targets.push_back(-1);
  for (const bpe::Subword& sw : subwords) {
    example.ids.push_back(sw.id);
    // Standard first-subtoken supervision: continuation pieces are ignored
    // by the loss and at decode time.
    example.targets.push_back(
        sw.is_word_start ? word_labels[sw.word_index] : -1);
  }
  example.ids.push_back(bpe::Vocab::kEosId);
  example.targets.push_back(-1);
  return example;
}

Status DetailExtractor::Train(
    const std::vector<data::Objective>& objectives,
    const std::function<void(const EpochStats&)>& on_epoch_end) {
  if (objectives.empty()) {
    return InvalidArgumentError("cannot train on an empty corpus");
  }

  // Normalize texts and annotations once.
  std::vector<data::Objective> prepared = objectives;
  for (data::Objective& o : prepared) {
    o.text = Prepare(o.text);
    for (data::Annotation& a : o.annotations) a.value = Prepare(a.value);
  }

  // Per-stage tracing of the development phase; disarmed (null registry)
  // when this extractor's metrics are off.
  obs::MetricsRegistry* registry =
      config_.enable_metrics ? &obs::MetricsRegistry::Default() : nullptr;

  // Step 1 (development phase): learn the subword tokenizer on the
  // training corpus.
  obs::Span bpe_span(registry, "extractor.train.bpe");
  std::vector<std::string> corpus;
  corpus.reserve(prepared.size());
  for (const data::Objective& o : prepared) corpus.push_back(o.text);
  tokenizer_ = std::make_unique<bpe::BpeModel>(bpe::BpeModel::Train(
      corpus, config_.bpe_merges, config_.LowercaseTokenizer()));
  bpe_span.Stop();

  // Step 2: weak supervision token labeling (Algorithm 1), fanned out over
  // the configured worker count (order-preserving, so the training set is
  // identical for every thread count).
  obs::Span weaklabel_span(registry, "extractor.train.weaklabel");
  std::vector<weaksup::WeakLabeling> labelings =
      labeler_.LabelAll(prepared, config_.num_threads);
  train_stats_ = weaksup::ComputeStats(prepared, labelings);
  weaklabel_span.Stop();

  std::vector<EncodedExample> examples;
  examples.reserve(labelings.size());
  for (const weaksup::WeakLabeling& labeling : labelings) {
    if (labeling.tokens.empty()) continue;
    examples.push_back(EncodeExample(labeling.tokens, labeling.label_ids));
  }
  if (examples.empty()) {
    return FailedPreconditionError("no trainable examples after encoding");
  }
  // The corpus is fully encoded (the per-word cache is warm); freeze the
  // tokenizer so nothing on the inference path mutates shared state and
  // concurrent ExtractAll workers are safe.
  tokenizer_->Freeze();

  // Step 3: fine-tune the transformer sequence labeler on the
  // data-parallel trainer. The replicas' parameter values alias the master
  // model's storage; their gradients are the per-slot accumulation buffers.
  // Training is bit-identical for every num_threads value (see
  // nn/trainer.h).
  obs::Span finetune_span(registry, "extractor.train.finetune");
  Rng init_rng(config_.seed);
  nn::TransformerConfig arch = config_.BuildTransformerConfig(
      static_cast<int32_t>(tokenizer_->vocab().size()));
  model_ = std::make_unique<nn::TokenClassifier>(arch, catalog_.label_count(),
                                                 init_rng);

  const int32_t slot_count =
      nn::DataParallelTrainer::SlotCount(config_.batch_size);
  std::vector<std::unique_ptr<nn::TokenClassifier>> replicas;
  std::vector<std::vector<tensor::Var>> replica_params;
  replicas.reserve(static_cast<size_t>(slot_count));
  replica_params.reserve(static_cast<size_t>(slot_count));
  for (int32_t s = 0; s < slot_count; ++s) {
    Rng replica_rng(config_.seed);  // Values get rebound to the master's.
    replicas.push_back(std::make_unique<nn::TokenClassifier>(
        arch, catalog_.label_count(), replica_rng));
    replica_params.push_back(replicas.back()->Parameters());
  }

  nn::ParallelTrainerOptions trainer_options;
  trainer_options.batch_size = config_.batch_size;
  trainer_options.num_threads = config_.num_threads;
  trainer_options.seed = config_.seed;
  trainer_options.adam.learning_rate = config_.EffectiveLearningRate();
  trainer_options.registry = registry;
  nn::DataParallelTrainer trainer(model_->Parameters(),
                                  std::move(replica_params), trainer_options);

  obs::Gauge* examples_per_sec =
      registry != nullptr && obs::Active()
          ? registry->GetGauge("extractor.train.examples_per_sec")
          : nullptr;

  const nn::SlotLossFn loss_fn = [&replicas, &examples](
                                     size_t slot, size_t example_index,
                                     Rng& rng) {
    const EncodedExample& example = examples[example_index];
    return replicas[slot]->ForwardLoss(example.ids, example.targets, rng);
  };

  Rng train_rng(config_.seed + 1);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int32_t epoch = 1; epoch <= config_.epochs; ++epoch) {
    eval::Timer timer;
    train_rng.Shuffle(order);
    double loss_sum = trainer.RunEpoch(order, epoch, loss_fn);
    double seconds = timer.Seconds();
    if (examples_per_sec != nullptr && seconds > 0.0) {
      examples_per_sec->Set(static_cast<double>(examples.size()) / seconds);
    }

    if (on_epoch_end) {
      EpochStats stats;
      stats.epoch = epoch;
      stats.mean_train_loss = loss_sum / static_cast<double>(examples.size());
      stats.seconds = seconds;
      // The callback may Extract(): make sure the engines exist. Adam
      // updates weights in place, so the per-example plan's borrowed views
      // stay current and it never needs recompiling — but the packed
      // engine derives state (padded head, int8 codes) at build time, so
      // while one exists it must be rebuilt on this epoch's fresh weights.
      if (engine_ == nullptr || packed_engine_ != nullptr) RebuildEngine();
      on_epoch_end(stats);
    }
  }
  RebuildEngine();
  return Status::Ok();
}

void DetailExtractor::RebuildEngine() {
  engine_.reset();
  packed_engine_.reset();
  if (!config_.use_inference_engine) return;
  GOALEX_CHECK(model_ != nullptr);
  engine_ = std::make_unique<infer::Engine>(
      infer::Engine::ForTokenClassifier(*model_));
  if (config_.packed_inference) {
    infer::PackedEngineOptions options;
    options.chunk_tokens = config_.packed_chunk_tokens;
    options.quantize_int8 = config_.quantize_int8;
    packed_engine_ = std::make_unique<infer::PackedEngine>(*model_, options);
  }
}

void DetailExtractor::TokenizeStage(const std::string& text,
                                    StagedClause& clause) const {
  obs::ScopedTimer tokenize_timer(
      InstrumentNow() ? metrics_.tokenize_seconds : nullptr);
  WordPrediction& out = clause.prediction;
  out.prepared = Prepare(text);
  out.tokens = word_tokenizer_.Tokenize(out.prepared);
  if (out.tokens.empty()) return;

  std::vector<std::string> words;
  words.reserve(out.tokens.size());
  for (const text::Token& t : out.tokens) words.push_back(t.text);
  clause.subwords = tokenizer_->EncodeWords(words);

  clause.ids.clear();
  clause.ids.push_back(bpe::Vocab::kBosId);
  for (const bpe::Subword& sw : clause.subwords) clause.ids.push_back(sw.id);
  clause.ids.push_back(bpe::Vocab::kEosId);
}

void DetailExtractor::PredictStage(StagedClause& clause) const {
  obs::ScopedTimer predict_timer(
      InstrumentNow() ? metrics_.predict_seconds : nullptr);
  // Engine and autograd paths are bit-identical (infer_parity_test); the
  // engine is just graph-free and arena-backed.
  clause.predictions = engine_ != nullptr ? engine_->PredictTokens(clause.ids)
                                          : model_->Predict(clause.ids);
}

void DetailExtractor::DecodeStage(StagedClause& clause) const {
  WordPrediction& out = clause.prediction;
  out.word_labels.assign(out.tokens.size(),
                         labels::LabelCatalog::kOutsideId);
  // Position p in the prediction corresponds to subword p-1 (skip BOS);
  // the tail may be truncated by max_seq_len.
  for (size_t p = 1; p < clause.predictions.size(); ++p) {
    size_t sub = p - 1;
    if (sub >= clause.subwords.size()) break;  // EOS or truncation.
    if (clause.subwords[sub].is_word_start) {
      out.word_labels[clause.subwords[sub].word_index] =
          clause.predictions[p];
    }
  }
}

DetailExtractor::WordPrediction DetailExtractor::PredictPrepared(
    const std::string& text) const {
  GOALEX_CHECK_MSG(model_ != nullptr, "extractor is not trained");
  StagedClause clause;
  TokenizeStage(text, clause);
  if (clause.prediction.tokens.empty()) return std::move(clause.prediction);
  PredictStage(clause);
  DecodeStage(clause);
  return std::move(clause.prediction);
}

std::vector<labels::LabelId> DetailExtractor::PredictWordLabels(
    const std::string& text) const {
  return PredictPrepared(text).word_labels;
}

std::vector<std::string> DetailExtractor::ClauseTexts(
    const std::string& text) const {
  if (config_.segment_multi_target) {
    segment::ObjectiveSegmenter segmenter;
    std::vector<segment::Segment> segments = segmenter.Split(text);
    if (segments.size() > 1) {
      std::vector<std::string> clauses;
      clauses.reserve(segments.size());
      for (segment::Segment& seg : segments) {
        clauses.push_back(std::move(seg.text));
      }
      return clauses;
    }
  }
  // Single-target: extract from the original text, not the segmenter's
  // view of it.
  return {text};
}

data::DetailRecord DetailExtractor::MergeClauseRecords(
    const data::Objective& objective,
    std::vector<data::DetailRecord>& parts) const {
  if (parts.size() == 1) return std::move(parts[0]);
  // The first clause's value wins per field (it is the annotated target).
  data::DetailRecord merged;
  merged.objective_id = objective.id;
  merged.objective_text = objective.text;
  for (data::DetailRecord& part : parts) {
    for (const auto& [kind, value] : part.fields) {
      merged.fields.emplace(kind, value);  // Keeps the first value.
    }
  }
  return merged;
}

data::DetailRecord DetailExtractor::Extract(
    const data::Objective& objective) const {
  GOALEX_CHECK_MSG(model_ != nullptr, "extractor is not trained");
  const bool instrument = InstrumentNow();
  obs::ScopedTimer extract_timer(instrument ? metrics_.extract_seconds
                                            : nullptr);
  if (instrument) metrics_.objectives->Increment();

  std::vector<std::string> clause_texts = ClauseTexts(objective.text);
  if (clause_texts.size() == 1) return ExtractSingle(objective);
  std::vector<data::DetailRecord> parts;
  parts.reserve(clause_texts.size());
  for (const std::string& clause_text : clause_texts) {
    data::Objective clause;
    clause.id = objective.id;
    clause.text = clause_text;
    parts.push_back(ExtractSingle(clause));
  }
  return MergeClauseRecords(objective, parts);
}

data::DetailRecord DetailExtractor::ExtractSingle(
    const data::Objective& objective) const {
  // One pass through the inference pipeline: normalization, word
  // tokenization, and BPE encoding all happen exactly once per objective.
  return DecodeRecord(objective, PredictPrepared(objective.text));
}

data::DetailRecord DetailExtractor::DecodeRecord(
    const data::Objective& objective,
    const WordPrediction& prediction) const {
  data::DetailRecord record;
  record.objective_id = objective.id;
  record.objective_text = objective.text;

  const bool instrument = InstrumentNow();
  if (prediction.tokens.empty()) {
    if (instrument) metrics_.empty_objectives->Increment();
    return record;
  }
  obs::ScopedTimer decode_timer(instrument ? metrics_.decode_seconds
                                           : nullptr);
  std::vector<labels::Span> spans =
      catalog_.DecodeSpans(prediction.word_labels);

  for (const labels::Span& span : spans) {
    const std::string& kind =
        catalog_.kinds()[static_cast<size_t>(span.kind)];
    if (instrument) {
      metrics_.spans->Increment();
      metrics_.spans_by_kind[static_cast<size_t>(span.kind)]->Increment();
    }
    if (record.fields.count(kind) > 0) continue;  // First span wins.
    size_t begin = prediction.tokens[span.begin].begin;
    size_t end = prediction.tokens[span.end - 1].end;
    record.fields[kind] = prediction.prepared.substr(begin, end - begin);
  }
  return record;
}

std::vector<data::DetailRecord> DetailExtractor::ExtractAll(
    const std::vector<data::Objective>& objectives) const {
  return ExtractAll(objectives, config_.num_threads, nullptr);
}

std::vector<data::DetailRecord> DetailExtractor::ExtractAll(
    const std::vector<data::Objective>& objectives, int32_t num_threads,
    runtime::Stats* stats) const {
  std::vector<const data::Objective*> ptrs;
  ptrs.reserve(objectives.size());
  for (const data::Objective& o : objectives) ptrs.push_back(&o);
  runtime::ThreadPool pool(num_threads);
  return ExtractBatchImpl(ptrs, pool, stats);
}

std::vector<data::DetailRecord> DetailExtractor::ExtractBatch(
    const std::vector<const data::Objective*>& objectives,
    runtime::ThreadPool* pool, runtime::Stats* stats) const {
  if (pool != nullptr) return ExtractBatchImpl(objectives, *pool, stats);
  runtime::ThreadPool local(config_.num_threads);
  return ExtractBatchImpl(objectives, local, stats);
}

std::vector<data::DetailRecord> DetailExtractor::ExtractBatchImpl(
    const std::vector<const data::Objective*>& objectives,
    runtime::ThreadPool& pool, runtime::Stats* stats) const {
  GOALEX_CHECK_MSG(model_ != nullptr, "extractor is not trained");
  const size_t n = objectives.size();
  std::vector<data::DetailRecord> out(n);
  runtime::Stats run_stats;
  run_stats.items = n;
  run_stats.threads = pool.thread_count();
  if (n == 0) {
    if (stats != nullptr) *stats = run_stats;
    return out;
  }

  // Pipeline state held between an objective's stage nodes; released at
  // the decode node (its last use). On the chain path in-flight memory
  // tracks executor concurrency, not corpus size — the LIFO own-queue runs
  // chains depth-first instead of tokenizing everything before predicting.
  // The packed path trades that bound away: packing needs every clause's
  // tokens before it can form chunks, so all n objectives hold staged
  // state between the tokenize barrier and their decode node.
  struct StagedObjective {
    std::vector<std::string> clause_texts;
    std::vector<StagedClause> clauses;
  };
  std::vector<StagedObjective> staged(n);
  std::atomic<int64_t> in_flight{0};
  std::atomic<int64_t> staged_peak{0};

  const bool instrument = InstrumentNow();

  if (packed_engine_ != nullptr) {
    // Packed predict (DESIGN.md §14), two phases on one pool. Phase 1:
    // tokenize every objective.
    eval::Timer timer;
    double busy = 0.0;
    exec::Executor tokenize_executor(&pool);
    {
      exec::Graph tokenize_graph;
      for (size_t i = 0; i < n; ++i) {
        tokenize_graph.Add([this, i, &objectives, &staged, instrument] {
          if (instrument) metrics_.objectives->Increment();
          StagedObjective& obj = staged[i];
          obj.clause_texts = ClauseTexts(objectives[i]->text);
          obj.clauses.resize(obj.clause_texts.size());
          for (size_t c = 0; c < obj.clause_texts.size(); ++c) {
            TokenizeStage(obj.clause_texts[c], obj.clauses[c]);
          }
        });
      }
      GOALEX_CHECK_OK(tokenize_executor.Run(tokenize_graph));
      busy += tokenize_executor.last_run().busy_seconds;
    }

    // Pack the non-empty clauses of the whole batch by token length.
    // clause_seq[i][c] maps objective i's clause c to its slot in the
    // packed submission (-1 = nothing to predict), owner maps a slot back
    // to its objective.
    std::vector<const std::vector<int32_t>*> sequences;
    std::vector<std::vector<int64_t>> clause_seq(n);
    std::vector<size_t> owner;
    for (size_t i = 0; i < n; ++i) {
      StagedObjective& obj = staged[i];
      clause_seq[i].assign(obj.clauses.size(), -1);
      for (size_t c = 0; c < obj.clauses.size(); ++c) {
        if (obj.clauses[c].prediction.tokens.empty()) continue;
        clause_seq[i][c] = static_cast<int64_t>(sequences.size());
        sequences.push_back(&obj.clauses[c].ids);
        owner.push_back(i);
      }
    }
    const std::vector<infer::PackedChunk> chunks = infer::PackByLength(
        sequences, packed_engine_->max_seq_len(),
        packed_engine_->chunk_tokens());

    // Phase 2: one predict node per chunk (scratch-leased, so the packed
    // activations count into exec.scratch.peak_bytes and their arenas are
    // reused across chunks), and one decode node per objective depending
    // on exactly the chunks that carry its clauses.
    std::vector<std::vector<int32_t>> labels(sequences.size());
    exec::ScratchPool scratch_pool;
    exec::Executor executor(&pool, &scratch_pool);
    exec::Graph graph;
    std::vector<std::vector<exec::NodeId>> deps(n);
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      const exec::NodeId predict = graph.Add(
          [this, &chunks, ci, &labels] {
            obs::ScopedTimer predict_timer(
                InstrumentNow() ? metrics_.predict_seconds : nullptr);
            packed_engine_->PredictChunk(chunks[ci], labels);
          },
          {}, exec::NodeOptions{.uses_scratch = true});
      for (size_t s : chunks[ci].sequence) deps[owner[s]].push_back(predict);
    }
    for (size_t i = 0; i < n; ++i) {
      std::vector<exec::NodeId>& d = deps[i];
      std::sort(d.begin(), d.end());
      d.erase(std::unique(d.begin(), d.end()), d.end());
      graph.Add(
          [this, i, &objectives, &staged, &out, &labels, &clause_seq] {
            StagedObjective& obj = staged[i];
            std::vector<data::DetailRecord> parts;
            parts.reserve(obj.clauses.size());
            const bool single = obj.clauses.size() == 1;
            for (size_t c = 0; c < obj.clauses.size(); ++c) {
              StagedClause& clause = obj.clauses[c];
              if (!clause.prediction.tokens.empty()) {
                clause.predictions = std::move(
                    labels[static_cast<size_t>(clause_seq[i][c])]);
                DecodeStage(clause);
              }
              data::Objective clause_obj;
              clause_obj.id = objectives[i]->id;
              // Single-target objectives decode against the original
              // text, exactly like Extract().
              clause_obj.text =
                  single ? objectives[i]->text : obj.clause_texts[c];
              parts.push_back(DecodeRecord(clause_obj, clause.prediction));
            }
            out[i] = MergeClauseRecords(*objectives[i], parts);
            staged[i] = StagedObjective{};  // Last use: free staged state.
          },
          std::move(d));
    }
    GOALEX_CHECK_OK(executor.Run(graph));
    busy += executor.last_run().busy_seconds;

    run_stats.seconds = timer.Seconds();
    run_stats.busy_seconds = busy;
    if (stats != nullptr) *stats = run_stats;
    if (instrument) {
      metrics_.objectives_per_second->Set(run_stats.ItemsPerSecond());
      // The tokenize barrier makes the whole batch the high-water mark.
      metrics_.staged_peak->Set(static_cast<double>(n));
    }
    return out;
  }

  exec::Executor executor(&pool);
  exec::Graph graph;
  for (size_t i = 0; i < n; ++i) {
    const exec::NodeId tokenize = graph.Add([this, i, &objectives, &staged,
                                             &in_flight, &staged_peak,
                                             instrument] {
      if (instrument) metrics_.objectives->Increment();
      const int64_t now = in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
      int64_t peak = staged_peak.load(std::memory_order_relaxed);
      while (now > peak && !staged_peak.compare_exchange_weak(
                               peak, now, std::memory_order_relaxed)) {
      }
      StagedObjective& obj = staged[i];
      obj.clause_texts = ClauseTexts(objectives[i]->text);
      obj.clauses.resize(obj.clause_texts.size());
      for (size_t c = 0; c < obj.clause_texts.size(); ++c) {
        TokenizeStage(obj.clause_texts[c], obj.clauses[c]);
      }
    });
    const exec::NodeId predict = graph.Add(
        [this, i, &staged] {
          for (StagedClause& clause : staged[i].clauses) {
            if (!clause.prediction.tokens.empty()) PredictStage(clause);
          }
        },
        {tokenize});
    graph.Add(
        [this, i, &objectives, &staged, &out, &in_flight] {
          StagedObjective& obj = staged[i];
          std::vector<data::DetailRecord> parts;
          parts.reserve(obj.clauses.size());
          const bool single = obj.clauses.size() == 1;
          for (size_t c = 0; c < obj.clauses.size(); ++c) {
            StagedClause& clause = obj.clauses[c];
            if (!clause.prediction.tokens.empty()) DecodeStage(clause);
            data::Objective clause_obj;
            clause_obj.id = objectives[i]->id;
            // Single-target objectives decode against the original text,
            // exactly like Extract().
            clause_obj.text =
                single ? objectives[i]->text : obj.clause_texts[c];
            parts.push_back(DecodeRecord(clause_obj, clause.prediction));
          }
          out[i] = MergeClauseRecords(*objectives[i], parts);
          staged[i] = StagedObjective{};  // Last use: free staged buffers.
          in_flight.fetch_sub(1, std::memory_order_relaxed);
        },
        {predict});
  }

  Status status = executor.Run(graph);  // Rethrows stage exceptions.
  GOALEX_CHECK_OK(status);              // Chains cannot form a cycle.
  run_stats.seconds = executor.last_run().wall_seconds;
  run_stats.busy_seconds = executor.last_run().busy_seconds;
  if (stats != nullptr) *stats = run_stats;
  if (instrument) {
    metrics_.objectives_per_second->Set(run_stats.ItemsPerSecond());
    metrics_.staged_peak->Set(
        static_cast<double>(staged_peak.load(std::memory_order_relaxed)));
  }
  return out;
}

Status DetailExtractor::Save(const std::string& directory) const {
  if (model_ == nullptr || tokenizer_ == nullptr) {
    return FailedPreconditionError("nothing to save: extractor untrained");
  }
  {
    std::ofstream out(directory + "/tokenizer.txt", std::ios::trunc);
    if (!out) {
      return InternalError("cannot write tokenizer to " + directory);
    }
    out << tokenizer_->Serialize();
  }
  {
    std::ofstream out(directory + "/config.txt", std::ios::trunc);
    if (!out) return InternalError("cannot write config to " + directory);
    out << config_.ToText();
  }
  return nn::SaveParameters(*model_, directory + "/model.bin");
}

Status DetailExtractor::Load(const std::string& directory) {
  std::ifstream in(directory + "/tokenizer.txt");
  if (!in) return NotFoundError("missing tokenizer in " + directory);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto tokenizer = bpe::BpeModel::Deserialize(buffer.str());
  if (!tokenizer.ok()) return tokenizer.status();
  tokenizer_ = std::make_unique<bpe::BpeModel>(*std::move(tokenizer));
  // Loaded models go straight to (possibly concurrent) inference: freeze
  // the tokenizer so the encode cache is immutable from here on.
  tokenizer_->Freeze();

  Rng init_rng(config_.seed);
  nn::TransformerConfig arch = config_.BuildTransformerConfig(
      static_cast<int32_t>(tokenizer_->vocab().size()));
  model_ = std::make_unique<nn::TokenClassifier>(arch, catalog_.label_count(),
                                                 init_rng);
  Status status = nn::LoadParameters(*model_, directory + "/model.bin");
  if (!status.ok()) return status;
  // LoadParameters wrote into the parameter storage in place, so compiling
  // here (or even before the load) sees the final weights.
  RebuildEngine();
  return Status::Ok();
}

}  // namespace goalex::core
