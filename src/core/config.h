#ifndef GOALEX_CORE_CONFIG_H_
#define GOALEX_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/transformer.h"
#include "weaksup/weak_labeler.h"

namespace goalex::core {

/// Transformer model families compared in Figure 4. This reproduction
/// scales the architectures down for CPU training (see DESIGN.md §3) while
/// keeping the distinctions that drive the figure: RoBERTa-like models use
/// a cased BPE tokenizer and learned position embeddings; BERT-like models
/// use an uncased tokenizer and fixed sinusoidal positions; distilled
/// variants halve the depth.
enum class ModelPreset {
  kRoberta,
  kDistilRoberta,
  kBert,
  kDistilBert,
};

/// Returns a human-readable preset name ("roberta", ...).
const char* ModelPresetName(ModelPreset preset);

/// Full configuration of the detail extraction system (development phase of
/// Figure 2). Defaults follow Section 3.3: RoBERTa, up to 10 epochs,
/// learning rate 5e-5, batch size 16, Adam.
struct ExtractorConfig {
  /// Extraction schema (entity kinds).
  std::vector<std::string> kinds;

  ModelPreset preset = ModelPreset::kRoberta;
  int32_t epochs = 10;
  /// Nominal learning rate as reported in the paper.
  float learning_rate = 5e-5f;
  /// The paper fine-tunes a pretrained 125M-parameter RoBERTa, where 5e-5
  /// is appropriate; this reproduction trains a scaled-down model from
  /// scratch, which needs a proportionally larger step. The effective rate
  /// is learning_rate * learning_rate_scale; the nominal value keeps the
  /// paper's hyperparameter axes (Figure 4) directly comparable.
  float learning_rate_scale = 20.0f;
  int32_t batch_size = 16;
  float dropout = 0.1f;
  uint64_t seed = 17;

  /// Tokenizer: number of BPE merges learned from the training corpus.
  size_t bpe_merges = 2600;
  int32_t max_seq_len = 96;

  /// Scaled-down architecture dimensions (see ModelPreset for the
  /// family-specific tokenizer/position/depth differences).
  int32_t d_model = 64;
  int32_t heads = 4;
  int32_t ffn_dim = 128;
  int32_t base_layers = 2;  ///< Distilled presets use half of this.

  /// GoalSpotter-style text normalization before tokenization.
  bool normalize_text = true;

  /// Worker threads for the corpus-scale fan-out stages (ExtractAll,
  /// LabelAll) and for the data-parallel fine-tuning loop in Train():
  /// 0 = auto (std::thread::hardware_concurrency()), 1 = serial. Outputs —
  /// including trained weights — are byte-identical for every setting
  /// (nn/trainer.h pins the gradient-reduction order); only throughput
  /// changes.
  int32_t num_threads = 0;

  /// Observability: when true, extraction and training record per-stage
  /// latency histograms, span counters, and throughput gauges into
  /// obs::MetricsRegistry::Default() (see DESIGN.md §7). Instrumentation
  /// is also gated globally by obs::SetEnabled() and can be compiled out
  /// entirely with -DGOALEX_DISABLE_METRICS; outputs never depend on it.
  bool enable_metrics = true;

  /// Production inference strategy. When true (default), Predict runs on
  /// the graph-free infer::Engine: a plan compiled once at Train()/Load()
  /// completion, executed against per-thread scratch arenas with borrowed
  /// weights. When false, Predict walks the autograd evaluation path. Both
  /// paths produce bit-identical outputs (enforced by infer_parity_test);
  /// the flag exists as an escape hatch and for A/B benchmarking.
  bool use_inference_engine = true;

  /// Packed-batch inference (DESIGN.md §14). When true (default, requires
  /// use_inference_engine), batch extraction (`ExtractAll` and the serve
  /// handler) buckets clauses by token length and runs each bucket as one
  /// padding-free packed forward with streaming-softmax attention, instead
  /// of N per-example plan executions. Float outputs stay bit-identical to
  /// the per-example engine (enforced by infer_packed_test); single-clause
  /// Extract() calls keep using the per-example plan either way.
  bool packed_inference = true;

  /// Packed-token capacity of one packed-inference bucket. Bounds peak
  /// activation memory per predict node and sets the batch-fill metric's
  /// denominator; a clause longer than this still runs, in an oversize
  /// bucket of its own.
  int32_t packed_chunk_tokens = 512;

  /// Run packed-inference linear layers as int8 (per-output-channel weight
  /// scales, per-row activation quantization, int32 accumulation —
  /// tensor/qlinear.h). Roughly another ~1.2x on packed throughput, but
  /// outputs are no longer bit-identical to float: extraction F1 stays
  /// within 0.5 points (gated by bench_micro_infer --smoke). Off by
  /// default; no effect unless packed_inference is on.
  bool quantize_int8 = false;

  /// Objective segmentation (Section 5.3 future work): at extraction time,
  /// split multi-target objectives into single-target clauses, extract per
  /// clause, and merge (first non-empty value per field wins). Off by
  /// default, matching the deployed system.
  bool segment_multi_target = false;

  /// Weak labeling options (exact matching by default, as deployed).
  weaksup::WeakLabelerOptions weak_labeler;

  /// Returns the tokenizer casing for the preset (true = lowercase).
  bool LowercaseTokenizer() const;

  /// Builds the nn-level architecture config (vocab size filled by the
  /// trainer once the tokenizer exists).
  nn::TransformerConfig BuildTransformerConfig(int32_t vocab_size) const;

  /// Effective optimizer step size.
  float EffectiveLearningRate() const {
    return learning_rate * learning_rate_scale;
  }

  /// Serializes to a line-based key=value text (used when persisting a
  /// trained model directory).
  std::string ToText() const;

  /// Parses ToText() output. Strict by design: numeric values are parsed
  /// with std::from_chars and malformed input (empty, non-numeric, trailing
  /// garbage, out of range — e.g. "epochs=abc") is rejected with an
  /// InvalidArgumentError naming the key, never silently coerced to 0;
  /// boolean keys accept only "0" or "1".
  static StatusOr<ExtractorConfig> FromText(std::string_view text);
};

/// Parses a preset name ("roberta", "distilbert", ...).
StatusOr<ModelPreset> ParseModelPreset(std::string_view name);

/// Knobs of the extraction service (src/serve): a long-running scheduler
/// that turns the batch ExtractAll path into a request/response service
/// with continuous batch formation and SLO-aware admission control (see
/// DESIGN.md §11).
struct ServeConfig {
  /// A forming batch closes as soon as it holds this many requests...
  int32_t max_batch_size = 16;

  /// ...or when the oldest waiting request has been queued this long,
  /// whichever happens first. This bounds the queueing delay a lone
  /// request pays for batching.
  double batch_deadline_ms = 5.0;

  /// Admission control: new requests are shed (Status kResourceExhausted)
  /// once this many admitted requests are waiting to be scheduled.
  /// Bulk-priority requests are shed at half this depth so interactive
  /// traffic keeps headroom under load.
  int32_t max_queue_depth = 1024;

  /// Admission control: requests are also shed when the estimated
  /// queueing delay — queue depth times the EMA of observed per-request
  /// service time — exceeds this bound. <= 0 derives the bound from the
  /// SLO: slo_p99_ms - batch_deadline_ms (the queue may consume whatever
  /// part of the latency budget batch formation does not).
  double max_queue_delay_ms = 0.0;

  /// End-to-end p99 latency target the service is operated against. Used
  /// to derive the shed threshold (above) and reported against by
  /// bench_serve; the scheduler itself never drops an admitted request.
  double slo_p99_ms = 50.0;

  /// Worker threads of the BatchRunner the service dispatches batches
  /// onto: 0 = auto, 1 = serial (inference runs on the scheduler thread).
  int32_t num_threads = 1;

  /// EMA smoothing factor for the per-request service-time estimate in
  /// (0, 1]; higher adapts faster, lower rides out bursts.
  double service_time_ema_alpha = 0.2;

  /// WAL durability policy of the result database when the service runs
  /// against an attached (Open()ed) ObjectiveDatabase — forwarded to
  /// DbOptions::wal_fsync_interval. 1 fsyncs every record (crash-safe
  /// default), N > 1 every N-th record (bounded loss window, higher
  /// ingest throughput), 0 never (the OS decides when to flush).
  int32_t db_wal_fsync_interval = 1;

  /// Effective queue-delay bound in seconds (resolves the <= 0 default).
  double EffectiveQueueDelaySeconds() const {
    double ms = max_queue_delay_ms > 0.0 ? max_queue_delay_ms
                                         : slo_p99_ms - batch_deadline_ms;
    return ms > 0.0 ? ms / 1000.0 : 0.0;
  }

  /// Rejects non-positive sizes/deadlines and out-of-range alpha.
  Status Validate() const;
};

}  // namespace goalex::core

#endif  // GOALEX_CORE_CONFIG_H_
