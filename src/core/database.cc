#include "core/database.h"

#include <sstream>

namespace goalex::core {
namespace {

std::string CsvEscape(const std::string& raw) {
  bool needs_quote = raw.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

int64_t ObjectiveDatabase::Insert(const data::DetailRecord& record,
                                  const std::string& company,
                                  const std::string& document, int page) {
  DbRow row;
  row.row_id = static_cast<int64_t>(rows_.size());
  row.company = company;
  row.document = document;
  row.page = page;
  row.record = record;
  company_index_.emplace(company, rows_.size());
  rows_.push_back(std::move(row));
  return rows_.back().row_id;
}

std::vector<const DbRow*> ObjectiveDatabase::ByCompany(
    const std::string& company) const {
  std::vector<const DbRow*> out;
  auto [begin, end] = company_index_.equal_range(company);
  for (auto it = begin; it != end; ++it) out.push_back(&rows_[it->second]);
  return out;
}

std::vector<const DbRow*> ObjectiveDatabase::WithField(
    const std::string& kind) const {
  std::vector<const DbRow*> out;
  for (const DbRow& row : rows_) {
    if (!row.record.FieldOrEmpty(kind).empty()) out.push_back(&row);
  }
  return out;
}

std::vector<const DbRow*> ObjectiveDatabase::WhereFieldEquals(
    const std::string& kind, const std::string& value) const {
  std::vector<const DbRow*> out;
  for (const DbRow& row : rows_) {
    if (row.record.FieldOrEmpty(kind) == value) out.push_back(&row);
  }
  return out;
}

std::map<std::string, int64_t> ObjectiveDatabase::CountPerCompany() const {
  std::map<std::string, int64_t> out;
  for (const DbRow& row : rows_) ++out[row.company];
  return out;
}

std::map<std::string, double> ObjectiveDatabase::FieldCoverageByCompany(
    const std::string& kind) const {
  std::map<std::string, int64_t> total;
  std::map<std::string, int64_t> with_field;
  for (const DbRow& row : rows_) {
    ++total[row.company];
    if (!row.record.FieldOrEmpty(kind).empty()) ++with_field[row.company];
  }
  std::map<std::string, double> out;
  for (const auto& [company, count] : total) {
    out[company] =
        static_cast<double>(with_field[company]) / static_cast<double>(count);
  }
  return out;
}

std::string ObjectiveDatabase::ExportCsv(
    const std::vector<std::string>& kinds) const {
  std::ostringstream out;
  out << "row_id,company,document,page,objective";
  for (const std::string& kind : kinds) out << ',' << CsvEscape(kind);
  out << '\n';
  for (const DbRow& row : rows_) {
    out << row.row_id << ',' << CsvEscape(row.company) << ','
        << CsvEscape(row.document) << ',' << row.page << ','
        << CsvEscape(row.record.objective_text);
    for (const std::string& kind : kinds) {
      out << ',' << CsvEscape(row.record.FieldOrEmpty(kind));
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace goalex::core
