#include "core/database.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/scope.h"
#include "storage/row.h"
#include "values/value_normalizer.h"

namespace goalex::core {
namespace {

std::string CsvEscape(const std::string& raw) {
  // RFC 4180: quote when the field contains a separator, a quote, or any
  // line-break byte. CR matters as much as LF — a bare carriage return in
  // objective text would otherwise split the row in most readers.
  bool needs_quote = raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void SortByRowId(std::vector<DbRow>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const DbRow& a, const DbRow& b) { return a.row_id < b.row_id; });
}

// --- Legacy v1 binary snapshot (SaveLegacy / LoadLegacyFile) ---------------

constexpr char kMagic[8] = {'G', 'O', 'A', 'L', 'E', 'X', 'D', 'B'};
constexpr uint32_t kLegacyFormatVersion = 1;
constexpr uint64_t kMaxStringBytes = uint64_t{1} << 30;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI32(std::ostream& out, int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadU64(std::istream& in, uint64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadI64(std::istream& in, int64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadI32(std::istream& in, int32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t size = 0;
  if (!ReadU64(in, &size) || size > kMaxStringBytes) return false;
  s->resize(size);
  return static_cast<bool>(
      in.read(s->data(), static_cast<std::streamsize>(size)));
}

std::string SnapshotPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "objectives.db").string();
}

std::string SegmentFileName(size_t shard_index, uint64_t sequence) {
  return "seg-" + std::to_string(shard_index) + "-" +
         std::to_string(sequence) + ".gxseg";
}

std::string WalFileName(size_t shard_index) {
  return "wal-" + std::to_string(shard_index) + ".log";
}

/// The WAL framing overhead per record: [u32 crc][u32 len].
constexpr uint64_t kWalRecordHeaderBytes = 8;

// --- QueryText helpers -----------------------------------------------------

struct ParsedTextQuery {
  /// Distinct terms, all of which must appear in a matching row.
  std::vector<std::string> terms;
  /// Multi-term phrases that must additionally appear contiguously.
  std::vector<std::vector<std::string>> phrases;
};

/// Splits `query` into bare terms and "quoted phrases". Phrase terms also
/// join the AND term set (the index prunes candidates; contiguity is
/// checked on the materialized row). An unterminated quote runs to the end
/// of the query.
ParsedTextQuery ParseTextQuery(const std::string& query) {
  ParsedTextQuery parsed;
  std::string bare;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t open = query.find('"', pos);
    if (open == std::string::npos) {
      bare.append(query, pos, query.size() - pos);
      break;
    }
    bare.append(query, pos, open - pos);
    bare.push_back(' ');
    size_t close = query.find('"', open + 1);
    std::string inside = close == std::string::npos
                             ? query.substr(open + 1)
                             : query.substr(open + 1, close - open - 1);
    std::vector<std::string> terms = storage::TextIndexTerms(inside);
    for (const std::string& term : terms) parsed.terms.push_back(term);
    if (terms.size() > 1) parsed.phrases.push_back(std::move(terms));
    pos = close == std::string::npos ? query.size() : close + 1;
  }
  for (std::string& term : storage::TextIndexTerms(bare)) {
    parsed.terms.push_back(std::move(term));
  }
  std::sort(parsed.terms.begin(), parsed.terms.end());
  parsed.terms.erase(std::unique(parsed.terms.begin(), parsed.terms.end()),
                     parsed.terms.end());
  return parsed;
}

/// True when every phrase appears contiguously in the row's objective text
/// or in one of its non-empty field values.
bool RowMatchesPhrases(const DbRow& row,
                       const std::vector<std::vector<std::string>>& phrases) {
  for (const std::vector<std::string>& phrase : phrases) {
    if (storage::ContainsPhrase(row.record.objective_text, phrase)) continue;
    bool matched = false;
    for (const auto& [kind, value] : row.record.fields) {
      if (!value.empty() && storage::ContainsPhrase(value, phrase)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

/// Intersects a sorted candidate vector with a sorted posting list.
std::vector<uint32_t> IntersectWithView(const std::vector<uint32_t>& a,
                                        const storage::PostingsView& b) {
  std::vector<uint32_t> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    uint32_t x = a[i], y = b.At(j);
    if (x == y) {
      out.push_back(x);
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

template <typename T>
std::vector<T> IntersectSorted(const std::vector<T>& a,
                               const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Year bounds for a deadline filter, clamped to values YearKey encodes
/// losslessly (NormalizeYear never leaves this range).
constexpr int kMinFilterYear = -1000000;
constexpr int kMaxFilterYear = 1000000;

// --- Versioned-upsert helpers ----------------------------------------------

void SetRecordVersion(data::DetailRecord* record, int32_t version) {
  record->fields[kVersionField] = std::to_string(version);
}

void SetRecordSequence(data::DetailRecord* record, int64_t sequence) {
  record->fields[kSequenceField] = std::to_string(sequence);
}

/// True when two rows of the same objective identity carry identical
/// content — metadata, text, and every field including _version (callers
/// build the candidate with the live row's version, so a pure restatement
/// compares equal and becomes a no-op).
bool SameObjectiveContent(const DbRow& a, const DbRow& b) {
  return a.company == b.company && a.document == b.document &&
         a.page == b.page && a.record.objective_id == b.record.objective_id &&
         a.record.objective_text == b.record.objective_text &&
         a.record.fields == b.record.fields;
}

}  // namespace

int32_t RecordVersion(const data::DetailRecord& record) {
  const std::string value = record.FieldOrEmpty(kVersionField);
  if (value.empty()) return 1;
  int version = std::atoi(value.c_str());
  return version >= 1 ? version : 1;
}

int64_t RecordSequence(const data::DetailRecord& record) {
  const std::string value = record.FieldOrEmpty(kSequenceField);
  if (value.empty()) return -1;
  int64_t sequence = std::atoll(value.c_str());
  return sequence >= 0 ? sequence : -1;
}

std::string ObjectiveUpsertKey(const std::string& company,
                               const data::DetailRecord& record) {
  std::string action = record.FieldOrEmpty("Action");
  std::string lemma =
      action.empty() ? std::string() : values::NormalizeAction(action);
  std::string qualifier =
      AsciiToLower(StripAsciiWhitespace(record.FieldOrEmpty("Qualifier")));
  std::string key;
  key.reserve(company.size() + lemma.size() + qualifier.size() + 3);
  key += company;
  key += '\x1f';
  key += lemma;
  key += '\x1f';
  key += qualifier;
  if (lemma.empty() && qualifier.empty()) {
    key += AsciiToLower(StripAsciiWhitespace(record.objective_text));
  }
  return key;
}

void ObjectiveDatabase::Growing::Clear() {
  rows.clear();
  by_company.clear();
  by_field.clear();
  by_field_value.clear();
  by_deadline_year.clear();
  by_term.clear();
  field_count_by_company.clear();
}

ObjectiveDatabase::ObjectiveDatabase(int num_shards, DbOptions options)
    : options_(options),
      env_(options.env != nullptr ? options.env : storage::Env::Default()) {
  if (obs::Active()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    insert_seconds_ = registry.GetLatencyHistogram("db.insert.seconds");
    query_seconds_ = registry.GetLatencyHistogram("db.query.seconds");
    mmap_load_seconds_ = registry.GetLatencyHistogram("db.mmap_load.seconds");
    insert_counter_ = registry.GetCounter("db.inserts");
    query_counter_ = registry.GetCounter("db.queries");
    wal_append_counter_ = registry.GetCounter("db.wal.appends");
    wal_error_counter_ = registry.GetCounter("db.wal.errors");
    wal_replayed_counter_ = registry.GetCounter("db.wal.replayed_records");
    wal_truncated_bytes_counter_ =
        registry.GetCounter("db.wal.truncated_bytes");
    seal_counter_ = registry.GetCounter("db.segment.seals");
    seal_error_counter_ = registry.GetCounter("db.segment.seal_errors");
    rows_gauge_ = registry.GetGauge("db.rows");
    rows_per_shard_gauge_ = registry.GetGauge("db.rows_per_shard");
    segments_gauge_ = registry.GetGauge("db.segments");
    if (options.track_upserts) {
      upsert_inserted_counter_ = registry.GetCounter("db.upserts.inserted");
      upsert_updated_counter_ = registry.GetCounter("db.upserts.updated");
      upsert_unchanged_counter_ = registry.GetCounter("db.upserts.unchanged");
      superseded_gauge_ = registry.GetGauge("db.superseded_rows");
    }
  }
  ResetShards(num_shards);
}

ObjectiveDatabase::~ObjectiveDatabase() { StopSealer(); }

void ObjectiveDatabase::ResetShards(int count) {
  if (count < 1) count = 1;
  std::vector<std::unique_ptr<Shard>> fresh;
  fresh.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) fresh.push_back(std::make_unique<Shard>());
  shards_.swap(fresh);
  size_.store(0, std::memory_order_release);
  next_id_.store(0, std::memory_order_relaxed);
  superseded_count_.store(0, std::memory_order_release);
  if (superseded_gauge_ != nullptr) superseded_gauge_->Set(0.0);
  if (obs::Active()) {
    obs::MetricsRegistry::Default().GetGauge("db.shards")->Set(
        static_cast<double>(count));
  }
}

size_t ObjectiveDatabase::ShardIndexFor(const std::string& company) const {
  return std::hash<std::string>{}(company) % shards_.size();
}

namespace {

/// Inserts `ordinal` into a sorted posting vector. Appends are O(1) past
/// the lower_bound probe (the common Insert path passes the largest
/// ordinal); in-place updates land mid-vector.
void InsertOrdinal(std::vector<size_t>& postings, size_t ordinal) {
  auto it = std::lower_bound(postings.begin(), postings.end(), ordinal);
  if (it != postings.end() && *it == ordinal) return;
  postings.insert(it, ordinal);
}

/// Removes `ordinal` from a sorted posting vector; returns true when the
/// vector emptied out (the caller should erase the index entry).
bool EraseOrdinal(std::vector<size_t>& postings, size_t ordinal) {
  auto it = std::lower_bound(postings.begin(), postings.end(), ordinal);
  if (it != postings.end() && *it == ordinal) postings.erase(it);
  return postings.empty();
}

/// The distinct text-index terms of a row — the same set SegmentBuilder
/// freezes at seal time.
std::set<std::string> RowTerms(const DbRow& row) {
  std::set<std::string> terms;
  for (std::string& term :
       storage::TextIndexTerms(row.record.objective_text)) {
    terms.insert(std::move(term));
  }
  for (const auto& [kind, value] : row.record.fields) {
    if (value.empty()) continue;
    for (std::string& term : storage::TextIndexTerms(value)) {
      terms.insert(std::move(term));
    }
  }
  return terms;
}

}  // namespace

void ObjectiveDatabase::IndexGrowingRowLocked(Growing& growing,
                                              const DbRow& row,
                                              size_t ordinal) {
  InsertOrdinal(growing.by_company[row.company], ordinal);
  for (const auto& [kind, value] : row.record.fields) {
    if (value.empty()) continue;
    InsertOrdinal(growing.by_field[kind], ordinal);
    InsertOrdinal(growing.by_field_value[kind][value], ordinal);
    ++growing.field_count_by_company[row.company][kind];
  }
  if (std::optional<int> year = storage::DeadlineYearOfRecord(row.record)) {
    InsertOrdinal(growing.by_deadline_year[*year], ordinal);
  }
  for (const std::string& term : RowTerms(row)) {
    InsertOrdinal(growing.by_term[term], ordinal);
  }
}

void ObjectiveDatabase::DeindexGrowingRowLocked(Growing& growing,
                                                const DbRow& row,
                                                size_t ordinal) {
  auto company_it = growing.by_company.find(row.company);
  if (company_it != growing.by_company.end() &&
      EraseOrdinal(company_it->second, ordinal)) {
    growing.by_company.erase(company_it);
  }
  for (const auto& [kind, value] : row.record.fields) {
    if (value.empty()) continue;
    auto field_it = growing.by_field.find(kind);
    if (field_it != growing.by_field.end() &&
        EraseOrdinal(field_it->second, ordinal)) {
      growing.by_field.erase(field_it);
    }
    auto kind_it = growing.by_field_value.find(kind);
    if (kind_it != growing.by_field_value.end()) {
      auto value_it = kind_it->second.find(value);
      if (value_it != kind_it->second.end() &&
          EraseOrdinal(value_it->second, ordinal)) {
        kind_it->second.erase(value_it);
      }
      if (kind_it->second.empty()) growing.by_field_value.erase(kind_it);
    }
    auto counts_it = growing.field_count_by_company.find(row.company);
    if (counts_it != growing.field_count_by_company.end()) {
      auto count_it = counts_it->second.find(kind);
      if (count_it != counts_it->second.end() && --count_it->second <= 0) {
        counts_it->second.erase(count_it);
      }
      if (counts_it->second.empty()) {
        growing.field_count_by_company.erase(counts_it);
      }
    }
  }
  if (std::optional<int> year = storage::DeadlineYearOfRecord(row.record)) {
    auto year_it = growing.by_deadline_year.find(*year);
    if (year_it != growing.by_deadline_year.end() &&
        EraseOrdinal(year_it->second, ordinal)) {
      growing.by_deadline_year.erase(year_it);
    }
  }
  for (const std::string& term : RowTerms(row)) {
    auto term_it = growing.by_term.find(term);
    if (term_it != growing.by_term.end() &&
        EraseOrdinal(term_it->second, ordinal)) {
      growing.by_term.erase(term_it);
    }
  }
}

void ObjectiveDatabase::ReplaceGrowingLocked(Shard& shard, size_t ordinal,
                                             DbRow row) {
  DbRow& slot = shard.growing.rows[ordinal];
  DeindexGrowingRowLocked(shard.growing, slot, ordinal);
  slot = std::move(row);
  IndexGrowingRowLocked(shard.growing, slot, ordinal);
}

std::optional<size_t> ObjectiveDatabase::FindGrowingOrdinalLocked(
    const Shard& shard, int64_t row_id) {
  const std::deque<DbRow>& rows = shard.growing.rows;
  auto it = std::lower_bound(
      rows.begin(), rows.end(), row_id,
      [](const DbRow& row, int64_t id) { return row.row_id < id; });
  if (it == rows.end() || it->row_id != row_id) return std::nullopt;
  return static_cast<size_t>(it - rows.begin());
}

std::optional<DbRow> ObjectiveDatabase::ReadSealedRowLocked(
    const Shard& shard, int64_t row_id) {
  for (const auto& segment : shard.sealed) {
    if (row_id < segment->min_row_id() || row_id > segment->max_row_id()) {
      continue;
    }
    if (std::optional<uint64_t> ordinal = segment->FindRowId(row_id)) {
      DbRow row;
      if (segment->ReadRow(*ordinal, &row)) return row;
    }
  }
  return std::nullopt;
}

void ObjectiveDatabase::AppendGrowingLocked(Shard& shard, DbRow row) {
  IndexGrowingRowLocked(shard.growing, row, shard.growing.rows.size());
  shard.growing.rows.push_back(std::move(row));
}

void ObjectiveDatabase::RebuildGrowingLocked(Shard& shard) {
  Growing& growing = shard.growing;
  growing.by_company.clear();
  growing.by_field.clear();
  growing.by_field_value.clear();
  growing.by_deadline_year.clear();
  growing.by_term.clear();
  growing.field_count_by_company.clear();
  size_t ordinal = 0;
  for (const DbRow& row : growing.rows) {
    IndexGrowingRowLocked(growing, row, ordinal++);
  }
}

void ObjectiveDatabase::LogRowLocked(Shard& shard, const DbRow& row) {
  if (shard.wal == nullptr) return;
  std::string payload;
  storage::EncodeRow(row, &payload);
  Status logged = shard.wal->Append(payload);
  if (logged.ok()) {
    if (wal_append_counter_ != nullptr) wal_append_counter_->Increment();
  } else if (wal_error_counter_ != nullptr) {
    wal_error_counter_->Increment();
  }
}

int64_t ObjectiveDatabase::Insert(const data::DetailRecord& record,
                                  const std::string& company,
                                  const std::string& document, int page) {
  obs::ScopedTimer timer(insert_seconds_);
  size_t shard_index = ShardIndexFor(company);
  Shard& shard = *shards_[shard_index];
  int64_t id;
  bool want_seal = false;
  {
    std::unique_lock lock(shard.mu);
    // Id assignment happens under the shard lock so each shard's rows stay
    // sorted by row id (Get binary-searches on that invariant, and the WAL
    // records land in id order).
    id = next_id_.fetch_add(1, std::memory_order_relaxed);
    DbRow row;
    row.row_id = id;
    row.company = company;
    row.document = document;
    row.page = page;
    row.record = record;
    LogRowLocked(shard, row);
    if (options_.track_upserts) {
      // Insert bypasses dedup by design, but keep the identity map
      // coherent for later Upserts: the newest row wins the key.
      shard.latest_by_key[ObjectiveUpsertKey(company, record)] = id;
    }
    AppendGrowingLocked(shard, std::move(row));
    want_seal =
        attached_.load(std::memory_order_acquire) &&
        options_.seal_threshold > 0 &&
        shard.growing.rows.size() >=
            static_cast<size_t>(options_.seal_threshold);
  }
  size_t total = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (insert_counter_ != nullptr) {
    insert_counter_->Increment();
    UpdateRowGauges(total);
  }
  if (want_seal) RequestSeal(shard_index);
  return id;
}

UpsertResult ObjectiveDatabase::Upsert(const data::DetailRecord& record,
                                       const std::string& company,
                                       const std::string& document,
                                       int page, int64_t source_sequence) {
  GOALEX_CHECK_MSG(options_.track_upserts,
                   "Upsert requires DbOptions::track_upserts");
  obs::ScopedTimer timer(insert_seconds_);
  size_t shard_index = ShardIndexFor(company);
  Shard& shard = *shards_[shard_index];
  std::string key = ObjectiveUpsertKey(company, record);
  UpsertResult result;
  bool appended_row = false;
  bool want_seal = false;
  {
    std::unique_lock lock(shard.mu);
    auto make_row = [&](int64_t id, int32_t version) {
      DbRow row;
      row.row_id = id;
      row.company = company;
      row.document = document;
      row.page = page;
      row.record = record;
      SetRecordVersion(&row.record, version);
      if (source_sequence >= 0) {
        SetRecordSequence(&row.record, source_sequence);
      }
      return row;
    };
    auto key_it = shard.latest_by_key.find(key);
    if (key_it == shard.latest_by_key.end()) {
      // First sighting of this objective identity.
      result.row_id = next_id_.fetch_add(1, std::memory_order_relaxed);
      result.version = 1;
      result.inserted = true;
      DbRow row = make_row(result.row_id, 1);
      LogRowLocked(shard, row);
      AppendGrowingLocked(shard, std::move(row));
      shard.latest_by_key.emplace(std::move(key), result.row_id);
      appended_row = true;
    } else {
      int64_t live_id = key_it->second;
      bool live_in_growing = live_id > shard.max_sealed_id;
      std::optional<size_t> ordinal;
      std::optional<DbRow> old;
      if (live_in_growing) {
        ordinal = FindGrowingOrdinalLocked(shard, live_id);
        GOALEX_CHECK_MSG(ordinal.has_value(),
                         "live row " << live_id << " missing from growing");
        old = shard.growing.rows[*ordinal];
      } else {
        old = ReadSealedRowLocked(shard, live_id);
        GOALEX_CHECK_MSG(old.has_value(),
                         "live row " << live_id << " missing from segments");
      }
      int32_t old_version = RecordVersion(old->record);
      const int64_t live_sequence = RecordSequence(old->record);
      if (source_sequence >= 0 && live_sequence >= 0 &&
          source_sequence < live_sequence) {
        // A replayed historical publication of this target: the feed
        // already delivered something newer. Drop it — re-applying old
        // content would walk the row backwards through its history.
        result.row_id = live_id;
        result.version = old_version;
        result.stale = true;
      } else {
        DbRow fresh = make_row(live_id, old_version);
        if (SameObjectiveContent(*old, fresh)) {
          // Byte-identical restatement: replaying a feed is idempotent.
          result.row_id = live_id;
          result.version = old_version;
        } else {
          result.version = old_version + 1;
          result.updated = true;
          SetRecordVersion(&fresh.record, result.version);
          if (live_in_growing) {
            // Update in place: same row id, WAL re-logs it (replay
            // replaces the original record by id).
            result.row_id = live_id;
            LogRowLocked(shard, fresh);
            ReplaceGrowingLocked(shard, *ordinal, std::move(fresh));
          } else {
            // The live row is frozen in a sealed segment. New versions
            // must keep growing ids above max_sealed_id, so the update
            // becomes a fresh row and the sealed one is masked via the
            // overlay.
            result.row_id = next_id_.fetch_add(1, std::memory_order_relaxed);
            fresh.row_id = result.row_id;
            LogRowLocked(shard, fresh);
            AppendGrowingLocked(shard, std::move(fresh));
            shard.superseded.emplace(live_id, std::move(*old));
            superseded_count_.fetch_add(1, std::memory_order_acq_rel);
            key_it->second = result.row_id;
            appended_row = true;
          }
        }
      }
    }
    want_seal =
        appended_row && attached_.load(std::memory_order_acquire) &&
        options_.seal_threshold > 0 &&
        shard.growing.rows.size() >=
            static_cast<size_t>(options_.seal_threshold);
  }
  if (appended_row) {
    size_t total = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (insert_counter_ != nullptr) {
      insert_counter_->Increment();
      UpdateRowGauges(total);
    }
  }
  if (result.inserted) {
    if (upsert_inserted_counter_ != nullptr) {
      upsert_inserted_counter_->Increment();
    }
  } else if (result.updated) {
    if (upsert_updated_counter_ != nullptr) upsert_updated_counter_->Increment();
  } else if (upsert_unchanged_counter_ != nullptr) {
    upsert_unchanged_counter_->Increment();
  }
  if (superseded_gauge_ != nullptr) {
    superseded_gauge_->Set(
        static_cast<double>(superseded_count_.load(std::memory_order_acquire)));
  }
  if (want_seal) RequestSeal(shard_index);
  return result;
}

void ObjectiveDatabase::UpdateRowGauges(size_t total) const {
  if (rows_gauge_ == nullptr) return;
  rows_gauge_->Set(static_cast<double>(total));
  rows_per_shard_gauge_->Set(static_cast<double>(total) /
                             static_cast<double>(shards_.size()));
}

std::vector<size_t> ObjectiveDatabase::RowsPerShard() const {
  std::vector<size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    size_t rows = shard->growing.rows.size();
    for (const auto& segment : shard->sealed) rows += segment->num_rows();
    out.push_back(rows);
  }
  return out;
}

size_t ObjectiveDatabase::SealedSegmentCount() const {
  size_t count = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    count += shard->sealed.size();
  }
  return count;
}

obs::Histogram* ObjectiveDatabase::QueryHistogram() const {
  if (query_counter_ != nullptr) query_counter_->Increment();
  return query_seconds_;
}

std::optional<DbRow> ObjectiveDatabase::Get(int64_t row_id) const {
  obs::ScopedTimer timer(QueryHistogram());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      if (row_id < segment->min_row_id() || row_id > segment->max_row_id()) {
        continue;
      }
      if (std::optional<uint64_t> ordinal = segment->FindRowId(row_id)) {
        DbRow row;
        if (segment->ReadRow(*ordinal, &row)) return row;
      }
    }
    const std::deque<DbRow>& rows = shard->growing.rows;
    auto it = std::lower_bound(
        rows.begin(), rows.end(), row_id,
        [](const DbRow& row, int64_t id) { return row.row_id < id; });
    if (it != rows.end() && it->row_id == row_id) return *it;
  }
  return std::nullopt;
}

void ObjectiveDatabase::CollectGrowing(const Shard& shard,
                                       const std::vector<size_t>& ordinals,
                                       std::vector<DbRow>* out) {
  for (size_t ordinal : ordinals) {
    const DbRow& row = shard.growing.rows[ordinal];
    if (!shard.superseded.empty() &&
        shard.superseded.count(row.row_id) > 0) {
      continue;
    }
    out->push_back(row);
  }
}

void ObjectiveDatabase::CollectSealed(const Shard& shard,
                                      const storage::SealedSegment& segment,
                                      const storage::PostingsView& postings,
                                      std::vector<DbRow>* out) {
  for (size_t i = 0; i < postings.size(); ++i) {
    DbRow row;
    if (!segment.ReadRow(postings.At(i), &row)) continue;
    if (!shard.superseded.empty() &&
        shard.superseded.count(row.row_id) > 0) {
      continue;
    }
    out->push_back(std::move(row));
  }
}

std::vector<DbRow> ObjectiveDatabase::ByCompany(
    const std::string& company) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  const Shard& shard = *shards_[ShardIndexFor(company)];
  std::shared_lock lock(shard.mu);
  for (const auto& segment : shard.sealed) {
    CollectSealed(shard, *segment,
                  segment->Postings(storage::SegmentIndex::kCompany, company),
                  &out);
  }
  auto it = shard.growing.by_company.find(company);
  if (it != shard.growing.by_company.end()) {
    CollectGrowing(shard, it->second, &out);
  }
  return out;  // Sealed segments then growing is ascending row id.
}

std::vector<DbRow> ObjectiveDatabase::WithField(
    const std::string& kind) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      CollectSealed(*shard, *segment,
                    segment->Postings(storage::SegmentIndex::kFieldKind, kind),
                    &out);
    }
    auto it = shard->growing.by_field.find(kind);
    if (it != shard->growing.by_field.end()) {
      CollectGrowing(*shard, it->second, &out);
    }
  }
  SortByRowId(&out);
  return out;
}

std::vector<DbRow> ObjectiveDatabase::WhereFieldEquals(
    const std::string& kind, const std::string& value) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  std::string key = storage::FieldValueKey(kind, value);
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      CollectSealed(*shard, *segment,
                    segment->Postings(storage::SegmentIndex::kFieldValue, key),
                    &out);
    }
    auto kind_it = shard->growing.by_field_value.find(kind);
    if (kind_it == shard->growing.by_field_value.end()) continue;
    auto value_it = kind_it->second.find(value);
    if (value_it == kind_it->second.end()) continue;
    CollectGrowing(*shard, value_it->second, &out);
  }
  SortByRowId(&out);
  return out;
}

std::vector<DbRow> ObjectiveDatabase::ByDeadlineYear(int year) const {
  return DeadlineYearBetween(year, year);
}

std::vector<DbRow> ObjectiveDatabase::DeadlineYearBetween(
    int min_year, int max_year) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      segment->ForEachYearInRange(
          min_year, max_year, [&](const storage::PostingsView& postings) {
            CollectSealed(*shard, *segment, postings, &out);
          });
    }
    const auto& by_year = shard->growing.by_deadline_year;
    for (auto it = by_year.lower_bound(min_year);
         it != by_year.end() && it->first <= max_year; ++it) {
      CollectGrowing(*shard, it->second, &out);
    }
  }
  SortByRowId(&out);
  return out;
}

std::vector<DbRow> ObjectiveDatabase::QueryText(
    const std::string& query, const TextFilter& filter) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  ParsedTextQuery parsed = ParseTextQuery(query);
  bool use_year = filter.min_deadline_year.has_value() ||
                  filter.max_deadline_year.has_value();
  bool has_filter =
      !filter.company.empty() || !filter.with_field.empty() || use_year;
  if (parsed.terms.empty() && !has_filter) return out;
  int min_year = filter.min_deadline_year.value_or(kMinFilterYear);
  int max_year = filter.max_deadline_year.value_or(kMaxFilterYear);

  auto eval_segment = [&](const Shard& shard,
                          const storage::SealedSegment& segment) {
    // Gather every posting list the row must appear in; any empty list
    // rules the whole segment out.
    std::vector<storage::PostingsView> views;
    for (const std::string& term : parsed.terms) {
      storage::PostingsView view =
          segment.Postings(storage::SegmentIndex::kText, term);
      if (view.empty()) return;
      views.push_back(view);
    }
    if (!filter.company.empty()) {
      storage::PostingsView view =
          segment.Postings(storage::SegmentIndex::kCompany, filter.company);
      if (view.empty()) return;
      views.push_back(view);
    }
    if (!filter.with_field.empty()) {
      storage::PostingsView view = segment.Postings(
          storage::SegmentIndex::kFieldKind, filter.with_field);
      if (view.empty()) return;
      views.push_back(view);
    }
    std::vector<uint32_t> year_rows;
    if (use_year) {
      segment.ForEachYearInRange(
          min_year, max_year, [&](const storage::PostingsView& postings) {
            for (size_t i = 0; i < postings.size(); ++i) {
              year_rows.push_back(postings.At(i));
            }
          });
      std::sort(year_rows.begin(), year_rows.end());
      if (year_rows.empty()) return;
    }
    std::vector<uint32_t> candidates;
    if (!views.empty()) {
      size_t smallest = 0;
      for (size_t i = 1; i < views.size(); ++i) {
        if (views[i].size() < views[smallest].size()) smallest = i;
      }
      candidates.reserve(views[smallest].size());
      for (size_t i = 0; i < views[smallest].size(); ++i) {
        candidates.push_back(views[smallest].At(i));
      }
      for (size_t i = 0; i < views.size(); ++i) {
        if (i == smallest) continue;
        candidates = IntersectWithView(candidates, views[i]);
        if (candidates.empty()) return;
      }
      if (use_year) candidates = IntersectSorted(candidates, year_rows);
    } else {
      candidates = std::move(year_rows);
    }
    for (uint32_t ordinal : candidates) {
      DbRow row;
      if (!segment.ReadRow(ordinal, &row)) continue;
      if (!shard.superseded.empty() &&
          shard.superseded.count(row.row_id) > 0) {
        continue;
      }
      if (!RowMatchesPhrases(row, parsed.phrases)) continue;
      out.push_back(std::move(row));
    }
  };

  auto eval_growing = [&](const Shard& shard) {
    const Growing& growing = shard.growing;
    if (growing.rows.empty()) return;
    std::vector<const std::vector<size_t>*> lists;
    for (const std::string& term : parsed.terms) {
      auto it = growing.by_term.find(term);
      if (it == growing.by_term.end()) return;
      lists.push_back(&it->second);
    }
    if (!filter.company.empty()) {
      auto it = growing.by_company.find(filter.company);
      if (it == growing.by_company.end()) return;
      lists.push_back(&it->second);
    }
    if (!filter.with_field.empty()) {
      auto it = growing.by_field.find(filter.with_field);
      if (it == growing.by_field.end()) return;
      lists.push_back(&it->second);
    }
    std::vector<size_t> year_rows;
    if (use_year) {
      for (auto it = growing.by_deadline_year.lower_bound(min_year);
           it != growing.by_deadline_year.end() && it->first <= max_year;
           ++it) {
        year_rows.insert(year_rows.end(), it->second.begin(),
                         it->second.end());
      }
      std::sort(year_rows.begin(), year_rows.end());
      if (year_rows.empty()) return;
    }
    std::vector<size_t> candidates;
    if (!lists.empty()) {
      size_t smallest = 0;
      for (size_t i = 1; i < lists.size(); ++i) {
        if (lists[i]->size() < lists[smallest]->size()) smallest = i;
      }
      candidates = *lists[smallest];
      for (size_t i = 0; i < lists.size(); ++i) {
        if (i == smallest) continue;
        candidates = IntersectSorted(candidates, *lists[i]);
        if (candidates.empty()) return;
      }
      if (use_year) candidates = IntersectSorted(candidates, year_rows);
    } else {
      candidates = std::move(year_rows);
    }
    for (size_t ordinal : candidates) {
      const DbRow& row = growing.rows[ordinal];
      if (!shard.superseded.empty() &&
          shard.superseded.count(row.row_id) > 0) {
        continue;
      }
      if (!RowMatchesPhrases(row, parsed.phrases)) continue;
      out.push_back(row);
    }
  };

  auto visit_shard = [&](const Shard& shard) {
    std::shared_lock lock(shard.mu);
    for (const auto& segment : shard.sealed) eval_segment(shard, *segment);
    eval_growing(shard);
  };

  if (!filter.company.empty()) {
    // Rows of one company live in exactly one shard.
    visit_shard(*shards_[ShardIndexFor(filter.company)]);
  } else {
    for (const auto& shard : shards_) visit_shard(*shard);
  }
  SortByRowId(&out);
  return out;
}

std::vector<std::string> ObjectiveDatabase::Companies() const {
  obs::ScopedTimer timer(QueryHistogram());
  std::set<std::string> names;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      segment->ForEachKey(
          storage::SegmentIndex::kCompany,
          [&](std::string_view name) { names.insert(std::string(name)); });
    }
    for (const auto& [company, ordinals] : shard->growing.by_company) {
      names.insert(company);
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

std::map<std::string, int64_t> ObjectiveDatabase::CountPerCompany() const {
  obs::ScopedTimer timer(QueryHistogram());
  std::map<std::string, int64_t> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      for (const auto& [company, count] : segment->company_rows()) {
        out[company] += count;
      }
    }
    for (const auto& [company, ordinals] : shard->growing.by_company) {
      out[company] += static_cast<int64_t>(ordinals.size());
    }
    // The sealed per-company counts (and the growing index, for stale
    // duplicates found on load) include rows masked by a newer version;
    // subtract their stored copies. The overlay is small — a handful of
    // restated objectives, not a row scan.
    for (const auto& [row_id, row] : shard->superseded) {
      auto it = out.find(row.company);
      if (it != out.end() && --it->second <= 0) out.erase(it);
    }
  }
  return out;
}

std::map<std::string, double> ObjectiveDatabase::FieldCoverageByCompany(
    const std::string& kind) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::map<std::string, int64_t> totals;
  std::map<std::string, int64_t> with_field;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& segment : shard->sealed) {
      for (const auto& [company, count] : segment->company_rows()) {
        totals[company] += count;
        auto it =
            segment->company_kind_rows().find(storage::FieldValueKey(company,
                                                                     kind));
        if (it != segment->company_kind_rows().end()) {
          with_field[company] += it->second;
        }
      }
    }
    for (const auto& [company, ordinals] : shard->growing.by_company) {
      totals[company] += static_cast<int64_t>(ordinals.size());
      auto company_it = shard->growing.field_count_by_company.find(company);
      if (company_it != shard->growing.field_count_by_company.end()) {
        auto kind_it = company_it->second.find(kind);
        if (kind_it != company_it->second.end()) {
          with_field[company] += kind_it->second;
        }
      }
    }
    // Subtract rows masked by a newer version (see CountPerCompany).
    for (const auto& [row_id, row] : shard->superseded) {
      auto total_it = totals.find(row.company);
      if (total_it != totals.end() && --total_it->second <= 0) {
        totals.erase(total_it);
      }
      if (!row.record.FieldOrEmpty(kind).empty()) {
        auto field_it = with_field.find(row.company);
        if (field_it != with_field.end() && --field_it->second <= 0) {
          with_field.erase(field_it);
        }
      }
    }
  }
  std::map<std::string, double> out;
  for (const auto& [company, total] : totals) {
    int64_t covered = 0;
    auto it = with_field.find(company);
    if (it != with_field.end()) covered = it->second;
    out[company] =
        static_cast<double>(covered) / static_cast<double>(total);
  }
  return out;
}

std::vector<DbRow> ObjectiveDatabase::CollectShardRows(
    const Shard& shard) const {
  std::shared_lock lock(shard.mu);
  std::vector<DbRow> rows;
  auto masked = [&shard](int64_t row_id) {
    return !shard.superseded.empty() && shard.superseded.count(row_id) > 0;
  };
  for (const auto& segment : shard.sealed) {
    for (uint64_t ordinal = 0; ordinal < segment->num_rows(); ++ordinal) {
      DbRow row;
      if (!segment->ReadRow(ordinal, &row)) continue;
      if (masked(row.row_id)) continue;
      rows.push_back(std::move(row));
    }
  }
  for (const DbRow& row : shard.growing.rows) {
    if (!masked(row.row_id)) rows.push_back(row);
  }
  return rows;
}

std::vector<DbRow> ObjectiveDatabase::SnapshotRows() const {
  std::vector<DbRow> out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    std::vector<DbRow> rows = CollectShardRows(*shard);
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  SortByRowId(&out);
  return out;
}

std::string ObjectiveDatabase::ExportCsv(
    const std::vector<std::string>& kinds) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::ostringstream out;
  out << "row_id,company,document,page,objective";
  for (const std::string& kind : kinds) out << ',' << CsvEscape(kind);
  out << '\n';
  for (const DbRow& row : SnapshotRows()) {
    out << row.row_id << ',' << CsvEscape(row.company) << ','
        << CsvEscape(row.document) << ',' << row.page << ','
        << CsvEscape(row.record.objective_text);
    for (const std::string& kind : kinds) {
      out << ',' << CsvEscape(row.record.FieldOrEmpty(kind));
    }
    out << '\n';
  }
  return out.str();
}

// --- Persistence -----------------------------------------------------------

std::string ObjectiveDatabase::WalPath(size_t shard_index) const {
  return dir_ + "/" + WalFileName(shard_index);
}

Status ObjectiveDatabase::Save(const std::string& dir) const {
  if (attached_.load(std::memory_order_acquire) && dir == dir_) {
    return FailedPreconditionError(
        "Save into the attached directory; use Flush()");
  }
  GOALEX_RETURN_IF_ERROR(env_->CreateDirs(dir));
  storage::Manifest manifest;
  manifest.num_shards = num_shards();
  uint64_t sequence = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::vector<DbRow> rows = CollectShardRows(*shards_[i]);
    if (rows.empty()) continue;
    storage::SegmentBuilder builder;
    for (const DbRow& row : rows) builder.Add(row);
    std::string name = SegmentFileName(i, sequence++);
    std::string path = dir + "/" + name;
    GOALEX_RETURN_IF_ERROR(builder.WriteTo(env_, path + ".tmp"));
    GOALEX_RETURN_IF_ERROR(env_->Rename(path + ".tmp", path));
    storage::ManifestSegment entry;
    entry.shard = static_cast<int>(i);
    entry.file = name;
    entry.rows = rows.size();
    entry.min_row_id = rows.front().row_id;
    entry.max_row_id = rows.back().row_id;
    manifest.segments.push_back(std::move(entry));
  }
  manifest.next_segment = sequence;
  GOALEX_RETURN_IF_ERROR(storage::WriteManifest(env_, dir, manifest));
  // Drop stale shard WALs (e.g. Save over a directory a database was once
  // attached to), so a later Load sees exactly this snapshot.
  for (size_t i = 0; i < shards_.size(); ++i) {
    (void)env_->RemoveFile(dir + "/" + WalFileName(i));
  }
  return Status::Ok();
}

Status ObjectiveDatabase::SaveLegacy(const std::string& dir) const {
  GOALEX_RETURN_IF_ERROR(env_->CreateDirs(dir));
  std::string path = SnapshotPath(dir);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot open " + path + " for writing");

  std::vector<DbRow> rows = SnapshotRows();
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kLegacyFormatVersion);
  WriteU64(out, rows.size());
  for (const DbRow& row : rows) {
    WriteI64(out, row.row_id);
    WriteString(out, row.company);
    WriteString(out, row.document);
    WriteI32(out, row.page);
    WriteString(out, row.record.objective_id);
    WriteString(out, row.record.objective_text);
    WriteU64(out, row.record.fields.size());
    for (const auto& [kind, value] : row.record.fields) {
      WriteString(out, kind);
      WriteString(out, value);
    }
  }
  out.flush();
  if (!out) return DataLossError("short write to " + path);
  return Status::Ok();
}

Status ObjectiveDatabase::LoadLegacyFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);

  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(path + " is not an objectives.db snapshot");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version != kLegacyFormatVersion) {
    return DataLossError("unsupported objectives.db version in " + path);
  }
  uint64_t row_count = 0;
  if (!ReadU64(in, &row_count)) {
    return DataLossError("truncated objectives.db header in " + path);
  }

  std::vector<DbRow> rows;
  rows.reserve(row_count);
  int64_t max_id = -1;
  for (uint64_t i = 0; i < row_count; ++i) {
    DbRow row;
    uint64_t field_count = 0;
    if (!ReadI64(in, &row.row_id) || !ReadString(in, &row.company) ||
        !ReadString(in, &row.document) || !ReadI32(in, &row.page) ||
        !ReadString(in, &row.record.objective_id) ||
        !ReadString(in, &row.record.objective_text) ||
        !ReadU64(in, &field_count)) {
      return DataLossError("truncated row in " + path);
    }
    for (uint64_t f = 0; f < field_count; ++f) {
      std::string kind, value;
      if (!ReadString(in, &kind) || !ReadString(in, &value)) {
        return DataLossError("truncated field in " + path);
      }
      row.record.fields.emplace(std::move(kind), std::move(value));
    }
    max_id = std::max(max_id, row.row_id);
    rows.push_back(std::move(row));
  }

  // Snapshot rows are sorted by id, so appending in file order preserves
  // each shard's ascending-id invariant.
  for (DbRow& row : rows) {
    Shard& shard = *shards_[ShardIndexFor(row.company)];
    std::unique_lock lock(shard.mu);
    AppendGrowingLocked(shard, std::move(row));
  }
  size_.store(rows.size(), std::memory_order_release);
  next_id_.store(max_id + 1, std::memory_order_relaxed);
  UpdateRowGauges(rows.size());
  BuildUpsertState();
  return Status::Ok();
}

void ObjectiveDatabase::BuildUpsertState() {
  if (!options_.track_upserts) return;
  size_t masked_total = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock lock(shard.mu);
    shard.latest_by_key.clear();
    shard.superseded.clear();
    // Winner per key = highest (_version, row_id). A loser is masked only
    // when the winner carries a strictly newer version: plain Insert can
    // legitimately write several same-version rows for one key (dedup
    // bypass), and those all stay visible.
    std::unordered_map<std::string, DbRow> winners;
    auto offer = [&](DbRow row) {
      std::string key = ObjectiveUpsertKey(row.company, row.record);
      auto [it, inserted] = winners.try_emplace(std::move(key), row);
      if (inserted) return;
      DbRow& incumbent = it->second;
      int32_t row_version = RecordVersion(row.record);
      int32_t incumbent_version = RecordVersion(incumbent.record);
      if (std::pair(row_version, row.row_id) >
          std::pair(incumbent_version, incumbent.row_id)) {
        if (row_version > incumbent_version) {
          shard.superseded.emplace(incumbent.row_id, incumbent);
        }
        incumbent = std::move(row);
      } else if (incumbent_version > row_version) {
        shard.superseded.emplace(row.row_id, std::move(row));
      }
    };
    for (const auto& segment : shard.sealed) {
      for (uint64_t ordinal = 0; ordinal < segment->num_rows(); ++ordinal) {
        DbRow row;
        if (segment->ReadRow(ordinal, &row)) offer(std::move(row));
      }
    }
    for (const DbRow& row : shard.growing.rows) offer(row);
    shard.latest_by_key.reserve(winners.size());
    for (const auto& [key, row] : winners) {
      shard.latest_by_key.emplace(key, row.row_id);
    }
    masked_total += shard.superseded.size();
  }
  superseded_count_.store(masked_total, std::memory_order_release);
  if (superseded_gauge_ != nullptr) {
    superseded_gauge_->Set(static_cast<double>(masked_total));
  }
}

Status ObjectiveDatabase::LoadManifest(const storage::Manifest& manifest,
                                       bool read_write) {
  obs::ScopedTimer timer(mmap_load_seconds_);
  ResetShards(manifest.num_shards);
  {
    std::lock_guard<std::mutex> lock(manifest_mu_);
    manifest_ = manifest;
  }
  next_segment_.store(manifest.next_segment, std::memory_order_relaxed);

  int64_t max_id = -1;
  size_t total = 0;
  for (const storage::ManifestSegment& entry : manifest.segments) {
    std::string path = dir_ + "/" + entry.file;
    StatusOr<std::shared_ptr<storage::SealedSegment>> segment =
        storage::SealedSegment::Open(env_, path);
    if (!segment.ok()) return segment.status();
    Shard& shard = *shards_[static_cast<size_t>(entry.shard)];
    if ((*segment)->num_rows() != entry.rows ||
        (*segment)->min_row_id() != entry.min_row_id ||
        (*segment)->max_row_id() != entry.max_row_id ||
        entry.min_row_id <= shard.max_sealed_id) {
      return DataLossError(path + " does not match its manifest entry");
    }
    shard.max_sealed_id = entry.max_row_id;
    shard.sealed.push_back(std::move(segment).value());
    total += entry.rows;
    max_id = std::max(max_id, entry.max_row_id);
  }

  // Replay each shard's WAL on top of the sealed segments. Records already
  // covered by a sealed segment (a crash between manifest commit and WAL
  // shrink) are dropped; the first record that fails to decode or breaks
  // the ascending-id invariant ends the valid prefix, exactly like a torn
  // tail at the framing layer.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::string path = WalPath(i);
    StatusOr<storage::WalReplayResult> replayed =
        storage::ReplayWal(env_, path);
    if (!replayed.ok()) return replayed.status();
    uint64_t valid_bytes = 0;
    bool stopped_early = false;
    int64_t last_id = shard.max_sealed_id;
    size_t appended = 0;
    for (const std::string& payload : replayed->payloads) {
      DbRow row;
      if (!storage::DecodeRowExact(payload, &row)) {
        stopped_early = true;
        break;
      }
      if (row.row_id > shard.max_sealed_id && row.row_id <= last_id) {
        // A re-logged id is how Upsert records an in-place update of a
        // growing row: same row_id, newer content. Replay it as a
        // replacement. An id we have never seen in the growing deque is
        // genuine corruption and ends the valid prefix.
        std::unique_lock lock(shard.mu);
        std::optional<size_t> ordinal =
            FindGrowingOrdinalLocked(shard, row.row_id);
        if (!ordinal.has_value()) {
          stopped_early = true;
          break;
        }
        valid_bytes += kWalRecordHeaderBytes + payload.size();
        ReplaceGrowingLocked(shard, *ordinal, std::move(row));
        continue;
      }
      valid_bytes += kWalRecordHeaderBytes + payload.size();
      if (row.row_id <= shard.max_sealed_id) continue;  // Already sealed.
      last_id = row.row_id;
      std::unique_lock lock(shard.mu);
      AppendGrowingLocked(shard, std::move(row));
      ++appended;
    }
    total += appended;
    if (appended > 0) max_id = std::max(max_id, last_id);
    if (wal_replayed_counter_ != nullptr && appended > 0) {
      wal_replayed_counter_->Increment(static_cast<uint64_t>(appended));
    }
    if (stopped_early || replayed->truncated_tail) {
      uint64_t keep = stopped_early ? valid_bytes : replayed->valid_bytes;
      if (env_->FileExists(path)) {
        StatusOr<uint64_t> file_size = env_->FileSize(path);
        if (file_size.ok() && wal_truncated_bytes_counter_ != nullptr &&
            *file_size > keep) {
          wal_truncated_bytes_counter_->Increment(*file_size - keep);
        }
        if (read_write) {
          GOALEX_RETURN_IF_ERROR(env_->Truncate(path, keep));
        }
      }
    }
  }

  size_.store(total, std::memory_order_release);
  next_id_.store(max_id + 1, std::memory_order_relaxed);
  UpdateRowGauges(total);
  if (segments_gauge_ != nullptr) {
    segments_gauge_->Set(static_cast<double>(manifest.segments.size()));
  }
  BuildUpsertState();
  return Status::Ok();
}

Status ObjectiveDatabase::Load(const std::string& dir) {
  if (attached_.load(std::memory_order_acquire)) {
    return FailedPreconditionError(
        "Load on an attached database; construct a fresh one");
  }
  StatusOr<storage::Manifest> manifest = storage::ReadManifest(env_, dir);
  if (manifest.ok()) {
    dir_ = dir;
    return LoadManifest(manifest.value(), /*read_write=*/false);
  }
  if (manifest.status().code() != StatusCode::kNotFound) {
    return manifest.status();
  }
  std::string legacy = SnapshotPath(dir);
  if (!env_->FileExists(legacy)) return NotFoundError("cannot open " + legacy);
  ResetShards(num_shards());
  return LoadLegacyFile(legacy);
}

Status ObjectiveDatabase::Open(const std::string& dir) {
  if (attached_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("database is already attached");
  }
  GOALEX_RETURN_IF_ERROR(env_->CreateDirs(dir));
  dir_ = dir;
  bool migrate_legacy = false;
  StatusOr<storage::Manifest> manifest = storage::ReadManifest(env_, dir);
  if (manifest.ok()) {
    GOALEX_RETURN_IF_ERROR(LoadManifest(manifest.value(),
                                        /*read_write=*/true));
  } else if (manifest.status().code() == StatusCode::kNotFound) {
    ResetShards(num_shards());
    std::string legacy = SnapshotPath(dir);
    if (env_->FileExists(legacy)) {
      GOALEX_RETURN_IF_ERROR(LoadLegacyFile(legacy));
      migrate_legacy = true;
    }
    {
      std::lock_guard<std::mutex> lock(manifest_mu_);
      manifest_ = storage::Manifest();
      manifest_.num_shards = num_shards();
      GOALEX_RETURN_IF_ERROR(storage::WriteManifest(env_, dir_, manifest_));
    }
    next_segment_.store(0, std::memory_order_relaxed);
  } else {
    return manifest.status();
  }

  for (size_t i = 0; i < shards_.size(); ++i) {
    StatusOr<std::unique_ptr<storage::WalWriter>> wal = storage::WalWriter::Open(
        env_, WalPath(i), options_.wal_fsync_interval);
    if (!wal.ok()) return wal.status();
    std::unique_lock lock(shards_[i]->mu);
    shards_[i]->wal = std::move(wal).value();
  }
  attached_.store(true, std::memory_order_release);

  // A legacy store has its rows only in memory at this point — seal them
  // immediately so the directory is v2 (and crash-safe) from here on.
  if (migrate_legacy) GOALEX_RETURN_IF_ERROR(Flush());

  if (options_.background_seal && !sealer_.joinable()) {
    stop_sealer_ = false;
    sealer_ = std::thread(&ObjectiveDatabase::SealerLoop, this);
  }
  return Status::Ok();
}

Status ObjectiveDatabase::Flush() {
  if (!attached_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("Flush requires an attached database");
  }
  std::lock_guard<std::mutex> op(seal_op_mu_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    GOALEX_RETURN_IF_ERROR(SealShard(i));
  }
  return Status::Ok();
}

Status ObjectiveDatabase::SealShard(size_t index) {
  Shard& shard = *shards_[index];
  // Snapshot the rows to seal; inserts landing after this stay growing.
  std::vector<DbRow> rows;
  {
    std::shared_lock lock(shard.mu);
    if (shard.growing.rows.empty()) return Status::Ok();
    rows.assign(shard.growing.rows.begin(), shard.growing.rows.end());
  }
  storage::SegmentBuilder builder;
  for (const DbRow& row : rows) builder.Add(row);
  uint64_t sequence = next_segment_.fetch_add(1, std::memory_order_relaxed);
  std::string name = SegmentFileName(index, sequence);
  std::string path = dir_ + "/" + name;
  GOALEX_RETURN_IF_ERROR(builder.WriteTo(env_, path + ".tmp"));
  GOALEX_RETURN_IF_ERROR(env_->Rename(path + ".tmp", path));
  StatusOr<std::shared_ptr<storage::SealedSegment>> segment =
      storage::SealedSegment::Open(env_, path);
  if (!segment.ok()) return segment.status();

  std::unique_lock lock(shard.mu);
  {
    // Commit the manifest before touching in-memory state or the WAL: a
    // crash after this point replays the (still complete) WAL and drops
    // everything the new segment covers; a crash before it leaves the new
    // segment an ignored orphan.
    std::lock_guard<std::mutex> mlock(manifest_mu_);
    storage::ManifestSegment entry;
    entry.shard = static_cast<int>(index);
    entry.file = name;
    entry.rows = rows.size();
    entry.min_row_id = rows.front().row_id;
    entry.max_row_id = rows.back().row_id;
    manifest_.segments.push_back(std::move(entry));
    manifest_.next_segment = next_segment_.load(std::memory_order_relaxed);
    Status committed = storage::WriteManifest(env_, dir_, manifest_);
    if (!committed.ok()) {
      manifest_.segments.pop_back();
      return committed;
    }
  }
  shard.sealed.push_back(std::move(segment).value());
  shard.max_sealed_id = rows.back().row_id;
  for (size_t i = 0; i < rows.size(); ++i) shard.growing.rows.pop_front();
  RebuildGrowingLocked(shard);
  if (seal_counter_ != nullptr) seal_counter_->Increment();
  if (segments_gauge_ != nullptr) {
    std::lock_guard<std::mutex> mlock(manifest_mu_);
    segments_gauge_->Set(static_cast<double>(manifest_.segments.size()));
  }
  RewriteWalLocked(shard, index);
  return Status::Ok();
}

void ObjectiveDatabase::RewriteWalLocked(Shard& shard, size_t index) {
  std::string path = WalPath(index);
  std::string tmp = path + ".tmp";
  (void)env_->RemoveFile(tmp);  // Stale temp from an earlier failure.
  StatusOr<std::unique_ptr<storage::WalWriter>> writer =
      storage::WalWriter::Open(env_, tmp, /*fsync_interval=*/0);
  if (!writer.ok()) return;
  for (const DbRow& row : shard.growing.rows) {
    std::string payload;
    storage::EncodeRow(row, &payload);
    if (!(*writer)->Append(payload).ok()) return;
  }
  if (!(*writer)->Sync().ok()) return;
  writer->reset();  // Close before the rename commits the new log.
  if (!env_->Rename(tmp, path).ok()) return;
  shard.wal.reset();
  StatusOr<std::unique_ptr<storage::WalWriter>> reopened =
      storage::WalWriter::Open(env_, path, options_.wal_fsync_interval);
  if (reopened.ok()) {
    shard.wal = std::move(reopened).value();
  } else if (wal_error_counter_ != nullptr) {
    // Logging is disarmed for this shard (only reachable when the storage
    // environment is failing every write — i.e. mid-crash).
    wal_error_counter_->Increment();
  }
}

void ObjectiveDatabase::RequestSeal(size_t index) {
  std::lock_guard<std::mutex> lock(seal_mu_);
  if (!sealer_.joinable() || stop_sealer_) return;
  seal_pending_.insert(index);
  seal_cv_.notify_one();
}

void ObjectiveDatabase::SealerLoop() {
  std::unique_lock<std::mutex> lock(seal_mu_);
  while (true) {
    seal_cv_.wait(lock,
                  [this] { return stop_sealer_ || !seal_pending_.empty(); });
    if (stop_sealer_) return;
    size_t index = *seal_pending_.begin();
    seal_pending_.erase(seal_pending_.begin());
    lock.unlock();
    {
      std::lock_guard<std::mutex> op(seal_op_mu_);
      Status sealed = SealShard(index);
      if (!sealed.ok() && seal_error_counter_ != nullptr) {
        seal_error_counter_->Increment();
      }
    }
    lock.lock();
  }
}

void ObjectiveDatabase::StopSealer() {
  {
    std::lock_guard<std::mutex> lock(seal_mu_);
    if (!sealer_.joinable()) return;
    stop_sealer_ = true;
  }
  seal_cv_.notify_all();
  sealer_.join();
}

}  // namespace goalex::core
