#include "core/database.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>

#include "obs/scope.h"
#include "values/value_normalizer.h"

namespace goalex::core {
namespace {

std::string CsvEscape(const std::string& raw) {
  // RFC 4180: quote when the field contains a separator, a quote, or any
  // line-break byte. CR matters as much as LF — a bare carriage return in
  // objective text would otherwise split the row in most readers.
  bool needs_quote = raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// The deadline field of a record under either schema (Sustainability
/// Goals "Deadline", NetZeroFacts "TargetYear"), normalized to a calendar
/// year for the year index.
std::optional<int> DeadlineYearOf(const data::DetailRecord& record) {
  std::string value = record.FieldOrEmpty("Deadline");
  if (value.empty()) value = record.FieldOrEmpty("TargetYear");
  if (value.empty()) return std::nullopt;
  return values::NormalizeYear(value);
}

void SortByRowId(std::vector<DbRow>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const DbRow& a, const DbRow& b) { return a.row_id < b.row_id; });
}

// --- Binary snapshot encoding (Save/Load) ---------------------------------

constexpr char kMagic[8] = {'G', 'O', 'A', 'L', 'E', 'X', 'D', 'B'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kMaxStringBytes = uint64_t{1} << 30;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI32(std::ostream& out, int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadU64(std::istream& in, uint64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadI64(std::istream& in, int64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadI32(std::istream& in, int32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t size = 0;
  if (!ReadU64(in, &size) || size > kMaxStringBytes) return false;
  s->resize(size);
  return static_cast<bool>(
      in.read(s->data(), static_cast<std::streamsize>(size)));
}

std::string SnapshotPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "objectives.db").string();
}

}  // namespace

ObjectiveDatabase::ObjectiveDatabase(int num_shards) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (obs::Active()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    insert_seconds_ = registry.GetLatencyHistogram("db.insert.seconds");
    query_seconds_ = registry.GetLatencyHistogram("db.query.seconds");
    insert_counter_ = registry.GetCounter("db.inserts");
    query_counter_ = registry.GetCounter("db.queries");
    rows_gauge_ = registry.GetGauge("db.rows");
    rows_per_shard_gauge_ = registry.GetGauge("db.rows_per_shard");
    registry.GetGauge("db.shards")->Set(static_cast<double>(num_shards));
  }
}

ObjectiveDatabase::Shard& ObjectiveDatabase::ShardFor(
    const std::string& company) {
  return *shards_[std::hash<std::string>{}(company) % shards_.size()];
}

const ObjectiveDatabase::Shard& ObjectiveDatabase::ShardFor(
    const std::string& company) const {
  return *shards_[std::hash<std::string>{}(company) % shards_.size()];
}

void ObjectiveDatabase::AppendLocked(Shard& shard, DbRow row) {
  size_t index = shard.rows.size();
  shard.by_company[row.company].push_back(index);
  for (const auto& [kind, value] : row.record.fields) {
    if (value.empty()) continue;
    shard.by_field[kind].push_back(index);
    shard.by_field_value[kind][value].push_back(index);
    ++shard.field_count_by_company[row.company][kind];
  }
  if (std::optional<int> year = DeadlineYearOf(row.record)) {
    shard.by_deadline_year[*year].push_back(index);
  }
  shard.rows.push_back(std::move(row));
}

int64_t ObjectiveDatabase::Insert(const data::DetailRecord& record,
                                  const std::string& company,
                                  const std::string& document, int page) {
  obs::ScopedTimer timer(insert_seconds_);
  Shard& shard = ShardFor(company);
  int64_t id;
  {
    std::unique_lock lock(shard.mu);
    // Id assignment happens under the shard lock so each shard's deque
    // stays sorted by row id (Get binary-searches on that invariant).
    id = next_id_.fetch_add(1, std::memory_order_relaxed);
    DbRow row;
    row.row_id = id;
    row.company = company;
    row.document = document;
    row.page = page;
    row.record = record;
    AppendLocked(shard, std::move(row));
  }
  size_t total = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (insert_counter_ != nullptr) {
    insert_counter_->Increment();
    rows_gauge_->Set(static_cast<double>(total));
    rows_per_shard_gauge_->Set(static_cast<double>(total) /
                               static_cast<double>(shards_.size()));
  }
  return id;
}

std::vector<size_t> ObjectiveDatabase::RowsPerShard() const {
  std::vector<size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    out.push_back(shard->rows.size());
  }
  return out;
}

obs::Histogram* ObjectiveDatabase::QueryHistogram() const {
  if (query_counter_ != nullptr) query_counter_->Increment();
  return query_seconds_;
}

std::optional<DbRow> ObjectiveDatabase::Get(int64_t row_id) const {
  obs::ScopedTimer timer(QueryHistogram());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    auto it = std::lower_bound(
        shard->rows.begin(), shard->rows.end(), row_id,
        [](const DbRow& row, int64_t id) { return row.row_id < id; });
    if (it != shard->rows.end() && it->row_id == row_id) return *it;
  }
  return std::nullopt;
}

void ObjectiveDatabase::CollectLocked(const Shard& shard,
                                      const std::vector<size_t>& indices,
                                      std::vector<DbRow>* out) {
  for (size_t index : indices) out->push_back(shard.rows[index]);
}

std::vector<DbRow> ObjectiveDatabase::ByCompany(
    const std::string& company) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  const Shard& shard = ShardFor(company);
  std::shared_lock lock(shard.mu);
  auto it = shard.by_company.find(company);
  if (it != shard.by_company.end()) CollectLocked(shard, it->second, &out);
  return out;  // Index order is ascending row id within the shard.
}

std::vector<DbRow> ObjectiveDatabase::WithField(
    const std::string& kind) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    auto it = shard->by_field.find(kind);
    if (it != shard->by_field.end()) CollectLocked(*shard, it->second, &out);
  }
  SortByRowId(&out);
  return out;
}

std::vector<DbRow> ObjectiveDatabase::WhereFieldEquals(
    const std::string& kind, const std::string& value) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    auto kind_it = shard->by_field_value.find(kind);
    if (kind_it == shard->by_field_value.end()) continue;
    auto value_it = kind_it->second.find(value);
    if (value_it == kind_it->second.end()) continue;
    CollectLocked(*shard, value_it->second, &out);
  }
  SortByRowId(&out);
  return out;
}

std::vector<DbRow> ObjectiveDatabase::ByDeadlineYear(int year) const {
  return DeadlineYearBetween(year, year);
}

std::vector<DbRow> ObjectiveDatabase::DeadlineYearBetween(
    int min_year, int max_year) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<DbRow> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    auto it = shard->by_deadline_year.lower_bound(min_year);
    for (; it != shard->by_deadline_year.end() && it->first <= max_year;
         ++it) {
      CollectLocked(*shard, it->second, &out);
    }
  }
  SortByRowId(&out);
  return out;
}

std::vector<std::string> ObjectiveDatabase::Companies() const {
  obs::ScopedTimer timer(QueryHistogram());
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [company, indices] : shard->by_company) {
      out.push_back(company);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::string, int64_t> ObjectiveDatabase::CountPerCompany() const {
  obs::ScopedTimer timer(QueryHistogram());
  std::map<std::string, int64_t> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [company, indices] : shard->by_company) {
      out[company] += static_cast<int64_t>(indices.size());
    }
  }
  return out;
}

std::map<std::string, double> ObjectiveDatabase::FieldCoverageByCompany(
    const std::string& kind) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::map<std::string, double> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [company, indices] : shard->by_company) {
      int64_t with_field = 0;
      auto company_it = shard->field_count_by_company.find(company);
      if (company_it != shard->field_count_by_company.end()) {
        auto kind_it = company_it->second.find(kind);
        if (kind_it != company_it->second.end()) with_field = kind_it->second;
      }
      out[company] = static_cast<double>(with_field) /
                     static_cast<double>(indices.size());
    }
  }
  return out;
}

std::vector<DbRow> ObjectiveDatabase::SnapshotRows() const {
  std::vector<DbRow> out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const DbRow& row : shard->rows) out.push_back(row);
  }
  SortByRowId(&out);
  return out;
}

std::string ObjectiveDatabase::ExportCsv(
    const std::vector<std::string>& kinds) const {
  obs::ScopedTimer timer(QueryHistogram());
  std::ostringstream out;
  out << "row_id,company,document,page,objective";
  for (const std::string& kind : kinds) out << ',' << CsvEscape(kind);
  out << '\n';
  for (const DbRow& row : SnapshotRows()) {
    out << row.row_id << ',' << CsvEscape(row.company) << ','
        << CsvEscape(row.document) << ',' << row.page << ','
        << CsvEscape(row.record.objective_text);
    for (const std::string& kind : kinds) {
      out << ',' << CsvEscape(row.record.FieldOrEmpty(kind));
    }
    out << '\n';
  }
  return out.str();
}

Status ObjectiveDatabase::Save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create directory " + dir + ": " +
                         ec.message());
  }
  std::string path = SnapshotPath(dir);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot open " + path + " for writing");

  std::vector<DbRow> rows = SnapshotRows();
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kFormatVersion);
  WriteU64(out, rows.size());
  for (const DbRow& row : rows) {
    WriteI64(out, row.row_id);
    WriteString(out, row.company);
    WriteString(out, row.document);
    WriteI32(out, row.page);
    WriteString(out, row.record.objective_id);
    WriteString(out, row.record.objective_text);
    WriteU64(out, row.record.fields.size());
    for (const auto& [kind, value] : row.record.fields) {
      WriteString(out, kind);
      WriteString(out, value);
    }
  }
  out.flush();
  if (!out) return DataLossError("short write to " + path);
  return Status::Ok();
}

Status ObjectiveDatabase::Load(const std::string& dir) {
  std::string path = SnapshotPath(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);

  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(path + " is not an objectives.db snapshot");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version != kFormatVersion) {
    return DataLossError("unsupported objectives.db version in " + path);
  }
  uint64_t row_count = 0;
  if (!ReadU64(in, &row_count)) {
    return DataLossError("truncated objectives.db header in " + path);
  }

  std::vector<DbRow> rows;
  rows.reserve(row_count);
  int64_t max_id = -1;
  for (uint64_t i = 0; i < row_count; ++i) {
    DbRow row;
    uint64_t field_count = 0;
    if (!ReadI64(in, &row.row_id) || !ReadString(in, &row.company) ||
        !ReadString(in, &row.document) || !ReadI32(in, &row.page) ||
        !ReadString(in, &row.record.objective_id) ||
        !ReadString(in, &row.record.objective_text) ||
        !ReadU64(in, &field_count)) {
      return DataLossError("truncated row in " + path);
    }
    for (uint64_t f = 0; f < field_count; ++f) {
      std::string kind, value;
      if (!ReadString(in, &kind) || !ReadString(in, &value)) {
        return DataLossError("truncated field in " + path);
      }
      row.record.fields.emplace(std::move(kind), std::move(value));
    }
    max_id = std::max(max_id, row.row_id);
    rows.push_back(std::move(row));
  }

  // Replace the contents. Load is an administrative operation: the caller
  // must ensure no concurrent access (each shard is still locked while it
  // is rebuilt, so readers see either the old or the new shard state).
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mu);
    shard->rows.clear();
    shard->by_company.clear();
    shard->by_field.clear();
    shard->by_field_value.clear();
    shard->by_deadline_year.clear();
    shard->field_count_by_company.clear();
  }
  // Snapshot rows are sorted by id, so appending in file order preserves
  // each shard's ascending-id invariant.
  for (DbRow& row : rows) {
    Shard& shard = ShardFor(row.company);
    std::unique_lock lock(shard.mu);
    AppendLocked(shard, std::move(row));
  }
  size_.store(rows.size(), std::memory_order_release);
  next_id_.store(max_id + 1, std::memory_order_relaxed);
  if (rows_gauge_ != nullptr) {
    rows_gauge_->Set(static_cast<double>(rows.size()));
    rows_per_shard_gauge_->Set(static_cast<double>(rows.size()) /
                               static_cast<double>(shards_.size()));
  }
  return Status::Ok();
}

}  // namespace goalex::core
