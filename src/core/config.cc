#include "core/config.h"

#include <sstream>

#include "common/string_util.h"

namespace goalex::core {

const char* ModelPresetName(ModelPreset preset) {
  switch (preset) {
    case ModelPreset::kRoberta:
      return "roberta";
    case ModelPreset::kDistilRoberta:
      return "distilroberta";
    case ModelPreset::kBert:
      return "bert";
    case ModelPreset::kDistilBert:
      return "distilbert";
  }
  return "unknown";
}

bool ExtractorConfig::LowercaseTokenizer() const {
  return preset == ModelPreset::kBert || preset == ModelPreset::kDistilBert;
}

nn::TransformerConfig ExtractorConfig::BuildTransformerConfig(
    int32_t vocab_size) const {
  nn::TransformerConfig config;
  config.vocab_size = vocab_size;
  config.max_seq_len = max_seq_len;
  config.d_model = d_model;
  config.heads = heads;
  config.ffn_dim = ffn_dim;
  config.dropout = dropout;
  bool distilled = preset == ModelPreset::kDistilRoberta ||
                   preset == ModelPreset::kDistilBert;
  config.layers = distilled ? std::max(1, base_layers / 2) : base_layers;
  config.sinusoidal_positions =
      preset == ModelPreset::kBert || preset == ModelPreset::kDistilBert;
  return config;
}

StatusOr<ModelPreset> ParseModelPreset(std::string_view name) {
  if (name == "roberta") return ModelPreset::kRoberta;
  if (name == "distilroberta") return ModelPreset::kDistilRoberta;
  if (name == "bert") return ModelPreset::kBert;
  if (name == "distilbert") return ModelPreset::kDistilBert;
  return InvalidArgumentError("unknown model preset: " + std::string(name));
}

std::string ExtractorConfig::ToText() const {
  std::ostringstream out;
  out << "kinds=" << StrJoin(kinds, ",") << "\n"
      << "preset=" << ModelPresetName(preset) << "\n"
      << "epochs=" << epochs << "\n"
      << "learning_rate=" << learning_rate << "\n"
      << "learning_rate_scale=" << learning_rate_scale << "\n"
      << "batch_size=" << batch_size << "\n"
      << "dropout=" << dropout << "\n"
      << "seed=" << seed << "\n"
      << "bpe_merges=" << bpe_merges << "\n"
      << "max_seq_len=" << max_seq_len << "\n"
      << "d_model=" << d_model << "\n"
      << "heads=" << heads << "\n"
      << "ffn_dim=" << ffn_dim << "\n"
      << "base_layers=" << base_layers << "\n"
      << "normalize_text=" << (normalize_text ? 1 : 0) << "\n"
      << "num_threads=" << num_threads << "\n"
      << "enable_metrics=" << (enable_metrics ? 1 : 0) << "\n"
      << "use_inference_engine=" << (use_inference_engine ? 1 : 0) << "\n"
      << "segment_multi_target=" << (segment_multi_target ? 1 : 0) << "\n"
      << "exact_match=" << (weak_labeler.exact_match ? 1 : 0) << "\n";
  return out.str();
}

StatusOr<ExtractorConfig> ExtractorConfig::FromText(std::string_view text) {
  ExtractorConfig config;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return DataLossError("bad config line: " + line);
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "kinds") {
      config.kinds.clear();
      for (const std::string& kind : StrSplit(value, ',')) {
        if (!kind.empty()) config.kinds.push_back(kind);
      }
    } else if (key == "preset") {
      auto preset = ParseModelPreset(value);
      if (!preset.ok()) return preset.status();
      config.preset = *preset;
    } else if (key == "epochs") {
      config.epochs = std::atoi(value.c_str());
    } else if (key == "learning_rate") {
      config.learning_rate = std::strtof(value.c_str(), nullptr);
    } else if (key == "learning_rate_scale") {
      config.learning_rate_scale = std::strtof(value.c_str(), nullptr);
    } else if (key == "batch_size") {
      config.batch_size = std::atoi(value.c_str());
    } else if (key == "dropout") {
      config.dropout = std::strtof(value.c_str(), nullptr);
    } else if (key == "seed") {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "bpe_merges") {
      config.bpe_merges = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "max_seq_len") {
      config.max_seq_len = std::atoi(value.c_str());
    } else if (key == "d_model") {
      config.d_model = std::atoi(value.c_str());
    } else if (key == "heads") {
      config.heads = std::atoi(value.c_str());
    } else if (key == "ffn_dim") {
      config.ffn_dim = std::atoi(value.c_str());
    } else if (key == "base_layers") {
      config.base_layers = std::atoi(value.c_str());
    } else if (key == "normalize_text") {
      config.normalize_text = (value == "1");
    } else if (key == "num_threads") {
      config.num_threads = std::atoi(value.c_str());
    } else if (key == "enable_metrics") {
      config.enable_metrics = (value == "1");
    } else if (key == "use_inference_engine") {
      config.use_inference_engine = (value == "1");
    } else if (key == "segment_multi_target") {
      config.segment_multi_target = (value == "1");
    } else if (key == "exact_match") {
      config.weak_labeler.exact_match = (value == "1");
    } else {
      return InvalidArgumentError("unknown config key: " + key);
    }
  }
  if (config.kinds.empty()) {
    return InvalidArgumentError("config is missing kinds");
  }
  return config;
}

}  // namespace goalex::core
