#include "core/config.h"

#include <charconv>
#include <sstream>

#include "common/string_util.h"

namespace goalex::core {
namespace {

// Strict numeric parsing for config values. Malformed input — empty,
// non-numeric, trailing garbage, or out of range — is rejected with an
// InvalidArgumentError naming the key, never silently coerced (the old
// atoi path turned "epochs=abc" into a model that trains for 0 epochs).
template <typename T>
Status ParseNumber(const std::string& key, const std::string& value,
                   T* out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec == std::errc() && ptr == end && !value.empty()) {
    return Status::Ok();
  }
  return InvalidArgumentError("config key '" + key +
                              "': invalid numeric value \"" + value + "\"");
}

Status ParseBool(const std::string& key, const std::string& value,
                 bool* out) {
  if (value == "0" || value == "1") {
    *out = (value == "1");
    return Status::Ok();
  }
  return InvalidArgumentError("config key '" + key +
                              "': expected 0 or 1, got \"" + value + "\"");
}

}  // namespace

const char* ModelPresetName(ModelPreset preset) {
  switch (preset) {
    case ModelPreset::kRoberta:
      return "roberta";
    case ModelPreset::kDistilRoberta:
      return "distilroberta";
    case ModelPreset::kBert:
      return "bert";
    case ModelPreset::kDistilBert:
      return "distilbert";
  }
  return "unknown";
}

bool ExtractorConfig::LowercaseTokenizer() const {
  return preset == ModelPreset::kBert || preset == ModelPreset::kDistilBert;
}

nn::TransformerConfig ExtractorConfig::BuildTransformerConfig(
    int32_t vocab_size) const {
  nn::TransformerConfig config;
  config.vocab_size = vocab_size;
  config.max_seq_len = max_seq_len;
  config.d_model = d_model;
  config.heads = heads;
  config.ffn_dim = ffn_dim;
  config.dropout = dropout;
  bool distilled = preset == ModelPreset::kDistilRoberta ||
                   preset == ModelPreset::kDistilBert;
  config.layers = distilled ? std::max(1, base_layers / 2) : base_layers;
  config.sinusoidal_positions =
      preset == ModelPreset::kBert || preset == ModelPreset::kDistilBert;
  return config;
}

StatusOr<ModelPreset> ParseModelPreset(std::string_view name) {
  if (name == "roberta") return ModelPreset::kRoberta;
  if (name == "distilroberta") return ModelPreset::kDistilRoberta;
  if (name == "bert") return ModelPreset::kBert;
  if (name == "distilbert") return ModelPreset::kDistilBert;
  return InvalidArgumentError("unknown model preset: " + std::string(name));
}

std::string ExtractorConfig::ToText() const {
  std::ostringstream out;
  out << "kinds=" << StrJoin(kinds, ",") << "\n"
      << "preset=" << ModelPresetName(preset) << "\n"
      << "epochs=" << epochs << "\n"
      << "learning_rate=" << learning_rate << "\n"
      << "learning_rate_scale=" << learning_rate_scale << "\n"
      << "batch_size=" << batch_size << "\n"
      << "dropout=" << dropout << "\n"
      << "seed=" << seed << "\n"
      << "bpe_merges=" << bpe_merges << "\n"
      << "max_seq_len=" << max_seq_len << "\n"
      << "d_model=" << d_model << "\n"
      << "heads=" << heads << "\n"
      << "ffn_dim=" << ffn_dim << "\n"
      << "base_layers=" << base_layers << "\n"
      << "normalize_text=" << (normalize_text ? 1 : 0) << "\n"
      << "num_threads=" << num_threads << "\n"
      << "enable_metrics=" << (enable_metrics ? 1 : 0) << "\n"
      << "use_inference_engine=" << (use_inference_engine ? 1 : 0) << "\n"
      << "packed_inference=" << (packed_inference ? 1 : 0) << "\n"
      << "packed_chunk_tokens=" << packed_chunk_tokens << "\n"
      << "quantize_int8=" << (quantize_int8 ? 1 : 0) << "\n"
      << "segment_multi_target=" << (segment_multi_target ? 1 : 0) << "\n"
      << "exact_match=" << (weak_labeler.exact_match ? 1 : 0) << "\n";
  return out.str();
}

StatusOr<ExtractorConfig> ExtractorConfig::FromText(std::string_view text) {
  ExtractorConfig config;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return DataLossError("bad config line: " + line);
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "kinds") {
      config.kinds.clear();
      for (const std::string& kind : StrSplit(value, ',')) {
        if (!kind.empty()) config.kinds.push_back(kind);
      }
    } else if (key == "preset") {
      auto preset = ParseModelPreset(value);
      if (!preset.ok()) return preset.status();
      config.preset = *preset;
    } else if (key == "epochs") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.epochs));
    } else if (key == "learning_rate") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.learning_rate));
    } else if (key == "learning_rate_scale") {
      GOALEX_RETURN_IF_ERROR(
          ParseNumber(key, value, &config.learning_rate_scale));
    } else if (key == "batch_size") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.batch_size));
    } else if (key == "dropout") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.dropout));
    } else if (key == "seed") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.seed));
    } else if (key == "bpe_merges") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.bpe_merges));
    } else if (key == "max_seq_len") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.max_seq_len));
    } else if (key == "d_model") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.d_model));
    } else if (key == "heads") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.heads));
    } else if (key == "ffn_dim") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.ffn_dim));
    } else if (key == "base_layers") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.base_layers));
    } else if (key == "normalize_text") {
      GOALEX_RETURN_IF_ERROR(ParseBool(key, value, &config.normalize_text));
    } else if (key == "num_threads") {
      GOALEX_RETURN_IF_ERROR(ParseNumber(key, value, &config.num_threads));
    } else if (key == "enable_metrics") {
      GOALEX_RETURN_IF_ERROR(ParseBool(key, value, &config.enable_metrics));
    } else if (key == "use_inference_engine") {
      GOALEX_RETURN_IF_ERROR(
          ParseBool(key, value, &config.use_inference_engine));
    } else if (key == "packed_inference") {
      GOALEX_RETURN_IF_ERROR(ParseBool(key, value, &config.packed_inference));
    } else if (key == "packed_chunk_tokens") {
      GOALEX_RETURN_IF_ERROR(
          ParseNumber(key, value, &config.packed_chunk_tokens));
    } else if (key == "quantize_int8") {
      GOALEX_RETURN_IF_ERROR(ParseBool(key, value, &config.quantize_int8));
    } else if (key == "segment_multi_target") {
      GOALEX_RETURN_IF_ERROR(
          ParseBool(key, value, &config.segment_multi_target));
    } else if (key == "exact_match") {
      GOALEX_RETURN_IF_ERROR(
          ParseBool(key, value, &config.weak_labeler.exact_match));
    } else {
      return InvalidArgumentError("unknown config key: " + key);
    }
  }
  if (config.kinds.empty()) {
    return InvalidArgumentError("config is missing kinds");
  }
  return config;
}

Status ServeConfig::Validate() const {
  if (max_batch_size <= 0) {
    return InvalidArgumentError("serve: max_batch_size must be positive");
  }
  if (batch_deadline_ms <= 0.0) {
    return InvalidArgumentError("serve: batch_deadline_ms must be positive");
  }
  if (max_queue_depth <= 0) {
    return InvalidArgumentError("serve: max_queue_depth must be positive");
  }
  if (slo_p99_ms <= 0.0) {
    return InvalidArgumentError("serve: slo_p99_ms must be positive");
  }
  if (service_time_ema_alpha <= 0.0 || service_time_ema_alpha > 1.0) {
    return InvalidArgumentError(
        "serve: service_time_ema_alpha must be in (0, 1]");
  }
  if (db_wal_fsync_interval < 0) {
    return InvalidArgumentError(
        "serve: db_wal_fsync_interval must be >= 0");
  }
  return Status::Ok();
}

}  // namespace goalex::core
