#ifndef GOALEX_VALUES_VALUE_NORMALIZER_H_
#define GOALEX_VALUES_VALUE_NORMALIZER_H_

#include <optional>
#include <string>
#include <string_view>

#include "data/schema.h"

namespace goalex::values {

/// Semantic categories of normalized Amount values. The paper names
/// "normalization or categorization of actions and amounts" as the natural
/// extension enabling fine-grained cross-company benchmarking (Section 2.4)
/// — this module implements it.
enum class AmountType {
  kPercent,    ///< "20%", "8.1 percent" -> fraction of 1.
  kCount,      ///< "250", "1 million", "10,000".
  kMass,       ///< "500 tonnes", "1.5 Mt" -> kilograms.
  kEnergy,     ///< "10 GWh" -> joules.
  kPower,      ///< "25 MW" -> watts.
  kNetZero,    ///< "net-zero", "net zero", "zero".
  kMultiplier, ///< "double" -> 2.0, "half" -> 0.5, "two thirds" -> 0.67.
};

/// A normalized Amount: its semantic type and magnitude in the canonical
/// unit of that type (fraction for percent, kg for mass, J for energy,
/// W for power, dimensionless otherwise).
struct NormalizedAmount {
  AmountType type = AmountType::kCount;
  double magnitude = 0.0;

  friend bool operator==(const NormalizedAmount& a,
                         const NormalizedAmount& b) {
    return a.type == b.type && a.magnitude == b.magnitude;
  }
};

const char* AmountTypeName(AmountType type);

/// Parses an extracted Amount surface form ("20%", "net-zero",
/// "1.5 Mt", "double", "10,000"). Returns nullopt when the surface form is
/// not a recognizable quantity.
std::optional<NormalizedAmount> NormalizeAmount(std::string_view raw);

/// Parses an extracted Baseline surface form into a calendar year: the
/// *first* bounded 4-digit run in [1900, 2100]. Accepts bare years
/// ("2040") and phrases containing one ("the end of 2040"); rejects text
/// without a plausible year.
std::optional<int> NormalizeYear(std::string_view raw);

/// Deadline-aware variant of NormalizeYear. A clipped Deadline value often
/// carries both years of the objective ("compared to 2019 levels, by
/// 2035"), and the first-run rule would return the *baseline* 2019. This
/// one prefers the first year anchored by a deadline cue ("by", "until",
/// "before", "no later than", "target date of" — skipping filler like
/// "the end of" / "fiscal year"), and falls back to the last bounded run
/// when no cue is present. Identical to NormalizeYear on single-year
/// strings.
std::optional<int> NormalizeDeadlineYear(std::string_view raw);

/// Canonicalizes an extracted Action surface form to a lowercase lemma:
/// strips the "will " auxiliary, lowercases, and reduces gerunds to a stem
/// ("will Reduce" -> "reduce", "reducing" -> "reduce", "phasing out" ->
/// "phase out"). Heuristic but deterministic.
std::string NormalizeAction(std::string_view raw);

/// A fully typed view of a DetailRecord, for indexing and range queries.
struct TypedDetails {
  std::string action_lemma;                ///< Empty when absent.
  std::optional<NormalizedAmount> amount;
  std::optional<int> baseline_year;
  std::optional<int> deadline_year;
};

/// Normalizes all recognized fields of `record` (Sustainability Goals
/// schema; NetZeroFacts fields map via their roles: TargetValue -> amount,
/// ReferenceYear -> baseline, TargetYear -> deadline).
TypedDetails NormalizeRecord(const data::DetailRecord& record);

}  // namespace goalex::values

#endif  // GOALEX_VALUES_VALUE_NORMALIZER_H_
