#include "values/value_normalizer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace goalex::values {
namespace {

// Parses a number with optional thousands separators and decimal point at
// the start of `text`; returns consumed length via *length. A comma is a
// thousands separator only when followed by a group of exactly 3 digits
// (not more, not fewer); otherwise parsing stops before it, so European
// decimals like "2,5" parse as 2 (and the caller's unit match then fails)
// rather than silently gluing into 25.
std::optional<double> ParseLeadingNumber(std::string_view text,
                                         size_t* length) {
  std::string digits;
  size_t i = 0;
  bool seen_digit = false;
  bool seen_dot = false;
  auto is_digit_at = [&text](size_t pos) {
    return pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]));
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits.push_back(c);
      seen_digit = true;
      ++i;
    } else if (c == ',' && seen_digit && !seen_dot) {
      bool group_of_three = is_digit_at(i + 1) && is_digit_at(i + 2) &&
                            is_digit_at(i + 3) && !is_digit_at(i + 4);
      if (!group_of_three) break;
      digits.push_back(text[i + 1]);
      digits.push_back(text[i + 2]);
      digits.push_back(text[i + 3]);
      i += 4;
    } else if (c == '.' && seen_digit && !seen_dot && i + 1 < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
      digits.push_back('.');
      seen_dot = true;
      ++i;
    } else {
      break;
    }
  }
  if (!seen_digit) return std::nullopt;
  *length = i;
  return std::strtod(digits.c_str(), nullptr);
}

// Removes trailing sentence punctuation ("40 percent.", "1,000 tonnes,")
// so values clipped from running text still normalize. '%' is meaningful
// and is never stripped.
std::string_view StripTrailingPunctuation(std::string_view text) {
  while (!text.empty()) {
    char c = text.back();
    if (c == '.' || c == ',' || c == ';' || c == ':' || c == '!' ||
        c == '?') {
      text.remove_suffix(1);
    } else {
      break;
    }
  }
  return text;
}

struct UnitSpec {
  const char* name;       // Lowercased unit token.
  AmountType type;
  double to_canonical;    // Multiplier into the canonical unit.
};

constexpr UnitSpec kUnits[] = {
    {"tonnes", AmountType::kMass, 1000.0},       // -> kg
    {"tonne", AmountType::kMass, 1000.0},
    {"t", AmountType::kMass, 1000.0},
    {"kt", AmountType::kMass, 1e6},
    {"mt", AmountType::kMass, 1e9},
    {"gwh", AmountType::kEnergy, 3.6e12},        // -> J
    {"mwh", AmountType::kEnergy, 3.6e9},
    {"kwh", AmountType::kEnergy, 3.6e6},
    {"gw", AmountType::kPower, 1e9},             // -> W
    {"mw", AmountType::kPower, 1e6},
    {"kw", AmountType::kPower, 1e3},
    {"billion", AmountType::kCount, 1e9},
    {"million", AmountType::kCount, 1e6},
    {"thousand", AmountType::kCount, 1e3},
};

}  // namespace

const char* AmountTypeName(AmountType type) {
  switch (type) {
    case AmountType::kPercent:
      return "percent";
    case AmountType::kCount:
      return "count";
    case AmountType::kMass:
      return "mass";
    case AmountType::kEnergy:
      return "energy";
    case AmountType::kPower:
      return "power";
    case AmountType::kNetZero:
      return "net-zero";
    case AmountType::kMultiplier:
      return "multiplier";
  }
  return "unknown";
}

std::optional<NormalizedAmount> NormalizeAmount(std::string_view raw) {
  std::string lower(StripAsciiWhitespace(
      StripTrailingPunctuation(AsciiToLower(StripAsciiWhitespace(raw)))));
  if (lower.empty()) return std::nullopt;

  // Special forms first.
  if (lower == "net-zero" || lower == "net zero" || lower == "zero" ||
      lower == "carbon neutral" || lower == "carbon-neutral") {
    return NormalizedAmount{AmountType::kNetZero, 0.0};
  }
  if (lower == "double") {
    return NormalizedAmount{AmountType::kMultiplier, 2.0};
  }
  if (lower == "half") {
    return NormalizedAmount{AmountType::kMultiplier, 0.5};
  }
  if (lower == "two thirds") {
    return NormalizedAmount{AmountType::kMultiplier, 2.0 / 3.0};
  }
  if (lower == "one third") {
    return NormalizedAmount{AmountType::kMultiplier, 1.0 / 3.0};
  }

  size_t consumed = 0;
  std::optional<double> number = ParseLeadingNumber(lower, &consumed);
  if (!number) return std::nullopt;
  std::string_view rest = StripAsciiWhitespace(
      std::string_view(lower).substr(consumed));

  if (rest.empty()) {
    return NormalizedAmount{AmountType::kCount, *number};
  }
  if (rest == "%" || rest == "percent" || rest == "per cent") {
    return NormalizedAmount{AmountType::kPercent, *number / 100.0};
  }
  // Unit word (possibly with a trailing qualifier like "co2e").
  std::vector<std::string> unit_words = StrSplitWhitespace(rest);
  for (const UnitSpec& unit : kUnits) {
    if (unit_words[0] == unit.name) {
      return NormalizedAmount{unit.type, *number * unit.to_canonical};
    }
  }
  return std::nullopt;
}

namespace {

/// A plausible calendar year found in running text: its value and the byte
/// offset of its first digit.
struct YearRun {
  int year = 0;
  size_t pos = 0;
};

/// Every bounded (not part of a longer digit run) 4-digit run in
/// [1900, 2100], left to right.
std::vector<YearRun> BoundedYearRuns(std::string_view text) {
  std::vector<YearRun> runs;
  for (size_t i = 0; i + 4 <= text.size(); ++i) {
    bool is_year = true;
    for (size_t j = 0; j < 4; ++j) {
      if (!std::isdigit(static_cast<unsigned char>(text[i + j]))) {
        is_year = false;
        break;
      }
    }
    if (!is_year) continue;
    bool bounded_left =
        i == 0 || !std::isdigit(static_cast<unsigned char>(text[i - 1]));
    bool bounded_right =
        i + 4 == text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[i + 4]));
    if (!bounded_left || !bounded_right) continue;
    int year = std::atoi(std::string(text.substr(i, 4)).c_str());
    if (year >= 1900 && year <= 2100) runs.push_back({year, i});
  }
  return runs;
}

/// True when the word chain directly before `pos` anchors a deadline:
/// walking backwards, skip filler words ("the end of", "fiscal year") and
/// test the first substantive word against the deadline cues. Stopping at
/// the first non-filler word is what keeps "by 40 percent compared to
/// 2019" from matching — the "by" there belongs to the amount, and the
/// walk stops at "compared" long before reaching it.
bool DeadlineCueBefore(std::string_view text, size_t pos) {
  static const char* const kCues[] = {"by",   "until",    "before",
                                      "till", "through",  "than",
                                      "date", "deadline", "target"};
  static const char* const kFillers[] = {"the",  "end",    "of",   "a",
                                         "an",   "fiscal", "year", "to",
                                         "late", "early",  "mid"};
  size_t i = pos;
  for (int words = 0; words < 6; ++words) {
    while (i > 0 && !std::isalpha(static_cast<unsigned char>(text[i - 1]))) {
      --i;
    }
    if (i == 0) return false;
    size_t end = i;
    while (i > 0 && std::isalpha(static_cast<unsigned char>(text[i - 1]))) {
      --i;
    }
    std::string word = AsciiToLower(text.substr(i, end - i));
    for (const char* cue : kCues) {
      if (word == cue) return true;
    }
    bool filler = false;
    for (const char* f : kFillers) filler |= (word == f);
    if (!filler) return false;
  }
  return false;
}

}  // namespace

std::optional<int> NormalizeYear(std::string_view raw) {
  std::vector<YearRun> runs = BoundedYearRuns(raw);
  if (runs.empty()) return std::nullopt;
  return runs.front().year;
}

std::optional<int> NormalizeDeadlineYear(std::string_view raw) {
  std::vector<YearRun> runs = BoundedYearRuns(raw);
  if (runs.empty()) return std::nullopt;
  // Prefer the first year anchored by a deadline cue ("by 2035", "no later
  // than 2035", "target date of 2035"); a baseline year in the same string
  // ("compared to 2019 levels, by 2035") never carries one. Without any
  // cue, the deadline conventionally trails the baseline, so fall back to
  // the last run rather than the first.
  for (const YearRun& run : runs) {
    if (DeadlineCueBefore(raw, run.pos)) return run.year;
  }
  return runs.back().year;
}

std::string NormalizeAction(std::string_view raw) {
  std::string lower = AsciiToLower(StripAsciiWhitespace(raw));
  if (StartsWith(lower, "will ")) lower = lower.substr(5);
  if (lower.empty()) return lower;

  std::vector<std::string> words = StrSplitWhitespace(lower);
  std::string& head = words[0];
  if (EndsWith(head, "ing") && head.size() > 5) {
    std::string stem = head.substr(0, head.size() - 3);
    // Undo common gerund spellings: "reducing" -> "reduce" (restore 'e'),
    // "cutting" -> "cut" (drop doubled consonant), "planting" -> "plant".
    //
    // De-doubling applies only to the consonants English actually doubles
    // before "-ing" (CVC doubling: cut/cutting, plan/planning). A doubled
    // vowel is never gerund doubling — "agreeing"/"seeing" keep their
    // "ee" — and letters like 's' or 'f' that end many base forms
    // ("press", "staff") but essentially never double are left alone.
    //
    // 'l' is the inverted case: base verbs ending in "-ll" vastly
    // outnumber single-'l' verbs that double (sell, pull, kill, fill,
    // call, roll, ...), so "-ll" stems keep the pair by default and only
    // the known doubling bases — CVC stress doubling (control, compel,
    // propel) and British-style '-l' doubling (travel, label, model) —
    // are de-doubled. For the other doubling consonants the default is
    // reversed: de-double unless the stem is one of the few base forms
    // that genuinely end doubled ("add", "err", "ebb", ...).
    char last = stem.empty() ? '\0' : stem.back();
    bool doubled_tail =
        stem.size() >= 3 && stem[stem.size() - 1] == stem[stem.size() - 2];
    bool de_double = false;
    if (doubled_tail && last == 'l') {
      static const char* kDeDoubleL[] = {
          "controll", "compell", "propell", "repell",  "expell",
          "excell",   "patroll", "extoll",  "fuell",   "modell",
          "labell",   "travell", "cancell", "levell",  "signall",
          "totall",   "equall",  "rivall",  "channell"};
      for (const char* word : kDeDoubleL) de_double |= (stem == word);
    } else if (doubled_tail &&
               (last == 'b' || last == 'd' || last == 'g' || last == 'm' ||
                last == 'n' || last == 'p' || last == 'r' || last == 't')) {
      static const char* kKeepDoubled[] = {"add",  "err",  "ebb",
                                           "egg",  "purr", "putt"};
      bool keep_doubled = false;
      for (const char* word : kKeepDoubled) keep_doubled |= (stem == word);
      de_double = !keep_doubled;
    }
    if (de_double) {
      // Gerund doubling: "cutting" -> "cutt" -> "cut".
      head = stem.substr(0, stem.size() - 1);
    } else if (doubled_tail) {
      // A doubled tail we chose to keep ("agree", "sell", "press") is
      // already the base word; never run the restore-'e' heuristics on it.
      head = stem;
    } else if (EndsWith(stem, "c") || EndsWith(stem, "v") ||
               EndsWith(stem, "u") || EndsWith(stem, "s") ||
               EndsWith(stem, "z")) {
      // Stems that cannot end a word bare: "reduc" -> "reduce".
      head = stem + "e";
    } else {
      // Ambiguous: restore 'e' for known stems ("restor" -> "restore"),
      // otherwise the stem is already a word ("plant", "reach").
      static const char* kNeedsE[] = {"restor",   "eliminat", "substitut",
                                      "recycl",   "procur",   "integrat",
                                      "doubl",    "promot"};
      bool restored = false;
      for (const char* needs_e : kNeedsE) {
        if (stem == needs_e) {
          head = stem + "e";
          restored = true;
          break;
        }
      }
      if (!restored) head = stem;
    }
  }
  return StrJoin(words, " ");
}

TypedDetails NormalizeRecord(const data::DetailRecord& record) {
  TypedDetails out;
  auto field = [&record](const char* primary,
                         const char* alias) -> std::string {
    std::string value = record.FieldOrEmpty(primary);
    if (value.empty()) value = record.FieldOrEmpty(alias);
    return value;
  };

  std::string action = record.FieldOrEmpty("Action");
  if (!action.empty()) out.action_lemma = NormalizeAction(action);

  std::string amount = field("Amount", "TargetValue");
  if (!amount.empty()) out.amount = NormalizeAmount(amount);

  std::string baseline = field("Baseline", "ReferenceYear");
  if (!baseline.empty()) out.baseline_year = NormalizeYear(baseline);

  std::string deadline = field("Deadline", "TargetYear");
  if (!deadline.empty()) out.deadline_year = NormalizeDeadlineYear(deadline);
  return out;
}

}  // namespace goalex::values
