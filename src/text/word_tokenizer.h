#ifndef GOALEX_TEXT_WORD_TOKENIZER_H_
#define GOALEX_TEXT_WORD_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace goalex::text {

/// A surface token with its byte span in the original text.
struct Token {
  std::string text;
  size_t begin = 0;  ///< Byte offset of the first byte, inclusive.
  size_t end = 0;    ///< Byte offset past the last byte, exclusive.

  friend bool operator==(const Token& a, const Token& b) {
    return a.text == b.text && a.begin == b.begin && a.end == b.end;
  }
};

/// Word-level tokenizer used by the weak-labeling algorithm and the CRF
/// baseline. Splitting rules match the paper's Table 3 example: alphanumeric
/// runs are tokens, each punctuation character is its own token, and
/// intra-word hyphens split ("co-founded" -> "co", "-", "founded";
/// "net-zero" -> "net", "-", "zero"). Percent signs split off ("20%" ->
/// "20", "%"), but decimal points and thousands separators stay inside
/// numbers ("62.1" and "10,000" are single tokens).
class WordTokenizer {
 public:
  /// Tokenizes `input` into tokens with byte offsets.
  std::vector<Token> Tokenize(std::string_view input) const;

  /// Convenience: returns only the token strings.
  std::vector<std::string> TokenizeToStrings(std::string_view input) const;
};

}  // namespace goalex::text

#endif  // GOALEX_TEXT_WORD_TOKENIZER_H_
