#include "text/normalizer.h"

#include <cctype>
#include <cstdint>

#include "common/string_util.h"

namespace goalex::text {
namespace {

// Decodes the UTF-8 code point starting at input[pos]. Writes its byte
// length to *length. Invalid sequences are treated as single Latin-1 bytes.
uint32_t DecodeUtf8(std::string_view input, size_t pos, size_t* length) {
  unsigned char b0 = static_cast<unsigned char>(input[pos]);
  if (b0 < 0x80) {
    *length = 1;
    return b0;
  }
  auto continuation = [&](size_t offset) -> int {
    if (pos + offset >= input.size()) return -1;
    unsigned char b = static_cast<unsigned char>(input[pos + offset]);
    if ((b & 0xC0) != 0x80) return -1;
    return b & 0x3F;
  };
  if ((b0 & 0xE0) == 0xC0) {
    int c1 = continuation(1);
    if (c1 >= 0) {
      *length = 2;
      return (static_cast<uint32_t>(b0 & 0x1F) << 6) | c1;
    }
  } else if ((b0 & 0xF0) == 0xE0) {
    int c1 = continuation(1), c2 = continuation(2);
    if (c1 >= 0 && c2 >= 0) {
      *length = 3;
      return (static_cast<uint32_t>(b0 & 0x0F) << 12) | (c1 << 6) | c2;
    }
  } else if ((b0 & 0xF8) == 0xF0) {
    int c1 = continuation(1), c2 = continuation(2), c3 = continuation(3);
    if (c1 >= 0 && c2 >= 0 && c3 >= 0) {
      *length = 4;
      return (static_cast<uint32_t>(b0 & 0x07) << 18) | (c1 << 12) |
             (c2 << 6) | c3;
    }
  }
  *length = 1;
  return b0;
}

// Returns the ASCII fold for `cp`, or empty if no fold applies (pass the
// original bytes through). Returns " " to fold to a space and "\x01" as a
// private marker meaning "delete this code point".
std::string_view PunctuationFold(uint32_t cp) {
  switch (cp) {
    case 0x2018:  // left single quote
    case 0x2019:  // right single quote
    case 0x201A:  // low single quote
    case 0x2032:  // prime
      return "'";
    case 0x201C:  // left double quote
    case 0x201D:  // right double quote
    case 0x201E:  // low double quote
    case 0x2033:  // double prime
      return "\"";
    case 0x2010:  // hyphen
    case 0x2011:  // non-breaking hyphen
    case 0x2012:  // figure dash
    case 0x2013:  // en dash
    case 0x2014:  // em dash
    case 0x2015:  // horizontal bar
    case 0x2212:  // minus sign
      return "-";
    case 0x2026:  // ellipsis
      return "...";
    case 0x00A0:  // non-breaking space
    case 0x2007:  // figure space
    case 0x202F:  // narrow no-break space
    case 0x3000:  // ideographic space
      return " ";
    case 0x2022:  // bullet
    case 0x25CF:  // black circle
    case 0x25AA:  // black small square
    case 0x2023:  // triangular bullet
      return "\x01";
    default:
      return {};
  }
}

bool IsZeroWidth(uint32_t cp) {
  return cp == 0x200B || cp == 0x200C || cp == 0x200D || cp == 0xFEFF ||
         cp == 0x00AD;  // soft hyphen
}

}  // namespace

std::string Normalize(std::string_view input, const NormalizerOptions& opts) {
  std::string folded;
  folded.reserve(input.size());
  size_t i = 0;
  while (i < input.size()) {
    size_t length = 0;
    uint32_t cp = DecodeUtf8(input, i, &length);
    if (opts.remove_control_characters &&
        ((cp < 0x20 && cp != '\n' && cp != '\t' && cp != '\r') ||
         cp == 0x7F || IsZeroWidth(cp))) {
      i += length;
      continue;
    }
    if (opts.fold_unicode_punctuation) {
      std::string_view fold = PunctuationFold(cp);
      if (fold == "\x01") {
        i += length;
        continue;
      }
      if (!fold.empty()) {
        folded.append(fold);
        i += length;
        continue;
      }
    }
    folded.append(input.substr(i, length));
    i += length;
  }

  std::string out;
  if (opts.collapse_whitespace) {
    out.reserve(folded.size());
    bool in_space = false;
    for (char c : folded) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        in_space = true;
        continue;
      }
      if (in_space && !out.empty()) out.push_back(' ');
      in_space = false;
      out.push_back(c);
    }
  } else {
    out = std::move(folded);
  }

  if (opts.lowercase) out = AsciiToLower(out);
  return out;
}

std::string Normalize(std::string_view input) {
  return Normalize(input, NormalizerOptions());
}

}  // namespace goalex::text
