#include "text/sentence_splitter.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace goalex::text {
namespace {

// Lowercased abbreviations that end with '.' and do not end a sentence.
constexpr std::array<std::string_view, 14> kAbbreviations = {
    "e.g", "i.e", "etc", "inc", "ltd", "co", "corp", "approx",
    "no",  "vs",  "fig", "al",  "dr",  "mr"};

// Returns the lowercased word immediately before position `pos` (which
// points at the terminator character).
std::string WordBefore(std::string_view text, size_t pos) {
  size_t end = pos;
  size_t start = end;
  while (start > 0) {
    unsigned char c = static_cast<unsigned char>(text[start - 1]);
    if (std::isalpha(c) || c == '.') {
      --start;
    } else {
      break;
    }
  }
  std::string word(text.substr(start, end - start));
  // Strip internal trailing period ("e.g." before the final '.').
  while (!word.empty() && word.back() == '.') word.pop_back();
  return goalex::AsciiToLower(word);
}

bool IsAbbreviation(std::string_view word) {
  for (std::string_view abbr : kAbbreviations) {
    if (word == abbr) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> SentenceSplitter::Split(
    std::string_view block) const {
  std::vector<std::string> sentences;
  size_t start = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    char c = block[i];
    if (c != '.' && c != '!' && c != '?') continue;

    if (c == '.') {
      // Period inside a number: "8.1%".
      bool digit_before =
          i > 0 && std::isdigit(static_cast<unsigned char>(block[i - 1]));
      bool digit_after =
          i + 1 < block.size() &&
          std::isdigit(static_cast<unsigned char>(block[i + 1]));
      if (digit_before && digit_after) continue;
      if (IsAbbreviation(WordBefore(block, i))) continue;
    }

    // Consume trailing quote/bracket characters after the terminator.
    size_t end = i + 1;
    while (end < block.size() &&
           (block[end] == '"' || block[end] == '\'' || block[end] == ')')) {
      ++end;
    }

    // A sentence boundary requires end-of-block, or whitespace followed by
    // an uppercase letter, digit, or opening quote.
    bool boundary = end >= block.size();
    if (!boundary && std::isspace(static_cast<unsigned char>(block[end]))) {
      size_t next = end;
      while (next < block.size() &&
             std::isspace(static_cast<unsigned char>(block[next]))) {
        ++next;
      }
      if (next >= block.size()) {
        boundary = true;
      } else {
        unsigned char nc = static_cast<unsigned char>(block[next]);
        boundary = std::isupper(nc) || std::isdigit(nc) || nc == '"' ||
                   nc == '\'' || nc >= 0x80;
      }
    }
    if (!boundary) continue;

    std::string_view sentence =
        goalex::StripAsciiWhitespace(block.substr(start, end - start));
    if (!sentence.empty()) sentences.emplace_back(sentence);
    start = end;
    i = end - 1;
  }
  std::string_view tail = goalex::StripAsciiWhitespace(block.substr(start));
  if (!tail.empty()) sentences.emplace_back(tail);
  return sentences;
}

}  // namespace goalex::text
