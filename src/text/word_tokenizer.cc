#include "text/word_tokenizer.h"

#include <cctype>

namespace goalex::text {
namespace {

bool IsWordByte(unsigned char c) {
  // Alphanumeric ASCII plus all non-ASCII bytes (UTF-8 continuation and lead
  // bytes) count as word characters, so accented words stay single tokens.
  return std::isalnum(c) || c >= 0x80;
}

}  // namespace

std::vector<Token> WordTokenizer::Tokenize(std::string_view input) const {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    unsigned char c = static_cast<unsigned char>(input[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (IsWordByte(c)) {
      size_t start = i;
      while (i < input.size()) {
        unsigned char b = static_cast<unsigned char>(input[i]);
        if (IsWordByte(b)) {
          ++i;
          continue;
        }
        // Keep decimal points and thousands separators inside numbers:
        // "62.1" and "10,000" are single tokens.
        bool digit_sep =
            (b == '.' || b == ',') && i > start &&
            std::isdigit(static_cast<unsigned char>(input[i - 1])) &&
            i + 1 < input.size() &&
            std::isdigit(static_cast<unsigned char>(input[i + 1]));
        if (digit_sep) {
          ++i;
          continue;
        }
        break;
      }
      tokens.push_back(
          Token{std::string(input.substr(start, i - start)), start, i});
      continue;
    }
    // Every other byte (punctuation, symbols) is a single-char token.
    tokens.push_back(Token{std::string(input.substr(i, 1)), i, i + 1});
    ++i;
  }
  return tokens;
}

std::vector<std::string> WordTokenizer::TokenizeToStrings(
    std::string_view input) const {
  std::vector<std::string> out;
  for (Token& t : Tokenize(input)) out.push_back(std::move(t.text));
  return out;
}

}  // namespace goalex::text
