#ifndef GOALEX_TEXT_SENTENCE_SPLITTER_H_
#define GOALEX_TEXT_SENTENCE_SPLITTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace goalex::text {

/// Splits report text blocks into sentences. The evaluation datasets are
/// sentence-level (NetZeroFacts passages are segmented into sentences), so
/// the pipeline needs a sentence splitter between block detection and
/// extraction.
///
/// Rules: a sentence ends at '.', '!' or '?' followed by whitespace and an
/// uppercase/digit start, with guards for common abbreviations ("e.g.",
/// "Inc.", "approx.") and for periods inside numbers ("8.1%").
class SentenceSplitter {
 public:
  /// Returns the sentences of `block`, trimmed of surrounding whitespace.
  std::vector<std::string> Split(std::string_view block) const;
};

}  // namespace goalex::text

#endif  // GOALEX_TEXT_SENTENCE_SPLITTER_H_
