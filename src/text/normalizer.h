#ifndef GOALEX_TEXT_NORMALIZER_H_
#define GOALEX_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace goalex::text {

/// Options controlling text normalization, mirroring the preprocessing
/// strategy the paper inherits from GoalSpotter: normalize the input text and
/// remove unnecessary characters to reduce superficial noise.
struct NormalizerOptions {
  /// Collapse runs of whitespace (including newlines/tabs) to single spaces
  /// and strip leading/trailing whitespace.
  bool collapse_whitespace = true;
  /// Remove ASCII control characters and unicode zero-width characters
  /// (ZWSP, ZWNJ, ZWJ, BOM) commonly introduced by PDF extraction.
  bool remove_control_characters = true;
  /// Fold unicode punctuation to ASCII equivalents: curly quotes -> '"/',
  /// en/em dashes and unicode hyphens -> '-', ellipsis -> '...',
  /// non-breaking space -> ' ', bullet characters -> removed.
  bool fold_unicode_punctuation = true;
  /// Lowercase ASCII letters. Off by default: casing is a useful signal for
  /// the extractor (e.g., "Reduce" at sentence start) and the deployed
  /// GoalSpotter pipeline keeps case.
  bool lowercase = false;
};

/// Normalizes raw report text. UTF-8 safe: multi-byte sequences that are not
/// explicitly folded are passed through unchanged.
std::string Normalize(std::string_view input, const NormalizerOptions& opts);

/// Normalizes with default options.
std::string Normalize(std::string_view input);

}  // namespace goalex::text

#endif  // GOALEX_TEXT_NORMALIZER_H_
