#include "weaksup/alignment.h"

#include "common/check.h"

namespace goalex::weaksup {

std::vector<labels::LabelId> ProjectLabelsToSubwords(
    const std::vector<labels::LabelId>& word_labels,
    const std::vector<bpe::Subword>& subwords,
    const labels::LabelCatalog& catalog) {
  std::vector<labels::LabelId> out;
  out.reserve(subwords.size());
  for (const bpe::Subword& sw : subwords) {
    GOALEX_CHECK_LT(sw.word_index, word_labels.size());
    labels::LabelId word_label = word_labels[sw.word_index];
    if (word_label == labels::LabelCatalog::kOutsideId) {
      out.push_back(labels::LabelCatalog::kOutsideId);
    } else if (catalog.IsBegin(word_label) && !sw.is_word_start) {
      out.push_back(catalog.InsideId(catalog.KindOf(word_label)));
    } else {
      out.push_back(word_label);
    }
  }
  return out;
}

std::vector<labels::LabelId> CollapseSubwordLabels(
    const std::vector<labels::LabelId>& subword_labels,
    const std::vector<bpe::Subword>& subwords, size_t word_count) {
  GOALEX_CHECK_EQ(subword_labels.size(), subwords.size());
  std::vector<labels::LabelId> out(word_count,
                                   labels::LabelCatalog::kOutsideId);
  for (size_t i = 0; i < subwords.size(); ++i) {
    if (subwords[i].is_word_start) {
      GOALEX_CHECK_LT(subwords[i].word_index, word_count);
      out[subwords[i].word_index] = subword_labels[i];
    }
  }
  return out;
}

}  // namespace goalex::weaksup
