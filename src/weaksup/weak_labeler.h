#ifndef GOALEX_WEAKSUP_WEAK_LABELER_H_
#define GOALEX_WEAKSUP_WEAK_LABELER_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "labels/iob.h"
#include "obs/metrics.h"
#include "text/word_tokenizer.h"

namespace goalex::weaksup {

/// Options for the weakly supervised token-labeling algorithm.
struct WeakLabelerOptions {
  /// Exact token matching (the paper's deployed configuration). When false,
  /// the fuzzy extension listed as future work is enabled: matching is
  /// case-insensitive and skips pure-punctuation tokens on both sides.
  bool exact_match = true;
  /// When several positions match the annotation value, label the first one
  /// (Algorithm 1 takes the first found index).
  bool first_match_only = true;
};

/// Result of weak labeling one objective.
struct WeakLabeling {
  /// Word-level tokens of the objective text.
  std::vector<text::Token> tokens;
  /// One IOB label id per token.
  std::vector<labels::LabelId> label_ids;
  /// Annotation kinds whose value could not be located in the text (the
  /// exact-matching limitation discussed in Section 5.3).
  std::vector<std::string> unmatched_kinds;
  /// Annotation kinds the labeler skipped without attempting a match:
  /// kinds outside the schema, or non-empty values that tokenize to
  /// nothing. Tracked so coverage statistics do not count them as matched.
  std::vector<std::string> skipped_kinds;
};

/// Implements Algorithm 1 (WeakSupervisionTokenLabeling): converts coarse
/// objective-level annotations into token-level IOB labels by locating each
/// annotation value's token sequence inside the objective's token sequence.
class WeakLabeler {
 public:
  WeakLabeler(const labels::LabelCatalog* catalog, WeakLabelerOptions options)
      : catalog_(catalog), options_(options) {
    if (obs::Active()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      matched_counter_ = registry.GetCounter("weaklabel.annotations.matched");
      unmatched_counter_ =
          registry.GetCounter("weaklabel.annotations.unmatched");
      skipped_counter_ = registry.GetCounter("weaklabel.annotations.skipped");
      label_seconds_hist_ =
          registry.GetLatencyHistogram("weaklabel.label.seconds");
    }
  }

  explicit WeakLabeler(const labels::LabelCatalog* catalog)
      : WeakLabeler(catalog, WeakLabelerOptions()) {}

  /// Runs Algorithm 1 on one objective. Annotation kinds not present in the
  /// catalog and empty annotation values are skipped (they carry no token
  /// supervision). Unlocatable values are recorded in `unmatched_kinds`.
  WeakLabeling Label(const data::Objective& objective) const;

  /// Labels a whole training set; the i-th result corresponds to the i-th
  /// objective. `num_threads` fans the per-objective work out on a
  /// runtime::BatchRunner (<= 0 = hardware concurrency, 1 = serial); the
  /// output is order-preserving and identical for every thread count.
  std::vector<WeakLabeling> LabelAll(
      const std::vector<data::Objective>& objectives,
      int num_threads = 1) const;

  const labels::LabelCatalog& catalog() const { return *catalog_; }
  const WeakLabelerOptions& options() const { return options_; }

 private:
  /// Returns the first index s such that haystack[s : ...] matches
  /// `needle` under the configured matching mode, or -1.
  int64_t FindSubsequence(const std::vector<text::Token>& haystack,
                          const std::vector<text::Token>& needle) const;

  /// Fuzzy greedy alignment of `needle` against `haystack` starting at
  /// `start`. Returns the end index (exclusive) of the matched window, or
  /// haystack.size() + 1 when no alignment exists.
  static size_t AlignFuzzy(const std::vector<text::Token>& haystack,
                           const std::vector<text::Token>& needle,
                           size_t start);

  const labels::LabelCatalog* catalog_;  // Not owned.
  WeakLabelerOptions options_;
  text::WordTokenizer tokenizer_;

  // Observability handles (null when instrumentation is inactive at
  // construction). Counters are atomic, so concurrent LabelAll workers
  // update them race-free.
  obs::Counter* matched_counter_ = nullptr;
  obs::Counter* unmatched_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;
  obs::Histogram* label_seconds_hist_ = nullptr;
};

/// Statistics over a weak-labeled corpus, used by the ablation benches and
/// by the coverage diagnostics the deployment discussion calls for.
struct WeakLabelStats {
  size_t objective_count = 0;
  size_t annotation_count = 0;   ///< Non-empty annotations seen.
  size_t matched_count = 0;      ///< Annotations located in the text.
  size_t skipped_count = 0;      ///< Out-of-schema / token-less annotations.
  size_t labeled_token_count = 0;
  size_t total_token_count = 0;

  /// Match rate over the annotations the labeler could attempt (non-empty,
  /// in-schema, tokenizable). Skipped annotations carry no token signal
  /// either way, so they are excluded from the denominator.
  double MatchRate() const {
    size_t matchable = annotation_count - skipped_count;
    return matchable == 0
               ? 0.0
               : static_cast<double>(matched_count) / matchable;
  }
};

/// Aggregates match statistics over labelings produced by LabelAll.
WeakLabelStats ComputeStats(const std::vector<data::Objective>& objectives,
                            const std::vector<WeakLabeling>& labelings);

}  // namespace goalex::weaksup

#endif  // GOALEX_WEAKSUP_WEAK_LABELER_H_
