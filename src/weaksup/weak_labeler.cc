#include "weaksup/weak_labeler.h"

#include <cctype>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/scope.h"
#include "runtime/batch_runner.h"

namespace goalex::weaksup {
namespace {

bool IsPunctuationToken(const std::string& token) {
  for (char c : token) {
    if (std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return !token.empty();
}

bool TokensEqualFuzzy(const std::string& a, const std::string& b) {
  return AsciiToLower(a) == AsciiToLower(b);
}

}  // namespace

int64_t WeakLabeler::FindSubsequence(
    const std::vector<text::Token>& haystack,
    const std::vector<text::Token>& needle) const {
  if (needle.empty()) return -1;

  if (options_.exact_match) {
    // The length guard only holds for exact matching; in fuzzy mode the
    // needle may legitimately be longer than the haystack because
    // annotator punctuation is tolerated ("net - zero" vs "net zero").
    if (needle.size() > haystack.size()) return -1;
    for (size_t s = 0; s + needle.size() <= haystack.size(); ++s) {
      bool match = true;
      for (size_t i = 0; i < needle.size(); ++i) {
        if (haystack[s + i].text != needle[i].text) {
          match = false;
          break;
        }
      }
      if (match) return static_cast<int64_t>(s);
    }
    return -1;
  }

  // Fuzzy mode: greedy alignment that compares tokens case-insensitively,
  // keeps matching punctuation inside the span, and tolerates punctuation
  // present on only one side ("net zero" vs "net-zero").
  for (size_t s = 0; s < haystack.size(); ++s) {
    if (AlignFuzzy(haystack, needle, s) != haystack.size() + 1) {
      return static_cast<int64_t>(s);
    }
  }
  return -1;
}

size_t WeakLabeler::AlignFuzzy(const std::vector<text::Token>& haystack,
                               const std::vector<text::Token>& needle,
                               size_t start) {
  size_t h = start;
  size_t n = 0;
  size_t last_matched_end = start;
  while (h < haystack.size() && n < needle.size()) {
    if (TokensEqualFuzzy(haystack[h].text, needle[n].text)) {
      ++h;
      ++n;
      last_matched_end = h;
      continue;
    }
    if (IsPunctuationToken(needle[n].text)) {
      ++n;  // Punctuation the annotator wrote but the text lacks.
      continue;
    }
    if (IsPunctuationToken(haystack[h].text) && n > 0) {
      ++h;  // Punctuation in the text the annotator skipped.
      continue;
    }
    return haystack.size() + 1;  // Mismatch on a content token.
  }
  // Any remaining needle tokens must be punctuation-only.
  while (n < needle.size() && IsPunctuationToken(needle[n].text)) ++n;
  if (n < needle.size()) return haystack.size() + 1;
  // A window that never matched a content token (possible when the value
  // is punctuation-only) is zero-length: it covers no haystack token, so
  // treating it as a match would label a token that is not part of the
  // value. Report no alignment instead.
  if (last_matched_end <= start) return haystack.size() + 1;
  return last_matched_end;
}

WeakLabeling WeakLabeler::Label(const data::Objective& objective) const {
  obs::ScopedTimer label_timer(label_seconds_hist_);
  WeakLabeling result;
  // Step 1 of Algorithm 1: tokenize the objective into T.
  result.tokens = tokenizer_.Tokenize(objective.text);
  // Step 2: initialize all weak labels to O.
  result.label_ids.assign(result.tokens.size(),
                          labels::LabelCatalog::kOutsideId);

  // Step 3: for each annotated (k, v) pair.
  for (const data::Annotation& annotation : objective.annotations) {
    if (annotation.value.empty()) continue;
    auto kind = catalog_->KindIndex(annotation.kind);
    if (!kind.ok()) {
      // Kind outside the schema carries no signal; record it so match
      // statistics do not silently count it as located.
      result.skipped_kinds.push_back(annotation.kind);
      continue;
    }

    // Step 4: tokenize the annotation value into U.
    std::vector<text::Token> value_tokens =
        tokenizer_.Tokenize(annotation.value);
    if (value_tokens.empty()) {
      result.skipped_kinds.push_back(annotation.kind);
      continue;
    }

    // Step 5: find the start index s of U within T.
    int64_t s = FindSubsequence(result.tokens, value_tokens);
    if (s < 0) {
      result.unmatched_kinds.push_back(annotation.kind);
      continue;
    }

    // Steps 7-9: assign B-k to the first token and I-k to the rest. In
    // fuzzy mode the matched window may differ in length from |U| because
    // punctuation is tolerated on either side; recompute its true end.
    size_t end = static_cast<size_t>(s) + value_tokens.size();
    if (!options_.exact_match) {
      size_t aligned_end =
          AlignFuzzy(result.tokens, value_tokens, static_cast<size_t>(s));
      // A zero-length or failed realignment covers no token; writing B-k
      // at `s` would label a token that is not part of the value.
      if (aligned_end <= static_cast<size_t>(s) ||
          aligned_end > result.tokens.size()) {
        result.unmatched_kinds.push_back(annotation.kind);
        continue;
      }
      end = aligned_end;
    }
    GOALEX_CHECK_LE(end, result.tokens.size());
    result.label_ids[static_cast<size_t>(s)] = catalog_->BeginId(*kind);
    for (size_t i = static_cast<size_t>(s) + 1; i < end; ++i) {
      result.label_ids[i] = catalog_->InsideId(*kind);
    }
    if (matched_counter_ != nullptr) matched_counter_->Increment();
  }
  if (skipped_counter_ != nullptr) {
    skipped_counter_->Increment(result.skipped_kinds.size());
    unmatched_counter_->Increment(result.unmatched_kinds.size());
  }
  return result;
}

std::vector<WeakLabeling> WeakLabeler::LabelAll(
    const std::vector<data::Objective>& objectives, int num_threads) const {
  runtime::BatchRunner runner(num_threads);
  return runner.Map<WeakLabeling>(
      objectives.size(), [this, &objectives](size_t i) {
        return Label(objectives[i]);
      });
}

WeakLabelStats ComputeStats(const std::vector<data::Objective>& objectives,
                            const std::vector<WeakLabeling>& labelings) {
  GOALEX_CHECK_EQ(objectives.size(), labelings.size());
  WeakLabelStats stats;
  stats.objective_count = objectives.size();
  for (size_t i = 0; i < objectives.size(); ++i) {
    size_t non_empty = 0;
    for (const data::Annotation& a : objectives[i].annotations) {
      if (!a.value.empty()) ++non_empty;
    }
    stats.annotation_count += non_empty;
    stats.skipped_count += labelings[i].skipped_kinds.size();
    // Only annotations the labeler actually located count as matches:
    // non-empty minus the unlocatable ones minus the out-of-schema /
    // token-less ones it skipped without attempting a match.
    stats.matched_count += non_empty - labelings[i].unmatched_kinds.size() -
                           labelings[i].skipped_kinds.size();
    stats.total_token_count += labelings[i].tokens.size();
    for (labels::LabelId id : labelings[i].label_ids) {
      if (id != labels::LabelCatalog::kOutsideId) ++stats.labeled_token_count;
    }
  }
  return stats;
}

}  // namespace goalex::weaksup
