#ifndef GOALEX_WEAKSUP_ALIGNMENT_H_
#define GOALEX_WEAKSUP_ALIGNMENT_H_

#include <vector>

#include "bpe/bpe_tokenizer.h"
#include "labels/iob.h"

namespace goalex::weaksup {

/// Projects word-level IOB labels onto a subword sequence produced from the
/// same words (step 1/2 boundary of the development phase in Figure 2: the
/// weak labeler works on word tokens, the transformer consumes subwords).
///
/// Rules: a word labeled B-k contributes B-k on its first subword and I-k on
/// its continuations; a word labeled I-k contributes I-k on all subwords;
/// O words contribute O.
std::vector<labels::LabelId> ProjectLabelsToSubwords(
    const std::vector<labels::LabelId>& word_labels,
    const std::vector<bpe::Subword>& subwords,
    const labels::LabelCatalog& catalog);

/// Collapses subword-level predicted labels back to word level, taking each
/// word's label from its first subword (the standard "first-subtoken"
/// evaluation convention for transformer sequence labeling).
/// `word_count` is the number of word-level tokens the subwords came from.
std::vector<labels::LabelId> CollapseSubwordLabels(
    const std::vector<labels::LabelId>& subword_labels,
    const std::vector<bpe::Subword>& subwords, size_t word_count);

}  // namespace goalex::weaksup

#endif  // GOALEX_WEAKSUP_ALIGNMENT_H_
