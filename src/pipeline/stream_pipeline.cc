#include "pipeline/stream_pipeline.h"

#include <memory>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "data/schema.h"
#include "exec/executor.h"
#include "exec/graph.h"
#include "llm/heuristics.h"
#include "runtime/thread_pool.h"
#include "values/value_normalizer.h"

namespace goalex::pipeline {
namespace {

/// Withdrawal cues ("We are no longer pursuing ...", "... has been
/// abandoned."). Checked against lowercased block text.
bool IsWithdrawal(const std::string& text) {
  const std::string lower = AsciiToLower(text);
  // Past-participle forms only: the bare stem "withdraw" would fire on
  // "fresh water withdrawal" objectives.
  return lower.find("no longer") != std::string::npos ||
         lower.find("withdrawn") != std::string::npos ||
         lower.find("abandoned") != std::string::npos;
}

/// First whitespace-delimited token of the normalized action lemma.
std::string ActionHeadLemma(const std::string& action) {
  std::string lemma = values::NormalizeAction(action);
  size_t space = lemma.find(' ');
  if (space != std::string::npos) lemma.resize(space);
  return lemma;
}

const std::set<std::string>& KnownActionVerbs() {
  static const std::set<std::string>* const kVerbs =
      new std::set<std::string>(
          llm::HeuristicLexicon::Generic().action_verbs);
  return *kVerbs;
}

/// Per-document headroom in the upsert source-sequence space; documents
/// with more extracted blocks than this are unheard of (a block is at
/// least a sentence).
constexpr int64_t kBlockSequenceStride = 1'000'000;

}  // namespace

StreamStages HeuristicStages() {
  auto lexicon = std::make_shared<llm::HeuristicLexicon>(
      llm::HeuristicLexicon::Generic());
  StreamStages stages;
  stages.is_objective = [lexicon](const std::string& text) {
    std::map<std::string, std::string> fields = llm::HeuristicExtract(
        text, data::SustainabilityGoalKinds(), *lexicon);
    return !fields["Action"].empty() || !fields["Amount"].empty();
  };
  stages.extract = [lexicon](const data::Objective& objective) {
    data::DetailRecord record;
    record.objective_id = objective.id;
    record.objective_text = objective.text;
    std::map<std::string, std::string> fields = llm::HeuristicExtract(
        objective.text, data::SustainabilityGoalKinds(), *lexicon);
    for (auto& [kind, value] : fields) {
      if (!value.empty()) record.fields[kind] = std::move(value);
    }
    return record;
  };
  return stages;
}

StreamPipeline::StreamPipeline(core::ObjectiveDatabase* db,
                               StreamStages stages,
                               StreamPipelineOptions options)
    : db_(db),
      stages_(std::move(stages)),
      options_(options),
      sdg_(options.sdg) {
  GOALEX_CHECK_MSG(db_ != nullptr, "StreamPipeline needs a database");
  GOALEX_CHECK_MSG(stages_.extract != nullptr,
                   "StreamStages.extract is required");
  if (obs::Active()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    unmatched_rate_gauge_ = registry.GetGauge("pipeline.unmatched_rate");
    unknown_kind_rate_gauge_ =
        registry.GetGauge("pipeline.unknown_kind_rate");
    docs_in_flight_gauge_ = registry.GetGauge("pipeline.docs_in_flight");
    documents_counter_ = registry.GetCounter("pipeline.documents");
    objectives_counter_ = registry.GetCounter("pipeline.objectives");
    abandoned_counter_ = registry.GetCounter("pipeline.abandoned");
  }
}

std::vector<StreamPipeline::BlockResult> StreamPipeline::RunDocument(
    const data::TimedDocument& document, StreamStats* stats) const {
  std::vector<BlockResult> results;
  const data::Report& report = document.report;
  for (size_t i = 0; i < report.blocks.size(); ++i) {
    const data::ReportBlock& block = report.blocks[i];
    ++stats->blocks;
    const bool detected = options_.trust_feed_labels
                              ? block.is_objective
                              : stages_.is_objective != nullptr &&
                                    stages_.is_objective(block.text);
    if (!detected) continue;
    ++stats->objectives;

    data::Objective objective;
    objective.id = report.document + "#b" + std::to_string(i);
    objective.text = block.text;
    objective.company = report.company;
    objective.document = report.document;
    objective.page = block.page;

    BlockResult result;
    result.page = block.page;
    result.record = stages_.extract(objective);
    result.abandoned = IsWithdrawal(block.text);
    if (result.abandoned) {
      result.record.fields[kStatusField] = "abandoned";
    }
    if (options_.classify_sdg) {
      std::string label = sdg::LabelString(sdg_.Classify(block.text));
      if (!label.empty()) result.record.fields[kSdgField] = std::move(label);
    }

    bool any_field = false;
    for (const auto& [kind, value] : result.record.fields) {
      if (!kind.empty() && kind[0] != '_' && !value.empty()) {
        any_field = true;
        break;
      }
    }
    if (!any_field) ++stats->unmatched;
    const std::string action = result.record.FieldOrEmpty("Action");
    if (!action.empty() &&
        KnownActionVerbs().count(ActionHeadLemma(action)) == 0) {
      ++stats->unknown_kind;
    }
    results.push_back(std::move(result));
  }
  return results;
}

void StreamPipeline::ApplyDocument(const data::TimedDocument& document,
                                   std::vector<BlockResult>& results,
                                   StreamStats* stats) {
  for (size_t i = 0; i < results.size(); ++i) {
    BlockResult& result = results[i];
    // Source sequence = document sequence widened by block position:
    // globally monotone in apply order, so when two blocks of ONE
    // document collide on an upsert key the later block wins and a
    // replay drops the earlier one as stale instead of ping-ponging the
    // row between the two contents forever.
    const int64_t sequence =
        document.sequence * kBlockSequenceStride + static_cast<int64_t>(i);
    core::UpsertResult upsert = db_->Upsert(
        result.record, document.report.company, document.report.document,
        result.page, sequence);
    if (upsert.inserted) ++stats->inserted;
    if (upsert.updated) ++stats->updated;
    if (upsert.unchanged()) ++stats->unchanged;
    if (result.abandoned) ++stats->abandoned;
  }
  ++stats->documents;
}

void StreamPipeline::PublishGauges() {
  if (unmatched_rate_gauge_ != nullptr) {
    unmatched_rate_gauge_->Set(totals_.unmatched_rate());
  }
  if (unknown_kind_rate_gauge_ != nullptr) {
    unknown_kind_rate_gauge_->Set(totals_.unknown_kind_rate());
  }
  if (docs_in_flight_gauge_ != nullptr) {
    docs_in_flight_gauge_->Set(
        static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  }
}

StreamStats StreamPipeline::Process(
    const std::vector<data::TimedDocument>& documents) {
  StreamStats batch;
  // Per-document work results and stats, indexed by position so worker
  // interleaving cannot reorder anything observable.
  std::vector<std::vector<BlockResult>> results(documents.size());
  std::vector<StreamStats> work_stats(documents.size());

  auto merge_work = [](StreamStats* into, const StreamStats& from) {
    into->blocks += from.blocks;
    into->objectives += from.objectives;
    into->unmatched += from.unmatched;
    into->unknown_kind += from.unknown_kind;
  };
  auto apply_one = [&](size_t i) {
    merge_work(&batch, work_stats[i]);
    ApplyDocument(documents[i], results[i], &batch);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  };

  if (!options_.parallel || documents.size() < 2) {
    for (size_t i = 0; i < documents.size(); ++i) {
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      results[i] = RunDocument(documents[i], &work_stats[i]);
      apply_one(i);
    }
  } else {
    exec::Graph graph;
    exec::NodeId prev_apply = exec::kInvalidNode;
    for (size_t i = 0; i < documents.size(); ++i) {
      exec::NodeId work = graph.Add([this, &documents, &results,
                                     &work_stats, i] {
        in_flight_.fetch_add(1, std::memory_order_relaxed);
        if (docs_in_flight_gauge_ != nullptr) {
          docs_in_flight_gauge_->Set(static_cast<double>(
              in_flight_.load(std::memory_order_relaxed)));
        }
        results[i] = RunDocument(documents[i], &work_stats[i]);
      });
      std::vector<exec::NodeId> deps = {work};
      if (prev_apply != exec::kInvalidNode) deps.push_back(prev_apply);
      // Apply nodes form a chain in feed order: upsert i+1 starts only
      // after upsert i committed, which pins row ids and versions.
      prev_apply = graph.Add([&apply_one, i] { apply_one(i); },
                             std::move(deps));
    }
    runtime::ThreadPool pool(options_.workers);
    exec::Executor executor(&pool);
    Status status = executor.Run(graph);
    GOALEX_CHECK_MSG(status.ok(), status.message());
  }

  totals_.documents += batch.documents;
  totals_.blocks += batch.blocks;
  totals_.objectives += batch.objectives;
  totals_.inserted += batch.inserted;
  totals_.updated += batch.updated;
  totals_.unchanged += batch.unchanged;
  totals_.abandoned += batch.abandoned;
  totals_.unmatched += batch.unmatched;
  totals_.unknown_kind += batch.unknown_kind;
  if (documents_counter_ != nullptr) {
    documents_counter_->Increment(static_cast<uint64_t>(batch.documents));
  }
  if (objectives_counter_ != nullptr) {
    objectives_counter_->Increment(static_cast<uint64_t>(batch.objectives));
  }
  if (abandoned_counter_ != nullptr) {
    abandoned_counter_->Increment(static_cast<uint64_t>(batch.abandoned));
  }
  PublishGauges();
  return batch;
}

}  // namespace goalex::pipeline
