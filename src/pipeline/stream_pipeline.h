#ifndef GOALEX_PIPELINE_STREAM_PIPELINE_H_
#define GOALEX_PIPELINE_STREAM_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "data/stream.h"
#include "obs/metrics.h"
#include "sdg/sdg.h"

namespace goalex::pipeline {

/// Reserved field carrying target status; set to "abandoned" when the
/// source block is a withdrawal statement ("no longer pursuing ...").
inline constexpr char kStatusField[] = "_status";
/// Reserved field carrying the SDG labels ("SDG13 SDG7").
inline constexpr char kSdgField[] = "_sdg";

/// The two model-dependent stages of the streaming pipeline, injected so
/// the same orchestration runs with heuristic, CRF, or neural stages.
/// Both must be thread-safe for concurrent calls (they run on executor
/// workers).
struct StreamStages {
  /// Detection: is this report block a sustainability objective?
  std::function<bool(const std::string& text)> is_objective;
  /// Detail extraction for a detected objective.
  std::function<data::DetailRecord(const data::Objective& objective)> extract;
};

/// Dependency-free stages backed by the zero-shot heuristic extractor.
/// Detection fires when extraction finds an action or an amount — cheap
/// and deterministic, the default for tests and benches.
StreamStages HeuristicStages();

struct StreamPipelineOptions {
  /// Run per-document work on an exec::Graph over a thread pool. Apply
  /// order is pinned to feed order either way, so serial and parallel
  /// ingest produce byte-identical databases.
  bool parallel = true;
  /// Worker threads (0 = hardware concurrency).
  int workers = 0;
  /// Trust the feed's is_objective flags (upstream detection already ran)
  /// instead of calling stages.is_objective on every block.
  bool trust_feed_labels = true;
  /// Attach SDG labels (kSdgField) to extracted records.
  bool classify_sdg = true;
  sdg::SdgClassifierOptions sdg;
};

/// Ingest counters. Rates are drift signals for dashboards: a rising
/// unmatched rate means the extractor stopped finding details in incoming
/// text (domain drift); a rising unknown-kind rate means new action verbs
/// outside the lexicon.
struct StreamStats {
  int64_t documents = 0;
  int64_t blocks = 0;
  int64_t objectives = 0;  ///< Blocks that passed detection.
  int64_t inserted = 0;
  int64_t updated = 0;
  int64_t unchanged = 0;
  int64_t abandoned = 0;  ///< Withdrawal blocks applied.
  /// Objectives where extraction produced no non-empty field.
  int64_t unmatched = 0;
  /// Objectives whose action verb lemma is outside the known verb set.
  int64_t unknown_kind = 0;

  double unmatched_rate() const {
    return objectives == 0
               ? 0.0
               : static_cast<double>(unmatched) /
                     static_cast<double>(objectives);
  }
  double unknown_kind_rate() const {
    return objectives == 0
               ? 0.0
               : static_cast<double>(unknown_kind) /
                     static_cast<double>(objectives);
  }
};

/// Streaming corpus-to-dashboard ingest: detection -> extraction -> SDG
/// labeling -> versioned database upsert.
///
/// Per-document work (detect/extract/classify — the expensive part) fans
/// out across executor workers; the database-apply step for document i
/// depends on both its own work node and apply(i-1), so upserts land in
/// feed order regardless of worker interleaving. Row ids, versions, and
/// ExportCsv output are therefore identical between serial and parallel
/// ingest of the same feed, and replaying a feed is idempotent (every
/// upsert lands unchanged).
///
/// The database must be constructed with DbOptions::track_upserts.
class StreamPipeline {
 public:
  StreamPipeline(core::ObjectiveDatabase* db, StreamStages stages,
                 StreamPipelineOptions options = {});

  /// Ingests `documents` in sequence order; returns this batch's stats.
  StreamStats Process(const std::vector<data::TimedDocument>& documents);

  /// Stats accumulated across every Process call.
  const StreamStats& totals() const { return totals_; }

 private:
  struct BlockResult {
    data::DetailRecord record;
    int page = 0;
    bool abandoned = false;
  };

  std::vector<BlockResult> RunDocument(const data::TimedDocument& document,
                                       StreamStats* stats) const;
  void ApplyDocument(const data::TimedDocument& document,
                     std::vector<BlockResult>& results, StreamStats* stats);
  void PublishGauges();

  core::ObjectiveDatabase* db_;
  StreamStages stages_;
  StreamPipelineOptions options_;
  sdg::SdgClassifier sdg_;
  StreamStats totals_;
  std::atomic<int64_t> in_flight_{0};

  obs::Gauge* unmatched_rate_gauge_ = nullptr;
  obs::Gauge* unknown_kind_rate_gauge_ = nullptr;
  obs::Gauge* docs_in_flight_gauge_ = nullptr;
  obs::Counter* documents_counter_ = nullptr;
  obs::Counter* objectives_counter_ = nullptr;
  obs::Counter* abandoned_counter_ = nullptr;
};

}  // namespace goalex::pipeline

#endif  // GOALEX_PIPELINE_STREAM_PIPELINE_H_
