#ifndef GOALEX_PIPELINE_FEED_H_
#define GOALEX_PIPELINE_FEED_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/stream.h"

namespace goalex::pipeline {

/// Text codec for timestamped document feeds ("goalexfeed v1").
///
/// Line-oriented and tab-separated so feeds diff/grep cleanly:
///
///   goalexfeed v1
///   doc <sequence> <timestamp_ms> <company> <document>
///   block <page> <is_objective:0|1> <text>
///   ...
///
/// Free-text fields escape backslash, tab, CR and LF (\\, \t, \r, \n), so
/// a raw tab is always a field separator and a raw newline always ends a
/// record. Generation-time annotations are NOT serialized: a feed carries
/// exactly what a production corpus drop would — text and provenance —
/// and the pipeline re-derives everything else. `Report::page_count` is
/// reconstructed as the maximum block page.
std::string EncodeFeed(const std::vector<data::TimedDocument>& documents);

/// Parses a feed; fails with InvalidArgument on a bad header, an unknown
/// record tag, a malformed field, or a block before the first doc.
StatusOr<std::vector<data::TimedDocument>> ParseFeed(std::string_view text);

/// EncodeFeed to / ParseFeed from a file.
Status WriteFeedFile(const std::string& path,
                     const std::vector<data::TimedDocument>& documents);
StatusOr<std::vector<data::TimedDocument>> ReadFeedFile(
    const std::string& path);

/// Polling directory watch over `*.goalexfeed` files: each Poll() scans
/// the directory, parses files not seen by a previous Poll (lexicographic
/// filename order — name feed drops monotonically), and returns their
/// documents concatenated. A file is marked processed even when it fails
/// to parse (a poison file must not wedge the feed); the parse error is
/// returned once and skipped thereafter.
class DirectoryFeed {
 public:
  explicit DirectoryFeed(std::string dir) : dir_(std::move(dir)) {}

  StatusOr<std::vector<data::TimedDocument>> Poll();

  size_t processed_files() const { return processed_.size(); }

 private:
  std::string dir_;
  std::set<std::string> processed_;
};

}  // namespace goalex::pipeline

#endif  // GOALEX_PIPELINE_FEED_H_
