#include "pipeline/feed.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace goalex::pipeline {
namespace {

constexpr char kHeader[] = "goalexfeed v1";

void AppendEscaped(std::string_view field, std::string* out) {
  for (char c : field) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '\t': *out += "\\t"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
}

StatusOr<std::string> Unescape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out.push_back(field[i]);
      continue;
    }
    if (i + 1 >= field.size()) {
      return InvalidArgumentError("dangling escape in feed field");
    }
    switch (field[++i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default:
        return InvalidArgumentError("unknown escape in feed field");
    }
  }
  return out;
}

bool ParseInt64(std::string_view field, int64_t* out) {
  if (field.empty()) return false;
  int64_t value = 0;
  size_t i = 0;
  bool negative = field[0] == '-';
  if (negative) i = 1;
  if (i >= field.size()) return false;
  for (; i < field.size(); ++i) {
    if (field[i] < '0' || field[i] > '9') return false;
    value = value * 10 + (field[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace

std::string EncodeFeed(const std::vector<data::TimedDocument>& documents) {
  std::string out = kHeader;
  out += '\n';
  for (const data::TimedDocument& document : documents) {
    out += "doc\t";
    out += std::to_string(document.sequence);
    out += '\t';
    out += std::to_string(document.timestamp_ms);
    out += '\t';
    AppendEscaped(document.report.company, &out);
    out += '\t';
    AppendEscaped(document.report.document, &out);
    out += '\n';
    for (const data::ReportBlock& block : document.report.blocks) {
      out += "block\t";
      out += std::to_string(block.page);
      out += '\t';
      out += block.is_objective ? '1' : '0';
      out += '\t';
      AppendEscaped(block.text, &out);
      out += '\n';
    }
  }
  return out;
}

StatusOr<std::vector<data::TimedDocument>> ParseFeed(std::string_view text) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.empty() || lines[0] != kHeader) {
    return InvalidArgumentError("feed is missing its 'goalexfeed v1' header");
  }
  std::vector<data::TimedDocument> documents;
  for (size_t line_no = 1; line_no < lines.size(); ++line_no) {
    const std::string& line = lines[line_no];
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, '\t');
    const std::string where = " at feed line " + std::to_string(line_no + 1);
    if (fields[0] == "doc") {
      if (fields.size() != 5) {
        return InvalidArgumentError("malformed doc record" + where);
      }
      data::TimedDocument document;
      if (!ParseInt64(fields[1], &document.sequence) ||
          !ParseInt64(fields[2], &document.timestamp_ms)) {
        return InvalidArgumentError("bad doc numbers" + where);
      }
      StatusOr<std::string> company = Unescape(fields[3]);
      if (!company.ok()) return company.status();
      StatusOr<std::string> name = Unescape(fields[4]);
      if (!name.ok()) return name.status();
      document.report.company = std::move(company).value();
      document.report.document = std::move(name).value();
      documents.push_back(std::move(document));
    } else if (fields[0] == "block") {
      if (documents.empty()) {
        return InvalidArgumentError("block before first doc" + where);
      }
      if (fields.size() != 4 || (fields[2] != "0" && fields[2] != "1")) {
        return InvalidArgumentError("malformed block record" + where);
      }
      data::ReportBlock block;
      int64_t page = 0;
      if (!ParseInt64(fields[1], &page)) {
        return InvalidArgumentError("bad block page" + where);
      }
      block.page = static_cast<int>(page);
      block.is_objective = fields[2] == "1";
      StatusOr<std::string> body = Unescape(fields[3]);
      if (!body.ok()) return body.status();
      block.text = std::move(body).value();
      data::Report& report = documents.back().report;
      report.page_count = std::max(report.page_count, block.page);
      report.blocks.push_back(std::move(block));
    } else {
      return InvalidArgumentError("unknown feed record '" + fields[0] + "'" +
                                  where);
    }
  }
  return documents;
}

Status WriteFeedFile(const std::string& path,
                     const std::vector<data::TimedDocument>& documents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return NotFoundError("cannot write feed file " + path);
  const std::string encoded = EncodeFeed(documents);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  out.flush();
  if (!out) return DataLossError("short write to feed file " + path);
  return Status::Ok();
}

StatusOr<std::vector<data::TimedDocument>> ReadFeedFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open feed file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseFeed(buffer.str());
}

StatusOr<std::vector<data::TimedDocument>> DirectoryFeed::Poll() {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> fresh;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string path = entry.path().string();
    if (entry.path().extension() != ".goalexfeed") continue;
    if (processed_.count(path) > 0) continue;
    fresh.push_back(path);
  }
  if (ec) {
    return NotFoundError("cannot scan feed directory " + dir_ + ": " +
                         ec.message());
  }
  std::sort(fresh.begin(), fresh.end());
  std::vector<data::TimedDocument> documents;
  for (const std::string& path : fresh) {
    processed_.insert(path);  // Before parsing: a poison file is consumed.
    StatusOr<std::vector<data::TimedDocument>> parsed = ReadFeedFile(path);
    if (!parsed.ok()) return parsed.status();
    for (data::TimedDocument& document : parsed.value()) {
      documents.push_back(std::move(document));
    }
  }
  return documents;
}

}  // namespace goalex::pipeline
