#ifndef GOALEX_DATA_GENERATOR_H_
#define GOALEX_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"

namespace goalex::data {

/// Configuration of the synthetic Sustainability Goals corpus generator.
/// Defaults reproduce the statistics the paper reports for its proprietary
/// dataset: 1106 objectives; annotation availability Action 85%,
/// Baseline 14%, Deadline 34% (Figure 4's target-label discussion), with
/// Amount/Qualifier in between; a small fraction of annotations that are
/// lexically divergent from the text (the exact-matching limitation of
/// Section 5.3); and heterogeneous, sometimes multi-target phrasing.
struct SustainabilityGoalsConfig {
  size_t objective_count = 1106;
  uint64_t seed = 42;

  double action_rate = 0.85;
  double amount_rate = 0.65;
  double qualifier_rate = 0.78;
  double baseline_rate = 0.14;
  double deadline_rate = 0.34;

  /// Probability that an annotation value is written differently from the
  /// objective text (case change or paraphrase), which exact token matching
  /// cannot locate.
  double divergent_annotation_rate = 0.03;

  /// Probability of a distracting prefix/suffix clause (extra years,
  /// percentages, and corporate boilerplate around the objective).
  double distractor_rate = 0.35;

  /// Probability of a second target inside the same objective (only the
  /// first is annotated — the "multiple actions" failure mode).
  double multi_target_rate = 0.12;
};

/// Generates the synthetic Sustainability Goals corpus (5 fields: Action,
/// Amount, Qualifier, Baseline, Deadline).
std::vector<Objective> GenerateSustainabilityGoals(
    const SustainabilityGoalsConfig& config);

/// Configuration of the synthetic NetZeroFacts-like corpus [32]: emission
/// goal sentences annotated with TargetValue / ReferenceYear / TargetYear.
struct NetZeroFactsConfig {
  size_t sentence_count = 599;
  uint64_t seed = 1337;

  double target_value_rate = 0.9;
  double reference_year_rate = 0.4;
  double target_year_rate = 0.75;
  double divergent_annotation_rate = 0.03;
  double distractor_rate = 0.3;
};

/// Generates the synthetic NetZeroFacts corpus.
std::vector<Objective> GenerateNetZeroFacts(const NetZeroFactsConfig& config);

/// Generates a corporate-boilerplate noise sentence (no objective), used by
/// the GoalSpotter detection substrate and the report generator.
std::string GenerateNoiseSentence(Rng& rng);

/// Returns every raw text used by the generators (all grammar pools),
/// useful for training tokenizers with full vocabulary coverage.
std::vector<std::string> GeneratorVocabularyTexts();

}  // namespace goalex::data

#endif  // GOALEX_DATA_GENERATOR_H_
