#ifndef GOALEX_DATA_SCHEMA_H_
#define GOALEX_DATA_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace goalex::data {

/// One coarse, objective-level annotation: a key detail name and its value
/// as the domain expert wrote it (e.g., {"Deadline", "2040"}). This is the
/// only supervision the system receives — there are no token-level labels.
struct Annotation {
  std::string kind;
  std::string value;

  friend bool operator==(const Annotation& a, const Annotation& b) {
    return a.kind == b.kind && a.value == b.value;
  }
};

/// A sustainability objective as produced by the upstream detection system,
/// optionally carrying expert annotations (training instances) and source
/// metadata (deployment instances).
struct Objective {
  std::string id;
  std::string text;
  std::vector<Annotation> annotations;

  // Source metadata (deployment scenarios).
  std::string company;
  std::string document;
  int page = 0;

  /// Returns the annotated value for `kind`, if present.
  std::optional<std::string> AnnotationValue(std::string_view kind) const {
    for (const Annotation& a : annotations) {
      if (a.kind == kind) return a.value;
    }
    return std::nullopt;
  }
};

/// Structured output of the detail extraction system for one objective:
/// entity kind -> extracted surface value. Missing keys mean "not found",
/// matching the empty cells of the paper's Tables 1, 6, and 7.
struct DetailRecord {
  std::string objective_id;
  std::string objective_text;
  std::map<std::string, std::string> fields;

  /// Returns the extracted value for `kind`, or empty if absent.
  std::string FieldOrEmpty(std::string_view kind) const {
    auto it = fields.find(std::string(kind));
    return it == fields.end() ? std::string() : it->second;
  }
};

/// The five key detail fields of the Sustainability Goals schema (Section
/// 2.2 of the paper).
inline const std::vector<std::string>& SustainabilityGoalKinds() {
  static const std::vector<std::string>* const kKinds =
      new std::vector<std::string>{"Action", "Amount", "Qualifier",
                                   "Baseline", "Deadline"};
  return *kKinds;
}

/// The NetZeroFacts emission-goal schema [32]: target value, reference year,
/// target year.
inline const std::vector<std::string>& NetZeroFactsKinds() {
  static const std::vector<std::string>* const kKinds =
      new std::vector<std::string>{"TargetValue", "ReferenceYear",
                                   "TargetYear"};
  return *kKinds;
}

}  // namespace goalex::data

#endif  // GOALEX_DATA_SCHEMA_H_
