#include "data/dataset.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace goalex::data {
namespace {

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 >= escaped.size()) {
      out.push_back(escaped[i]);
      continue;
    }
    ++i;
    switch (escaped[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        out.push_back(escaped[i]);
    }
  }
  return out;
}

}  // namespace

Split TrainTestSplit(std::vector<Objective> objectives, double test_fraction,
                     uint64_t seed) {
  GOALEX_CHECK(test_fraction >= 0.0 && test_fraction < 1.0);
  Rng rng(seed);
  rng.Shuffle(objectives);
  size_t test_count =
      static_cast<size_t>(objectives.size() * test_fraction);
  Split split;
  split.test.assign(objectives.begin(), objectives.begin() + test_count);
  split.train.assign(objectives.begin() + test_count, objectives.end());
  return split;
}

std::string ObjectivesToTsv(const std::vector<Objective>& objectives) {
  std::ostringstream out;
  for (const Objective& o : objectives) {
    out << Escape(o.id) << '\t' << Escape(o.text);
    for (const Annotation& a : o.annotations) {
      out << '\t' << Escape(a.kind) << '=' << Escape(a.value);
    }
    out << '\n';
  }
  return out.str();
}

StatusOr<std::vector<Objective>> ObjectivesFromTsv(std::string_view tsv) {
  std::vector<Objective> out;
  for (const std::string& line : StrSplit(tsv, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() < 2) {
      return DataLossError("bad objective line: " + line);
    }
    Objective o;
    o.id = Unescape(fields[0]);
    o.text = Unescape(fields[1]);
    for (size_t i = 2; i < fields.size(); ++i) {
      size_t eq = fields[i].find('=');
      if (eq == std::string::npos) {
        return DataLossError("bad annotation field: " + fields[i]);
      }
      o.annotations.push_back(
          Annotation{Unescape(fields[i].substr(0, eq)),
                     Unescape(fields[i].substr(eq + 1))});
    }
    out.push_back(std::move(o));
  }
  return out;
}

Status SaveObjectives(const std::vector<Objective>& objectives,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot open for write: " + path);
  out << ObjectivesToTsv(objectives);
  if (!out) return DataLossError("short write: " + path);
  return Status::Ok();
}

StatusOr<std::vector<Objective>> LoadObjectives(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ObjectivesFromTsv(buffer.str());
}

}  // namespace goalex::data
