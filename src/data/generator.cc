#include "data/generator.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace goalex::data {
namespace {

/// An action verb in the two surface forms the grammar needs.
struct ActionEntry {
  const char* imperative;  ///< "Reduce", "Phase out"
  const char* gerund;      ///< "reducing", "phasing out"
};

const std::vector<ActionEntry>& Actions() {
  static const std::vector<ActionEntry>* const kActions =
      new std::vector<ActionEntry>{
          {"Reduce", "reducing"},
          {"Achieve", "achieving"},
          {"Increase", "increasing"},
          {"Restore", "restoring"},
          {"Eliminate", "eliminating"},
          {"Expand", "expanding"},
          {"Implement", "implementing"},
          {"Promote", "promoting"},
          {"Improve", "improving"},
          {"Transition", "transitioning"},
          {"Cut", "cutting"},
          {"Lower", "lowering"},
          {"Reach", "reaching"},
          {"Double", "doubling"},
          {"Halve", "halving"},
          {"Install", "installing"},
          {"Launch", "launching"},
          {"Substitute", "substituting"},
          {"Recycle", "recycling"},
          {"Deliver", "delivering"},
          {"Train", "training"},
          {"Support", "supporting"},
          {"Empower", "empowering"},
          {"Plant", "planting"},
          {"Protect", "protecting"},
          {"Source", "sourcing"},
          {"Procure", "procuring"},
          {"Phase out", "phasing out"},
          {"Divert", "diverting"},
          {"Offset", "offsetting"},
          {"Electrify", "electrifying"},
          {"Decarbonize", "decarbonizing"},
          {"Audit", "auditing"},
          {"Certify", "certifying"},
          {"Integrate", "integrating"},
          {"Align", "aligning"},
          {"Strengthen", "strengthening"},
          {"Minimize", "minimizing"},
          {"Conserve", "conserving"},
          {"Retrofit", "retrofitting"},
      };
  return *kActions;
}

const std::vector<std::string>& Qualifiers() {
  static const std::vector<std::string>* const kQualifiers =
      new std::vector<std::string>{
          "energy consumption",
          "greenhouse gas emissions",
          "carbon footprint",
          "water usage",
          "single-use plastics",
          "waste to landfill",
          "renewable electricity",
          "Scope 1 emissions",
          "Scope 2 emissions",
          "Scope 3 emissions",
          "global water use",
          "packaging materials",
          "employee training hours",
          "women in leadership positions",
          "supplier audits",
          "fleet electrification",
          "recycled content",
          "food waste",
          "paper consumption",
          "air travel emissions",
          "biodiversity protection measures",
          "community investment",
          "occupational safety incidents",
          "potable water intensity",
          "data center energy use",
          "raw material sourcing",
          "fresh water withdrawal",
          "hazardous waste",
          "plastic packaging",
          "green building certifications",
          "sustainable sourcing",
          "employee volunteering hours",
          "renewable energy capacity",
          "landfill waste",
          "product recyclability",
          "smallholder farmer programs",
          "responsible procurement",
          "energy efficiency",
          "methane leakage",
          "zero-emission vehicles",
          "circular economy initiatives",
          "reforestation projects",
          "clean cooking solutions",
          "electronic waste collection",
          "solar generation capacity",
          "board diversity",
          "gender pay equity",
          "local hiring",
          "charitable contributions",
          "health and safety training",
      };
  return *kQualifiers;
}

const std::vector<std::string>& QualifierModifiers() {
  static const std::vector<std::string>* const kModifiers =
      new std::vector<std::string>{
          "global",       "absolute",   "annual",     "total",
          "upstream",     "operational", "regional",  "company-wide",
          "direct",       "indirect",   "relative",   "site-level",
      };
  return *kModifiers;
}

const std::vector<std::string>& FixedAmounts() {
  static const std::vector<std::string>* const kAmounts =
      new std::vector<std::string>{
          "net-zero",  "net zero",    "zero",        "1 million",
          "100 million", "double",    "half",        "two thirds",
          "10 GWh",    "500 tonnes",  "1.5 Mt",      "250",
          "10,000",    "one third",   "100,000",     "25 MW",
      };
  return *kAmounts;
}

const std::vector<std::string>& NoiseSentences() {
  static const std::vector<std::string>* const kNoise =
      new std::vector<std::string>{
          "Climate change is one of the world's greatest crises, and to "
          "address it, the public and private sectors need to act together.",
          "This report was prepared in accordance with the GRI Standards.",
          "Our stakeholders increasingly expect transparent disclosure of "
          "environmental and social information.",
          "Reducing carbon emissions in transportation is a complex "
          "challenge for many companies.",
          "Businesses also face the challenge of removing carbon emissions "
          "from new building construction.",
          "The board of directors oversees the sustainability strategy of "
          "the company.",
          "We engage with suppliers, investors, and policymakers throughout "
          "the year.",
          "Materiality assessments help us prioritize the issues that "
          "matter most to our stakeholders.",
          "The data in this chapter has been assured by an independent "
          "third party.",
          "Our sustainability governance framework was refreshed during the "
          "reporting period.",
          "Employees across all regions participated in our annual "
          "engagement survey.",
          "Figures are reported in accordance with the operational control "
          "approach.",
          "The following pages describe our management approach in more "
          "detail.",
          "We believe collaboration across the value chain is essential for "
          "systemic change.",
          "Readers can find additional definitions in the glossary at the "
          "end of this report.",
          "Our products are sold in more than one hundred countries "
          "worldwide.",
          "Risk management processes are embedded in all business units.",
          "The sustainability committee met four times during the fiscal "
          "year.",
          "Photographs in this report feature our employees and facilities.",
          "Management reviews progress against commitments on a quarterly "
          "basis.",
      };
  return *kNoise;
}

const std::vector<std::string>& DistractorPrefixes() {
  static const std::vector<std::string>* const kPrefixes =
      new std::vector<std::string>{
          "In line with our #YEAR# sustainability strategy, ",
          "As part of The Climate Pledge, ",
          "Building on progress made since #YEAR#, ",
          "Following stakeholder consultations, ",
          "Under our environmental policy, ",
          "Consistent with the Paris Agreement, ",
          "To support the UN Sustainable Development Goals, ",
          "As part of our #FYEAR# roadmap, ",
          "Aligned with the #FYEAR# agenda, ",
          "In support of our Vision #FYEAR# program, ",
      };
  return *kPrefixes;
}

const std::vector<std::string>& DistractorSuffixes() {
  static const std::vector<std::string>* const kSuffixes =
      new std::vector<std::string>{
          " across all our operations",
          " in partnership with local stakeholders",
          " as validated by the Science Based Targets initiative",
          " throughout our global supply chain",
          " at all manufacturing sites",
          " in every market where we operate",
      };
  return *kSuffixes;
}

std::string LowercaseFirst(std::string s) {
  if (!s.empty() && s[0] >= 'A' && s[0] <= 'Z') {
    s[0] = static_cast<char>(s[0] - 'A' + 'a');
  }
  return s;
}

std::string PickAmount(Rng& rng) {
  if (rng.NextBernoulli(0.55)) {
    // Percentage amount; occasionally with decimals.
    if (rng.NextBernoulli(0.2)) {
      return std::to_string(rng.NextInt(1, 99)) + "." +
             std::to_string(rng.NextInt(0, 9)) + "%";
    }
    return std::to_string(rng.NextInt(2, 19) * 5) + "%";
  }
  return rng.Choose(FixedAmounts());
}

std::string DeadlinePhrase(Rng& rng, const std::string& year) {
  // Several phrasings place the discriminating cue ("target", "no later")
  // more than one token away from the year, so only models with broader
  // context than a +-1 window can tell deadlines from baselines.
  switch (rng.NextIndex(6)) {
    case 0:
      return " by " + year;
    case 1:
      return " by the end of " + year;
    case 2:
      return " before " + year;
    case 3:
      return " no later than " + year;
    case 4:
      return " by fiscal year " + year;
    default:
      return ", with a target date of " + year;
  }
}

std::string BaselinePhrase(Rng& rng, const std::string& year) {
  switch (rng.NextIndex(6)) {
    case 0:
      return " (baseline " + year + ")";
    case 1:
      return " against a " + year + " baseline";
    case 2:
      return " compared to " + year + " levels";
    case 3:
      return " relative to " + year;
    case 4:
      return " versus fiscal year " + year;
    default:
      return " from " + year + " levels";
  }
}

// A divergent annotation value: annotated by the expert in a form that is
// not an exact token subsequence of the text.
std::string MakeDivergent(const std::string& value, Rng& rng) {
  if (rng.NextBernoulli(0.5)) {
    std::string lowered = AsciiToLower(value);
    if (lowered != value) return lowered;
  }
  if (value.find('%') != std::string::npos) {
    return StrReplaceAll(value, "%", " percent");
  }
  return value + " overall";
}

struct FieldChoice {
  bool in_text = false;
  bool annotated = false;
  std::string value;
};

FieldChoice ChooseField(Rng& rng, double annotation_rate,
                        double text_margin = 0.03) {
  FieldChoice out;
  double text_rate = std::min(1.0, annotation_rate + text_margin);
  out.in_text = rng.NextBernoulli(text_rate);
  if (out.in_text) {
    out.annotated = rng.NextBernoulli(annotation_rate / text_rate);
  }
  return out;
}

// A context sentence for emission-goal passages, with distracting years,
// percentages, and tonnages that are not part of the annotated goal.
std::string EmissionContextSentence(Rng& rng) {
  switch (rng.NextIndex(8)) {
    case 0:
      return "Our operations emitted " +
             FormatDouble(rng.NextUniform(0.5, 6.0), 1) + " Mt CO2e in " +
             std::to_string(rng.NextInt(2017, 2023)) + ".";
    case 1:
      return "In " + std::to_string(rng.NextInt(2018, 2023)) +
             ", emissions fell by " + std::to_string(rng.NextInt(2, 12)) +
             "% due to operational changes.";
    case 2:
      return "Since " + std::to_string(rng.NextInt(2010, 2020)) +
             ", we have invested in renewable energy across our sites.";
    case 3:
      return "Our Vision " + std::to_string(rng.NextInt(2030, 2050)) +
             " program guides the decarbonization roadmap.";
    case 4:
      return "Energy intensity improved " +
             std::to_string(rng.NextInt(2, 15)) +
             "% over the reporting period.";
    case 5:
      return "Climate risks are reviewed annually by the board.";
    case 6:
      return "The figures cover Scope 1 and Scope 2 for all subsidiaries.";
    default:
      return "External assurance was provided for the emissions data.";
  }
}

void MaybeAnnotate(Objective& o, const std::string& kind,
                   const FieldChoice& f, double divergent_rate, Rng& rng) {
  if (!f.in_text || !f.annotated) return;
  std::string value = f.value;
  if (rng.NextBernoulli(divergent_rate)) {
    std::string divergent = MakeDivergent(value, rng);
    if (divergent != value) value = divergent;
  }
  o.annotations.push_back(Annotation{kind, value});
}

}  // namespace

std::vector<Objective> GenerateSustainabilityGoals(
    const SustainabilityGoalsConfig& config) {
  Rng rng(config.seed);
  std::vector<Objective> out;
  out.reserve(config.objective_count);

  for (size_t i = 0; i < config.objective_count; ++i) {
    Objective o;
    o.id = "sg-" + std::to_string(i);

    FieldChoice action = ChooseField(rng, config.action_rate);
    FieldChoice amount = ChooseField(rng, config.amount_rate);
    FieldChoice qualifier = ChooseField(rng, config.qualifier_rate);
    FieldChoice baseline = ChooseField(rng, config.baseline_rate);
    FieldChoice deadline = ChooseField(rng, config.deadline_rate);

    // A usable objective needs at least an action or an amount; force one.
    if (!action.in_text && !amount.in_text) {
      (rng.NextBernoulli(0.7) ? action : amount).in_text = true;
      action.annotated = action.in_text;
      amount.annotated = amount.in_text;
    }
    // A bare amount with no qualifier reads oddly; pull in a qualifier.
    if (amount.in_text && !action.in_text) qualifier.in_text = true;

    const ActionEntry* act =
        action.in_text ? &rng.Choose(Actions()) : nullptr;
    if (amount.in_text) amount.value = PickAmount(rng);
    if (qualifier.in_text) {
      qualifier.value = rng.Choose(Qualifiers());
      // Compositional modifiers multiply surface diversity, so test-set
      // qualifiers are frequently unseen as whole phrases during training.
      if (rng.NextBernoulli(0.35)) {
        qualifier.value =
            rng.Choose(QualifierModifiers()) + " " + qualifier.value;
      }
    }
    std::string deadline_year = std::to_string(rng.NextInt(2024, 2048));
    std::string baseline_year = std::to_string(rng.NextInt(2008, 2026));
    if (deadline.in_text) deadline.value = deadline_year;
    if (baseline.in_text) baseline.value = baseline_year;

    // Assemble the sentence core from one of several phrasing families.
    std::string core;
    bool gerund_form = false;
    if (action.in_text) {
      switch (rng.NextIndex(5)) {
        case 0:  // "Reduce energy consumption by 20%"
          core = act->imperative;
          if (qualifier.in_text) core += " " + qualifier.value;
          if (amount.in_text) core += " by " + amount.value;
          break;
        case 1:  // "Reduce 20% energy consumption" / "Achieve net-zero ..."
          core = act->imperative;
          if (amount.in_text) core += " " + amount.value;
          if (qualifier.in_text) core += " " + qualifier.value;
          break;
        case 2:  // "We will reduce energy consumption by 20%"
          core = "We will " + LowercaseFirst(act->imperative);
          if (qualifier.in_text) core += " " + qualifier.value;
          if (amount.in_text) core += " by " + amount.value;
          action.value = "will " + LowercaseFirst(act->imperative);
          break;
        case 3:  // "We are committed to reducing energy consumption"
          core = "We are committed to ";
          core += act->gerund;
          if (qualifier.in_text) core += " " + qualifier.value;
          if (amount.in_text) core += " by " + amount.value;
          action.value = act->gerund;
          gerund_form = true;
          break;
        default:  // "Our goal is to reduce energy consumption by 20%"
          core = "Our goal is to " + LowercaseFirst(act->imperative);
          if (qualifier.in_text) core += " " + qualifier.value;
          if (amount.in_text) core += " by " + amount.value;
          action.value = LowercaseFirst(act->imperative);
          break;
      }
      if (action.value.empty()) action.value = act->imperative;
    } else {
      // Amount-led objective: "100% renewable electricity by 2030".
      core = amount.value;
      if (qualifier.in_text) {
        core += (rng.NextBernoulli(0.5) ? " of " : " ") + qualifier.value;
      }
    }
    (void)gerund_form;

    if (deadline.in_text) core += DeadlinePhrase(rng, deadline_year);
    if (baseline.in_text) core += BaselinePhrase(rng, baseline_year);

    // Optional second target (only the first is annotated).
    if (rng.NextBernoulli(config.multi_target_rate)) {
      const ActionEntry& act2 = rng.Choose(Actions());
      core += " and " + std::string(act2.gerund) + " " +
              rng.Choose(Qualifiers()) + " by " + PickAmount(rng);
    }

    // Optional distractors.
    std::string text = core;
    if (rng.NextBernoulli(config.distractor_rate)) {
      std::string prefix = rng.Choose(DistractorPrefixes());
      prefix = StrReplaceAll(prefix, "#YEAR#",
                             std::to_string(rng.NextInt(2015, 2022)));
      // Corporate prose routinely name-drops future years ("Vision 2045");
      // these overlap the deadline range, so the year value alone never
      // identifies its role.
      prefix = StrReplaceAll(prefix, "#FYEAR#",
                             std::to_string(rng.NextInt(2025, 2045)));
      text = prefix + LowercaseFirst(text);
      // Keep case-sensitive action values locatable after lowercasing.
      if (action.in_text && action.value == act->imperative) {
        action.value = LowercaseFirst(action.value);
      }
    }
    if (rng.NextBernoulli(config.distractor_rate * 0.6)) {
      text += rng.Choose(DistractorSuffixes());
    }
    text += ".";
    o.text = text;

    MaybeAnnotate(o, "Action", action, config.divergent_annotation_rate,
                  rng);
    MaybeAnnotate(o, "Amount", amount, config.divergent_annotation_rate,
                  rng);
    MaybeAnnotate(o, "Qualifier", qualifier,
                  config.divergent_annotation_rate, rng);
    MaybeAnnotate(o, "Baseline", baseline, config.divergent_annotation_rate,
                  rng);
    MaybeAnnotate(o, "Deadline", deadline, config.divergent_annotation_rate,
                  rng);

    // Every training instance carries at least one annotation.
    if (o.annotations.empty()) {
      if (action.in_text) {
        o.annotations.push_back(Annotation{"Action", action.value});
      } else {
        o.annotations.push_back(Annotation{"Amount", amount.value});
      }
    }
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<Objective> GenerateNetZeroFacts(
    const NetZeroFactsConfig& config) {
  Rng rng(config.seed);
  std::vector<Objective> out;
  out.reserve(config.sentence_count);

  const std::vector<std::string> emission_subjects = {
      "absolute Scope 1 emissions",  "absolute Scope 2 emissions",
      "Scope 3 emissions",           "CO2 emissions",
      "greenhouse gas emissions",    "carbon emissions",
      "emission intensity",          "our carbon footprint",
      "value chain emissions",       "operational emissions",
  };
  const std::vector<std::string> emission_verbs = {
      "Reduce", "Cut", "Lower", "Decrease", "Shrink",
  };

  for (size_t i = 0; i < config.sentence_count; ++i) {
    Objective o;
    o.id = "nzf-" + std::to_string(i);

    FieldChoice value = ChooseField(rng, config.target_value_rate);
    FieldChoice ref_year = ChooseField(rng, config.reference_year_rate);
    FieldChoice target_year = ChooseField(rng, config.target_year_rate);
    if (!value.in_text && !target_year.in_text) {
      value.in_text = true;
      value.annotated = true;
    }

    bool net_zero_style = rng.NextBernoulli(0.3);
    std::string target_year_text = std::to_string(rng.NextInt(2024, 2048));
    std::string ref_year_text = std::to_string(rng.NextInt(2008, 2026));

    std::string text;
    if (net_zero_style) {
      std::string nz = rng.NextBernoulli(0.5) ? "net zero" : "net-zero";
      value.value = nz;
      switch (rng.NextIndex(3)) {
        case 0:
          text = "We target " + nz + " emissions";
          break;
        case 1:
          text = "Our ambition is to reach " + nz + " across the value "
                 "chain";
          break;
        default:
          text = "We commit to " + nz + " carbon";
          break;
      }
      if (target_year.in_text) text += " by " + target_year_text;
      if (ref_year.in_text) {
        text += " from a " + ref_year_text + " base year";
      }
    } else {
      std::string amt = std::to_string(rng.NextInt(2, 19) * 5) + "%";
      if (rng.NextBernoulli(0.15)) {
        amt = FormatDouble(rng.NextUniform(0.5, 5.0), 1) + " Mt CO2e";
      }
      value.value = amt;
      text = rng.Choose(emission_verbs) + " " +
             rng.Choose(emission_subjects);
      if (value.in_text) text += " by " + amt;
      if (target_year.in_text) {
        switch (rng.NextIndex(4)) {
          case 0:
            text += " by " + target_year_text;
            break;
          case 1:
            text += " until " + target_year_text;
            break;
          case 2:
            text += " no later than " + target_year_text;
            break;
          default:
            text += " by fiscal year " + target_year_text;
            break;
        }
      }
      if (ref_year.in_text) {
        switch (rng.NextIndex(5)) {
          case 0:
            text += " from a " + ref_year_text + " base year";
            break;
          case 1:
            text += " compared to " + ref_year_text;
            break;
          case 2:
            text += " relative to " + ref_year_text;
            break;
          case 3:
            text += " versus fiscal year " + ref_year_text;
            break;
          default:
            text += " (vs. " + ref_year_text + ")";
            break;
        }
      }
    }
    if (target_year.in_text) target_year.value = target_year_text;
    if (ref_year.in_text) ref_year.value = ref_year_text;

    if (rng.NextBernoulli(config.distractor_rate)) {
      text += rng.Choose(DistractorSuffixes());
    }
    text += ".";

    // Passage context: NetZeroFacts sentences are cut from report passages
    // whose surrounding prose mentions years and quantities of its own.
    if (rng.NextBernoulli(0.55)) {
      text = EmissionContextSentence(rng) + " " + text;
    }
    if (rng.NextBernoulli(0.4)) {
      text += " " + EmissionContextSentence(rng);
    }
    o.text = text;

    MaybeAnnotate(o, "TargetValue", value,
                  config.divergent_annotation_rate, rng);
    MaybeAnnotate(o, "ReferenceYear", ref_year,
                  config.divergent_annotation_rate, rng);
    MaybeAnnotate(o, "TargetYear", target_year,
                  config.divergent_annotation_rate, rng);
    if (o.annotations.empty()) {
      o.annotations.push_back(Annotation{"TargetValue", value.value});
    }
    out.push_back(std::move(o));
  }
  return out;
}

std::string GenerateNoiseSentence(Rng& rng) {
  return rng.Choose(NoiseSentences());
}

std::vector<std::string> GeneratorVocabularyTexts() {
  std::vector<std::string> texts;
  for (const ActionEntry& a : Actions()) {
    texts.push_back(a.imperative);
    texts.push_back(a.gerund);
  }
  for (const std::string& q : Qualifiers()) texts.push_back(q);
  for (const std::string& a : FixedAmounts()) texts.push_back(a);
  for (const std::string& n : NoiseSentences()) texts.push_back(n);
  for (const std::string& p : DistractorPrefixes()) texts.push_back(p);
  for (const std::string& s : DistractorSuffixes()) texts.push_back(s);
  return texts;
}

}  // namespace goalex::data
