#ifndef GOALEX_DATA_STREAM_H_
#define GOALEX_DATA_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/report.h"

namespace goalex::data {

/// One document of a timestamped corpus feed: a report plus its position
/// in the stream. `sequence` is the global arrival order (0-based) and is
/// what the streaming pipeline uses for deterministic replay; the
/// wall-clock timestamp is presentation metadata.
struct TimedDocument {
  int64_t sequence = 0;
  int64_t timestamp_ms = 0;
  Report report;
};

/// Configuration of the multi-domain multi-year report stream. Each
/// simulated year every active company publishes one report; year over
/// year a company restates some targets (same action + qualifier, new
/// amount/deadline — the versioned-upsert case), abandons some, adds new
/// ones, and new companies join the corpus.
struct ReportStreamConfig {
  int start_year = 2019;
  int years = 4;
  int initial_companies = 6;
  int new_companies_per_year = 1;
  /// Targets in a company's first report.
  int initial_targets_per_company = 5;
  /// Per-year, per-target probability of a restatement (new amount and/or
  /// deadline under the same action + qualifier).
  double restatement_rate = 0.35;
  /// Per-year, per-target probability the target is withdrawn. The report
  /// then carries an explicit withdrawal block instead of the objective.
  double abandonment_rate = 0.08;
  /// Expected new targets per company per year (drawn 0..2).
  double new_target_rate = 0.6;
  /// Noise blocks inserted between objective blocks.
  int noise_blocks_per_report = 4;
  uint64_t seed = 42;
  /// Simulated milliseconds between consecutive documents.
  int64_t inter_arrival_ms = 1000;
};

/// Generation-time ground truth for one (company, target) pair across the
/// whole stream, keyed the same way the database dedups upserts.
struct StreamTargetTruth {
  std::string company;
  std::string action;     ///< Surface action verb (base form).
  std::string qualifier;  ///< Surface qualifier phrase.
  /// Number of distinct versions published (1 = never restated).
  int versions = 1;
  bool abandoned = false;
};

/// Aggregate ground truth of a generated stream.
struct StreamTruth {
  std::vector<StreamTargetTruth> targets;
  int total_documents = 0;
  int total_objective_blocks = 0;  ///< Incl. restatements, excl. withdrawals.
  int restatements = 0;
  int abandonments = 0;

  /// Number of distinct (company, action, qualifier) keys — the row count
  /// a deduplicating ingest must converge to (abandoned targets keep
  /// their row, flagged, so they count too).
  size_t unique_targets() const { return targets.size(); }
};

/// Generates the stream, documents ordered by (year, company). The same
/// config always yields byte-identical documents. When `truth` is
/// non-null it receives the generation-time ground truth.
std::vector<TimedDocument> GenerateReportStream(
    const ReportStreamConfig& config, StreamTruth* truth = nullptr);

}  // namespace goalex::data

#endif  // GOALEX_DATA_STREAM_H_
