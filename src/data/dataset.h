#ifndef GOALEX_DATA_DATASET_H_
#define GOALEX_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/schema.h"

namespace goalex::data {

/// A train/test partition of a corpus.
struct Split {
  std::vector<Objective> train;
  std::vector<Objective> test;
};

/// Shuffles deterministically with `seed` and holds out `test_fraction` of
/// the corpus as the unseen test set (the paper uses 20%).
Split TrainTestSplit(std::vector<Objective> objectives, double test_fraction,
                     uint64_t seed);

/// Serializes objectives to a TSV-with-escapes format:
///   id <TAB> text <TAB> kind=value <TAB> kind=value ...
/// Tabs/newlines/backslashes inside fields are backslash-escaped.
std::string ObjectivesToTsv(const std::vector<Objective>& objectives);

/// Parses ObjectivesToTsv output.
StatusOr<std::vector<Objective>> ObjectivesFromTsv(std::string_view tsv);

/// Writes/reads the TSV format to disk.
Status SaveObjectives(const std::vector<Objective>& objectives,
                      const std::string& path);
StatusOr<std::vector<Objective>> LoadObjectives(const std::string& path);

}  // namespace goalex::data

#endif  // GOALEX_DATA_DATASET_H_
