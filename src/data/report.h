#ifndef GOALEX_DATA_REPORT_H_
#define GOALEX_DATA_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"

namespace goalex::data {

/// One text block of a sustainability report (the unit GoalSpotter
/// classifies). `is_objective` is the generation-time ground truth used to
/// train and evaluate the detector.
struct ReportBlock {
  std::string text;
  int page = 0;
  bool is_objective = false;
  /// Gold annotations for objective blocks (empty for noise).
  std::vector<Annotation> annotations;
};

/// A synthetic sustainability report.
struct Report {
  std::string company;
  std::string document;
  int page_count = 0;
  std::vector<ReportBlock> blocks;
};

/// Configuration for one company's report fleet in the deployment scenario
/// (Table 5 rows).
struct CompanyProfile {
  std::string name;
  int document_count = 0;
  int total_pages = 0;
  /// Approximate number of objective blocks across all documents.
  int objective_count = 0;
};

/// The 14 company profiles matching the paper's Table 5 exactly
/// (C1: 20 docs / 2131 pages / 150 objectives, ... C14).
const std::vector<CompanyProfile>& PaperDeploymentProfiles();

/// Generates the synthetic report fleet for one company. Objectives are
/// drawn from the Sustainability Goals grammar; the rest of each page is
/// corporate-boilerplate noise. Page counts and objective counts match the
/// profile exactly.
std::vector<Report> GenerateCompanyReports(const CompanyProfile& profile,
                                           uint64_t seed);

/// Generates a single dense report (Table 7's scenario): `objective_count`
/// objectives spread over `page_count` pages with noise in between.
Report GenerateSingleReport(const std::string& company, int page_count,
                            int objective_count, uint64_t seed);

}  // namespace goalex::data

#endif  // GOALEX_DATA_REPORT_H_
