#include "data/report.h"

#include "common/check.h"
#include "data/generator.h"

namespace goalex::data {

const std::vector<CompanyProfile>& PaperDeploymentProfiles() {
  // Exactly the rows of Table 5 in the paper.
  static const std::vector<CompanyProfile>* const kProfiles =
      new std::vector<CompanyProfile>{
          {"C1", 20, 2131, 150},  {"C2", 18, 3172, 642},
          {"C3", 41, 3560, 447},  {"C4", 19, 2488, 102},
          {"C5", 17, 1298, 113},  {"C6", 29, 3278, 343},
          {"C7", 23, 2208, 247},  {"C8", 22, 5012, 764},
          {"C9", 64, 4791, 379},  {"C10", 16, 1202, 79},
          {"C11", 17, 1229, 95},  {"C12", 64, 1721, 71},
          {"C13", 18, 3250, 105}, {"C14", 12, 2531, 43},
      };
  return *kProfiles;
}

namespace {

// Distributes `total` into `parts` chunks differing by at most 1.
std::vector<int> DistributeEvenly(int total, int parts) {
  GOALEX_CHECK_GT(parts, 0);
  std::vector<int> out(parts, total / parts);
  for (int i = 0; i < total % parts; ++i) ++out[i];
  return out;
}

}  // namespace

std::vector<Report> GenerateCompanyReports(const CompanyProfile& profile,
                                           uint64_t seed) {
  Rng rng(seed);

  // Draw this company's objectives from the shared grammar.
  SustainabilityGoalsConfig goal_config;
  goal_config.objective_count = static_cast<size_t>(profile.objective_count);
  goal_config.seed = rng.NextUint64();
  std::vector<Objective> objectives =
      GenerateSustainabilityGoals(goal_config);

  std::vector<int> pages_per_doc =
      DistributeEvenly(profile.total_pages, profile.document_count);
  std::vector<Report> reports(
      static_cast<size_t>(profile.document_count));
  for (int d = 0; d < profile.document_count; ++d) {
    reports[d].company = profile.name;
    reports[d].document =
        profile.name + "-report-" + std::to_string(d + 1) + ".pdf";
    reports[d].page_count = pages_per_doc[d];
  }

  // Noise blocks: every page carries boilerplate prose.
  for (Report& report : reports) {
    for (int page = 1; page <= report.page_count; ++page) {
      int noise_blocks = rng.NextInt(1, 2);
      for (int b = 0; b < noise_blocks; ++b) {
        ReportBlock block;
        block.text = GenerateNoiseSentence(rng);
        block.page = page;
        block.is_objective = false;
        report.blocks.push_back(std::move(block));
      }
    }
  }

  // Scatter the objectives over random documents/pages.
  for (Objective& objective : objectives) {
    size_t doc = rng.NextIndex(reports.size());
    Report& report = reports[doc];
    ReportBlock block;
    block.text = objective.text;
    block.page = rng.NextInt(1, report.page_count);
    block.is_objective = true;
    block.annotations = objective.annotations;
    report.blocks.push_back(std::move(block));
  }
  return reports;
}

Report GenerateSingleReport(const std::string& company, int page_count,
                            int objective_count, uint64_t seed) {
  CompanyProfile profile{company, 1, page_count, objective_count};
  std::vector<Report> reports = GenerateCompanyReports(profile, seed);
  GOALEX_CHECK_EQ(reports.size(), 1u);
  return std::move(reports[0]);
}

}  // namespace goalex::data
