#include "data/stream.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/rng.h"
#include "data/generator.h"

namespace goalex::data {
namespace {

/// Multi-domain company pool: energy, food, logistics, retail, materials,
/// health, tech, transport, utilities. Streamed corpora mix sectors so the
/// SDG distribution is not dominated by a single goal.
const std::vector<std::string>& StreamCompanies() {
  static const std::vector<std::string>* const kCompanies =
      new std::vector<std::string>{
          "Aurora Energy",     "Boreal Foods",    "Cascadia Logistics",
          "Delta Textiles",    "Equinox Retail",  "Fjord Shipping",
          "Granite Materials", "Helios Power",    "Iris Health",
          "Juniper Technologies", "Kestrel Airlines", "Lumen Utilities",
          "Meridian Mining",   "Nimbus Foods",    "Orchid Apparel",
          "Pinnacle Chemicals",
      };
  return *kCompanies;
}

struct ActionVerb {
  const char* base;    ///< "Reduce"
  const char* future;  ///< "will reduce"
};

const std::vector<ActionVerb>& StreamActions() {
  static const std::vector<ActionVerb>* const kActions =
      new std::vector<ActionVerb>{
          {"Reduce", "will reduce"},   {"Cut", "will cut"},
          {"Increase", "will increase"}, {"Achieve", "will achieve"},
          {"Eliminate", "will eliminate"}, {"Expand", "will expand"},
          {"Lower", "will lower"},     {"Improve", "will improve"},
      };
  return *kActions;
}

/// Qualifier pool aligned with both the synthetic-corpus generator and
/// the SDG lexicon, so streamed objectives classify onto varied goals.
const std::vector<std::string>& StreamQualifiers() {
  static const std::vector<std::string>* const kQualifiers =
      new std::vector<std::string>{
          "greenhouse gas emissions", "water usage",
          "renewable electricity",    "single-use plastics",
          "waste to landfill",        "energy consumption",
          "carbon footprint",         "food waste",
          "fresh water withdrawal",   "hazardous waste",
          "recycled content",         "employee training hours",
          "women in leadership positions", "supplier audits",
          "fleet electrification",    "reforestation projects",
          "air travel emissions",     "plastic packaging",
          "community investment",     "solar generation capacity",
      };
  return *kQualifiers;
}

/// A live target of one company.
struct ActiveTarget {
  size_t truth_index = 0;
  std::string action;
  std::string qualifier;
  int percent = 0;
  int deadline = 0;
  bool abandoned = false;
};

struct StreamCompany {
  std::string name;
  std::vector<ActiveTarget> targets;
  std::set<std::pair<std::string, std::string>> used_keys;
};

std::string CompactName(const std::string& company) {
  std::string out;
  for (char c : company) {
    if (c != ' ') out.push_back(c);
  }
  return out;
}

std::string ObjectiveSentence(const ActiveTarget& target, Rng& rng) {
  const std::string amount = std::to_string(target.percent) + "%";
  const std::string year = std::to_string(target.deadline);
  std::string lower_action = target.action;
  if (!lower_action.empty()) {
    lower_action[0] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(lower_action[0])));
  }
  switch (rng.NextIndex(3)) {
    case 0:
      return target.action + " " + target.qualifier + " by " + amount +
             " by " + year + ".";
    case 1:
      return "We " + std::string("will ") + lower_action + " " +
             target.qualifier + " by " + amount + " by " + year + ".";
    default:
      return "By " + year + ", " + lower_action + " " + target.qualifier +
             " by " + amount + ".";
  }
}

std::string WithdrawalSentence(const ActiveTarget& target, Rng& rng) {
  std::string lower_action = target.action;
  if (!lower_action.empty()) {
    lower_action[0] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(lower_action[0])));
  }
  switch (rng.NextIndex(3)) {
    case 0:
      return "We are no longer pursuing our target to " + lower_action +
             " " + target.qualifier + ".";
    case 1:
      return "We have withdrawn our commitment to " + lower_action + " " +
             target.qualifier + ".";
    default:
      // The action + qualifier stay in verb-object order at sentence end
      // so detail extraction recovers the same dedup key as the original
      // objective statement.
      return "We have abandoned our plan to " + lower_action + " " +
             target.qualifier + ".";
  }
}

ReportBlock MakeObjectiveBlock(const ActiveTarget& target, Rng& rng) {
  ReportBlock block;
  block.is_objective = true;
  block.text = ObjectiveSentence(target, rng);
  block.annotations = {
      {"Action", target.action},
      {"Qualifier", target.qualifier},
      {"Amount", std::to_string(target.percent) + "%"},
      {"Deadline", std::to_string(target.deadline)},
  };
  return block;
}

ReportBlock MakeWithdrawalBlock(const ActiveTarget& target, Rng& rng) {
  ReportBlock block;
  block.is_objective = true;
  block.text = WithdrawalSentence(target, rng);
  block.annotations = {
      {"Action", target.action},
      {"Qualifier", target.qualifier},
  };
  return block;
}

ActiveTarget NewTarget(StreamCompany& company, int year, Rng& rng,
                       StreamTruth* truth) {
  ActiveTarget target;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const ActionVerb& verb =
        StreamActions()[rng.NextIndex(StreamActions().size())];
    const std::string& qualifier =
        StreamQualifiers()[rng.NextIndex(StreamQualifiers().size())];
    if (company.used_keys.count({verb.base, qualifier}) > 0) continue;
    target.action = verb.base;
    target.qualifier = qualifier;
    break;
  }
  if (target.action.empty()) {
    // Pool exhausted (tiny configured streams only): reuse deterministic
    // first entries; the duplicate key simply restates.
    target.action = StreamActions()[0].base;
    target.qualifier = StreamQualifiers()[0];
  }
  company.used_keys.insert({target.action, target.qualifier});
  target.percent = 10 + 5 * static_cast<int>(rng.NextIndex(15));  // 10..80
  target.deadline = year + 3 + static_cast<int>(rng.NextIndex(12));
  if (truth != nullptr) {
    StreamTargetTruth entry;
    entry.company = company.name;
    entry.action = target.action;
    entry.qualifier = target.qualifier;
    target.truth_index = truth->targets.size();
    truth->targets.push_back(std::move(entry));
  }
  return target;
}

}  // namespace

std::vector<TimedDocument> GenerateReportStream(
    const ReportStreamConfig& config, StreamTruth* truth) {
  Rng rng(config.seed);
  std::vector<TimedDocument> documents;
  std::vector<StreamCompany> companies;

  const int initial =
      std::clamp(config.initial_companies, 1,
                 static_cast<int>(StreamCompanies().size()));
  for (int i = 0; i < initial; ++i) {
    StreamCompany company;
    company.name = StreamCompanies()[static_cast<size_t>(i)];
    companies.push_back(std::move(company));
  }

  int64_t sequence = 0;
  for (int year_index = 0; year_index < std::max(config.years, 1);
       ++year_index) {
    const int year = config.start_year + year_index;
    if (year_index > 0) {
      for (int i = 0; i < config.new_companies_per_year &&
                      companies.size() < StreamCompanies().size();
           ++i) {
        StreamCompany company;
        company.name = StreamCompanies()[companies.size()];
        companies.push_back(std::move(company));
      }
    }
    for (StreamCompany& company : companies) {
      // Each yearly report lists only new and changed targets, mirroring
      // the "updates to our goals" section of real reports. Unchanged
      // targets are not repeated, so a deduplicating ingest sees a
      // version bump exactly when something changed.
      std::vector<ReportBlock> blocks;
      const bool first_report = company.targets.empty();
      if (first_report) {
        for (int i = 0; i < std::max(config.initial_targets_per_company, 1);
             ++i) {
          company.targets.push_back(NewTarget(company, year, rng, truth));
          blocks.push_back(MakeObjectiveBlock(company.targets.back(), rng));
        }
      } else {
        for (ActiveTarget& target : company.targets) {
          if (target.abandoned) continue;
          if (rng.NextBernoulli(config.abandonment_rate)) {
            target.abandoned = true;
            blocks.push_back(MakeWithdrawalBlock(target, rng));
            if (truth != nullptr) {
              truth->targets[target.truth_index].abandoned = true;
              ++truth->targets[target.truth_index].versions;
              ++truth->abandonments;
            }
            continue;
          }
          if (rng.NextBernoulli(config.restatement_rate)) {
            // Restate: tighten the amount and/or move the deadline. The
            // key (action + qualifier) is untouched — this must land as
            // an update, not a new row.
            if (rng.NextBernoulli(0.7)) {
              target.percent = std::min(target.percent + 5 * (1 + static_cast<int>(rng.NextIndex(3))), 95);
            } else {
              target.deadline += 1 + static_cast<int>(rng.NextIndex(4));
            }
            blocks.push_back(MakeObjectiveBlock(target, rng));
            if (truth != nullptr) {
              ++truth->targets[target.truth_index].versions;
              ++truth->restatements;
            }
          }
        }
        int fresh = (rng.NextBernoulli(config.new_target_rate) ? 1 : 0) +
                    (rng.NextBernoulli(config.new_target_rate * 0.4) ? 1 : 0);
        for (int i = 0; i < fresh; ++i) {
          company.targets.push_back(NewTarget(company, year, rng, truth));
          blocks.push_back(MakeObjectiveBlock(company.targets.back(), rng));
        }
      }

      // Interleave noise between objective blocks at stable positions.
      std::vector<ReportBlock> with_noise;
      for (size_t i = 0; i < blocks.size(); ++i) {
        if (i > 0 && config.noise_blocks_per_report > 0) {
          ReportBlock noise;
          noise.text = GenerateNoiseSentence(rng);
          with_noise.push_back(std::move(noise));
        }
        with_noise.push_back(std::move(blocks[i]));
      }
      for (int i = 0; i < config.noise_blocks_per_report; ++i) {
        ReportBlock noise;
        noise.text = GenerateNoiseSentence(rng);
        with_noise.push_back(std::move(noise));
      }

      TimedDocument document;
      document.sequence = sequence;
      document.timestamp_ms =
          static_cast<int64_t>(year - 1970) * 31557600000LL +
          sequence * config.inter_arrival_ms;
      document.report.company = company.name;
      document.report.document =
          CompactName(company.name) + "-" + std::to_string(year) + ".pdf";
      document.report.blocks = std::move(with_noise);
      int page = 1;
      for (size_t i = 0; i < document.report.blocks.size(); ++i) {
        document.report.blocks[i].page = page;
        if (i % 3 == 2) ++page;
      }
      document.report.page_count = page;
      int objective_blocks = 0;
      for (const ReportBlock& block : document.report.blocks) {
        if (block.is_objective) ++objective_blocks;
      }
      if (truth != nullptr) truth->total_objective_blocks += objective_blocks;
      documents.push_back(std::move(document));
      ++sequence;
    }
  }
  if (truth != nullptr) {
    truth->total_documents = static_cast<int>(documents.size());
    // Withdrawal blocks were counted as objective blocks above; the truth
    // field promises restated+initial objectives only.
    truth->total_objective_blocks -= truth->abandonments;
  }
  return documents;
}

}  // namespace goalex::data
