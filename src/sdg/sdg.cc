#include "sdg/sdg.h"

#include <algorithm>
#include <array>

#include "common/string_util.h"
#include "text/word_tokenizer.h"

namespace goalex::sdg {
namespace {

const std::array<std::string, kNumGoals + 1>& GoalNames() {
  static const std::array<std::string, kNumGoals + 1>* const kNames =
      new std::array<std::string, kNumGoals + 1>{
          "Unknown",
          "No Poverty",
          "Zero Hunger",
          "Good Health and Well-Being",
          "Quality Education",
          "Gender Equality",
          "Clean Water and Sanitation",
          "Affordable and Clean Energy",
          "Decent Work and Economic Growth",
          "Industry, Innovation and Infrastructure",
          "Reduced Inequalities",
          "Sustainable Cities and Communities",
          "Responsible Consumption and Production",
          "Climate Action",
          "Life Below Water",
          "Life on Land",
          "Peace, Justice and Strong Institutions",
          "Partnerships for the Goals",
      };
  return *kNames;
}

std::vector<std::vector<std::string>> KeywordSystem() {
  return {
      /*1*/ {"poverty", "microfinance"},
      /*2*/ {"hunger", "smallholder", "agriculture", "nutrition"},
      /*3*/ {"health", "wellbeing", "disease", "vaccination"},
      /*4*/ {"education", "training", "literacy", "upskilling"},
      /*5*/ {"gender", "women"},
      /*6*/ {"water", "sanitation", "wastewater"},
      /*7*/ {"energy", "renewable", "solar", "wind", "electricity",
             "electrification"},
      /*8*/ {"employment", "jobs", "labor", "wages", "hiring",
             "volunteering"},
      /*9*/ {"infrastructure", "innovation", "manufacturing",
             "digitalization"},
      /*10*/ {"inequality", "inclusion", "diversity", "accessibility"},
      /*11*/ {"cities", "community", "housing", "transit"},
      /*12*/ {"waste", "recycling", "recycled", "recyclability",
              "packaging", "circular", "procurement", "sourcing",
              "plastics"},
      /*13*/ {"climate", "carbon", "emissions", "decarbonization",
              "methane"},
      /*14*/ {"ocean", "marine", "fisheries", "aquaculture"},
      /*15*/ {"biodiversity", "forest", "reforestation", "deforestation",
              "wildlife", "habitat"},
      /*16*/ {"corruption", "governance", "ethics", "compliance",
              "bribery"},
      /*17*/ {"partnership", "partnerships", "collaboration", "alliances"},
  };
}

std::vector<std::vector<std::string>> PhraseSystem() {
  return {
      /*1*/ {"living wage", "financial inclusion", "poverty reduction"},
      /*2*/ {"food security", "smallholder farmer",
             "sustainable agriculture"},
      /*3*/ {"health and safety", "safety training", "safety incidents",
             "occupational safety"},
      /*4*/ {"employee training", "training hours", "skills development"},
      /*5*/ {"gender pay", "women in leadership", "board diversity",
             "pay equity"},
      /*6*/ {"water usage", "water use", "fresh water", "potable water",
             "water intensity", "water withdrawal"},
      /*7*/ {"renewable electricity", "renewable energy",
             "solar generation", "energy efficiency", "clean cooking",
             "data center energy", "energy consumption"},
      /*8*/ {"local hiring", "employee volunteering", "decent work",
             "charitable contributions"},
      /*9*/ {"sustainable infrastructure", "research and development"},
      /*10*/ {"equal opportunity", "accessibility standards"},
      /*11*/ {"community investment", "green building", "public transit",
              "zero-emission vehicles", "fleet electrification"},
      /*12*/ {"single-use plastics", "waste to landfill", "landfill waste",
              "food waste", "recycled content", "circular economy",
              "responsible procurement", "supplier audits",
              "sustainable sourcing", "raw material sourcing",
              "plastic packaging", "hazardous waste", "electronic waste",
              "paper consumption", "packaging materials",
              "product recyclability"},
      /*13*/ {"greenhouse gas", "carbon footprint", "net-zero",
              "scope 1 emissions", "scope 2 emissions", "scope 3 emissions",
              "air travel emissions", "methane leakage", "climate change",
              "science-based targets"},
      /*14*/ {"marine ecosystems", "ocean plastics",
              "sustainable fisheries"},
      /*15*/ {"biodiversity protection", "reforestation projects",
              "land restoration", "habitat conservation"},
      /*16*/ {"anti-corruption", "business ethics", "human rights",
              "responsible governance"},
      /*17*/ {"industry partnerships", "community partnerships",
              "multi-stakeholder initiatives"},
  };
}

std::vector<std::string> LowerTokens(std::string_view text) {
  static const text::WordTokenizer tokenizer;
  return tokenizer.TokenizeToStrings(AsciiToLower(text));
}

/// True when `needle` appears as a contiguous token run in `haystack`.
bool ContainsRun(const std::vector<std::string>& haystack,
                 const std::vector<std::string>& needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  const size_t last_start = haystack.size() - needle.size();
  for (size_t start = 0; start <= last_start; ++start) {
    size_t i = 0;
    while (i < needle.size() && haystack[start + i] == needle[i]) ++i;
    if (i == needle.size()) return true;
  }
  return false;
}

/// Shared tail of both classify paths: filter by the options and sort by
/// (score desc, goal asc).
std::vector<SdgScore> FilterAndRank(std::vector<SdgScore> scores,
                                    const SdgClassifierOptions& options) {
  scores.erase(std::remove_if(scores.begin(), scores.end(),
                              [&options](const SdgScore& s) {
                                return s.systems < options.min_systems ||
                                       s.score < options.min_score;
                              }),
               scores.end());
  std::sort(scores.begin(), scores.end(),
            [](const SdgScore& a, const SdgScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.goal < b.goal;
            });
  if (options.max_goals > 0 &&
      scores.size() > static_cast<size_t>(options.max_goals)) {
    scores.resize(static_cast<size_t>(options.max_goals));
  }
  return scores;
}

}  // namespace

const std::string& GoalName(int goal) {
  if (goal < 1 || goal > kNumGoals) return GoalNames()[0];
  return GoalNames()[static_cast<size_t>(goal)];
}

const std::vector<LexiconSystem>& BuiltinLexicon() {
  static const std::vector<LexiconSystem>* const kLexicon = [] {
    auto* systems = new std::vector<LexiconSystem>(2);
    (*systems)[0].name = "keywords";
    (*systems)[0].terms = KeywordSystem();
    (*systems)[1].name = "phrases";
    (*systems)[1].terms = PhraseSystem();
    return systems;
  }();
  return *kLexicon;
}

SdgClassifier::SdgClassifier(const std::vector<LexiconSystem>& systems,
                             SdgClassifierOptions options)
    : systems_(systems), options_(options) {
  for (size_t s = 0; s < systems_.size(); ++s) {
    const LexiconSystem& system = systems_[s];
    for (size_t g = 0; g < system.terms.size() &&
                       g < static_cast<size_t>(kNumGoals);
         ++g) {
      for (const std::string& term : system.terms[g]) {
        CompiledTerm compiled;
        compiled.system = static_cast<int>(s);
        compiled.goal = static_cast<int>(g) + 1;
        compiled.tokens = LowerTokens(term);
        if (compiled.tokens.empty()) continue;
        by_first_token_[compiled.tokens.front()].push_back(terms_.size());
        terms_.push_back(std::move(compiled));
      }
    }
  }
}

std::vector<SdgScore> SdgClassifier::Aggregate(
    const std::vector<bool>& matched) const {
  // systems_hit is a bitmask over system indexes (the ensemble is small).
  struct GoalAccumulator {
    double score = 0.0;
    unsigned systems_hit = 0;
  };
  std::array<GoalAccumulator, kNumGoals + 1> goals{};
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (!matched[i]) continue;
    const CompiledTerm& term = terms_[i];
    goals[static_cast<size_t>(term.goal)].score +=
        static_cast<double>(term.tokens.size());
    goals[static_cast<size_t>(term.goal)].systems_hit |=
        1u << static_cast<unsigned>(term.system);
  }
  std::vector<SdgScore> scores;
  for (int goal = 1; goal <= kNumGoals; ++goal) {
    const GoalAccumulator& acc = goals[static_cast<size_t>(goal)];
    if (acc.systems_hit == 0) continue;
    SdgScore score;
    score.goal = goal;
    score.score = acc.score;
    score.systems = __builtin_popcount(acc.systems_hit);
    scores.push_back(score);
  }
  return FilterAndRank(std::move(scores), options_);
}

std::vector<SdgScore> SdgClassifier::Classify(std::string_view text) const {
  const std::vector<std::string> tokens = LowerTokens(text);
  std::vector<bool> matched(terms_.size(), false);
  for (size_t pos = 0; pos < tokens.size(); ++pos) {
    auto it = by_first_token_.find(tokens[pos]);
    if (it == by_first_token_.end()) continue;
    for (size_t term_index : it->second) {
      if (matched[term_index]) continue;
      const std::vector<std::string>& needle = terms_[term_index].tokens;
      if (pos + needle.size() > tokens.size()) continue;
      size_t i = 1;  // tokens[pos] already matched the first token.
      while (i < needle.size() && tokens[pos + i] == needle[i]) ++i;
      if (i == needle.size()) matched[term_index] = true;
    }
  }
  return Aggregate(matched);
}

std::vector<SdgScore> SdgClassifier::ClassifyBruteForce(
    std::string_view text) const {
  const std::vector<std::string> tokens = LowerTokens(text);
  // Recompute from the raw lexicon — deliberately ignores the compiled
  // index so tests comparing the two paths mean something.
  std::vector<SdgScore> scores;
  for (int goal = 1; goal <= kNumGoals; ++goal) {
    double score = 0.0;
    int systems = 0;
    for (const LexiconSystem& system : systems_) {
      if (static_cast<size_t>(goal) > system.terms.size()) continue;
      bool system_hit = false;
      for (const std::string& term :
           system.terms[static_cast<size_t>(goal) - 1]) {
        std::vector<std::string> needle = LowerTokens(term);
        if (ContainsRun(tokens, needle)) {
          score += static_cast<double>(needle.size());
          system_hit = true;
        }
      }
      if (system_hit) ++systems;
    }
    if (systems > 0) {
      SdgScore entry;
      entry.goal = goal;
      entry.score = score;
      entry.systems = systems;
      scores.push_back(entry);
    }
  }
  return FilterAndRank(std::move(scores), options_);
}

std::string LabelString(const std::vector<SdgScore>& scores) {
  std::string out;
  for (const SdgScore& score : scores) {
    if (!out.empty()) out += ' ';
    out += "SDG" + std::to_string(score.goal);
  }
  return out;
}

SdgSummary Summarize(const SdgClassifier& classifier,
                     const std::vector<std::string>& objective_texts,
                     size_t top_k) {
  struct Ranked {
    double score;
    size_t order;  ///< Input position: stable tie-break.
    const std::string* text;
  };
  std::map<int, std::vector<Ranked>> per_goal;
  for (size_t i = 0; i < objective_texts.size(); ++i) {
    for (const SdgScore& score : classifier.Classify(objective_texts[i])) {
      per_goal[score.goal].push_back(
          Ranked{score.score, i, &objective_texts[i]});
    }
  }
  SdgSummary summary;
  for (auto& [goal, ranked] : per_goal) {
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.order < b.order;
              });
    SdgSummary::PerGoal entry;
    entry.goal = goal;
    entry.objective_count = static_cast<int>(ranked.size());
    for (size_t i = 0; i < ranked.size() && i < top_k; ++i) {
      entry.top_objectives.push_back(*ranked[i].text);
    }
    summary.goals.push_back(std::move(entry));
  }
  std::sort(summary.goals.begin(), summary.goals.end(),
            [](const SdgSummary::PerGoal& a, const SdgSummary::PerGoal& b) {
              if (a.objective_count != b.objective_count) {
                return a.objective_count > b.objective_count;
              }
              return a.goal < b.goal;
            });
  return summary;
}

}  // namespace goalex::sdg
