#ifndef GOALEX_SDG_SDG_H_
#define GOALEX_SDG_SDG_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace goalex::sdg {

/// Number of UN Sustainable Development Goals.
inline constexpr int kNumGoals = 17;

/// Short official-style name for goal `goal` in [1, 17] ("Climate Action",
/// "Clean Water and Sanitation", ...). Returns "Unknown" outside the range.
const std::string& GoalName(int goal);

/// One keyword/phrase system of the ensemble lexicon. Mirrors the
/// text2sdg design where several independently curated query systems vote
/// on each document; agreement across systems is the confidence signal.
struct LexiconSystem {
  std::string name;
  /// terms[goal - 1] lists the lowercase surface terms (single words or
  /// multi-word phrases) that map to that goal under this system.
  std::vector<std::vector<std::string>> terms;
};

/// The built-in ensemble: two dependency-free systems curated for the
/// sustainability-objective domain (aligned with the phrase inventory the
/// synthetic report generator draws from, so generated corpora exercise
/// every goal). System "keywords" holds high-recall single tokens;
/// system "phrases" holds high-precision multi-word phrases.
const std::vector<LexiconSystem>& BuiltinLexicon();

/// A goal hit for one piece of text.
struct SdgScore {
  int goal = 0;        ///< 1..17.
  double score = 0.0;  ///< Sum of matched-term weights across systems.
  int systems = 0;     ///< Distinct systems with at least one matching term.

  friend bool operator==(const SdgScore& a, const SdgScore& b) {
    return a.goal == b.goal && a.score == b.score && a.systems == b.systems;
  }
};

struct SdgClassifierOptions {
  /// A goal is reported only when at least this many systems matched it.
  int min_systems = 1;
  /// Minimum summed term weight for a goal to be reported.
  double min_score = 1.0;
  /// At most this many goals per text (highest score first); <= 0 keeps all.
  int max_goals = 3;
};

/// Ensemble keyword classifier mapping free text to SDG goals.
///
/// Matching is token-exact: the text is lowercased and word-tokenized, and
/// a term matches when its token sequence appears contiguously. Each term
/// matches at most once (presence, not frequency) and contributes a weight
/// equal to its token count, so multi-word phrases outrank bare keywords.
/// Construction compiles the lexicon into first-token hash maps; Classify
/// is O(tokens) with no per-call allocation proportional to the lexicon.
class SdgClassifier {
 public:
  explicit SdgClassifier(SdgClassifierOptions options = {})
      : SdgClassifier(BuiltinLexicon(), options) {}
  SdgClassifier(const std::vector<LexiconSystem>& systems,
                SdgClassifierOptions options);

  /// Scores `text` against the ensemble. Results are filtered by the
  /// options and sorted by (score desc, goal asc).
  std::vector<SdgScore> Classify(std::string_view text) const;

  /// Reference implementation: scans every term of every system with no
  /// compiled index. Same contract as Classify; exists so tests can assert
  /// the compiled fast path agrees with the obvious quadratic scan.
  std::vector<SdgScore> ClassifyBruteForce(std::string_view text) const;

  const SdgClassifierOptions& options() const { return options_; }

 private:
  struct CompiledTerm {
    int system = 0;             ///< Index into systems_.
    int goal = 0;               ///< 1..17.
    std::vector<std::string> tokens;
  };

  std::vector<SdgScore> Aggregate(
      const std::vector<bool>& matched) const;

  std::vector<LexiconSystem> systems_;
  SdgClassifierOptions options_;
  std::vector<CompiledTerm> terms_;
  /// First token of each term -> indexes into terms_.
  std::unordered_map<std::string, std::vector<size_t>> by_first_token_;
};

/// "SDG13 SDG7" rendering of a Classify result (empty string when no goal
/// cleared the thresholds). Order follows the input.
std::string LabelString(const std::vector<SdgScore>& scores);

/// sustain.AI-style per-report rollup: which goals a report's objectives
/// address, and the strongest objectives for each.
struct SdgSummary {
  struct PerGoal {
    int goal = 0;
    int objective_count = 0;  ///< Objectives that hit this goal at all.
    /// Objective texts ranked by their score on this goal, best first,
    /// truncated to the `top_k` passed to Summarize.
    std::vector<std::string> top_objectives;
  };
  /// Sorted by (objective_count desc, goal asc).
  std::vector<PerGoal> goals;
};

/// Classifies every objective text and aggregates per goal.
SdgSummary Summarize(const SdgClassifier& classifier,
                     const std::vector<std::string>& objective_texts,
                     size_t top_k = 3);

}  // namespace goalex::sdg

#endif  // GOALEX_SDG_SDG_H_
