#include "runtime/stats.h"

#include <cstdio>

namespace goalex::runtime {

std::string Stats::ToString() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%zu items in %.2f s (%.1f/s, %d %s)",
                items, seconds, ItemsPerSecond(), threads,
                threads == 1 ? "thread" : "threads");
  return buffer;
}

}  // namespace goalex::runtime
