#ifndef GOALEX_RUNTIME_THREAD_POOL_H_
#define GOALEX_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace goalex::runtime {

/// A fixed-size worker pool for the embarrassingly parallel fan-out stages
/// of the system (corpus-scale extraction, weak labeling, evaluation).
///
/// Dependency-free by design: plain std::thread workers pulling from a
/// mutex-guarded queue. A pool resolved to one thread runs every task
/// inline on the calling thread, so `num_threads = 1` reproduces serial
/// behavior exactly (no worker threads are ever spawned).
///
/// Error-delivery contract: exceptions thrown by tasks are captured; the
/// first one is rethrown on the calling thread by the next Wait() /
/// ParallelFor() and cleared there, never allowed to deadlock the pool.
/// Two corollaries, pinned by runtime_stress_test.cc:
///  - A captured error with no later Wait() (fire-and-forget Submit, or
///    tasks drained during ~ThreadPool) is logged to stderr by the
///    destructor and dropped — destruction never throws or terminates.
///  - On a serial (thread_count() == 1) pool, Submit runs the task inline
///    and returns normally even when the task throws; the error surfaces
///    on the next Wait(), exactly like the threaded path.
class ThreadPool {
 public:
  /// `num_threads <= 0` resolves to DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);

  /// Joins all workers. Pending tasks are still executed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads doing work (>= 1; 1 means inline execution).
  int thread_count() const { return thread_count_; }

  /// std::thread::hardware_concurrency(), with a floor of 1.
  static int DefaultThreadCount();

  /// Enqueues one task. With thread_count() == 1 the task runs inline
  /// before Submit returns.
  void Submit(std::function<void()> task);

  /// Enqueues a wave of tasks under one lock and wakes exactly
  /// min(tasks, thread_count()) workers instead of notifying per task —
  /// releasing a wave of N ready graph nodes used to stampede every
  /// sleeping worker awake. The queue-depth gauge is updated once with the
  /// post-enqueue depth. On a serial pool the tasks run inline in order,
  /// matching Submit's contract.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception (if any) and clears it.
  void Wait();

  /// Runs `chunk(begin, end)` over a static partition of [0, n) into at
  /// most thread_count() contiguous ranges and blocks until all complete.
  /// Rethrows the first exception thrown by any chunk. Not reentrant: do
  /// not call ParallelFor from inside a task running on this pool.
  ///
  /// When the partition resolves to a single chunk it runs inline on the
  /// calling thread without synchronizing with the pool: it neither waits
  /// for unrelated in-flight Submit() tasks nor consumes their captured
  /// errors — only the chunk's own exception propagates, directly.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& chunk);

  /// Cumulative seconds this pool's workers spent inside tasks — including
  /// the inline single-chunk path of ParallelFor, so small batches on a
  /// multi-thread pool are accounted too. Maintained only while
  /// observability is active at construction (otherwise 0); BatchRunner
  /// divides a delta of this by wall * threads to report worker
  /// utilization.
  double busy_seconds() const {
    return busy_seconds_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  /// Runs `task` with timing/busy-seconds accounting; exceptions (still
  /// accounted) propagate to the caller.
  void RunTimed(const std::function<void()>& task);
  /// RunTimed, but captures the first exception into first_error_ for
  /// delivery by the next Wait() instead of propagating.
  void RunTask(const std::function<void()>& task);
  void AccountTask(std::chrono::steady_clock::time_point start);

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< Queued + currently running tasks.
  bool stop_ = false;
  std::exception_ptr first_error_;

  // Observability handles, resolved once at construction; all null when
  // instrumentation is compiled out or disabled, making every update site
  // a single pointer test.
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Counter* tasks_counter_ = nullptr;
  obs::Histogram* task_seconds_hist_ = nullptr;
  std::atomic<double> busy_seconds_{0.0};
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_THREAD_POOL_H_
