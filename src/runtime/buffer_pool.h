#ifndef GOALEX_RUNTIME_BUFFER_POOL_H_
#define GOALEX_RUNTIME_BUFFER_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace goalex::runtime {

/// A recycling freelist of float storage blocks, keyed by capacity.
///
/// The training runtime allocates the same per-op scratch tensors for every
/// example (forward activations, backward gradients); steady state should
/// reuse those blocks instead of hitting the allocator each time. Acquire
/// hands out the smallest cached block whose capacity covers the request
/// (resized and zero-filled, matching a fresh allocation); Release returns
/// a block to the freelist for the next example.
///
/// Thread-safe via a mutex. In the intended usage — one pool per gradient
/// slot, whose work items are serialized — the lock is uncontended, and it
/// keeps the pool correct if a block ever outlives its scope and is
/// released from another thread.
class BufferPool {
 public:
  using Block = std::vector<float>;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a zero-filled block of size `n` (capacity may be larger when
  /// recycled). Falls back to a fresh allocation on a freelist miss.
  std::unique_ptr<Block> Acquire(size_t n) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = free_.lower_bound(n);
      if (it != free_.end()) {
        std::unique_ptr<Block> block = std::move(it->second.back());
        it->second.pop_back();
        if (it->second.empty()) free_.erase(it);
        cached_bytes_ -= block->capacity() * sizeof(float);
        ++reuse_count_;
        block->assign(n, 0.0f);
        NoteOutstanding(block->capacity());
        return block;
      }
      ++alloc_count_;
      NoteOutstanding(n);
    }
    return std::make_unique<Block>(n, 0.0f);
  }

  /// Returns a block to the freelist.
  void Release(std::unique_ptr<Block> block) {
    if (block == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    const size_t bytes = block->capacity() * sizeof(float);
    cached_bytes_ += bytes;
    outstanding_bytes_ -= std::min(outstanding_bytes_, bytes);
    free_[block->capacity()].push_back(std::move(block));
  }

  /// Blocks handed out from the freelist (steady-state hits).
  uint64_t reuse_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuse_count_;
  }

  /// Blocks that had to be freshly allocated (cold misses).
  uint64_t alloc_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return alloc_count_;
  }

  /// Bytes currently parked in the freelist.
  size_t cached_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cached_bytes_;
  }

  /// Bytes currently handed out to live blocks.
  size_t outstanding_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outstanding_bytes_;
  }

  /// High-water mark of cached + outstanding bytes — the peak scratch
  /// footprint this pool has ever been responsible for. The buffer-lifetime
  /// pass (exec/lifetime.h) reports the sum of these across leased
  /// allocators as the plan's peak.
  size_t peak_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_bytes_;
  }

 private:
  /// Caller holds mu_. Block capacities are stable for their lifetime (the
  /// tensor layer never grows a pooled block), so the acquire-time figure
  /// matches what Release sees.
  void NoteOutstanding(size_t capacity) {
    outstanding_bytes_ += capacity * sizeof(float);
    peak_bytes_ = std::max(peak_bytes_, cached_bytes_ + outstanding_bytes_);
  }

  mutable std::mutex mu_;
  std::map<size_t, std::vector<std::unique_ptr<Block>>> free_;
  uint64_t reuse_count_ = 0;
  uint64_t alloc_count_ = 0;
  size_t cached_bytes_ = 0;
  size_t outstanding_bytes_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_BUFFER_POOL_H_
