#ifndef GOALEX_RUNTIME_BATCH_RUNNER_H_
#define GOALEX_RUNTIME_BATCH_RUNNER_H_

#include <chrono>
#include <cstddef>
#include <vector>

#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace goalex::runtime {

/// Drives an embarrassingly parallel batched stage with deterministic,
/// order-preserving output: result i is always produced by input i and
/// written into a pre-sized vector by index — never appended — so the
/// output is byte-identical regardless of thread count or scheduling.
///
/// The mapped callable must be safe to invoke concurrently from multiple
/// threads (const inference paths, no lazily-mutated shared state).
class BatchRunner {
 public:
  /// `num_threads <= 0` = auto (hardware concurrency), 1 = serial.
  explicit BatchRunner(int num_threads) : pool_(num_threads) {}

  /// Computes {fn(0), fn(1), ..., fn(n-1)} in index order. T must be
  /// default-constructible. Rethrows the first exception any fn(i) throws.
  template <typename T, typename Fn>
  std::vector<T> Map(size_t n, Fn&& fn) {
    auto start = std::chrono::steady_clock::now();
    std::vector<T> out(n);
    pool_.ParallelFor(n, [&out, &fn](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    last_stats_.items = n;
    last_stats_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    last_stats_.threads = pool_.thread_count();
    return out;
  }

  int thread_count() const { return pool_.thread_count(); }

  /// Counters of the most recent Map() call.
  const Stats& last_stats() const { return last_stats_; }

 private:
  ThreadPool pool_;
  Stats last_stats_;
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_BATCH_RUNNER_H_
