#ifndef GOALEX_RUNTIME_BATCH_RUNNER_H_
#define GOALEX_RUNTIME_BATCH_RUNNER_H_

#include <chrono>
#include <cstddef>
#include <vector>

#include "obs/metrics.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace goalex::runtime {

/// Drives an embarrassingly parallel batched stage with deterministic,
/// order-preserving output: result i is always produced by input i and
/// written into a pre-sized vector by index — never appended — so the
/// output is byte-identical regardless of thread count or scheduling.
///
/// The mapped callable must be safe to invoke concurrently from multiple
/// threads (const inference paths, no lazily-mutated shared state).
class BatchRunner {
 public:
  /// `num_threads <= 0` = auto (hardware concurrency), 1 = serial.
  explicit BatchRunner(int num_threads) : pool_(num_threads) {
    if (obs::Active()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      batches_counter_ = registry.GetCounter("runtime.batches");
      batch_items_hist_ = registry.GetHistogram("runtime.batch.items",
                                                obs::DefaultSizeBounds());
      batch_seconds_hist_ =
          registry.GetLatencyHistogram("runtime.batch.seconds");
      threads_gauge_ = registry.GetGauge("runtime.batch.threads");
      utilization_gauge_ = registry.GetGauge("runtime.batch.utilization");
    }
  }

  /// Computes {fn(0), fn(1), ..., fn(n-1)} in index order. T must be
  /// default-constructible. Rethrows the first exception any fn(i) throws.
  template <typename T, typename Fn>
  std::vector<T> Map(size_t n, Fn&& fn) {
    double busy_before = pool_.busy_seconds();
    auto start = std::chrono::steady_clock::now();
    std::vector<T> out(n);
    pool_.ParallelFor(n, [&out, &fn](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    last_stats_.items = n;
    last_stats_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    last_stats_.threads = pool_.thread_count();
    if (batches_counter_ != nullptr) RecordBatchMetrics(busy_before);
    return out;
  }

  int thread_count() const { return pool_.thread_count(); }

  /// Counters of the most recent Map() call.
  const Stats& last_stats() const { return last_stats_; }

 private:
  /// Off the templated hot path: records size/latency distributions and the
  /// worker-utilization gauge (busy worker seconds / (wall * threads)) for
  /// the run summarized in last_stats_.
  void RecordBatchMetrics(double busy_before) {
    batches_counter_->Increment();
    batch_items_hist_->Observe(static_cast<double>(last_stats_.items));
    batch_seconds_hist_->Observe(last_stats_.seconds);
    threads_gauge_->Set(static_cast<double>(last_stats_.threads));
    // A serial pool's utilization is trivially ~1, so the gauge is only
    // reported for real multi-thread pools. Single-chunk runs on such
    // pools are still accounted (ParallelFor routes the inline chunk
    // through the pool's task accounting).
    if (last_stats_.threads > 1 && last_stats_.seconds > 0.0) {
      double busy = pool_.busy_seconds() - busy_before;
      utilization_gauge_->Set(
          busy / (last_stats_.seconds * last_stats_.threads));
    }
  }

  ThreadPool pool_;
  Stats last_stats_;

  // Observability handles (null when instrumentation is inactive).
  obs::Counter* batches_counter_ = nullptr;
  obs::Histogram* batch_items_hist_ = nullptr;
  obs::Histogram* batch_seconds_hist_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_BATCH_RUNNER_H_
