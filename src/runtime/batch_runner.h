#ifndef GOALEX_RUNTIME_BATCH_RUNNER_H_
#define GOALEX_RUNTIME_BATCH_RUNNER_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "exec/executor.h"
#include "exec/graph.h"
#include "obs/metrics.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace goalex::runtime {

/// Drives an embarrassingly parallel batched stage with deterministic,
/// order-preserving output: result i is always produced by input i and
/// written into a pre-sized vector by index — never appended — so the
/// output is byte-identical regardless of thread count or scheduling.
///
/// Since the task-graph refactor this is a thin convenience over
/// exec::Executor: Map builds a linear map-graph (one independent node per
/// contiguous chunk, same static partition ParallelFor used) and runs it on
/// the executor's sharded work-stealing queues. Exceptions and metrics
/// follow the executor's contracts; the first exception any fn(i) throws is
/// rethrown after the remaining chunks settle.
///
/// The mapped callable must be safe to invoke concurrently from multiple
/// threads (const inference paths, no lazily-mutated shared state).
class BatchRunner {
 public:
  /// `num_threads <= 0` = auto (hardware concurrency), 1 = serial.
  explicit BatchRunner(int num_threads)
      : pool_(num_threads), executor_(&pool_) {
    if (obs::Active()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      batches_counter_ = registry.GetCounter("runtime.batches");
      batch_items_hist_ = registry.GetHistogram("runtime.batch.items",
                                                obs::DefaultSizeBounds());
      batch_seconds_hist_ =
          registry.GetLatencyHistogram("runtime.batch.seconds");
      threads_gauge_ = registry.GetGauge("runtime.batch.threads");
      utilization_gauge_ = registry.GetGauge("runtime.batch.utilization");
    }
  }

  /// Computes {fn(0), fn(1), ..., fn(n-1)} in index order. T must be
  /// default-constructible. Rethrows the first exception any fn(i) throws.
  template <typename T, typename Fn>
  std::vector<T> Map(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    last_stats_ = Stats{};
    last_stats_.items = n;
    last_stats_.threads = pool_.thread_count();
    if (n == 0) return out;

    // Same static partition as the old ParallelFor: at most thread_count()
    // contiguous ranges, the first n % chunks one element larger.
    const size_t chunks =
        std::min(n, static_cast<size_t>(pool_.thread_count()));
    const size_t base = n / chunks;
    const size_t extra = n % chunks;
    exec::Graph graph;
    size_t begin = 0;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t end = begin + base + (c < extra ? 1 : 0);
      graph.Add([&out, &fn, begin, end] {
        for (size_t i = begin; i < end; ++i) out[i] = fn(i);
      });
      begin = end;
    }
    Status status = executor_.Run(graph);  // Rethrows fn exceptions.
    GOALEX_CHECK_OK(status);               // A map-graph cannot be cyclic.
    last_stats_.seconds = executor_.last_run().wall_seconds;
    last_stats_.busy_seconds = executor_.last_run().busy_seconds;
    if (batches_counter_ != nullptr) RecordBatchMetrics();
    return out;
  }

  int thread_count() const { return pool_.thread_count(); }

  /// Counters of the most recent Map() call.
  const Stats& last_stats() const { return last_stats_; }

  /// The underlying pool/executor, for callers that schedule non-map
  /// graphs on this runner's workers (e.g. the staged extraction path).
  ThreadPool& pool() { return pool_; }
  exec::Executor& executor() { return executor_; }

 private:
  /// Off the templated hot path: records size/latency distributions and the
  /// worker-utilization gauge for the run summarized in last_stats_.
  void RecordBatchMetrics() {
    batches_counter_->Increment();
    batch_items_hist_->Observe(static_cast<double>(last_stats_.items));
    batch_seconds_hist_->Observe(last_stats_.seconds);
    threads_gauge_->Set(static_cast<double>(last_stats_.threads));
    // A serial pool's utilization is trivially ~1, so the gauge is only
    // reported for real multi-thread pools. Busy time is the sum of node
    // execution times over one wall clock (Stats::Utilization), so a
    // single-chunk run on a multi-thread pool reads ~1/threads and
    // overlapping pipeline stages cannot double-count.
    if (last_stats_.threads > 1 && last_stats_.seconds > 0.0) {
      utilization_gauge_->Set(last_stats_.Utilization());
    }
  }

  ThreadPool pool_;
  exec::Executor executor_;
  Stats last_stats_;

  // Observability handles (null when instrumentation is inactive).
  obs::Counter* batches_counter_ = nullptr;
  obs::Histogram* batch_items_hist_ = nullptr;
  obs::Histogram* batch_seconds_hist_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_BATCH_RUNNER_H_
