#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace goalex::runtime {

int ThreadPool::DefaultThreadCount() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  thread_count_ = num_threads <= 0 ? DefaultThreadCount() : num_threads;
  if (obs::Active()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    queue_depth_gauge_ = registry.GetGauge("runtime.pool.queue_depth");
    tasks_counter_ = registry.GetCounter("runtime.pool.tasks");
    task_seconds_hist_ =
        registry.GetLatencyHistogram("runtime.pool.task.seconds");
  }
  if (thread_count_ == 1) return;  // Serial fallback: inline execution.
  workers_.reserve(static_cast<size_t>(thread_count_));
  for (int i = 0; i < thread_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Error-delivery contract: an exception captured from a task that was
  // never followed by a Wait() cannot be rethrown here (throwing from a
  // destructor would terminate), so it is logged and dropped.
  if (first_error_) {
    try {
      std::rethrow_exception(first_error_);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "goalex: ThreadPool destroyed with unretrieved task "
                   "error: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "goalex: ThreadPool destroyed with unretrieved non-"
                   "std::exception task error\n");
    }
  }
}

void ThreadPool::AccountTask(std::chrono::steady_clock::time_point start) {
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  task_seconds_hist_->Observe(seconds);
  tasks_counter_->Increment();
  double expected = busy_seconds_.load(std::memory_order_relaxed);
  while (!busy_seconds_.compare_exchange_weak(
      expected, expected + seconds, std::memory_order_relaxed)) {
  }
}

void ThreadPool::RunTimed(const std::function<void()>& task) {
  if (task_seconds_hist_ == nullptr) {
    task();
    return;
  }
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  try {
    task();
  } catch (...) {
    AccountTask(start);
    throw;
  }
  AccountTask(start);
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  try {
    RunTimed(task);
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
    }
    RunTask(task);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTask(task);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++in_flight_;
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  task_ready_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (std::function<void()>& task : tasks) RunTask(task);
    return;
  }
  size_t enqueued = tasks.size();
  {
    std::unique_lock<std::mutex> lock(mu_);
    in_flight_ += enqueued;
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  // A wave of k tasks needs at most min(k, workers) of them awake; waking
  // the rest would just have them contend on mu_ and go back to sleep.
  size_t wake = std::min(enqueued, workers_.size());
  for (size_t i = 0; i < wake; ++i) task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& chunk) {
  if (n == 0) return;
  size_t chunks = std::min(n, static_cast<size_t>(thread_count_));
  if (chunks <= 1) {
    // Run the single chunk inline with busy-seconds accounting (so
    // BatchRunner's utilization gauge covers single-chunk runs on
    // multi-thread pools) but without touching Wait()/first_error_: the
    // caller must not stall behind unrelated in-flight Submit() work or
    // receive an earlier unrelated task's exception — only the chunk's
    // own exception propagates.
    RunTimed([&chunk, n] { chunk(0, n); });
    return;
  }
  // Static chunking: contiguous ranges of size n/chunks, the first
  // n % chunks ranges one element larger. The chunks are enqueued as one
  // wave (single lock, batched wakeups).
  size_t base = n / chunks;
  size_t extra = n % chunks;
  size_t begin = 0;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t size = base + (c < extra ? 1 : 0);
    size_t end = begin + size;
    tasks.push_back([&chunk, begin, end] { chunk(begin, end); });
    begin = end;
  }
  SubmitBatch(std::move(tasks));
  Wait();
}

}  // namespace goalex::runtime
