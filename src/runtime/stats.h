#ifndef GOALEX_RUNTIME_STATS_H_
#define GOALEX_RUNTIME_STATS_H_

#include <algorithm>
#include <cstddef>
#include <string>

namespace goalex::runtime {

/// Lightweight throughput counters for a batched run (the observability
/// the deployment discussion calls for: items processed, wall time, and
/// the parallelism that produced them).
struct Stats {
  size_t items = 0;      ///< Work items completed (e.g. objectives).
  double seconds = 0.0;  ///< Wall-clock time of the batched run.
  int threads = 1;       ///< Worker threads used.
  /// Worker seconds spent inside items. For a staged/pipelined run this is
  /// the sum of per-node execution times over ONE shared wall clock —
  /// overlapping stages must not each contribute their own wall time, or
  /// utilization double-counts the overlap (the bug the pre-graph staged
  /// paths had). 0 when the producing path does not account busy time.
  double busy_seconds = 0.0;

  double ItemsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }

  /// Fraction of available worker time (wall * threads) spent busy, in
  /// [0, ~1]. 0 when busy time was not accounted.
  double Utilization() const {
    return seconds > 0.0 && threads > 0 && busy_seconds > 0.0
               ? busy_seconds / (seconds * static_cast<double>(threads))
               : 0.0;
  }

  /// Accumulates over several sequential runs: items, time, and busy time
  /// add; threads report the widest fan-out seen. Only valid for runs that
  /// do not overlap in time (concurrent stages share a wall clock and must
  /// be merged by the scheduler that timed them, not with +=).
  Stats& operator+=(const Stats& other) {
    items += other.items;
    seconds += other.seconds;
    busy_seconds += other.busy_seconds;
    threads = std::max(threads, other.threads);
    return *this;
  }

  /// "380 items in 1.24 s (306.5/s, 8 threads)".
  std::string ToString() const;
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_STATS_H_
