#ifndef GOALEX_RUNTIME_STATS_H_
#define GOALEX_RUNTIME_STATS_H_

#include <algorithm>
#include <cstddef>
#include <string>

namespace goalex::runtime {

/// Lightweight throughput counters for a batched run (the observability
/// the deployment discussion calls for: items processed, wall time, and
/// the parallelism that produced them).
struct Stats {
  size_t items = 0;      ///< Work items completed (e.g. objectives).
  double seconds = 0.0;  ///< Wall-clock time of the batched run.
  int threads = 1;       ///< Worker threads used.

  double ItemsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }

  /// Accumulates over several runs: items and time add, threads report the
  /// widest fan-out seen.
  Stats& operator+=(const Stats& other) {
    items += other.items;
    seconds += other.seconds;
    threads = std::max(threads, other.threads);
    return *this;
  }

  /// "380 items in 1.24 s (306.5/s, 8 threads)".
  std::string ToString() const;
};

}  // namespace goalex::runtime

#endif  // GOALEX_RUNTIME_STATS_H_
