#include "goalspotter/pipeline.h"

#include "common/check.h"

namespace goalex::goalspotter {

PipelineStats GoalSpotter::ProcessReport(
    const data::Report& report, core::ObjectiveDatabase* database) const {
  GOALEX_CHECK(database != nullptr);
  PipelineStats stats;
  stats.documents = 1;
  stats.pages = report.page_count;
  for (const data::ReportBlock& block : report.blocks) {
    ++stats.blocks;
    if (!detector_->IsObjective(block.text, threshold_)) continue;
    ++stats.detected_objectives;

    data::Objective objective;
    objective.id = report.document + "#" + std::to_string(stats.blocks);
    objective.text = block.text;
    objective.company = report.company;
    objective.document = report.document;
    objective.page = block.page;

    data::DetailRecord record = extractor_->Extract(objective);
    database->Insert(record, report.company, report.document, block.page);
  }
  return stats;
}

PipelineStats GoalSpotter::ProcessReports(
    const std::vector<data::Report>& reports,
    core::ObjectiveDatabase* database) const {
  PipelineStats total;
  for (const data::Report& report : reports) {
    total += ProcessReport(report, database);
  }
  return total;
}

}  // namespace goalex::goalspotter
