#include "goalspotter/pipeline.h"

#include <mutex>

#include "common/check.h"
#include "obs/scope.h"
#include "runtime/thread_pool.h"

namespace goalex::goalspotter {

PipelineStats GoalSpotter::ProcessReport(
    const data::Report& report, core::ObjectiveDatabase* database) const {
  return ProcessReportImpl(report, database,
                           extractor_->config().num_threads);
}

PipelineStats GoalSpotter::ProcessReportImpl(
    const data::Report& report, core::ObjectiveDatabase* database,
    int extract_threads) const {
  GOALEX_CHECK(database != nullptr);
  // Per-document stage tracing, sharing the extractor's metrics toggle so
  // one switch controls the whole serving path.
  obs::MetricsRegistry* registry = extractor_->config().enable_metrics
                                       ? &obs::MetricsRegistry::Default()
                                       : nullptr;
  obs::Span document_span(registry, "pipeline.document");
  PipelineStats stats;
  stats.documents = 1;
  stats.pages = report.page_count;

  // Stage 1 (serial): detect the objective blocks of this report.
  obs::Span detect_span(registry, "pipeline.stage.detect");
  std::vector<data::Objective> objectives;
  for (const data::ReportBlock& block : report.blocks) {
    ++stats.blocks;
    if (!detector_->IsObjective(block.text, threshold_)) continue;
    ++stats.detected_objectives;

    data::Objective objective;
    objective.id = report.document + "#" + std::to_string(stats.blocks);
    objective.text = block.text;
    objective.company = report.company;
    objective.document = report.document;
    objective.page = block.page;
    objectives.push_back(std::move(objective));
  }
  detect_span.Stop();

  // Stage 2 (parallel): batched detail extraction over the detected
  // objectives; record i belongs to objective i, so database insertion
  // order matches the serial pipeline exactly.
  obs::Span extract_span(registry, "pipeline.stage.extract");
  runtime::Stats extract_stats;
  std::vector<data::DetailRecord> records =
      extractor_->ExtractAll(objectives, extract_threads, &extract_stats);
  stats.extraction = extract_stats;
  extract_span.Stop();

  obs::Span insert_span(registry, "pipeline.stage.insert");
  for (size_t i = 0; i < records.size(); ++i) {
    database->Insert(records[i], report.company, report.document,
                     objectives[i].page);
  }
  insert_span.Stop();

  if (registry != nullptr && obs::Active()) {
    registry->GetCounter("pipeline.blocks")
        ->Increment(static_cast<uint64_t>(stats.blocks));
    registry->GetCounter("pipeline.objectives")
        ->Increment(static_cast<uint64_t>(stats.detected_objectives));
  }
  return stats;
}

PipelineStats GoalSpotter::ProcessReports(
    const std::vector<data::Report>& reports,
    core::ObjectiveDatabase* database) const {
  PipelineStats total;
  for (const data::Report& report : reports) {
    total += ProcessReport(report, database);
  }
  return total;
}

PipelineStats GoalSpotter::ProcessReportsParallel(
    const std::vector<data::Report>& reports,
    core::ObjectiveDatabase* database, int num_threads) const {
  GOALEX_CHECK(database != nullptr);
  runtime::ThreadPool pool(num_threads);
  PipelineStats total;
  std::mutex total_mu;
  for (const data::Report& report : reports) {
    pool.Submit([this, &report, database, &total, &total_mu] {
      // Extraction runs serially (1 thread) inside each worker: the
      // document fan-out already saturates the pool, and nesting pools
      // would oversubscribe the machine.
      PipelineStats stats = ProcessReportImpl(report, database, 1);
      std::lock_guard<std::mutex> lock(total_mu);
      total += stats;
    });
  }
  pool.Wait();
  return total;
}

}  // namespace goalex::goalspotter
