#include "goalspotter/pipeline.h"

#include "common/check.h"

namespace goalex::goalspotter {

PipelineStats GoalSpotter::ProcessReport(
    const data::Report& report, core::ObjectiveDatabase* database) const {
  GOALEX_CHECK(database != nullptr);
  PipelineStats stats;
  stats.documents = 1;
  stats.pages = report.page_count;

  // Stage 1 (serial): detect the objective blocks of this report.
  std::vector<data::Objective> objectives;
  for (const data::ReportBlock& block : report.blocks) {
    ++stats.blocks;
    if (!detector_->IsObjective(block.text, threshold_)) continue;
    ++stats.detected_objectives;

    data::Objective objective;
    objective.id = report.document + "#" + std::to_string(stats.blocks);
    objective.text = block.text;
    objective.company = report.company;
    objective.document = report.document;
    objective.page = block.page;
    objectives.push_back(std::move(objective));
  }

  // Stage 2 (parallel): batched detail extraction over the detected
  // objectives; record i belongs to objective i, so database insertion
  // order matches the serial pipeline exactly.
  runtime::Stats extract_stats;
  std::vector<data::DetailRecord> records = extractor_->ExtractAll(
      objectives, extractor_->config().num_threads, &extract_stats);
  stats.extraction = extract_stats;
  for (size_t i = 0; i < records.size(); ++i) {
    database->Insert(records[i], report.company, report.document,
                     objectives[i].page);
  }
  return stats;
}

PipelineStats GoalSpotter::ProcessReports(
    const std::vector<data::Report>& reports,
    core::ObjectiveDatabase* database) const {
  PipelineStats total;
  for (const data::Report& report : reports) {
    total += ProcessReport(report, database);
  }
  return total;
}

}  // namespace goalex::goalspotter
