#include "goalspotter/pipeline.h"

#include "common/check.h"
#include "exec/executor.h"
#include "exec/graph.h"
#include "obs/scope.h"
#include "runtime/thread_pool.h"

namespace goalex::goalspotter {

std::vector<data::Objective> GoalSpotter::DetectObjectives(
    const data::Report& report, PipelineStats* stats) const {
  std::vector<data::Objective> objectives;
  for (const data::ReportBlock& block : report.blocks) {
    ++stats->blocks;
    if (!detector_->IsObjective(block.text, threshold_)) continue;
    ++stats->detected_objectives;

    data::Objective objective;
    objective.id = report.document + "#" + std::to_string(stats->blocks);
    objective.text = block.text;
    objective.company = report.company;
    objective.document = report.document;
    objective.page = block.page;
    objectives.push_back(std::move(objective));
  }
  return objectives;
}

void GoalSpotter::InsertRecords(
    const data::Report& report,
    const std::vector<data::Objective>& objectives,
    const std::vector<data::DetailRecord>& records,
    core::ObjectiveDatabase* database) const {
  for (size_t i = 0; i < records.size(); ++i) {
    database->Insert(records[i], report.company, report.document,
                     objectives[i].page);
  }
}

PipelineStats GoalSpotter::ProcessReport(
    const data::Report& report, core::ObjectiveDatabase* database) const {
  return ProcessReportImpl(report, database,
                           extractor_->config().num_threads);
}

PipelineStats GoalSpotter::ProcessReportImpl(
    const data::Report& report, core::ObjectiveDatabase* database,
    int extract_threads) const {
  GOALEX_CHECK(database != nullptr);
  // Per-document stage tracing, sharing the extractor's metrics toggle so
  // one switch controls the whole serving path.
  obs::MetricsRegistry* registry = extractor_->config().enable_metrics
                                       ? &obs::MetricsRegistry::Default()
                                       : nullptr;
  obs::Span document_span(registry, "pipeline.document");
  PipelineStats stats;
  stats.documents = 1;
  stats.pages = report.page_count;

  // Stage 1 (serial): detect the objective blocks of this report.
  obs::Span detect_span(registry, "pipeline.stage.detect");
  std::vector<data::Objective> objectives =
      DetectObjectives(report, &stats);
  detect_span.Stop();

  // Stage 2 (parallel): batched detail extraction over the detected
  // objectives; record i belongs to objective i, so database insertion
  // order matches the serial pipeline exactly.
  obs::Span extract_span(registry, "pipeline.stage.extract");
  runtime::Stats extract_stats;
  std::vector<data::DetailRecord> records =
      extractor_->ExtractAll(objectives, extract_threads, &extract_stats);
  stats.extraction = extract_stats;
  extract_span.Stop();

  obs::Span insert_span(registry, "pipeline.stage.insert");
  InsertRecords(report, objectives, records, database);
  insert_span.Stop();

  if (registry != nullptr && obs::Active()) {
    registry->GetCounter("pipeline.blocks")
        ->Increment(static_cast<uint64_t>(stats.blocks));
    registry->GetCounter("pipeline.objectives")
        ->Increment(static_cast<uint64_t>(stats.detected_objectives));
  }
  return stats;
}

PipelineStats GoalSpotter::ProcessReports(
    const std::vector<data::Report>& reports,
    core::ObjectiveDatabase* database) const {
  PipelineStats total;
  for (const data::Report& report : reports) {
    total += ProcessReport(report, database);
  }
  return total;
}

PipelineStats GoalSpotter::ProcessReportsParallel(
    const std::vector<data::Report>& reports,
    core::ObjectiveDatabase* database, int num_threads) const {
  GOALEX_CHECK(database != nullptr);
  const size_t n = reports.size();
  runtime::ThreadPool pool(num_threads);
  exec::Executor executor(&pool);
  obs::MetricsRegistry* registry = extractor_->config().enable_metrics
                                       ? &obs::MetricsRegistry::Default()
                                       : nullptr;

  // Per-report pipeline state, indexed by report so the final summation is
  // deterministic regardless of which worker ran which chain.
  struct ReportState {
    PipelineStats stats;
    std::vector<data::Objective> objectives;
    std::vector<data::DetailRecord> records;
  };
  std::vector<ReportState> states(n);

  exec::Graph graph;
  for (size_t i = 0; i < n; ++i) {
    const exec::NodeId detect = graph.Add([this, i, &reports, &states,
                                           registry] {
      obs::Span span(registry, "pipeline.stage.detect");
      ReportState& state = states[i];
      state.stats.documents = 1;
      state.stats.pages = reports[i].page_count;
      state.objectives = DetectObjectives(reports[i], &state.stats);
    });
    const exec::NodeId extract = graph.Add(
        [this, i, &states, registry] {
          // Extraction runs serially (1 thread) inside the chain: the
          // document fan-out already saturates the pool, and nesting
          // pools would oversubscribe the machine.
          obs::Span span(registry, "pipeline.stage.extract");
          ReportState& state = states[i];
          state.records = extractor_->ExtractAll(state.objectives, 1,
                                                 &state.stats.extraction);
        },
        {detect});
    graph.Add(
        [this, i, &reports, &states, database, registry] {
          obs::Span span(registry, "pipeline.stage.insert");
          ReportState& state = states[i];
          InsertRecords(reports[i], state.objectives, state.records,
                        database);
          if (registry != nullptr && obs::Active()) {
            registry->GetCounter("pipeline.blocks")
                ->Increment(static_cast<uint64_t>(state.stats.blocks));
            registry->GetCounter("pipeline.objectives")
                ->Increment(
                    static_cast<uint64_t>(state.stats.detected_objectives));
          }
          // Last use of the staged rows: free them here, not at run end.
          state.objectives = {};
          state.records = {};
        },
        {extract});
  }

  Status status = executor.Run(graph);  // Rethrows stage exceptions.
  GOALEX_CHECK_OK(status);              // Chains cannot form a cycle.

  // Document order, independent of worker interleaving.
  PipelineStats total;
  for (const ReportState& state : states) total += state.stats;
  return total;
}

}  // namespace goalex::goalspotter
