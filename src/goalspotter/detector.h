#ifndef GOALEX_GOALSPOTTER_DETECTOR_H_
#define GOALEX_GOALSPOTTER_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace goalex::goalspotter {

/// A labeled text block for detector training.
struct LabeledBlock {
  std::string text;
  bool is_objective = false;
};

/// Training options for the objective detector.
struct DetectorOptions {
  int32_t epochs = 6;
  float learning_rate = 0.25f;
  float l2 = 1e-6f;
  uint64_t seed = 3;
};

/// The sustainability objective detection substrate (GoalSpotter [14]):
/// classifies report text blocks into objective vs. noise. Implemented as
/// L2-regularized logistic regression over hashed unigram/bigram/shape
/// features trained with Adagrad — fast enough to sweep the 37k-page
/// deployment corpus on one CPU core while matching the detection role the
/// paper's transformer classifier plays upstream of detail extraction.
class ObjectiveDetector {
 public:
  ObjectiveDetector();

  /// Trains from labeled blocks.
  void Train(const std::vector<LabeledBlock>& blocks,
             const DetectorOptions& options);

  /// Probability that `text` is a sustainability objective.
  double Score(const std::string& text) const;

  /// Score(text) >= threshold.
  bool IsObjective(const std::string& text, double threshold = 0.5) const;

 private:
  std::vector<uint32_t> Featurize(const std::string& text) const;

  std::vector<float> weights_;
  std::vector<float> g2_;  ///< Adagrad accumulators.
  float bias_ = 0.0f;
  float bias_g2_ = 0.0f;
};

}  // namespace goalex::goalspotter

#endif  // GOALEX_GOALSPOTTER_DETECTOR_H_
