#ifndef GOALEX_GOALSPOTTER_DETECTOR_H_
#define GOALEX_GOALSPOTTER_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace goalex::bpe {
class BpeModel;
}  // namespace goalex::bpe

namespace goalex::infer {
class Engine;
}  // namespace goalex::infer

namespace goalex::nn {
class SequenceClassifier;
}  // namespace goalex::nn

namespace goalex::goalspotter {

/// A labeled text block for detector training.
struct LabeledBlock {
  std::string text;
  bool is_objective = false;
};

/// Training options for the objective detector.
struct DetectorOptions {
  int32_t epochs = 6;
  float learning_rate = 0.25f;
  float l2 = 1e-6f;
  uint64_t seed = 3;
};

/// The sustainability objective detection substrate (GoalSpotter [14]):
/// classifies report text blocks into objective vs. noise. Implemented as
/// L2-regularized logistic regression over hashed unigram/bigram/shape
/// features trained with Adagrad — fast enough to sweep the 37k-page
/// deployment corpus on one CPU core while matching the detection role the
/// paper's transformer classifier plays upstream of detail extraction.
class ObjectiveDetector {
 public:
  ObjectiveDetector();

  /// Trains from labeled blocks.
  void Train(const std::vector<LabeledBlock>& blocks,
             const DetectorOptions& options);

  /// Probability that `text` is a sustainability objective.
  double Score(const std::string& text) const;

  /// Score(text) >= threshold.
  bool IsObjective(const std::string& text, double threshold = 0.5) const;

 private:
  std::vector<uint32_t> Featurize(const std::string& text) const;

  std::vector<float> weights_;
  std::vector<float> g2_;  ///< Adagrad accumulators.
  float bias_ = 0.0f;
  float bias_g2_ = 0.0f;
};

/// Options for the transformer-backed detector. Defaults are scaled down
/// relative to the detail extractor: detection is a binary task over short
/// blocks, so a 1-layer encoder suffices for the parity and smoke tests.
struct TransformerDetectorOptions {
  int32_t epochs = 4;
  float learning_rate = 1e-3f;
  uint64_t seed = 3;
  size_t bpe_merges = 400;
  int32_t max_seq_len = 64;
  int32_t d_model = 32;
  int32_t heads = 2;
  int32_t layers = 1;
  int32_t ffn_dim = 64;
  float dropout = 0.1f;
  /// Mini-batch size of the data-parallel trainer. The default of 1
  /// preserves the historical per-example update cadence.
  int32_t batch_size = 1;
  /// Training workers: 0 = auto, 1 = serial. Weights are bit-identical for
  /// every value (nn/trainer.h); with batch_size = 1 there is one gradient
  /// slot, so extra threads add no parallelism.
  int32_t num_threads = 1;
  /// Predict via the compiled graph-free engine (default) or the autograd
  /// evaluation path. Bit-identical either way (goalspotter_test checks).
  bool use_inference_engine = true;
};

/// Transformer variant of the detection substrate: BPE-encodes a block and
/// classifies it with nn::SequenceClassifier (mean-pooled encoder), the
/// model family the paper uses for detection. Production scoring runs on
/// the compiled infer::Engine — the sequence-classification counterpart of
/// the extractor's token-classification plan.
class TransformerObjectiveDetector {
 public:
  explicit TransformerObjectiveDetector(
      TransformerDetectorOptions options = {});
  ~TransformerObjectiveDetector();

  TransformerObjectiveDetector(const TransformerObjectiveDetector&) = delete;
  TransformerObjectiveDetector& operator=(const TransformerObjectiveDetector&) =
      delete;

  /// Trains the tokenizer and classifier from labeled blocks, then compiles
  /// the inference plan (when use_inference_engine is on).
  void Train(const std::vector<LabeledBlock>& blocks);

  /// Predicted class of `text`: 1 = objective, 0 = noise. Thread-safe after
  /// Train() (per-thread engine contexts; frozen tokenizer).
  int32_t PredictClass(const std::string& text) const;

  /// PredictClass(text) == 1.
  bool IsObjective(const std::string& text) const;

  bool trained() const { return model_ != nullptr; }
  const TransformerDetectorOptions& options() const { return options_; }

 private:
  std::vector<int32_t> Encode(const std::string& text) const;

  TransformerDetectorOptions options_;
  std::unique_ptr<bpe::BpeModel> tokenizer_;
  std::unique_ptr<nn::SequenceClassifier> model_;
  std::unique_ptr<infer::Engine> engine_;  ///< Null on the autograd path.
};

}  // namespace goalex::goalspotter

#endif  // GOALEX_GOALSPOTTER_DETECTOR_H_
