#ifndef GOALEX_GOALSPOTTER_PIPELINE_H_
#define GOALEX_GOALSPOTTER_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/extractor.h"
#include "data/report.h"
#include "goalspotter/detector.h"
#include "runtime/stats.h"

namespace goalex::goalspotter {

/// Aggregate statistics of one pipeline run (the columns of Table 5).
struct PipelineStats {
  int64_t documents = 0;
  int64_t pages = 0;
  int64_t blocks = 0;
  int64_t detected_objectives = 0;
  /// Throughput counters of the batched detail-extraction stage
  /// (objectives, wall seconds, worker threads).
  runtime::Stats extraction;

  PipelineStats& operator+=(const PipelineStats& other) {
    documents += other.documents;
    pages += other.pages;
    blocks += other.blocks;
    detected_objectives += other.detected_objectives;
    extraction += other.extraction;
    return *this;
  }
};

/// The deployed GoalSpotter system with the new detail extraction service
/// integrated (Section 5): report -> text blocks -> objective detection ->
/// detail extraction -> structured database.
class GoalSpotter {
 public:
  /// `detector` and `extractor` must outlive the pipeline; both must be
  /// trained.
  GoalSpotter(const ObjectiveDetector* detector,
              const core::DetailExtractor* extractor)
      : detector_(detector), extractor_(extractor) {}

  /// Processes one report: detects objective blocks, extracts their
  /// details, and inserts rows into `database`. Returns run statistics.
  PipelineStats ProcessReport(const data::Report& report,
                              core::ObjectiveDatabase* database) const;

  /// Processes a whole fleet of reports serially (deterministic row ids).
  PipelineStats ProcessReports(const std::vector<data::Report>& reports,
                               core::ObjectiveDatabase* database) const;

  /// Processes a fleet of reports with document-level parallelism: each
  /// report becomes a detect -> extract -> insert node chain on a
  /// work-stealing task-graph executor, so stages of different documents
  /// overlap while every chain runs depth-first (detail extraction runs
  /// serially inside each chain, so the pool is never oversubscribed).
  /// Per-document statistics land in a report-indexed slot and are summed
  /// in document order, so the returned PipelineStats are deterministic.
  /// `num_threads` follows the ThreadPool convention (<= 0 = auto). The
  /// resulting database holds exactly the rows of the serial path, but row
  /// ids depend on worker interleaving — use ProcessReports when ids must
  /// be reproducible.
  PipelineStats ProcessReportsParallel(const std::vector<data::Report>& reports,
                                       core::ObjectiveDatabase* database,
                                       int num_threads = 0) const;

  /// Detection threshold (probability) for objective blocks.
  void set_threshold(double threshold) { threshold_ = threshold; }
  double threshold() const { return threshold_; }

 private:
  PipelineStats ProcessReportImpl(const data::Report& report,
                                  core::ObjectiveDatabase* database,
                                  int extract_threads) const;

  /// Stage 1: scans the report's blocks and returns the detected
  /// objectives, updating blocks/detected_objectives in `stats`.
  std::vector<data::Objective> DetectObjectives(const data::Report& report,
                                                PipelineStats* stats) const;

  /// Stage 3: inserts record i under objective i's page.
  void InsertRecords(const data::Report& report,
                     const std::vector<data::Objective>& objectives,
                     const std::vector<data::DetailRecord>& records,
                     core::ObjectiveDatabase* database) const;

  const ObjectiveDetector* detector_;      // Not owned.
  const core::DetailExtractor* extractor_;  // Not owned.
  double threshold_ = 0.5;
};

}  // namespace goalex::goalspotter

#endif  // GOALEX_GOALSPOTTER_PIPELINE_H_
