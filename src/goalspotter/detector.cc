#include "goalspotter/detector.h"

#include <cmath>

#include "bpe/bpe_tokenizer.h"
#include "common/check.h"
#include "common/string_util.h"
#include "crf/features.h"
#include "infer/engine.h"
#include "nn/adam.h"
#include "nn/trainer.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "text/word_tokenizer.h"

namespace goalex::goalspotter {
namespace {

constexpr uint32_t kBuckets = 1u << 18;

uint32_t HashFeature(std::string_view text) {
  uint32_t h = 2166136261u;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h % kBuckets;
}

}  // namespace

ObjectiveDetector::ObjectiveDetector()
    : weights_(kBuckets, 0.0f), g2_(kBuckets, 0.0f) {}

std::vector<uint32_t> ObjectiveDetector::Featurize(
    const std::string& text) const {
  text::WordTokenizer tokenizer;
  std::vector<std::string> tokens = tokenizer.TokenizeToStrings(text);
  std::vector<uint32_t> features;
  features.reserve(tokens.size() * 3 + 4);
  std::string prev = "<bos>";
  bool has_percent = false;
  bool has_year = false;
  for (const std::string& token : tokens) {
    std::string lower = AsciiToLower(token);
    features.push_back(HashFeature("u=" + lower));
    features.push_back(HashFeature("b=" + prev + "|" + lower));
    features.push_back(HashFeature("s=" + crf::ShortShape(token)));
    if (token == "%") has_percent = true;
    if (crf::IsYearToken(token)) has_year = true;
    prev = lower;
  }
  if (has_percent) features.push_back(HashFeature("f=percent"));
  if (has_year) features.push_back(HashFeature("f=year"));
  if (tokens.size() < 8) features.push_back(HashFeature("f=short"));
  if (tokens.size() > 30) features.push_back(HashFeature("f=long"));
  return features;
}

void ObjectiveDetector::Train(const std::vector<LabeledBlock>& blocks,
                              const DetectorOptions& options) {
  Rng rng(options.seed);
  std::vector<size_t> order(blocks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const LabeledBlock& block = blocks[idx];
      std::vector<uint32_t> features = Featurize(block.text);
      double z = bias_;
      for (uint32_t f : features) z += weights_[f];
      double p = 1.0 / (1.0 + std::exp(-z));
      double grad = (block.is_objective ? 1.0 : 0.0) - p;

      bias_g2_ += static_cast<float>(grad * grad);
      bias_ += options.learning_rate * static_cast<float>(grad) /
               std::sqrt(bias_g2_ + 1e-8f);
      for (uint32_t f : features) {
        double g = grad - options.l2 * weights_[f];
        g2_[f] += static_cast<float>(g * g);
        weights_[f] += options.learning_rate * static_cast<float>(g) /
                       std::sqrt(g2_[f] + 1e-8f);
      }
    }
  }
}

double ObjectiveDetector::Score(const std::string& text) const {
  double z = bias_;
  for (uint32_t f : Featurize(text)) z += weights_[f];
  return 1.0 / (1.0 + std::exp(-z));
}

bool ObjectiveDetector::IsObjective(const std::string& text,
                                    double threshold) const {
  return Score(text) >= threshold;
}

TransformerObjectiveDetector::TransformerObjectiveDetector(
    TransformerDetectorOptions options)
    : options_(options) {}

TransformerObjectiveDetector::~TransformerObjectiveDetector() = default;

std::vector<int32_t> TransformerObjectiveDetector::Encode(
    const std::string& text) const {
  GOALEX_CHECK(tokenizer_ != nullptr);
  std::vector<int32_t> ids;
  ids.push_back(bpe::Vocab::kBosId);
  for (const bpe::Subword& sw : tokenizer_->Encode(text)) {
    ids.push_back(sw.id);
  }
  ids.push_back(bpe::Vocab::kEosId);
  return ids;
}

void TransformerObjectiveDetector::Train(
    const std::vector<LabeledBlock>& blocks) {
  GOALEX_CHECK(!blocks.empty());
  std::vector<std::string> corpus;
  corpus.reserve(blocks.size());
  for (const LabeledBlock& block : blocks) corpus.push_back(block.text);
  tokenizer_ = std::make_unique<bpe::BpeModel>(bpe::BpeModel::Train(
      corpus, options_.bpe_merges, /*lowercase=*/true));
  tokenizer_->Freeze();

  nn::TransformerConfig arch;
  arch.vocab_size = static_cast<int32_t>(tokenizer_->vocab().size());
  arch.max_seq_len = options_.max_seq_len;
  arch.d_model = options_.d_model;
  arch.heads = options_.heads;
  arch.layers = options_.layers;
  arch.ffn_dim = options_.ffn_dim;
  arch.dropout = options_.dropout;

  Rng init_rng(options_.seed);
  model_ = std::make_unique<nn::SequenceClassifier>(arch, /*num_classes=*/2,
                                                    init_rng);

  // Encode every block once up front — the id sequences are reused each
  // epoch by all gradient slots.
  std::vector<std::vector<int32_t>> encoded;
  std::vector<int32_t> targets;
  encoded.reserve(blocks.size());
  targets.reserve(blocks.size());
  for (const LabeledBlock& block : blocks) {
    encoded.push_back(Encode(block.text));
    targets.push_back(block.is_objective ? 1 : 0);
  }

  const int32_t slot_count =
      nn::DataParallelTrainer::SlotCount(options_.batch_size);
  std::vector<std::unique_ptr<nn::SequenceClassifier>> replicas;
  std::vector<std::vector<tensor::Var>> replica_params;
  replicas.reserve(static_cast<size_t>(slot_count));
  replica_params.reserve(static_cast<size_t>(slot_count));
  for (int32_t s = 0; s < slot_count; ++s) {
    Rng replica_rng(options_.seed);  // Values get rebound to the master's.
    replicas.push_back(std::make_unique<nn::SequenceClassifier>(
        arch, /*num_classes=*/2, replica_rng));
    replica_params.push_back(replicas.back()->Parameters());
  }

  nn::ParallelTrainerOptions trainer_options;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.num_threads = options_.num_threads;
  trainer_options.seed = options_.seed;
  trainer_options.adam.learning_rate = options_.learning_rate;
  trainer_options.registry =
      obs::Active() ? &obs::MetricsRegistry::Default() : nullptr;
  nn::DataParallelTrainer trainer(model_->Parameters(),
                                  std::move(replica_params), trainer_options);

  const nn::SlotLossFn loss_fn = [&replicas, &encoded, &targets](
                                     size_t slot, size_t example_index,
                                     Rng& rng) {
    return replicas[slot]->ForwardLoss(encoded[example_index],
                                       targets[example_index], rng);
  };

  Rng train_rng(options_.seed + 1);
  std::vector<size_t> order(blocks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    train_rng.Shuffle(order);
    trainer.RunEpoch(order, epoch, loss_fn);
  }

  engine_.reset();
  if (options_.use_inference_engine) {
    engine_ = std::make_unique<infer::Engine>(
        infer::Engine::ForSequenceClassifier(*model_));
  }
}

int32_t TransformerObjectiveDetector::PredictClass(
    const std::string& text) const {
  GOALEX_CHECK_MSG(model_ != nullptr, "detector is not trained");
  std::vector<int32_t> ids = Encode(text);
  return engine_ != nullptr ? engine_->PredictClass(ids)
                            : model_->Predict(ids);
}

bool TransformerObjectiveDetector::IsObjective(const std::string& text) const {
  return PredictClass(text) == 1;
}

}  // namespace goalex::goalspotter
