#include "labels/iob.h"

#include "common/check.h"

namespace goalex::labels {

LabelCatalog::LabelCatalog(std::vector<std::string> entity_kinds)
    : kinds_(std::move(entity_kinds)) {
  for (size_t i = 0; i < kinds_.size(); ++i) {
    GOALEX_CHECK_MSG(!kinds_[i].empty(), "entity kind names must be non-empty");
    auto [it, inserted] =
        kind_index_.emplace(kinds_[i], static_cast<int32_t>(i));
    GOALEX_CHECK_MSG(inserted, "duplicate entity kind: " << kinds_[i]);
  }
}

StatusOr<int32_t> LabelCatalog::KindIndex(std::string_view kind) const {
  auto it = kind_index_.find(std::string(kind));
  if (it == kind_index_.end()) {
    return NotFoundError("unknown entity kind: " + std::string(kind));
  }
  return it->second;
}

LabelId LabelCatalog::BeginId(int32_t kind) const {
  GOALEX_CHECK_GE(kind, 0);
  GOALEX_CHECK_LT(kind, kind_count());
  return 1 + 2 * kind;
}

LabelId LabelCatalog::InsideId(int32_t kind) const {
  GOALEX_CHECK_GE(kind, 0);
  GOALEX_CHECK_LT(kind, kind_count());
  return 2 + 2 * kind;
}

int32_t LabelCatalog::KindOf(LabelId id) const {
  GOALEX_CHECK_GT(id, 0);
  GOALEX_CHECK_LT(id, label_count());
  return (id - 1) / 2;
}

std::string LabelCatalog::LabelName(LabelId id) const {
  if (id == kOutsideId) return "O";
  int32_t kind = KindOf(id);
  return (IsBegin(id) ? "B-" : "I-") + kinds_[static_cast<size_t>(kind)];
}

StatusOr<LabelId> LabelCatalog::ParseLabel(std::string_view name) const {
  if (name == "O") return kOutsideId;
  if (name.size() < 3 || (name[0] != 'B' && name[0] != 'I') ||
      name[1] != '-') {
    return InvalidArgumentError("bad IOB label: " + std::string(name));
  }
  auto kind = KindIndex(name.substr(2));
  if (!kind.ok()) return kind.status();
  return name[0] == 'B' ? BeginId(*kind) : InsideId(*kind);
}

std::vector<LabelId> LabelCatalog::EncodeSpans(
    size_t token_count, const std::vector<Span>& spans) const {
  std::vector<LabelId> ids(token_count, kOutsideId);
  for (const Span& span : spans) {
    GOALEX_CHECK_LE(span.begin, span.end);
    GOALEX_CHECK_LE(span.end, token_count);
    if (span.begin == span.end) continue;
    ids[span.begin] = BeginId(span.kind);
    for (size_t i = span.begin + 1; i < span.end; ++i) {
      ids[i] = InsideId(span.kind);
    }
  }
  return ids;
}

std::vector<Span> LabelCatalog::DecodeSpans(
    const std::vector<LabelId>& ids) const {
  std::vector<Span> spans;
  size_t i = 0;
  while (i < ids.size()) {
    LabelId id = ids[i];
    if (id == kOutsideId) {
      ++i;
      continue;
    }
    // A span starts at a B-* or at an orphan I-* (IOB repair).
    int32_t kind = KindOf(id);
    size_t begin = i;
    ++i;
    while (i < ids.size() && IsInside(ids[i]) && KindOf(ids[i]) == kind) {
      ++i;
    }
    spans.push_back(Span{kind, begin, i});
  }
  return spans;
}

}  // namespace goalex::labels
