#ifndef GOALEX_LABELS_IOB_H_
#define GOALEX_LABELS_IOB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace goalex::labels {

/// Dense label id: 0 is always "O"; entity kind k occupies ids 2k+1 (B-k)
/// and 2k+2 (I-k).
using LabelId = int32_t;

/// A labeled token span: tokens [begin, end) carry entity kind `kind`.
struct Span {
  int32_t kind = 0;   ///< Index into the catalog's entity kinds.
  size_t begin = 0;   ///< First token index, inclusive.
  size_t end = 0;     ///< Past-the-last token index, exclusive.

  friend bool operator==(const Span& a, const Span& b) {
    return a.kind == b.kind && a.begin == b.begin && a.end == b.end;
  }
};

/// Catalog of IOB labels over a fixed set of entity kinds (e.g., Action,
/// Amount, Qualifier, Baseline, Deadline). Provides the id <-> string
/// mapping, span encoding/decoding, and repair of invalid IOB transitions
/// that a token classifier may emit.
class LabelCatalog {
 public:
  /// Builds a catalog from entity kind names. Names must be unique and
  /// non-empty.
  explicit LabelCatalog(std::vector<std::string> entity_kinds);

  static constexpr LabelId kOutsideId = 0;

  /// Total number of label ids: 1 + 2 * kind count.
  int32_t label_count() const {
    return 1 + 2 * static_cast<int32_t>(kinds_.size());
  }
  int32_t kind_count() const { return static_cast<int32_t>(kinds_.size()); }
  const std::vector<std::string>& kinds() const { return kinds_; }

  /// Returns the index of `kind`, or an error if unknown.
  StatusOr<int32_t> KindIndex(std::string_view kind) const;

  LabelId BeginId(int32_t kind) const;
  LabelId InsideId(int32_t kind) const;

  /// True if `id` is a B-* / I-* label.
  bool IsBegin(LabelId id) const { return id > 0 && (id - 1) % 2 == 0; }
  bool IsInside(LabelId id) const { return id > 0 && (id - 1) % 2 == 1; }

  /// Returns the kind index of a B-*/I-* id. Requires id != O.
  int32_t KindOf(LabelId id) const;

  /// Renders an id as "O", "B-Action", "I-Amount", ...
  std::string LabelName(LabelId id) const;

  /// Parses "O" / "B-kind" / "I-kind" back to an id.
  StatusOr<LabelId> ParseLabel(std::string_view name) const;

  /// Encodes spans over a `token_count`-token sequence into per-token ids.
  /// Overlapping spans: later spans in the list win (matches Algorithm 1,
  /// which overwrites labels in annotation order).
  std::vector<LabelId> EncodeSpans(size_t token_count,
                                   const std::vector<Span>& spans) const;

  /// Decodes per-token label ids into spans. An I-k without a preceding
  /// B-k/I-k of the same kind is treated as starting a new span (the
  /// standard "IOB repair" convention), so any id sequence decodes.
  std::vector<Span> DecodeSpans(const std::vector<LabelId>& ids) const;

 private:
  std::vector<std::string> kinds_;
  std::unordered_map<std::string, int32_t> kind_index_;
};

}  // namespace goalex::labels

#endif  // GOALEX_LABELS_IOB_H_
