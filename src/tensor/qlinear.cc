#include "tensor/qlinear.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "tensor/mathfn.h"

namespace goalex::tensor {
namespace {

/// Quantizes one activation row to u8 codes in [0, 127]:
/// xq[l] = round((x[l] - min) / sx) with sx = (max - min) / 127. The
/// asymmetric zero point keeps the full 7-bit budget on the actual
/// activation range (post-layer-norm rows are roughly symmetric, but GELU
/// outputs are not), and u8 codes are what maddubs wants on the left.
/// Codes past `n` are zeroed so the grouped kernel can read whole groups.
void QuantizeRow(const float* x, int64_t n, uint8_t* xq, int64_t n_groups,
                 float* min_out, float* sx_out) {
  float mn = x[0], mx = x[0];
  int64_t l = 0;
#if defined(__AVX2__) && defined(__FMA__)
  if (n >= 8) {
    __m256 vmn = _mm256_loadu_ps(x), vmx = vmn;
    for (l = 8; l + 8 <= n; l += 8) {
      const __m256 v = _mm256_loadu_ps(x + l);
      vmn = _mm256_min_ps(vmn, v);
      vmx = _mm256_max_ps(vmx, v);
    }
    alignas(32) float a[8], b[8];
    _mm256_store_ps(a, vmn);
    _mm256_store_ps(b, vmx);
    mn = a[0];
    mx = b[0];
    for (int z = 1; z < 8; ++z) {
      mn = std::min(mn, a[z]);
      mx = std::max(mx, b[z]);
    }
  }
#endif
  for (; l < n; ++l) {
    mn = std::min(mn, x[l]);
    mx = std::max(mx, x[l]);
  }
  const float range = mx - mn;
  const float sx = range > 0.0f ? range / 127.0f : 1.0f;
  const float inv = 1.0f / sx;
  l = 0;
#if defined(__AVX2__) && defined(__FMA__)
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vmn8 = _mm256_set1_ps(mn);
  for (; l + 32 <= n; l += 32) {
    const __m256i i0 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + l), vmn8), vinv));
    const __m256i i1 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + l + 8), vmn8), vinv));
    const __m256i i2 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + l + 16), vmn8), vinv));
    const __m256i i3 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + l + 24), vmn8), vinv));
    // packs/packus interleave 128-bit lanes; one permute restores order.
    __m256i p01 = _mm256_packs_epi32(i0, i1);
    __m256i p23 = _mm256_packs_epi32(i2, i3);
    __m256i u = _mm256_packus_epi16(p01, p23);
    u = _mm256_permutevar8x32_epi32(u,
                                    _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(xq + l), u);
  }
#endif
  for (; l < n; ++l) {
    xq[l] = static_cast<uint8_t>(std::lrintf((x[l] - mn) * inv));
  }
  for (int64_t z = n; z < n_groups * 4; ++z) xq[z] = 0;
  *min_out = mn;
  *sx_out = sx;
}

/// Dequantized output for one column given the exact int32 accumulator:
/// sx·sw·acc + (mn·sw·colsum + bias), fmaf chains matching the SIMD
/// epilogue so vector/tail columns agree.
inline float Dequant(int32_t acc, float sx, float mn, float sw, float colsum,
                     float bias) {
  return std::fmaf(sx * sw, static_cast<float>(acc),
                   std::fmaf(mn * sw, colsum, bias));
}

/// One quantized row×layer product into out_row, epilogue fused at store.
/// kEpi: 0 none, 1 GELU, 2 residual add.
template <int kEpi>
void QuantizedRowForward(const uint8_t* xq, float mn, float sx,
                         const QuantizedLinear& q, float* o,
                         const float* res) {
  const int64_t od = q.out;
  const int64_t groups = q.in_groups;
  int64_t j0 = 0;
#if defined(__AVX2__) && defined(__FMA__)
  const __m256i ones = _mm256_set1_epi16(1);
  const __m256 coef = _mm256_set1_ps(kGeluCoef);
  const __m256 cubic = _mm256_set1_ps(kGeluCubic);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vsx = _mm256_set1_ps(sx);
  const __m256 vmn = _mm256_set1_ps(mn);
  for (; j0 + 32 <= od; j0 += 32) {
    // Each maddubs pairs u8 activations (≤127) with s8 codes; the pair sum
    // is ≤ 2·127·127, safely inside int16, and madd(…, ones) widens to
    // int32 — the accumulation is exact.
    __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
    __m256i a2 = _mm256_setzero_si256(), a3 = _mm256_setzero_si256();
    const int8_t* wb = q.codes.data() + j0 * 4;
    for (int64_t b = 0; b < groups; ++b) {
      const __m256i act = _mm256_set1_epi32(
          *reinterpret_cast<const int32_t*>(xq + b * 4));
      const int8_t* wrow = wb + b * od * 4;
      a0 = _mm256_add_epi32(
          a0, _mm256_madd_epi16(
                  _mm256_maddubs_epi16(
                      act, _mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(wrow))),
                  ones));
      a1 = _mm256_add_epi32(
          a1, _mm256_madd_epi16(
                  _mm256_maddubs_epi16(
                      act, _mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(wrow + 32))),
                  ones));
      a2 = _mm256_add_epi32(
          a2, _mm256_madd_epi16(
                  _mm256_maddubs_epi16(
                      act, _mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(wrow + 64))),
                  ones));
      a3 = _mm256_add_epi32(
          a3, _mm256_madd_epi16(
                  _mm256_maddubs_epi16(
                      act, _mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(wrow + 96))),
                  ones));
    }
    for (int g = 0; g < 4; ++g) {
      const __m256i acc = g == 0 ? a0 : g == 1 ? a1 : g == 2 ? a2 : a3;
      const int64_t j = j0 + g * 8;
      const __m256 swv = _mm256_loadu_ps(q.scale.data() + j);
      const __m256 csv = _mm256_loadu_ps(q.colsum.data() + j);
      const __m256 bv = _mm256_loadu_ps(q.bias.data() + j);
      __m256 v = _mm256_fmadd_ps(
          _mm256_mul_ps(vsx, swv), _mm256_cvtepi32_ps(acc),
          _mm256_fmadd_ps(_mm256_mul_ps(vmn, swv), csv, bv));
      if constexpr (kEpi == 1) {
        const __m256 cvv = _mm256_mul_ps(_mm256_mul_ps(cubic, v), v);
        const __m256 u = _mm256_mul_ps(coef, _mm256_fmadd_ps(cvv, v, v));
        v = _mm256_mul_ps(_mm256_mul_ps(half, v),
                          _mm256_add_ps(vone, FastTanhf8(u)));
      } else if constexpr (kEpi == 2) {
        v = _mm256_add_ps(_mm256_loadu_ps(res + j), v);
      }
      _mm256_storeu_ps(o + j, v);
    }
  }
#endif
  for (; j0 < od; ++j0) {
    int32_t acc = 0;
    for (int64_t b = 0; b < groups; ++b) {
      const int8_t* wg = q.codes.data() + (b * od + j0) * 4;
      const uint8_t* xg = xq + b * 4;
      for (int z = 0; z < 4; ++z) {
        acc += static_cast<int32_t>(xg[z]) * static_cast<int32_t>(wg[z]);
      }
    }
    float v = Dequant(acc, sx, mn, q.scale[j0], q.colsum[j0], q.bias[j0]);
    if constexpr (kEpi == 1) {
      v = (0.5f * v) * (1.0f + FastTanhf(GeluTanhArg(v)));
    } else if constexpr (kEpi == 2) {
      v = res[j0] + v;
    }
    o[j0] = v;
  }
}

template <int kEpi>
void QuantizedForwardImpl(const float* x, const QuantizedLinear& q,
                          float* out, int64_t m, const float* residual) {
  std::vector<uint8_t> xq(static_cast<size_t>(q.in_groups) * 4);
  for (int64_t i = 0; i < m; ++i) {
    float mn, sx;
    QuantizeRow(x + i * q.in, q.in, xq.data(), q.in_groups, &mn, &sx);
    QuantizedRowForward<kEpi>(
        xq.data(), mn, sx, q, out + i * q.out,
        residual != nullptr ? residual + i * q.out : nullptr);
  }
}

}  // namespace

QuantizedLinear QuantizeLinear(const float* w, const float* bias, int64_t in,
                               int64_t out) {
  GOALEX_CHECK_GT(in, 0);
  GOALEX_CHECK_GT(out, 0);
  QuantizedLinear q;
  q.in = in;
  q.out = out;
  q.in_groups = (in + 3) / 4;
  q.codes.assign(static_cast<size_t>(q.in_groups) * out * 4, 0);
  q.scale.resize(out);
  q.colsum.assign(out, 0.0f);
  q.bias.assign(bias, bias + out);
  for (int64_t j = 0; j < out; ++j) {
    float mx = 0.0f;
    for (int64_t l = 0; l < in; ++l) {
      mx = std::max(mx, std::fabs(w[l * out + j]));
    }
    const float s = mx > 0.0f ? mx / 127.0f : 1.0f;
    q.scale[j] = s;
    int32_t cs = 0;
    for (int64_t l = 0; l < in; ++l) {
      const int32_t code =
          static_cast<int32_t>(std::lrintf(w[l * out + j] / s));
      q.codes[((l / 4) * out + j) * 4 + (l % 4)] = static_cast<int8_t>(code);
      cs += code;
    }
    q.colsum[j] = static_cast<float>(cs);
  }
  return q;
}

void QuantizedLinearForward(const float* x, const QuantizedLinear& q,
                            float* out, int64_t m, LinearEpilogue epilogue,
                            const float* residual) {
  switch (epilogue) {
    case LinearEpilogue::kNone:
      QuantizedForwardImpl<0>(x, q, out, m, nullptr);
      break;
    case LinearEpilogue::kGelu:
      QuantizedForwardImpl<1>(x, q, out, m, nullptr);
      break;
    case LinearEpilogue::kResidual:
      GOALEX_CHECK(residual != nullptr);
      QuantizedForwardImpl<2>(x, q, out, m, residual);
      break;
  }
}

void QuantizedQkvForward(const float* x, const QuantizedLinear& wq,
                         const QuantizedLinear& wk, const QuantizedLinear& wv,
                         float* out_q, float* out_k, float* out_v, int64_t m) {
  GOALEX_CHECK(wq.in == wk.in && wk.in == wv.in);
  GOALEX_CHECK(wq.out == wk.out && wk.out == wv.out);
  std::vector<uint8_t> xq(static_cast<size_t>(wq.in_groups) * 4);
  for (int64_t i = 0; i < m; ++i) {
    float mn, sx;
    QuantizeRow(x + i * wq.in, wq.in, xq.data(), wq.in_groups, &mn, &sx);
    QuantizedRowForward<0>(xq.data(), mn, sx, wq, out_q + i * wq.out, nullptr);
    QuantizedRowForward<0>(xq.data(), mn, sx, wk, out_k + i * wk.out, nullptr);
    QuantizedRowForward<0>(xq.data(), mn, sx, wv, out_v + i * wv.out, nullptr);
  }
}

}  // namespace goalex::tensor
